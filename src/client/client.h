#ifndef XARCH_CLIENT_CLIENT_H_
#define XARCH_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "server/net_util.h"
#include "server/protocol.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xarch/sink.h"

namespace xarch {

/// Connection parameters for Client::Connect.
struct ClientOptions {
  /// Announced in HELLO; shows up in server logs and stats.
  std::string client_name = "xarch-client";
  /// Protocol versions this client offers. Defaults cover everything the
  /// linked library speaks; tests narrow them to exercise negotiation.
  uint32_t min_version = net::kProtocolVersionMin;
  uint32_t max_version = net::kProtocolVersionMax;
  /// A server that stalls longer than this answering a request is an
  /// error (covers both mid-frame stalls and between-frame silence; long
  /// queries keep streaming chunks, which resets the clock). < 0 = wait
  /// forever.
  int response_timeout_ms = 60 * 1000;
};

/// \brief Blocking client for the xarchd wire protocol: one TCP
/// connection, one request in flight at a time.
///
/// Connect() performs the HELLO version negotiation; after it succeeds
/// the accessors report what the server announced. Each method sends one
/// request frame and blocks for the response. A kError frame from the
/// server is surfaced as a Status whose message carries the wire error
/// code name ("busy", "query-failed", ...); any transport or framing
/// failure poisons the connection — the client closes it and every later
/// call fails fast with kIoError.
///
/// Not thread-safe: one Client per thread (bench_server opens N).
class Client {
 public:
  /// Connects and negotiates. On version mismatch the server's ERROR is
  /// returned as kUnimplemented with the server's version range in the
  /// message.
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   uint16_t port,
                                                   ClientOptions options = {});

  // The internal FrameReader refers to the owned socket, so a Client is
  // pinned in place (hence the unique_ptr from Connect).
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The negotiated protocol version.
  uint32_t protocol_version() const { return hello_.version; }
  /// The server's banner (ServerOptions::server_name).
  const std::string& server_name() const { return hello_.server_name; }
  /// The served store's name, e.g. "durable(archive)".
  const std::string& backend() const { return hello_.backend; }

  /// Runs one XAQL query, streaming the result chunks into `sink` as they
  /// arrive. A server-side failure mid-stream yields a non-OK Status;
  /// whatever chunks reached the sink before it must be discarded (the
  /// stream was not closed by DONE and is not a result).
  ///
  /// When `trace_out` is non-null the query is sent with the trace flag
  /// and the server's rendered span tree lands in *trace_out (needs
  /// negotiated protocol >= 2; kUnimplemented otherwise).
  Status Query(std::string_view query_text, Sink& sink,
               std::string* trace_out = nullptr);

  /// Query into a string (convenience for small results).
  StatusOr<std::string> QueryToString(std::string_view query_text,
                                      std::string* trace_out = nullptr);

  /// Scrapes the server's telemetry registry: Prometheus text exposition
  /// (needs negotiated protocol >= 2; kUnimplemented otherwise).
  StatusOr<std::string> Metrics();

  /// Appends a batch of XML documents; returns the server's version count
  /// after the batch landed.
  StatusOr<Version> Ingest(const std::vector<std::string_view>& documents);

  /// Server + this-session counters.
  StatusOr<net::StatsReply> Stats();

  /// Liveness round trip.
  Status Ping();

  /// Asks the daemon to stop (drain sessions, checkpoint, exit).
  Status Shutdown();

  /// Closes the connection; later calls fail with kIoError.
  void Close() { socket_.Close(); }

  /// The wire error code of the last ERROR frame any call on this client
  /// received (kUnknown when the last call succeeded). Lets callers
  /// branch on e.g. ErrorCode::kBusy without parsing Status messages.
  net::ErrorCode last_error_code() const { return last_error_code_; }

 private:
  explicit Client(net::Socket socket, ClientOptions options)
      : socket_(std::move(socket)),
        options_(std::move(options)),
        reader_(socket_) {}

  /// Sends `type` and reads the one response frame, resolving kError
  /// frames into a Status. `expect` is the success response type.
  StatusOr<net::Frame> RoundTrip(net::MessageType type,
                                 std::string_view payload,
                                 net::MessageType expect);

  /// Reads one response frame, mapping transport failures to kIoError
  /// and poisoning the connection.
  StatusOr<net::Frame> ReadResponse();

  /// Converts a decoded kError frame into the Status the caller sees,
  /// recording its code in last_error_code_.
  Status ErrorFrameToStatus(const net::Frame& frame);

  net::Socket socket_;
  ClientOptions options_;
  net::FrameReader reader_;
  net::HelloReply hello_;
  net::ErrorCode last_error_code_ = net::ErrorCode::kUnknown;
};

}  // namespace xarch

#endif  // XARCH_CLIENT_CLIENT_H_
