#include "client/client.h"

#include <utility>

namespace xarch {

namespace {

/// Wire errors map onto the library's StatusCode vocabulary so callers
/// can branch without parsing messages.
StatusCode WireErrorToCode(net::ErrorCode code) {
  switch (code) {
    case net::ErrorCode::kVersionMismatch: return StatusCode::kUnimplemented;
    case net::ErrorCode::kMalformedFrame: return StatusCode::kDataLoss;
    case net::ErrorCode::kUnknownMessage: return StatusCode::kUnimplemented;
    case net::ErrorCode::kBadRequest: return StatusCode::kInvalidArgument;
    case net::ErrorCode::kBusy: return StatusCode::kIoError;
    case net::ErrorCode::kQueryFailed: return StatusCode::kInvalidArgument;
    case net::ErrorCode::kIngestFailed: return StatusCode::kInvalidArgument;
    case net::ErrorCode::kShuttingDown: return StatusCode::kIoError;
    case net::ErrorCode::kUnknown:
    case net::ErrorCode::kInternal: break;
  }
  return StatusCode::kIoError;
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  uint16_t port,
                                                  ClientOptions options) {
  XARCH_ASSIGN_OR_RETURN(net::Socket socket, net::Connect(host, port));
  auto client = std::unique_ptr<Client>(
      new Client(std::move(socket), std::move(options)));
  net::HelloRequest hello;
  hello.min_version = client->options_.min_version;
  hello.max_version = client->options_.max_version;
  hello.client_name = client->options_.client_name;
  XARCH_ASSIGN_OR_RETURN(
      net::Frame reply,
      client->RoundTrip(net::MessageType::kHello,
                        net::EncodeHelloRequest(hello),
                        net::MessageType::kHelloOk));
  XARCH_RETURN_NOT_OK(net::DecodeHelloReply(reply.payload, &client->hello_));
  return client;
}

Status Client::ErrorFrameToStatus(const net::Frame& frame) {
  net::ErrorReply error;
  if (Status st = net::DecodeErrorReply(frame.payload, &error); !st.ok()) {
    return Status::IoError("undecodable ERROR frame from server: " +
                           st.message());
  }
  last_error_code_ = error.code;
  return Status(WireErrorToCode(error.code),
                "server error [" + std::string(ErrorCodeName(error.code)) +
                    "]: " + error.message);
}

StatusOr<net::Frame> Client::ReadResponse() {
  net::Frame frame;
  Status status = reader_.ReadFrame(&frame, options_.response_timeout_ms,
                                    options_.response_timeout_ms);
  if (status.code() == StatusCode::kNotFound) {
    status = Status::IoError("no server response within " +
                             std::to_string(options_.response_timeout_ms) +
                             " ms");
  }
  if (!status.ok()) {
    // Transport or framing failure: the stream position is unknowable, so
    // the connection is poisoned.
    socket_.Close();
    return status;
  }
  return frame;
}

StatusOr<net::Frame> Client::RoundTrip(net::MessageType type,
                                       std::string_view payload,
                                       net::MessageType expect) {
  if (!socket_.valid()) {
    return Status::IoError("connection is closed");
  }
  last_error_code_ = net::ErrorCode::kUnknown;
  if (Status st = net::WriteFrame(socket_, type, payload); !st.ok()) {
    socket_.Close();
    return st;
  }
  XARCH_ASSIGN_OR_RETURN(net::Frame frame, ReadResponse());
  if (frame.type == net::MessageType::kError) {
    return ErrorFrameToStatus(frame);
  }
  if (frame.type != expect) {
    socket_.Close();
    return Status::IoError(
        "protocol confusion: expected response type " +
        std::to_string(static_cast<unsigned>(expect)) + ", got " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return frame;
}

Status Client::Query(std::string_view query_text, Sink& sink,
                     std::string* trace_out) {
  if (!socket_.valid()) return Status::IoError("connection is closed");
  if (trace_out != nullptr && hello_.version < 2) {
    return Status::Unimplemented(
        "server only speaks protocol v" + std::to_string(hello_.version) +
        "; query tracing needs v2");
  }
  last_error_code_ = net::ErrorCode::kUnknown;
  // At protocol v2 the QUERY payload leads with a flags octet; a v1
  // session sends raw text (old servers never see the flag byte).
  std::string payload;
  std::string_view wire = query_text;
  if (hello_.version >= 2) {
    payload.reserve(query_text.size() + 1);
    payload += static_cast<char>(trace_out != nullptr ? net::kQueryFlagTrace
                                                      : 0);
    payload += query_text;
    wire = payload;
  }
  if (Status st = net::WriteFrame(socket_, net::MessageType::kQuery, wire);
      !st.ok()) {
    socket_.Close();
    return st;
  }
  // CHUNK* then (TRACE?) DONE; or ERROR at any point (including
  // mid-stream, after chunks were already delivered — the sink contents
  // are then void).
  for (;;) {
    XARCH_ASSIGN_OR_RETURN(net::Frame frame, ReadResponse());
    switch (frame.type) {
      case net::MessageType::kChunk:
        XARCH_RETURN_NOT_OK(sink.Append(frame.payload));
        continue;
      case net::MessageType::kTrace:
        if (trace_out != nullptr) *trace_out = std::move(frame.payload);
        continue;
      case net::MessageType::kDone:
        return sink.Flush();
      case net::MessageType::kError:
        return ErrorFrameToStatus(frame);
      default:
        socket_.Close();
        return Status::IoError(
            "protocol confusion: unexpected frame type " +
            std::to_string(static_cast<unsigned>(frame.type)) +
            " inside a query stream");
    }
  }
}

StatusOr<std::string> Client::QueryToString(std::string_view query_text,
                                            std::string* trace_out) {
  StringSink sink;
  XARCH_RETURN_NOT_OK(Query(query_text, sink, trace_out));
  return std::move(sink).Take();
}

StatusOr<std::string> Client::Metrics() {
  if (hello_.version < 2) {
    return Status::Unimplemented(
        "server only speaks protocol v" + std::to_string(hello_.version) +
        "; METRICS needs v2");
  }
  XARCH_ASSIGN_OR_RETURN(net::Frame frame,
                         RoundTrip(net::MessageType::kMetrics, "",
                                   net::MessageType::kMetricsOk));
  return std::move(frame.payload);
}

StatusOr<Version> Client::Ingest(
    const std::vector<std::string_view>& documents) {
  net::IngestRequest request;
  request.documents.assign(documents.begin(), documents.end());
  XARCH_ASSIGN_OR_RETURN(
      net::Frame frame,
      RoundTrip(net::MessageType::kIngest, net::EncodeIngestRequest(request),
                net::MessageType::kIngestOk));
  net::IngestReply reply;
  XARCH_RETURN_NOT_OK(net::DecodeIngestReply(frame.payload, &reply));
  return reply.version_count;
}

StatusOr<net::StatsReply> Client::Stats() {
  XARCH_ASSIGN_OR_RETURN(net::Frame frame,
                         RoundTrip(net::MessageType::kStats, "",
                                   net::MessageType::kStatsOk));
  net::StatsReply reply;
  XARCH_RETURN_NOT_OK(net::DecodeStatsReply(frame.payload, &reply));
  return reply;
}

Status Client::Ping() {
  return RoundTrip(net::MessageType::kPing, "", net::MessageType::kPong)
      .status();
}

Status Client::Shutdown() {
  return RoundTrip(net::MessageType::kShutdown, "",
                   net::MessageType::kShutdownOk)
      .status();
}

}  // namespace xarch
