// xarch_client — command-line driver for the xarchd wire protocol.
//
//   xarch_client ping     --port P [--host H]
//   xarch_client query    --port P [--trace] '<xaql>'  (result to stdout;
//                                  --trace prints the span tree to stderr)
//   xarch_client ingest   --port P file.xml...     (one INGEST batch)
//   xarch_client stats    --port P                 (key=value lines)
//   xarch_client metrics  --port P                 (Prometheus text)
//   xarch_client shutdown --port P                 (drain + checkpoint + exit)
//
// Plus one offline subcommand for parity checking — the CI smoke ingests
// the same documents through the daemon and locally, runs the same XAQL
// both ways, and diffs the bytes:
//
//   xarch_client local-query --keys keys.txt [--backend B] '<xaql>' file.xml...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/client.h"
#include "vfs/vfs.h"
#include "xarch/store_registry.h"

namespace {

using namespace xarch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: xarch_client <ping|query|ingest|stats|metrics|shutdown>\n"
      "                    --port P [--host H] [--trace] [args...]\n"
      "       xarch_client local-query --keys keys.txt [--backend B]\n"
      "                    '<xaql>' file.xml...\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "xarch_client: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  return vfs::Vfs::Posix()->ReadFile(path);
}

/// Pulls a bare "--flag" out of args (erasing it); true when present.
bool TakeBoolFlag(std::vector<std::string>* args, const std::string& flag) {
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] == flag) {
      args->erase(args->begin() + i);
      return true;
    }
  }
  return false;
}

/// Pulls "--flag value" out of args (erasing it); empty when absent.
std::string TakeFlag(std::vector<std::string>* args, const std::string& flag) {
  for (size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == flag) {
      std::string value = (*args)[i + 1];
      args->erase(args->begin() + i, args->begin() + i + 2);
      return value;
    }
  }
  return "";
}

int RunLocalQuery(std::vector<std::string> args) {
  const std::string keys_path = TakeFlag(&args, "--keys");
  std::string backend = TakeFlag(&args, "--backend");
  if (backend.empty()) backend = "archive";
  if (keys_path.empty() || args.empty()) return Usage();
  const std::string query = args.front();
  args.erase(args.begin());

  auto keys_text = ReadFile(keys_path);
  if (!keys_text.ok()) return Fail(keys_text.status());
  auto spec = keys::ParseKeySpecSet(*keys_text);
  if (!spec.ok()) return Fail(spec.status());
  StoreOptions options;
  options.spec = std::move(*spec);
  auto store = StoreRegistry::Create(backend, std::move(options));
  if (!store.ok()) return Fail(store.status());
  for (const std::string& path : args) {
    auto text = ReadFile(path);
    if (!text.ok()) return Fail(text.status());
    if (Status st = (*store)->Append(*text); !st.ok()) return Fail(st);
  }
  StringSink sink;
  if (Status st = (*store)->Query(query, sink); !st.ok()) return Fail(st);
  std::fwrite(sink.data().data(), 1, sink.data().size(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (command == "local-query") return RunLocalQuery(std::move(args));

  std::string host = TakeFlag(&args, "--host");
  if (host.empty()) host = "127.0.0.1";
  const std::string port_text = TakeFlag(&args, "--port");
  const long port = port_text.empty() ? 0 : std::strtol(port_text.c_str(),
                                                        nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "xarch_client: --port is required (1-65535)\n");
    return 2;
  }

  ClientOptions options;
  options.client_name = "xarch_client";
  auto client = Client::Connect(host, static_cast<uint16_t>(port), options);
  if (!client.ok()) return Fail(client.status());

  if (command == "ping") {
    if (Status st = (*client)->Ping(); !st.ok()) return Fail(st);
    std::printf("pong from %s (%s, protocol v%u)\n",
                (*client)->server_name().c_str(), (*client)->backend().c_str(),
                (*client)->protocol_version());
    return 0;
  }
  if (command == "query") {
    const bool want_trace = TakeBoolFlag(&args, "--trace");
    if (args.size() != 1) return Usage();
    FileSink sink(stdout);
    std::string trace;
    if (Status st = (*client)->Query(args[0], sink,
                                     want_trace ? &trace : nullptr);
        !st.ok()) {
      return Fail(st);
    }
    if (want_trace) {
      // stderr, so piped query output stays clean.
      std::fwrite(trace.data(), 1, trace.size(), stderr);
    }
    return 0;
  }
  if (command == "ingest") {
    if (args.empty()) return Usage();
    std::vector<std::string> documents;
    for (const std::string& path : args) {
      auto text = ReadFile(path);
      if (!text.ok()) return Fail(text.status());
      documents.push_back(std::move(*text));
    }
    std::vector<std::string_view> views(documents.begin(), documents.end());
    auto count = (*client)->Ingest(views);
    if (!count.ok()) return Fail(count.status());
    std::printf("ingested %zu documents; server now holds %u versions\n",
                documents.size(), *count);
    return 0;
  }
  if (command == "stats") {
    auto stats = (*client)->Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("sessions_opened=%llu\nsessions_active=%llu\n"
                "queries=%llu\ningests=%llu\ndocuments_ingested=%llu\n"
                "bytes_in=%llu\nbytes_out=%llu\nrejected_busy=%llu\n"
                "protocol_errors=%llu\nquery_latency_p50_us=%llu\n"
                "query_latency_p99_us=%llu\nstore_versions=%u\n"
                "session_queries=%llu\nsession_ingests=%llu\n"
                "session_bytes_in=%llu\nsession_bytes_out=%llu\n",
                static_cast<unsigned long long>(stats->sessions_opened),
                static_cast<unsigned long long>(stats->sessions_active),
                static_cast<unsigned long long>(stats->queries),
                static_cast<unsigned long long>(stats->ingests),
                static_cast<unsigned long long>(stats->documents_ingested),
                static_cast<unsigned long long>(stats->bytes_in),
                static_cast<unsigned long long>(stats->bytes_out),
                static_cast<unsigned long long>(stats->rejected_busy),
                static_cast<unsigned long long>(stats->protocol_errors),
                static_cast<unsigned long long>(stats->query_latency_p50_us),
                static_cast<unsigned long long>(stats->query_latency_p99_us),
                stats->store_versions,
                static_cast<unsigned long long>(stats->session_queries),
                static_cast<unsigned long long>(stats->session_ingests),
                static_cast<unsigned long long>(stats->session_bytes_in),
                static_cast<unsigned long long>(stats->session_bytes_out));
    return 0;
  }
  if (command == "metrics") {
    auto text = (*client)->Metrics();
    if (!text.ok()) return Fail(text.status());
    std::fwrite(text->data(), 1, text->size(), stdout);
    return 0;
  }
  if (command == "shutdown") {
    if (Status st = (*client)->Shutdown(); !st.ok()) return Fail(st);
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  return Usage();
}
