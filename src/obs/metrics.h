#ifndef XARCH_OBS_METRICS_H_
#define XARCH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xarch::obs {

/// \brief Lock-cheap process metrics: named counters, gauges, and
/// log-scale-bucket histograms, registered once and bumped with relaxed
/// atomics on the hot paths, exposed in the Prometheus text format
/// (docs/OBSERVABILITY.md catalogs every metric the engine registers).
///
/// Design points:
///   * Registration (Registry::GetCounter etc.) takes a mutex and returns
///     a stable pointer; instrumented code registers once (static local or
///     member) and then only touches atomics — no locks, no allocation.
///   * Histograms are log-linear (HdrHistogram-style): 16 sub-buckets per
///     power of two, so any recorded value's bucket bounds are within
///     1/16 ≈ 6.25% of the value. Quantiles are reported as the exact
///     *bounds* of the bucket holding the requested rank — a guarantee,
///     not a sampled estimate, and windowless: no ring to bias p99 toward
///     recent bursts.
///   * Per-bucket counts are independent atomics, so histograms merge by
///     bucketwise addition (exactly associative) and concurrent Record()
///     calls never lose counts.
///   * SetMetricsEnabled(false) turns Counter::Add / Histogram::Record
///     into single-relaxed-load no-ops; benches use it to measure the
///     instrumentation's own overhead.

/// Process-wide kill switch for the hot-path mutators.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonic clock in microseconds (steady, not wall).
uint64_t MonotonicMicros();

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n);
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable point-in-time value (sessions active, versions held).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear histogram of non-negative integer samples (latencies in
/// microseconds, sizes in bytes). See the header comment for the scheme.
class Histogram {
 public:
  /// Values 0..15 get exact buckets; above that, 16 buckets per power of
  /// two. 64-bit values land in at most kBucketCount buckets.
  static constexpr size_t kSubBuckets = 16;
  static constexpr size_t kBucketCount = (64 - 4) * kSubBuckets + 16;

  /// The bucket index holding `v` (total order, 0-based).
  static size_t BucketIndex(uint64_t v);
  /// Smallest value the bucket holds.
  static uint64_t BucketLowerBound(size_t bucket);
  /// Largest value the bucket holds (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t bucket);

  Histogram();

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper/lower bound of the bucket containing the q-quantile sample
  /// (q in [0, 1]; rank rounds half up like the old ring did). Both are 0
  /// on an empty histogram. The true sample s at that rank satisfies
  /// QuantileLowerBound(q) <= s <= QuantileUpperBound(q).
  uint64_t QuantileUpperBound(double q) const;
  uint64_t QuantileLowerBound(double q) const;

  /// Adds `other`'s buckets into this one (bucketwise, exactly
  /// associative and commutative).
  void Merge(const Histogram& other);

  /// Point-in-time copy of the non-empty buckets, for encoders and tests.
  struct BucketSnapshot {
    size_t index;
    uint64_t count;
  };
  std::vector<BucketSnapshot> NonEmptyBuckets() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
};

/// One named metric family member: the family name plus optional
/// pre-rendered Prometheus labels (`plan="archive_indexed"` — no braces).
/// Registered metrics live as long as the Registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Gets or creates the metric. `help` is recorded on first registration
  /// of the family (later calls may pass ""). The returned pointer is
  /// stable for the Registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          const std::string& help = "");

  /// One flattened value for JSON reports: counters and gauges as-is,
  /// histograms expanded to _count and _sum.
  struct Sample {
    std::string name;    ///< family name (+ expansion suffix)
    std::string labels;  ///< pre-rendered labels, may be empty
    uint64_t value;
  };
  std::vector<Sample> Samples() const;

  /// Renders every registered metric in the Prometheus text exposition
  /// format (# HELP / # TYPE once per family; histograms as cumulative
  /// `_bucket{le="..."}` series over the non-empty buckets plus +Inf,
  /// `_sum`, and `_count`).
  std::string EncodeText() const;

  /// The process-wide registry the engine's seams record into.
  static Registry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    std::string labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* FindOrCreate(const std::string& name, const std::string& labels,
                       const std::string& help, Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Metric>> metrics_;   // registration order
  std::vector<std::pair<std::string, std::string>> help_;  // family -> help
};

}  // namespace xarch::obs

#endif  // XARCH_OBS_METRICS_H_
