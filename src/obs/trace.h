#ifndef XARCH_OBS_TRACE_H_
#define XARCH_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xarch::obs {

/// \brief One query's span tree (Dapper-style, in-process): nested timed
/// spans with integer annotations, collected while the query runs and
/// rendered as an indented tree — EXPLAIN ANALYZE's tail, the payload of
/// the wire TRACE frame, and the body of a slow-query log line.
///
/// Spans live in an arena (parent indices, never reparented), so handles
/// are plain indices and the tree renders in creation order. A Trace is
/// cheap enough to build per query but is NOT free: callers pass nullptr
/// when not tracing and every instrumentation site checks for it.
///
/// Thread safety: span creation/finish/annotation take a mutex. The query
/// evaluator runs serially when a trace is attached (the parallel range
/// executor falls back), so the tree's order is deterministic; the lock
/// covers incidental concurrency, not ordering.
class Trace {
 public:
  /// Identifies one span; kNoSpan is the (absent) parent of roots.
  using SpanId = size_t;
  static constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span under `parent` (kNoSpan for a root). Returns its id.
  SpanId Begin(std::string name, SpanId parent);

  /// Closes the span, fixing its duration. Idempotent is not needed —
  /// each span ends exactly once (ScopedSpan enforces it).
  void End(SpanId id);

  /// Attaches `key=value` to the span (probe counts, byte counts).
  void Note(SpanId id, std::string_view key, uint64_t value);

  /// Records an already-finished span from externally measured MonotonicMicros
  /// readings — for work timed before the trace existed (a query's parse
  /// runs before `explain analyze` is known to have been written).
  SpanId AddCompleted(std::string name, SpanId parent, uint64_t start_us,
                      uint64_t end_us);

  /// Renders the tree:
  ///
  ///   trace:
  ///     eval                         142 us  [tree_probes=5]
  ///       version 1                   12 us  [matches=1]
  ///
  /// Durations are wall-side microseconds from the monotonic clock.
  std::string Render() const;

  /// Total spans created (tests).
  size_t span_count() const;

 private:
  struct Span {
    std::string name;
    SpanId parent = kNoSpan;
    uint64_t start_us = 0;
    uint64_t end_us = 0;
    bool ended = false;
    std::vector<std::pair<std::string, uint64_t>> notes;
  };

  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII span: opens on construction, closes on destruction. Null-safe —
/// a ScopedSpan over a null Trace* is a no-op, so instrumentation sites
/// need no branches.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string name,
             Trace::SpanId parent = Trace::kNoSpan)
      : trace_(trace),
        id_(trace != nullptr ? trace->Begin(std::move(name), parent)
                             : Trace::kNoSpan) {}

  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The span's id, for nesting children under it (kNoSpan when no trace).
  Trace::SpanId id() const { return id_; }

  /// Annotates this span (no-op without a trace).
  void Note(std::string_view key, uint64_t value) {
    if (trace_ != nullptr) trace_->Note(id_, key, value);
  }

 private:
  Trace* trace_;
  Trace::SpanId id_;
};

}  // namespace xarch::obs

#endif  // XARCH_OBS_TRACE_H_
