#include "obs/trace.h"

#include "obs/metrics.h"

namespace xarch::obs {

Trace::SpanId Trace::Begin(std::string name, SpanId parent) {
  const uint64_t now = MonotonicMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = std::move(name);
  span.parent = parent < spans_.size() ? parent : kNoSpan;
  span.start_us = now;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Trace::End(SpanId id) {
  const uint64_t now = MonotonicMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].end_us = now;
  spans_[id].ended = true;
}

Trace::SpanId Trace::AddCompleted(std::string name, SpanId parent,
                                  uint64_t start_us, uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = std::move(name);
  span.parent = parent < spans_.size() ? parent : kNoSpan;
  span.start_us = start_us;
  span.end_us = end_us;
  span.ended = true;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Trace::Note(SpanId id, std::string_view key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].notes.emplace_back(std::string(key), value);
}

size_t Trace::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Trace::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Depth by chasing parents: the arena is append-only and parents always
  // precede children, so one forward pass renders the tree in creation
  // order with correct indentation.
  std::vector<size_t> depth(spans_.size(), 0);
  std::string out = "trace:\n";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (span.parent != kNoSpan) depth[i] = depth[span.parent] + 1;
    std::string line(2 + 2 * depth[i], ' ');
    line += span.name;
    const size_t pad = line.size() < 32 ? 32 - line.size() : 1;
    line.append(pad, ' ');
    const uint64_t dur =
        span.ended && span.end_us >= span.start_us
            ? span.end_us - span.start_us
            : 0;
    line += std::to_string(dur) + " us";
    if (!span.notes.empty()) {
      line += "  [";
      for (size_t k = 0; k < span.notes.size(); ++k) {
        if (k > 0) line += ' ';
        line += span.notes[k].first + "=" +
                std::to_string(span.notes[k].second);
      }
      line += ']';
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace xarch::obs
