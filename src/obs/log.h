#ifndef XARCH_OBS_LOG_H_
#define XARCH_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xarch::obs {

/// One field of a structured log line. Construct from a string or any
/// integer; values render key=value, quoted when they contain spaces,
/// quotes, or '=' (so lines stay machine-splittable on spaces).
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), value(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v) {}
  LogField(std::string_view k, uint64_t v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, int64_t v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, int v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, unsigned v)
      : key(k), value(std::to_string(v)) {}

  std::string key;
  std::string value;
};

/// \brief Single-line key=value logger for the daemon: every line carries
/// a wall-clock timestamp (UTC, millisecond ISO-8601) and the monotonic
/// microsecond clock, then `event=<name>` and the caller's fields —
/// machine-parseable where the old ad-hoc fprintf prose was not.
///
///   ts=2026-08-08T12:00:00.123Z mono_us=4711 event=serving backend=...
///
/// Thread-safe: one mutex per logger, one write(2)-sized fwrite per line.
class Logger {
 public:
  /// Logs to `out` (not owned). Defaults to stderr — stdout stays clean
  /// for command output (xarch_client pipes results through it).
  explicit Logger(std::FILE* out = stderr) : out_(out) {}

  void Log(std::string_view event, const std::vector<LogField>& fields = {});

  /// Formats the line without writing it (tests; the METRICS dump reuses
  /// it). No trailing newline.
  static std::string Format(std::string_view event,
                            const std::vector<LogField>& fields);

  /// The process-wide logger (stderr).
  static Logger& Default();

 private:
  std::mutex mu_;
  std::FILE* out_;
};

}  // namespace xarch::obs

#endif  // XARCH_OBS_LOG_H_
