#include "obs/metrics.h"

#include <chrono>
#include <utility>

namespace xarch::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Counter::Add(uint64_t n) {
  if (!MetricsEnabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

// ------------------------------------------------------------- histogram

size_t Histogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // 2^(b-1) <= v < 2^b; keep the top 5 bits so every octave splits into
  // kSubBuckets buckets, continuous with the exact small-value buckets.
  const int b = 64 - __builtin_clzll(v);
  const int shift = b - 5;
  const uint64_t top5 = v >> shift;  // in [16, 32)
  return static_cast<size_t>(shift) * kSubBuckets +
         static_cast<size_t>(top5);
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket < 2 * kSubBuckets) return bucket;  // exact buckets 0..31
  const size_t shift = (bucket - kSubBuckets) / kSubBuckets;
  const uint64_t top5 = kSubBuckets + (bucket - kSubBuckets) % kSubBuckets;
  return top5 << shift;
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket < 2 * kSubBuckets) return bucket;
  const size_t shift = (bucket - kSubBuckets) / kSubBuckets;
  const uint64_t top5 = kSubBuckets + (bucket - kSubBuckets) % kSubBuckets;
  // Unsigned wrap is intended for the last bucket: (32 << 59) - 1 is
  // exactly UINT64_MAX.
  return ((top5 + 1) << shift) - 1;
}

Histogram::Histogram()
    : buckets_(std::make_unique<std::atomic<uint64_t>[]>(kBucketCount)) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t v) {
  if (!MetricsEnabled()) return;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

namespace {

/// Loads the bucket the q-quantile rank falls in, using the loaded bucket
/// counts themselves as the total so the answer is internally consistent
/// even while writers race. Returns false when the histogram is empty.
bool QuantileBucket(const std::atomic<uint64_t>* buckets, double q,
                    size_t* out) {
  uint64_t counts[Histogram::kBucketCount];
  uint64_t total = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    counts[i] = buckets[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return false;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank rounding the server's old sample ring used (nth_element at
  // q*(n-1) rounded half up), so p50/p99 stay comparable.
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(total - 1) + 0.5);
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    seen += counts[i];
    if (seen > rank) {
      *out = i;
      return true;
    }
  }
  *out = Histogram::kBucketCount - 1;
  return true;
}

}  // namespace

uint64_t Histogram::QuantileUpperBound(double q) const {
  size_t bucket = 0;
  if (!QuantileBucket(buckets_.get(), q, &bucket)) return 0;
  return BucketUpperBound(bucket);
}

uint64_t Histogram::QuantileLowerBound(double q) const {
  size_t bucket = 0;
  if (!QuantileBucket(buckets_.get(), q, &bucket)) return 0;
  return BucketLowerBound(bucket);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

std::vector<Histogram::BucketSnapshot> Histogram::NonEmptyBuckets() const {
  std::vector<BucketSnapshot> out;
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.push_back({i, n});
  }
  return out;
}

// -------------------------------------------------------------- registry

Registry::Metric* Registry::FindOrCreate(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& metric : metrics_) {
    if (metric->kind == kind && metric->name == name &&
        metric->labels == labels) {
      return metric.get();
    }
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->labels = labels;
  metric->kind = kind;
  switch (kind) {
    case Kind::kCounter: metric->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: metric->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      metric->histogram = std::make_unique<Histogram>();
      break;
  }
  if (!help.empty()) {
    bool have = false;
    for (const auto& [family, _] : help_) {
      if (family == name) { have = true; break; }
    }
    if (!have) help_.emplace_back(name, help);
  }
  metrics_.push_back(std::move(metric));
  return metrics_.back().get();
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels,
                          const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  return FindOrCreate(name, labels, help, Kind::kHistogram)->histogram.get();
}

std::vector<Registry::Sample> Registry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& metric : metrics_) {
    switch (metric->kind) {
      case Kind::kCounter:
        out.push_back({metric->name, metric->labels,
                       metric->counter->value()});
        break;
      case Kind::kGauge:
        out.push_back({metric->name, metric->labels,
                       static_cast<uint64_t>(metric->gauge->value())});
        break;
      case Kind::kHistogram:
        out.push_back({metric->name + "_count", metric->labels,
                       metric->histogram->count()});
        out.push_back({metric->name + "_sum", metric->labels,
                       metric->histogram->sum()});
        break;
    }
  }
  return out;
}

namespace {

std::string Series(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string SeriesWithLe(const std::string& name, const std::string& labels,
                         const std::string& le) {
  std::string all = labels.empty() ? "" : labels + ",";
  all += "le=\"" + le + "\"";
  return name + "{" + all + "}";
}

}  // namespace

std::string Registry::EncodeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Families in first-registration order, each family's series together
  // (the exposition format requires a family's samples be consecutive).
  std::vector<std::string> families;
  for (const auto& metric : metrics_) {
    bool seen = false;
    for (const std::string& f : families) {
      if (f == metric->name) { seen = true; break; }
    }
    if (!seen) families.push_back(metric->name);
  }
  std::string out;
  for (const std::string& family : families) {
    const char* type = nullptr;
    for (const auto& [name, help] : help_) {
      if (name == family) {
        out += "# HELP " + family + " " + help + "\n";
        break;
      }
    }
    for (const auto& metric : metrics_) {
      if (metric->name != family) continue;
      if (type == nullptr) {
        switch (metric->kind) {
          case Kind::kCounter: type = "counter"; break;
          case Kind::kGauge: type = "gauge"; break;
          case Kind::kHistogram: type = "histogram"; break;
        }
        out += "# TYPE " + family + " " + std::string(type) + "\n";
      }
      switch (metric->kind) {
        case Kind::kCounter:
          out += Series(family, metric->labels) + " " +
                 std::to_string(metric->counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += Series(family, metric->labels) + " " +
                 std::to_string(metric->gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *metric->histogram;
          // One snapshot drives the buckets, +Inf, and _count together so
          // the exposition is internally consistent while writers race.
          const auto buckets = h.NonEmptyBuckets();
          uint64_t cumulative = 0;
          for (const auto& bucket : buckets) {
            cumulative += bucket.count;
            const uint64_t upper = Histogram::BucketUpperBound(bucket.index);
            if (upper == UINT64_MAX) continue;  // folded into +Inf below
            out += SeriesWithLe(family + "_bucket", metric->labels,
                                std::to_string(upper)) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += SeriesWithLe(family + "_bucket", metric->labels, "+Inf") +
                 " " + std::to_string(cumulative) + "\n";
          out += Series(family + "_sum", metric->labels) + " " +
                 std::to_string(h.sum()) + "\n";
          out += Series(family + "_count", metric->labels) + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace xarch::obs
