#include "obs/log.h"

#include <chrono>
#include <ctime>

#include "obs/metrics.h"

namespace xarch::obs {

namespace {

std::string WallTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));
  return buf;
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendValue(std::string_view value, std::string* out) {
  if (!NeedsQuoting(value)) {
    out->append(value);
    return;
  }
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Logger::Format(std::string_view event,
                           const std::vector<LogField>& fields) {
  std::string line = "ts=" + WallTimestamp();
  line += " mono_us=" + std::to_string(MonotonicMicros());
  line += " event=";
  AppendValue(event, &line);
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    AppendValue(field.value, &line);
  }
  return line;
}

void Logger::Log(std::string_view event, const std::vector<LogField>& fields) {
  std::string line = Format(event, fields);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

Logger& Logger::Default() {
  static Logger* logger = new Logger(stderr);  // leaked: outlives all users
  return *logger;
}

}  // namespace xarch::obs
