#include "extmem/external_archiver.h"

#include <algorithm>
#include <queue>

#include "core/archive.h"
#include "extmem/row.h"
#include "xml/serializer.h"

namespace xarch::extmem {

namespace {

/// A label rendered as a sortable byte string: tag, then (path, value)
/// pairs with low separators so shorter keys order first.
std::string LabelKey(const keys::Label& label) {
  std::string out = label.tag;
  out.push_back('\x01');
  for (const auto& part : label.parts) {
    out += part.path;
    out.push_back('\x02');
    out += part.value;
    out.push_back('\x03');
  }
  return out;
}

std::string CompactContent(const xml::Node& element) {
  xml::SerializeOptions options;
  options.pretty = false;
  std::string out;
  for (const auto& child : element.children()) {
    out += xml::Serialize(*child, options);
  }
  return out;
}

}  // namespace

ExternalArchiver::ExternalArchiver(keys::KeySpecSet spec, Options options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      vfs_(options_.vfs != nullptr ? options_.vfs : vfs::Vfs::Posix()) {
  (void)vfs_->CreateDirs(options_.work_dir);
  archive_path_ = vfs::Join(options_.work_dir, "archive.rows");
}

std::string ExternalArchiver::TempPath(const std::string& name) {
  return options_.work_dir + "/" + name + "." +
         std::to_string(temp_counter_++) + ".rows";
}

Status ExternalArchiver::BuildVersionRows(const xml::Node& version_root,
                                          const std::string& out_path) {
  XARCH_ASSIGN_OR_RETURN(
      keys::KeyedNode keyed,
      keys::AnnotateKeys(version_root, spec_, options_.annotate));
  RowWriter writer(vfs_, out_path, &stats_);
  // Virtual root row.
  Row root;
  root.sort_key = "";
  root.depth = 0;
  root.tag = "root";
  XARCH_RETURN_NOT_OK(writer.Write(root));

  // Document-order DFS; the external sort re-orders rows afterwards
  // (Sec. 6.2 — sorting is not done in memory).
  struct Walker {
    RowWriter& writer;
    Status Walk(const keys::KeyedNode& node, const std::string& parent_key,
                uint32_t depth) {
      Row row;
      row.sort_key = parent_key;
      row.sort_key.push_back('\x00');
      row.sort_key += LabelKey(node.label);
      row.depth = depth;
      row.tag = node.label.tag;
      row.attrs = node.node->attrs();
      row.is_frontier = node.is_frontier;
      if (node.is_frontier) {
        Row::Bucket bucket;
        bucket.content = CompactContent(*node.node);
        row.buckets.push_back(std::move(bucket));
      }
      XARCH_RETURN_NOT_OK(writer.Write(row));
      for (const auto& child : node.children) {
        XARCH_RETURN_NOT_OK(Walk(child, row.sort_key, depth + 1));
      }
      return Status::OK();
    }
  } walker{writer};
  XARCH_RETURN_NOT_OK(walker.Walk(keyed, "", 1));
  return writer.Close();
}

Status ExternalArchiver::ExternalSort(const std::string& in_path,
                                      const std::string& out_path) {
  // Phase 1: bounded-memory sorted runs.
  std::vector<std::string> runs;
  {
    RowReader reader(vfs_, in_path, &stats_);
    std::vector<Row> buffer;
    Row row;
    bool more = reader.Next(&row);
    while (more) {
      buffer.clear();
      while (more && buffer.size() < options_.memory_budget_rows) {
        buffer.push_back(std::move(row));
        more = reader.Next(&row);
      }
      XARCH_RETURN_NOT_OK(reader.status());
      std::sort(buffer.begin(), buffer.end(),
                [](const Row& a, const Row& b) { return a.sort_key < b.sort_key; });
      std::string run_path = TempPath("run");
      RowWriter writer(vfs_, run_path, &stats_);
      for (const Row& r : buffer) XARCH_RETURN_NOT_OK(writer.Write(r));
      XARCH_RETURN_NOT_OK(writer.Close());
      runs.push_back(run_path);
      ++stats_.run_count;
    }
    XARCH_RETURN_NOT_OK(reader.status());
  }
  if (runs.empty()) {
    // Empty input: emit an empty file.
    RowWriter writer(vfs_, out_path, &stats_);
    return writer.Close();
  }
  // Phase 2: fan-in-way merge passes.
  while (runs.size() > 1) {
    ++stats_.merge_passes;
    std::vector<std::string> next;
    for (size_t group = 0; group < runs.size(); group += options_.fan_in) {
      size_t end = std::min(group + options_.fan_in, runs.size());
      std::vector<std::string> batch(runs.begin() + group, runs.begin() + end);
      std::string merged_path =
          (next.empty() && end == runs.size() && group == 0)
              ? out_path
              : TempPath("merge");
      XARCH_RETURN_NOT_OK(MergeRuns(batch, merged_path));
      for (const auto& p : batch) (void)vfs_->Remove(p);
      next.push_back(merged_path);
    }
    runs = std::move(next);
  }
  if (runs[0] != out_path) {
    XARCH_RETURN_NOT_OK(vfs_->Rename(runs[0], out_path));
  }
  return Status::OK();
}

Status ExternalArchiver::MergeRuns(const std::vector<std::string>& runs,
                                   const std::string& out_path) {
  struct Source {
    std::unique_ptr<RowReader> reader;
    Row row;
    bool valid = false;
  };
  std::vector<Source> sources(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    sources[i].reader = std::make_unique<RowReader>(vfs_, runs[i], &stats_);
    sources[i].valid = sources[i].reader->Next(&sources[i].row);
    XARCH_RETURN_NOT_OK(sources[i].reader->status());
  }
  auto cmp = [&](size_t a, size_t b) {
    return sources[a].row.sort_key > sources[b].row.sort_key;  // min-heap
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].valid) heap.push(i);
  }
  RowWriter writer(vfs_, out_path, &stats_);
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    XARCH_RETURN_NOT_OK(writer.Write(sources[i].row));
    sources[i].valid = sources[i].reader->Next(&sources[i].row);
    XARCH_RETURN_NOT_OK(sources[i].reader->status());
    if (sources[i].valid) heap.push(i);
  }
  return writer.Close();
}

Status ExternalArchiver::MergeWithArchive(const std::string& version_path,
                                          Version v) {
  std::string new_archive = TempPath("newarchive");
  RowWriter out(vfs_, new_archive, &stats_);

  if (!has_archive_) {
    // Bootstrap: the sorted version rows become the archive; the root row
    // carries the timestamp {1}, everything else inherits.
    RowReader reader(vfs_, version_path, &stats_);
    Row row;
    bool first = true;
    while (reader.Next(&row)) {
      if (first) {
        row.has_stamp = true;
        row.stamp = VersionSet::Single(v);
        first = false;
      }
      XARCH_RETURN_NOT_OK(out.Write(row));
    }
    XARCH_RETURN_NOT_OK(reader.status());
    XARCH_RETURN_NOT_OK(out.Close());
    XARCH_RETURN_NOT_OK(vfs_->Rename(new_archive, archive_path_));
    has_archive_ = true;
    return Status::OK();
  }

  RowReader a(vfs_, archive_path_, &stats_);
  RowReader b(vfs_, version_path, &stats_);
  Row ra, rb;
  bool has_a = a.Next(&ra);
  bool has_b = b.Next(&rb);

  enum RowState : uint8_t { kMatched = 0, kArchiveOnly = 1, kVersionOnly = 2 };
  std::vector<VersionSet> eff(1);
  std::vector<uint8_t> state(1, kMatched);
  auto at_depth = [&](uint32_t depth) {
    if (eff.size() < depth + 1) {
      eff.resize(depth + 1);
      state.resize(depth + 1);
    }
  };

  while (has_a || has_b) {
    int cmp;
    if (has_a && has_b) {
      cmp = ra.sort_key.compare(rb.sort_key);
    } else {
      cmp = has_a ? -1 : 1;
    }
    if (cmp == 0) {
      Row merged = std::move(ra);
      at_depth(merged.depth);
      if (merged.has_stamp) {
        merged.stamp.Add(v);
        eff[merged.depth] = merged.stamp;
      } else {
        // Inherits; the parent matched (ancestors of a matched row match),
        // so the inherited stamp already contains v.
        eff[merged.depth] = merged.depth == 0 ? VersionSet::Single(v)
                                              : eff[merged.depth - 1];
      }
      state[merged.depth] = kMatched;
      if (merged.is_frontier) {
        const std::string& content = rb.buckets.empty()
                                         ? std::string()
                                         : rb.buckets[0].content;
        const VersionSet& t = eff[merged.depth];
        bool plain =
            merged.buckets.size() == 1 && !merged.buckets[0].has_stamp;
        if (plain) {
          if (merged.buckets[0].content != content) {
            merged.buckets[0].has_stamp = true;
            merged.buckets[0].stamp = t.Minus(VersionSet::Single(v));
            Row::Bucket fresh;
            fresh.has_stamp = true;
            fresh.stamp = VersionSet::Single(v);
            fresh.content = content;
            merged.buckets.push_back(std::move(fresh));
          }
        } else {
          bool found = false;
          for (auto& bucket : merged.buckets) {
            if (bucket.has_stamp && bucket.content == content) {
              bucket.stamp.Add(v);
              found = true;
              break;
            }
          }
          if (!found) {
            Row::Bucket fresh;
            fresh.has_stamp = true;
            fresh.stamp = VersionSet::Single(v);
            fresh.content = content;
            merged.buckets.push_back(std::move(fresh));
          }
        }
      }
      XARCH_RETURN_NOT_OK(out.Write(merged));
      has_a = a.Next(&ra);
      has_b = b.Next(&rb);
    } else if (cmp < 0) {
      // Archive-only subtree: terminate the timestamp at its top.
      Row merged = std::move(ra);
      at_depth(merged.depth);
      bool parent_matched =
          merged.depth == 0 || state[merged.depth - 1] == kMatched;
      if (!merged.has_stamp && parent_matched) {
        merged.has_stamp = true;
        merged.stamp = eff[merged.depth - 1].Minus(VersionSet::Single(v));
      }
      eff[merged.depth] = merged.has_stamp ? merged.stamp
                                           : eff[merged.depth - 1];
      state[merged.depth] = kArchiveOnly;
      XARCH_RETURN_NOT_OK(out.Write(merged));
      has_a = a.Next(&ra);
    } else {
      // Version-only subtree: timestamp {v} at its top.
      Row merged = std::move(rb);
      at_depth(merged.depth);
      bool parent_matched =
          merged.depth == 0 || state[merged.depth - 1] == kMatched;
      if (parent_matched) {
        merged.has_stamp = true;
        merged.stamp = VersionSet::Single(v);
      }
      eff[merged.depth] = merged.has_stamp ? merged.stamp
                                           : eff[merged.depth - 1];
      state[merged.depth] = kVersionOnly;
      XARCH_RETURN_NOT_OK(out.Write(merged));
      has_b = b.Next(&rb);
    }
  }
  XARCH_RETURN_NOT_OK(a.status());
  XARCH_RETURN_NOT_OK(b.status());
  XARCH_RETURN_NOT_OK(out.Close());
  XARCH_RETURN_NOT_OK(vfs_->Rename(new_archive, archive_path_));
  return Status::OK();
}

Status ExternalArchiver::AddVersion(const xml::Node& version_root) {
  Version v = count_ + 1;
  std::string raw_path = TempPath("version");
  XARCH_RETURN_NOT_OK(BuildVersionRows(version_root, raw_path));
  std::string sorted_path = TempPath("sorted");
  XARCH_RETURN_NOT_OK(ExternalSort(raw_path, sorted_path));
  (void)vfs_->Remove(raw_path);
  XARCH_RETURN_NOT_OK(MergeWithArchive(sorted_path, v));
  (void)vfs_->Remove(sorted_path);
  count_ = v;
  return Status::OK();
}

StatusOr<std::string> ExternalArchiver::ToXml() {
  if (!has_archive_) {
    return Status::NotFound("archive is empty");
  }
  RowReader reader(vfs_, archive_path_, &stats_);
  std::string out;
  struct Open {
    uint32_t depth;
    std::string tag;
    bool wrapped;
  };
  std::vector<Open> stack;
  auto close_to = [&](uint32_t depth) {
    while (!stack.empty() && stack.back().depth >= depth) {
      out += "</" + stack.back().tag + ">";
      if (stack.back().wrapped) out += "</T>";
      stack.pop_back();
    }
  };
  Row row;
  while (reader.Next(&row)) {
    close_to(row.depth);
    bool wrapped = row.has_stamp;
    if (wrapped) {
      out += "<T t=\"" + row.stamp.ToString() + "\">";
    }
    out += "<" + row.tag;
    for (const auto& [name, value] : row.attrs) {
      out += " " + name + "=\"" + xml::EscapeAttr(value) + "\"";
    }
    out += ">";
    if (row.is_frontier) {
      for (const auto& bucket : row.buckets) {
        if (bucket.has_stamp) {
          out += "<T t=\"" + bucket.stamp.ToString() + "\">" + bucket.content +
                 "</T>";
        } else {
          out += bucket.content;
        }
      }
    }
    stack.push_back(Open{row.depth, row.tag, wrapped});
  }
  XARCH_RETURN_NOT_OK(reader.status());
  close_to(0);
  return out;
}

StatusOr<xml::NodePtr> ExternalArchiver::RetrieveVersion(Version v) {
  XARCH_ASSIGN_OR_RETURN(std::string xml, ToXml());
  XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, spec_.Clone());
  XARCH_ASSIGN_OR_RETURN(core::Archive archive,
                         core::Archive::FromXml(xml, std::move(spec)));
  return archive.RetrieveVersion(v);
}

StatusOr<std::string> ExternalArchiver::ArchiveFileBytes() const {
  if (!has_archive_) return std::string();
  return vfs_->ReadFile(archive_path_);
}

Status ExternalArchiver::RestoreSnapshot(std::string_view archive_bytes,
                                         Version count) {
  if (archive_bytes.empty() != (count == 0)) {
    return Status::DataLoss(
        "extmem snapshot is inconsistent: " + std::to_string(count) +
        " versions with " + std::to_string(archive_bytes.size()) +
        " row-archive bytes");
  }
  if (archive_bytes.empty()) {
    (void)vfs_->Remove(archive_path_);
    has_archive_ = false;
    count_ = 0;
    return Status::OK();
  }
  // Stage into a temp file and validate there FIRST: rejected bytes must
  // never destroy an archive this archiver already holds.
  const std::string staged = TempPath("restore");
  {
    auto out = vfs_->OpenWritable(staged, vfs::WriteMode::kTruncate);
    if (!out.ok()) return out.status();
    Status written = (*out)->Append(archive_bytes);
    Status closed = (*out)->Close();
    if (written.ok()) written = closed;
    if (!written.ok()) {
      (void)vfs_->Remove(staged);
      return written;
    }
  }
  auto reject = [&](Status status) {
    (void)vfs_->Remove(staged);
    return status;
  };
  // Every row must scan, and no stamp may mention a version past the
  // declared count. Validation I/O is not archiving work, so it runs
  // against scratch stats.
  {
    IoStats scratch;
    RowReader reader(vfs_, staged, &scratch);
    Row row;
    size_t rows = 0;
    while (reader.Next(&row)) {
      ++rows;
      if (row.has_stamp && !row.stamp.empty() && row.stamp.Max() > count) {
        return reject(Status::DataLoss(
            "row stamp [" + row.stamp.ToString() +
            "] exceeds the snapshot's declared version count " +
            std::to_string(count)));
      }
    }
    Status scan = reader.status();
    if (!scan.ok()) {
      return reject(
          Status::DataLoss("row archive does not scan: " + scan.message()));
    }
    if (rows == 0) {
      return reject(Status::DataLoss("row archive holds no rows"));
    }
  }
  Status installed = vfs_->Rename(staged, archive_path_);
  if (!installed.ok()) {
    return reject(Status::IoError("cannot install row archive: " +
                                  installed.message()));
  }
  has_archive_ = true;
  count_ = count;
  return Status::OK();
}

}  // namespace xarch::extmem
