#ifndef XARCH_EXTMEM_EXTERNAL_ARCHIVER_H_
#define XARCH_EXTMEM_EXTERNAL_ARCHIVER_H_

#include <string>

#include "extmem/io_stats.h"
#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "util/status.h"
#include "util/version_set.h"
#include "vfs/vfs.h"
#include "xml/node.h"

namespace xarch::extmem {

/// \brief The external-memory archiver of Sec. 6.
///
/// The archive lives on disk as a sorted stream of rows (one per keyed
/// node, key = full label path). Adding a version performs the paper's
/// three steps with bounded memory:
///   1. annotate nodes with key values and flatten to rows (Sec. 6.1);
///   2. external-sort the rows: bounded-memory sorted runs, then
///      fan-in-way merge passes (Sec. 6.2);
///   3. merge the sorted version with the sorted archive in one
///      synchronized pass (Sec. 6.3), tracking inherited timestamps with a
///      depth stack.
/// All file traffic is counted in stats() so benches can report the
/// O(N/B log_{M/B} N/B) behaviour.
///
/// Frontier content is handled in bucket mode (the basic Nested Merge).
/// The produced XML is identical in content to the in-memory archiver's
/// (sibling order differs: plain label order instead of fingerprint
/// order), and Archive::FromXml can load it.
class ExternalArchiver {
 public:
  struct Options {
    /// Directory for the archive and temporary run files.
    std::string work_dir = "/tmp/xarch_extmem";
    /// File system the rows live on; nullptr = the real disk
    /// (vfs::Vfs::Posix()). Benches and tests can point the whole
    /// external-sort pipeline at an in-memory backend.
    vfs::Vfs* vfs = nullptr;
    /// Memory budget M, counted in rows held during run generation.
    size_t memory_budget_rows = 1024;
    /// Fan-in of each run-merge pass ((M/B) - 1 in the analysis).
    size_t fan_in = 8;
    /// Page size B for page-count reporting.
    size_t page_bytes = 4096;
    keys::AnnotateOptions annotate;
  };

  ExternalArchiver(keys::KeySpecSet spec, Options options);

  /// Merges the next version into the on-disk archive.
  Status AddVersion(const xml::Node& version_root);

  Version version_count() const { return count_; }

  /// Streams the archive rows into the Fig. 5 XML form (compact).
  StatusOr<std::string> ToXml();

  /// Convenience: reconstructs one version (loads via the in-memory
  /// archive; intended for tests and examples, not the data path).
  StatusOr<xml::NodePtr> RetrieveVersion(Version v);

  const IoStats& stats() const { return stats_; }
  void ClearStats() { stats_.Clear(); }

  const Options& options() const { return options_; }

  /// The resolved file system the rows live on (never nullptr).
  vfs::Vfs* vfs() const { return vfs_; }

  /// The key specification this archiver annotates against.
  const keys::KeySpecSet& spec() const { return spec_; }

  /// Raw bytes of the on-disk sorted-row archive ("" before the first
  /// version). Does not count into stats(): this is the persistence
  /// snapshot path, not the archiving data path.
  StatusOr<std::string> ArchiveFileBytes() const;

  /// Resets the archiver to a snapshot: writes `archive_bytes` as the row
  /// file (empty bytes = no archive yet) and sets the version counter.
  /// The bytes must be a row stream this archiver's spec produced;
  /// RestoreSnapshot validates that they scan as well-formed rows.
  Status RestoreSnapshot(std::string_view archive_bytes, Version count);

 private:
  std::string TempPath(const std::string& name);
  Status BuildVersionRows(const xml::Node& version_root,
                          const std::string& out_path);
  Status ExternalSort(const std::string& in_path, const std::string& out_path);
  Status MergeRuns(const std::vector<std::string>& runs,
                   const std::string& out_path);
  Status MergeWithArchive(const std::string& sorted_version_path, Version v);

  keys::KeySpecSet spec_;
  Options options_;
  vfs::Vfs* vfs_;
  IoStats stats_;
  Version count_ = 0;
  std::string archive_path_;
  bool has_archive_ = false;
  uint64_t temp_counter_ = 0;
};

}  // namespace xarch::extmem

#endif  // XARCH_EXTMEM_EXTERNAL_ARCHIVER_H_
