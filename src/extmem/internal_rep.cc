#include "extmem/internal_rep.h"

#include <unordered_map>

#include "keys/annotate.h"

namespace xarch::extmem {

namespace {

// Token kinds of the internal representation.
constexpr uint8_t kOpen = 0x01;       // + varint tag id (+ attr section)
constexpr uint8_t kClose = 0x02;      // ';' of Example 6.1
constexpr uint8_t kText = 0x03;       // + varint length + bytes
constexpr uint8_t kAttrMark = 0x04;   // + varint name id + varint len + bytes

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVarint(const std::string& data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t b = static_cast<uint8_t>(data[(*pos)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Corruption("bad varint in internal representation");
}

class Encoder {
 public:
  explicit Encoder(const keys::KeySpecSet& spec) : spec_(spec) {}

  Status Walk(const xml::Node& node) {
    if (node.is_text()) {
      rep_.tokens.push_back(static_cast<char>(kText));
      PutVarint(node.text().size(), &rep_.tokens);
      rep_.tokens.append(node.text());
      return Status::OK();
    }
    steps_.push_back(node.tag());
    rep_.tokens.push_back(static_cast<char>(kOpen));
    PutVarint(NameId(node.tag()), &rep_.tokens);
    PutVarint(node.attrs().size(), &rep_.tokens);
    for (const auto& [name, value] : node.attrs()) {
      rep_.tokens.push_back(static_cast<char>(kAttrMark));
      PutVarint(NameId(name), &rep_.tokens);
      PutVarint(value.size(), &rep_.tokens);
      rep_.tokens.append(value);
    }
    // "The key value of a node is fully determined by the time that node is
    // exited. If the root-to-node path is p then the key value is appended
    // in file p." (Sec. 6.1)
    const keys::Key* key = spec_.Lookup(steps_);
    if (key != nullptr && !key->key_paths.empty()) {
      keys::AnnotateOptions options;
      XARCH_ASSIGN_OR_RETURN(keys::Label label,
                             keys::ComputeLabel(node, *key, options));
      std::string path_name;
      for (const auto& s : steps_) path_name += "/" + s;
      std::string& file = rep_.key_files[path_name];
      for (const auto& part : label.parts) {
        file += part.path + "=" + part.value + " ";
      }
      file += "\n";
    }
    for (const auto& child : node.children()) {
      XARCH_RETURN_NOT_OK(Walk(*child));
    }
    rep_.tokens.push_back(static_cast<char>(kClose));
    steps_.pop_back();
    return Status::OK();
  }

  InternalRep Finish() { return std::move(rep_); }

 private:
  uint64_t NameId(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, rep_.dictionary.size());
    if (inserted) rep_.dictionary.push_back(name);
    return it->second;
  }

  const keys::KeySpecSet& spec_;
  InternalRep rep_;
  std::vector<std::string> steps_;
  std::unordered_map<std::string, uint64_t> ids_;
};

}  // namespace

size_t InternalRep::TotalBytes() const {
  size_t total = tokens.size();
  for (const auto& name : dictionary) total += name.size() + 1;
  for (const auto& [path, file] : key_files) {
    total += path.size() + 1 + file.size();
  }
  return total;
}

StatusOr<InternalRep> EncodeDocument(const xml::Node& root,
                                     const keys::KeySpecSet& spec) {
  Encoder encoder(spec);
  XARCH_RETURN_NOT_OK(encoder.Walk(root));
  return encoder.Finish();
}

StatusOr<xml::NodePtr> DecodeDocument(const InternalRep& rep) {
  size_t pos = 0;
  std::vector<xml::Node*> stack;
  xml::NodePtr root;
  const std::string& t = rep.tokens;
  while (pos < t.size()) {
    uint8_t token = static_cast<uint8_t>(t[pos++]);
    switch (token) {
      case kOpen: {
        uint64_t id, nattrs;
        XARCH_RETURN_NOT_OK(GetVarint(t, &pos, &id));
        XARCH_RETURN_NOT_OK(GetVarint(t, &pos, &nattrs));
        if (id >= rep.dictionary.size()) {
          return Status::Corruption("bad dictionary id");
        }
        xml::NodePtr elem = xml::Node::Element(rep.dictionary[id]);
        xml::Node* raw = elem.get();
        for (uint64_t a = 0; a < nattrs; ++a) {
          if (pos >= t.size() || static_cast<uint8_t>(t[pos]) != kAttrMark) {
            return Status::Corruption("expected attribute token");
          }
          ++pos;
          uint64_t name_id, len;
          XARCH_RETURN_NOT_OK(GetVarint(t, &pos, &name_id));
          XARCH_RETURN_NOT_OK(GetVarint(t, &pos, &len));
          if (name_id >= rep.dictionary.size() || pos + len > t.size()) {
            return Status::Corruption("bad attribute");
          }
          raw->SetAttr(rep.dictionary[name_id], t.substr(pos, len));
          pos += len;
        }
        if (stack.empty()) {
          if (root != nullptr) return Status::Corruption("multiple roots");
          root = std::move(elem);
        } else {
          stack.back()->AddChild(std::move(elem));
        }
        stack.push_back(raw);
        break;
      }
      case kClose:
        if (stack.empty()) return Status::Corruption("unbalanced close");
        stack.pop_back();
        break;
      case kText: {
        uint64_t len;
        XARCH_RETURN_NOT_OK(GetVarint(t, &pos, &len));
        if (stack.empty() || pos + len > t.size()) {
          return Status::Corruption("bad text token");
        }
        stack.back()->AddText(t.substr(pos, len));
        pos += len;
        break;
      }
      default:
        return Status::Corruption("unknown token");
    }
  }
  if (!stack.empty() || root == nullptr) {
    return Status::Corruption("unbalanced internal representation");
  }
  return root;
}

}  // namespace xarch::extmem
