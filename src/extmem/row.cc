#include "extmem/row.h"

namespace xarch::extmem {

namespace {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutString(const std::string& s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

class Cursor {
 public:
  Cursor(const std::string& data) : data_(data) {}

  Status Varint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size()) {
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
      shift += 7;
      if (shift > 63) break;
    }
    return Status::Corruption("bad varint in row");
  }

  Status String(std::string* out) {
    uint64_t len;
    XARCH_RETURN_NOT_OK(Varint(&len));
    if (pos_ + len > data_.size()) return Status::Corruption("bad row string");
    out->assign(data_, pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status DecodeRow(const std::string& payload, Row* row) {
  Cursor cur(payload);
  XARCH_RETURN_NOT_OK(cur.String(&row->sort_key));
  uint64_t depth, flags;
  XARCH_RETURN_NOT_OK(cur.Varint(&depth));
  row->depth = static_cast<uint32_t>(depth);
  XARCH_RETURN_NOT_OK(cur.Varint(&flags));
  row->is_frontier = (flags & 1) != 0;
  row->has_stamp = (flags & 2) != 0;
  if (row->has_stamp) {
    std::string stamp_text;
    XARCH_RETURN_NOT_OK(cur.String(&stamp_text));
    XARCH_ASSIGN_OR_RETURN(row->stamp, VersionSet::Parse(stamp_text));
  } else {
    row->stamp = VersionSet();
  }
  XARCH_RETURN_NOT_OK(cur.String(&row->tag));
  uint64_t nattrs;
  XARCH_RETURN_NOT_OK(cur.Varint(&nattrs));
  row->attrs.clear();
  for (uint64_t i = 0; i < nattrs; ++i) {
    std::string name, value;
    XARCH_RETURN_NOT_OK(cur.String(&name));
    XARCH_RETURN_NOT_OK(cur.String(&value));
    row->attrs.emplace_back(std::move(name), std::move(value));
  }
  uint64_t nbuckets;
  XARCH_RETURN_NOT_OK(cur.Varint(&nbuckets));
  row->buckets.clear();
  for (uint64_t i = 0; i < nbuckets; ++i) {
    Row::Bucket bucket;
    uint64_t bflags;
    XARCH_RETURN_NOT_OK(cur.Varint(&bflags));
    bucket.has_stamp = (bflags & 1) != 0;
    if (bucket.has_stamp) {
      std::string stamp_text;
      XARCH_RETURN_NOT_OK(cur.String(&stamp_text));
      XARCH_ASSIGN_OR_RETURN(bucket.stamp, VersionSet::Parse(stamp_text));
    }
    XARCH_RETURN_NOT_OK(cur.String(&bucket.content));
    row->buckets.push_back(std::move(bucket));
  }
  return Status::OK();
}

}  // namespace

void Row::EncodeTo(std::string* out) const {
  PutString(sort_key, out);
  PutVarint(depth, out);
  PutVarint((is_frontier ? 1 : 0) | (has_stamp ? 2 : 0), out);
  if (has_stamp) PutString(stamp.ToString(), out);
  PutString(tag, out);
  PutVarint(attrs.size(), out);
  for (const auto& [name, value] : attrs) {
    PutString(name, out);
    PutString(value, out);
  }
  PutVarint(buckets.size(), out);
  for (const auto& bucket : buckets) {
    PutVarint(bucket.has_stamp ? 1 : 0, out);
    if (bucket.has_stamp) PutString(bucket.stamp.ToString(), out);
    PutString(bucket.content, out);
  }
}

RowWriter::RowWriter(const std::string& path, IoStats* stats)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      stats_(stats) {}

Status RowWriter::Write(const Row& row) {
  if (!out_.is_open() || !out_.good()) {
    return Status::IoError("cannot write rows to " + path_);
  }
  std::string payload;
  row.EncodeTo(&payload);
  std::string framed;
  PutVarint(payload.size(), &framed);
  framed += payload;
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  stats_->bytes_written += framed.size();
  return Status::OK();
}

Status RowWriter::Close() {
  out_.close();
  if (out_.fail()) return Status::IoError("error closing " + path_);
  return Status::OK();
}

RowReader::RowReader(const std::string& path, IoStats* stats)
    : in_(path, std::ios::binary), stats_(stats) {
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open rows file " + path);
  }
}

bool RowReader::Next(Row* row) {
  if (!status_.ok() || !in_.good()) return false;
  // Read the varint length byte by byte.
  uint64_t len = 0;
  int shift = 0;
  for (;;) {
    int c = in_.get();
    if (c == EOF) return false;  // clean EOF only at a frame boundary
    stats_->bytes_read += 1;
    len |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      status_ = Status::Corruption("bad row frame length");
      return false;
    }
  }
  std::string payload(len, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(len));
  if (static_cast<uint64_t>(in_.gcount()) != len) {
    status_ = Status::Corruption("truncated row frame");
    return false;
  }
  stats_->bytes_read += len;
  status_ = DecodeRow(payload, row);
  return status_.ok();
}

}  // namespace xarch::extmem
