#include "extmem/row.h"

#include <utility>

namespace xarch::extmem {

namespace {

/// Flush/refill granularity for row files.
constexpr size_t kRowBufferBytes = 1u << 16;

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutString(const std::string& s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

class Cursor {
 public:
  Cursor(const std::string& data) : data_(data) {}

  Status Varint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size()) {
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
      shift += 7;
      if (shift > 63) break;
    }
    return Status::Corruption("bad varint in row");
  }

  Status String(std::string* out) {
    uint64_t len;
    XARCH_RETURN_NOT_OK(Varint(&len));
    if (pos_ + len > data_.size()) return Status::Corruption("bad row string");
    out->assign(data_, pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status DecodeRow(const std::string& payload, Row* row) {
  Cursor cur(payload);
  XARCH_RETURN_NOT_OK(cur.String(&row->sort_key));
  uint64_t depth, flags;
  XARCH_RETURN_NOT_OK(cur.Varint(&depth));
  row->depth = static_cast<uint32_t>(depth);
  XARCH_RETURN_NOT_OK(cur.Varint(&flags));
  row->is_frontier = (flags & 1) != 0;
  row->has_stamp = (flags & 2) != 0;
  if (row->has_stamp) {
    std::string stamp_text;
    XARCH_RETURN_NOT_OK(cur.String(&stamp_text));
    XARCH_ASSIGN_OR_RETURN(row->stamp, VersionSet::Parse(stamp_text));
  } else {
    row->stamp = VersionSet();
  }
  XARCH_RETURN_NOT_OK(cur.String(&row->tag));
  uint64_t nattrs;
  XARCH_RETURN_NOT_OK(cur.Varint(&nattrs));
  row->attrs.clear();
  for (uint64_t i = 0; i < nattrs; ++i) {
    std::string name, value;
    XARCH_RETURN_NOT_OK(cur.String(&name));
    XARCH_RETURN_NOT_OK(cur.String(&value));
    row->attrs.emplace_back(std::move(name), std::move(value));
  }
  uint64_t nbuckets;
  XARCH_RETURN_NOT_OK(cur.Varint(&nbuckets));
  row->buckets.clear();
  for (uint64_t i = 0; i < nbuckets; ++i) {
    Row::Bucket bucket;
    uint64_t bflags;
    XARCH_RETURN_NOT_OK(cur.Varint(&bflags));
    bucket.has_stamp = (bflags & 1) != 0;
    if (bucket.has_stamp) {
      std::string stamp_text;
      XARCH_RETURN_NOT_OK(cur.String(&stamp_text));
      XARCH_ASSIGN_OR_RETURN(bucket.stamp, VersionSet::Parse(stamp_text));
    }
    XARCH_RETURN_NOT_OK(cur.String(&bucket.content));
    row->buckets.push_back(std::move(bucket));
  }
  return Status::OK();
}

}  // namespace

void Row::EncodeTo(std::string* out) const {
  PutString(sort_key, out);
  PutVarint(depth, out);
  PutVarint((is_frontier ? 1 : 0) | (has_stamp ? 2 : 0), out);
  if (has_stamp) PutString(stamp.ToString(), out);
  PutString(tag, out);
  PutVarint(attrs.size(), out);
  for (const auto& [name, value] : attrs) {
    PutString(name, out);
    PutString(value, out);
  }
  PutVarint(buckets.size(), out);
  for (const auto& bucket : buckets) {
    PutVarint(bucket.has_stamp ? 1 : 0, out);
    if (bucket.has_stamp) PutString(bucket.stamp.ToString(), out);
    PutString(bucket.content, out);
  }
}

RowWriter::RowWriter(vfs::Vfs* vfs, const std::string& path, IoStats* stats)
    : path_(path), stats_(stats) {
  auto file = vfs->OpenWritable(path, vfs::WriteMode::kTruncate);
  if (!file.ok()) {
    status_ = file.status();
    return;
  }
  out_ = std::move(file).value();
  buffer_.reserve(kRowBufferBytes);
}

Status RowWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  Status written = out_->Append(buffer_);
  buffer_.clear();
  return written;
}

Status RowWriter::Write(const Row& row) {
  if (!status_.ok()) return status_;
  if (out_ == nullptr) {
    return Status::IoError("cannot write rows to " + path_);
  }
  std::string payload;
  row.EncodeTo(&payload);
  const size_t before = buffer_.size();
  PutVarint(payload.size(), &buffer_);
  buffer_ += payload;
  stats_->bytes_written += buffer_.size() - before;  // one framed row
  if (buffer_.size() >= kRowBufferBytes) {
    status_ = FlushBuffer();
  }
  return status_;
}

Status RowWriter::Close() {
  if (out_ == nullptr) return status_;
  Status flushed = FlushBuffer();
  Status closed = out_->Close();
  out_.reset();
  if (!status_.ok()) return status_;
  if (!flushed.ok()) return flushed;
  return closed;
}

RowReader::RowReader(vfs::Vfs* vfs, const std::string& path, IoStats* stats)
    : stats_(stats) {
  auto file = vfs->OpenReadable(path);
  if (!file.ok()) {
    status_ = Status::IoError("cannot open rows file " + path + ": " +
                              file.status().message());
    return;
  }
  in_ = std::move(file).value();
  buffer_.resize(kRowBufferBytes);
  buffer_pos_ = buffer_.size();  // force a fill on first read
}

int RowReader::GetByte() {
  if (buffer_pos_ >= buffer_.size()) {
    if (eof_ || in_ == nullptr) return -1;
    buffer_.resize(kRowBufferBytes);
    auto got = in_->Read(buffer_.data(), buffer_.size());
    if (!got.ok()) {
      status_ = got.status();
      return -1;
    }
    buffer_.resize(*got);
    buffer_pos_ = 0;
    if (buffer_.empty()) {
      eof_ = true;
      return -1;
    }
  }
  return static_cast<unsigned char>(buffer_[buffer_pos_++]);
}

bool RowReader::ReadExact(char* out, size_t n) {
  while (n > 0) {
    const int c = GetByte();
    if (c < 0) return false;
    *out++ = static_cast<char>(c);
    --n;
  }
  return true;
}

bool RowReader::Next(Row* row) {
  if (!status_.ok()) return false;
  // Read the varint length byte by byte.
  uint64_t len = 0;
  int shift = 0;
  for (;;) {
    int c = GetByte();
    if (c < 0) return false;  // clean EOF only at a frame boundary
    stats_->bytes_read += 1;
    len |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      status_ = Status::Corruption("bad row frame length");
      return false;
    }
  }
  std::string payload(len, '\0');
  if (!ReadExact(payload.data(), len)) {
    if (status_.ok()) status_ = Status::Corruption("truncated row frame");
    return false;
  }
  stats_->bytes_read += len;
  status_ = DecodeRow(payload, row);
  return status_.ok();
}

}  // namespace xarch::extmem
