#ifndef XARCH_EXTMEM_ROW_H_
#define XARCH_EXTMEM_ROW_H_

#include <fstream>
#include <string>
#include <vector>

#include "extmem/io_stats.h"
#include "util/status.h"
#include "util/version_set.h"

namespace xarch::extmem {

/// \brief One keyed node of an archive or version, flattened for external
/// processing.
///
/// The external archiver (Sec. 6) works on a stream of rows rather than an
/// in-memory tree: each row carries the full root-to-node key path as its
/// sort key, so sorting rows lexicographically yields exactly the
/// "sorted tree" of Sec. 6.2 (every keyed sibling list ordered by key
/// value, parents before children), and the Sec. 6.3 merge becomes a
/// single synchronized pass over two sorted row streams.
struct Row {
  /// Concatenated label keys from the root ("" for the virtual root);
  /// '\x00'-separated so prefixes sort first.
  std::string sort_key;
  uint32_t depth = 0;  ///< 0 = virtual root
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attrs;
  bool is_frontier = false;
  bool has_stamp = false;  ///< absent = timestamp inherited (Sec. 2)
  VersionSet stamp;

  /// Frontier content, stored as compact XML fragments. Fragment equality
  /// is value equality (compact serialization is canonical for parsed
  /// trees: attributes sorted, text normalized).
  struct Bucket {
    bool has_stamp = false;
    VersionSet stamp;
    std::string content;
  };
  std::vector<Bucket> buckets;

  /// Serialized size (what the I/O accounting charges).
  void EncodeTo(std::string* out) const;
};

/// Buffered writer of length-prefixed rows with I/O accounting.
class RowWriter {
 public:
  RowWriter(const std::string& path, IoStats* stats);
  Status Write(const Row& row);
  Status Close();

 private:
  std::ofstream out_;
  std::string path_;
  IoStats* stats_;
};

/// Buffered reader of length-prefixed rows with I/O accounting.
class RowReader {
 public:
  RowReader(const std::string& path, IoStats* stats);
  /// Reads the next row; returns false at EOF. `status()` reports errors.
  bool Next(Row* row);
  const Status& status() const { return status_; }

 private:
  std::ifstream in_;
  IoStats* stats_;
  Status status_;
};

}  // namespace xarch::extmem

#endif  // XARCH_EXTMEM_ROW_H_
