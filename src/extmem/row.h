#ifndef XARCH_EXTMEM_ROW_H_
#define XARCH_EXTMEM_ROW_H_

#include <memory>
#include <string>
#include <vector>

#include "extmem/io_stats.h"
#include "util/status.h"
#include "util/version_set.h"
#include "vfs/vfs.h"

namespace xarch::extmem {

/// \brief One keyed node of an archive or version, flattened for external
/// processing.
///
/// The external archiver (Sec. 6) works on a stream of rows rather than an
/// in-memory tree: each row carries the full root-to-node key path as its
/// sort key, so sorting rows lexicographically yields exactly the
/// "sorted tree" of Sec. 6.2 (every keyed sibling list ordered by key
/// value, parents before children), and the Sec. 6.3 merge becomes a
/// single synchronized pass over two sorted row streams.
struct Row {
  /// Concatenated label keys from the root ("" for the virtual root);
  /// '\x00'-separated so prefixes sort first.
  std::string sort_key;
  uint32_t depth = 0;  ///< 0 = virtual root
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attrs;
  bool is_frontier = false;
  bool has_stamp = false;  ///< absent = timestamp inherited (Sec. 2)
  VersionSet stamp;

  /// Frontier content, stored as compact XML fragments. Fragment equality
  /// is value equality (compact serialization is canonical for parsed
  /// trees: attributes sorted, text normalized).
  struct Bucket {
    bool has_stamp = false;
    VersionSet stamp;
    std::string content;
  };
  std::vector<Bucket> buckets;

  /// Serialized size (what the I/O accounting charges).
  void EncodeTo(std::string* out) const;
};

/// Buffered writer of length-prefixed rows with I/O accounting. Rows land
/// on the Vfs handed in, so the whole external-sort pipeline runs on disk,
/// in memory, or under injected faults alike. Accounting stays LOGICAL:
/// bytes_written counts framed row bytes, independent of how the buffer
/// flushes batch them.
class RowWriter {
 public:
  RowWriter(vfs::Vfs* vfs, const std::string& path, IoStats* stats);
  Status Write(const Row& row);
  Status Close();

 private:
  Status FlushBuffer();

  std::unique_ptr<vfs::WritableFile> out_;
  std::string buffer_;
  std::string path_;
  IoStats* stats_;
  Status status_;
};

/// Buffered reader of length-prefixed rows with I/O accounting (logical
/// bytes consumed, matching what RowWriter charged).
class RowReader {
 public:
  RowReader(vfs::Vfs* vfs, const std::string& path, IoStats* stats);
  /// Reads the next row; returns false at EOF. `status()` reports errors.
  bool Next(Row* row);
  const Status& status() const { return status_; }

 private:
  /// Next logical byte, or EOF (-1). Refills the buffer as needed.
  int GetByte();
  /// Reads exactly `n` logical bytes into `out`; false on short read.
  bool ReadExact(char* out, size_t n);

  std::unique_ptr<vfs::ReadableFile> in_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  IoStats* stats_;
  Status status_;
};

}  // namespace xarch::extmem

#endif  // XARCH_EXTMEM_ROW_H_
