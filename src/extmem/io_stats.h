#ifndef XARCH_EXTMEM_IO_STATS_H_
#define XARCH_EXTMEM_IO_STATS_H_

#include <cstddef>
#include <cstdint>

namespace xarch::extmem {

/// I/O accounting for the external-memory archiver (the N/B, M/B currency
/// of the Sec. 6 analysis).
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t run_count = 0;     ///< sorted runs produced (Sec. 6.2)
  uint64_t merge_passes = 0;  ///< multiway merge passes over the runs

  /// Page counts at the given page size B.
  uint64_t PagesRead(size_t page_bytes) const {
    return (bytes_read + page_bytes - 1) / page_bytes;
  }
  uint64_t PagesWritten(size_t page_bytes) const {
    return (bytes_written + page_bytes - 1) / page_bytes;
  }

  void Clear() { *this = IoStats{}; }
};

}  // namespace xarch::extmem

#endif  // XARCH_EXTMEM_IO_STATS_H_
