#ifndef XARCH_EXTMEM_INTERNAL_REP_H_
#define XARCH_EXTMEM_INTERNAL_REP_H_

#include <map>
#include <string>
#include <vector>

#include "keys/key_spec.h"
#include "util/status.h"
#include "xml/node.h"

namespace xarch::extmem {

/// \brief The Sec. 6.1 preprocessing: an XML document broken into
///  (1) an internal representation with tag names replaced by 2-byte-ish
///      integers (varints here) plus open/close markers,
///  (2) a dictionary mapping tag names to numbers, and
///  (3) one key file per key in the specification, holding the key values
///      of the nodes on that key's path, in document order.
///
/// This is the same layout as the paper's Example 6.1. The encoding incurs
/// O(N/B) I/O; byte sizes are exposed so benches can report it.
struct InternalRep {
  std::string tokens;                          ///< the tokenized document
  std::vector<std::string> dictionary;         ///< id -> tag/attr name
  std::map<std::string, std::string> key_files;  ///< key path -> values file

  size_t TotalBytes() const;
};

/// Encodes a document (which must satisfy `spec`).
StatusOr<InternalRep> EncodeDocument(const xml::Node& root,
                                     const keys::KeySpecSet& spec);

/// Decodes the internal representation back into a document (the key files
/// are redundant for decoding; they exist for the sort phase).
StatusOr<xml::NodePtr> DecodeDocument(const InternalRep& rep);

}  // namespace xarch::extmem

#endif  // XARCH_EXTMEM_INTERNAL_REP_H_
