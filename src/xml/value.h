#ifndef XARCH_XML_VALUE_H_
#define XARCH_XML_VALUE_H_

#include "xml/node.h"

namespace xarch::xml {

/// \brief Value equality `=v` of Appendix A.3.
///
/// Two nodes are value equal when the trees rooted at them are isomorphic by
/// an isomorphism that is identity on string values: same kind; text nodes
/// agree on their data; elements agree on tag, on the ordered list of E/T
/// children values, and on the set of attribute (name, value) pairs.
bool ValueEqual(const Node& a, const Node& b);

/// \brief Total value order `<=v` of Appendix A.6.
///
/// Returns <0, 0, >0 like strcmp. The order is: T-nodes < A-nodes < E-nodes
/// (attributes never appear at top level here, so effectively T < E); text
/// by string; elements by tag, then children lists (shorter first, then
/// lexicographic by value), then attribute sets (fewer first, then
/// lexicographic by name and value).
int ValueCompare(const Node& a, const Node& b);

/// Compares two ordered lists of sibling values (the `<=l` relation).
int ValueCompareChildren(const std::vector<NodePtr>& a,
                         const std::vector<NodePtr>& b);

/// Value equality over ordered lists of siblings.
bool ValueEqualChildren(const std::vector<NodePtr>& a,
                        const std::vector<NodePtr>& b);

}  // namespace xarch::xml

#endif  // XARCH_XML_VALUE_H_
