#include "xml/path.h"

#include "util/strings.h"

namespace xarch::xml {

std::string Path::ToString() const {
  if (steps.empty()) return absolute ? "/" : ".";
  std::string out;
  for (const auto& s : steps) {
    if (!out.empty() || absolute) out += '/';
    out += s;
  }
  return out;
}

Path Path::Concat(const Path& q) const {
  Path out = *this;
  out.steps.insert(out.steps.end(), q.steps.begin(), q.steps.end());
  return out;
}

bool Path::IsProperPrefixOf(const Path& other) const {
  if (steps.size() >= other.steps.size()) return false;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] != other.steps[i]) return false;
  }
  return true;
}

StatusOr<Path> ParsePath(std::string_view text) {
  Path path;
  std::string_view t = Trim(text);
  if (t.empty() || t == "." || t == "\\e") return path;
  if (t == "/") {
    path.absolute = true;
    return path;
  }
  if (t.front() == '/') {
    path.absolute = true;
    t.remove_prefix(1);
  }
  for (auto& step : Split(t, '/')) {
    if (step.empty()) {
      return Status::ParseError("empty step in path expression '" +
                                std::string(text) + "'");
    }
    path.steps.push_back(std::move(step));
  }
  return path;
}

namespace {

void EvalStep(const Node& node, const std::vector<std::string>& steps,
              size_t index, std::vector<PathTarget>* out) {
  if (index == steps.size()) {
    out->push_back(PathTarget{&node, nullptr, ""});
    return;
  }
  const std::string& name = steps[index];
  bool matched_element = false;
  for (const auto& c : node.children()) {
    if (c->is_element() && c->tag() == name) {
      matched_element = true;
      EvalStep(*c, steps, index + 1, out);
    }
  }
  // An attribute can only terminate a path (A-nodes are leaves).
  if (!matched_element && index + 1 == steps.size()) {
    if (node.FindAttr(name) != nullptr) {
      out->push_back(PathTarget{nullptr, &node, name});
    }
  }
}

}  // namespace

std::vector<PathTarget> EvalPath(const Node& start, const Path& path) {
  std::vector<PathTarget> out;
  EvalStep(start, path.steps, 0, &out);
  return out;
}

}  // namespace xarch::xml
