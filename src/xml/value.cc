#include "xml/value.h"

namespace xarch::xml {

namespace {

int Sign(int v) { return (v > 0) - (v < 0); }

int CompareAttrs(const Node& a, const Node& b) {
  const auto& aa = a.attrs();
  const auto& ba = b.attrs();
  if (aa.size() != ba.size()) return aa.size() < ba.size() ? -1 : 1;
  // Attribute vectors are kept sorted by name, so the `<=s` order of
  // Appendix A.6 is a pairwise lexicographic comparison.
  for (size_t i = 0; i < aa.size(); ++i) {
    int c = aa[i].first.compare(ba[i].first);
    if (c != 0) return Sign(c);
    c = aa[i].second.compare(ba[i].second);
    if (c != 0) return Sign(c);
  }
  return 0;
}

}  // namespace

int ValueCompare(const Node& a, const Node& b) {
  // T-nodes order before E-nodes (Appendix A.6).
  if (a.kind() != b.kind()) return a.is_text() ? -1 : 1;
  if (a.is_text()) return Sign(a.text().compare(b.text()));
  int c = Sign(a.tag().compare(b.tag()));
  if (c != 0) return c;
  c = ValueCompareChildren(a.children(), b.children());
  if (c != 0) return c;
  return CompareAttrs(a, b);
}

int ValueCompareChildren(const std::vector<NodePtr>& a,
                         const std::vector<NodePtr>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = 0; i < a.size(); ++i) {
    int c = ValueCompare(*a[i], *b[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool ValueEqual(const Node& a, const Node& b) { return ValueCompare(a, b) == 0; }

bool ValueEqualChildren(const std::vector<NodePtr>& a,
                        const std::vector<NodePtr>& b) {
  return ValueCompareChildren(a, b) == 0;
}

}  // namespace xarch::xml
