#include "xml/parser.h"

#include <cctype>
#include <string>

#include "util/strings.h"

namespace xarch::xml {

namespace {

/// Recursive-descent XML parser over a string_view.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options) {}

  StatusOr<NodePtr> ParseDocument() {
    SkipProlog();
    if (Eof() || Peek() != '<') {
      return Status::ParseError("expected root element at offset " +
                                std::to_string(pos_));
    }
    XARCH_ASSIGN_OR_RETURN(NodePtr root, ParseElement());
    SkipMisc();
    if (!Eof()) {
      return Status::ParseError("trailing content after root element at offset " +
                                std::to_string(pos_));
    }
    return root;
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipProlog() {
    // XML declaration, DOCTYPE, comments, PIs, whitespace.
    for (;;) {
      SkipWs();
      if (LookingAt("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (LookingAt("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else if (LookingAt("<!DOCTYPE")) {
        // Skip to matching '>' (internal subsets with brackets supported).
        int depth = 0;
        while (!Eof()) {
          char c = in_[pos_++];
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth == 0) break;
        }
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (LookingAt("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else if (LookingAt("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    if (Eof() || !IsNameStart(Peek())) {
      return Status::ParseError("expected name at offset " +
                                std::to_string(pos_));
    }
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  Status DecodeEntity(std::string* out) {
    // pos_ is at '&'.
    size_t semi = in_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      return Status::ParseError("unterminated entity at offset " +
                                std::to_string(pos_));
    }
    std::string_view ent = in_.substr(pos_ + 1, semi - pos_ - 1);
    if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      AppendUtf8(code, out);
    } else {
      return Status::ParseError("unknown entity '&" + std::string(ent) + ";'");
    }
    pos_ = semi + 1;
    return Status::OK();
  }

  static void AppendUtf8(long cp, std::string* out) {
    if (cp < 0) cp = 0xFFFD;
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<std::string> ParseAttrValue() {
    if (Eof() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError("expected quoted attribute value at offset " +
                                std::to_string(pos_));
    }
    char quote = Peek();
    ++pos_;
    std::string value;
    while (!Eof() && Peek() != quote) {
      if (Peek() == '&') {
        XARCH_RETURN_NOT_OK(DecodeEntity(&value));
      } else {
        value.push_back(in_[pos_++]);
      }
    }
    if (Eof()) {
      return Status::ParseError("unterminated attribute value");
    }
    ++pos_;  // closing quote
    return value;
  }

  StatusOr<NodePtr> ParseElement() {
    // pos_ is at '<'.
    ++pos_;
    XARCH_ASSIGN_OR_RETURN(std::string tag, ParseName());
    NodePtr element = Node::Element(std::move(tag));
    // Attributes.
    for (;;) {
      SkipWs();
      if (Eof()) return Status::ParseError("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      XARCH_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWs();
      if (Eof() || Peek() != '=') {
        return Status::ParseError("expected '=' after attribute name '" +
                                  name + "'");
      }
      ++pos_;
      SkipWs();
      XARCH_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      // XML well-formedness: attribute names are unique per element.
      // Overwriting silently would also break round-trip stability, which
      // the persistence layer depends on.
      if (element->FindAttr(name) != nullptr) {
        return Status::ParseError("duplicate attribute '" + name +
                                  "' on <" + element->tag() + ">");
      }
      element->SetAttr(name, value);
    }
    if (LookingAt("/>")) {
      pos_ += 2;
      return element;
    }
    ++pos_;  // '>'
    // Content.
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      bool keep = !options_.skip_whitespace_text ||
                  !IsAllWhitespace(pending_text);
      if (keep) {
        std::string t = options_.trim_text
                            ? std::string(Trim(pending_text))
                            : pending_text;
        element->AddText(std::move(t));
      }
      pending_text.clear();
    };
    for (;;) {
      if (Eof()) {
        return Status::ParseError("unterminated element <" + element->tag() +
                                  ">");
      }
      if (LookingAt("</")) {
        flush_text();
        pos_ += 2;
        XARCH_ASSIGN_OR_RETURN(std::string close, ParseName());
        SkipWs();
        if (Eof() || Peek() != '>') {
          return Status::ParseError("malformed end tag </" + close + ">");
        }
        ++pos_;
        if (close != element->tag()) {
          return Status::ParseError("mismatched end tag: expected </" +
                                    element->tag() + ">, found </" + close +
                                    ">");
        }
        return element;
      }
      if (LookingAt("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        pending_text.append(in_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        XARCH_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        XARCH_RETURN_NOT_OK(DecodeEntity(&pending_text));
        continue;
      }
      pending_text.push_back(in_[pos_++]);
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  ParseOptions options_;
};

}  // namespace

StatusOr<NodePtr> Parse(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseDocument();
}

StatusOr<NodePtr> Parse(std::string_view input) {
  return Parse(input, ParseOptions());
}

}  // namespace xarch::xml
