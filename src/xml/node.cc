#include "xml/node.h"

#include <algorithm>

namespace xarch::xml {

std::atomic<uint64_t> Node::created_{0};

void Node::SetAttr(std::string_view name, std::string_view value) {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const auto& a, std::string_view n) { return a.first < n; });
  if (it != attrs_.end() && it->first == name) {
    it->second = std::string(value);
  } else {
    attrs_.insert(it, {std::string(name), std::string(value)});
  }
}

const std::string* Node::FindAttr(std::string_view name) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const auto& a, std::string_view n) { return a.first < n; });
  if (it != attrs_.end() && it->first == name) return &it->second;
  return nullptr;
}

Node* Node::FindChild(std::string_view tag) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->tag() == tag) return c.get();
  }
  return nullptr;
}

std::vector<Node*> Node::FindChildren(std::string_view tag) const {
  std::vector<Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->tag() == tag) out.push_back(c.get());
  }
  return out;
}

std::string Node::TextContent() const {
  if (is_text()) return text();
  std::string out;
  for (const auto& c : children_) out += c->TextContent();
  return out;
}

NodePtr Node::Clone() const {
  NodePtr copy(new Node(kind_, value_));
  copy->attrs_ = attrs_;
  copy->children_.reserve(children_.size());
  for (const auto& c : children_) copy->children_.push_back(c->Clone());
  return copy;
}

size_t Node::CountNodes() const {
  size_t n = 1 + attrs_.size();
  for (const auto& c : children_) n += c->CountNodes();
  return n;
}

int Node::Height() const {
  if (is_text()) return 0;
  int h = 0;
  for (const auto& c : children_) h = std::max(h, c->Height());
  return h + 1;
}

}  // namespace xarch::xml
