#ifndef XARCH_XML_SERIALIZER_H_
#define XARCH_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace xarch::xml {

/// Options controlling serialization.
struct SerializeOptions {
  /// Indent nested elements on their own lines. Text-only elements are kept
  /// on one line so that line diffs stay element-aligned, as the paper's
  /// data was formatted ("each element is represented by one or more
  /// consecutive lines", Sec. 5).
  bool pretty = true;
  int indent_width = 2;
};

/// Serializes `node` to XML text.
std::string Serialize(const Node& node, const SerializeOptions& options);

/// Serializes with default (pretty) options.
std::string Serialize(const Node& node);

/// Low-level entry point: appends the serialization of `node`, indented as
/// if it sat at nesting level `depth`, to `*out`. Lets callers that emit
/// XML incrementally (e.g. streaming retrieval from an archive scan) reuse
/// the exact formatting of Serialize() for embedded subtrees.
void SerializeAppend(const Node& node, const SerializeOptions& options,
                     int depth, std::string* out);

/// Escapes character data: & < >.
std::string EscapeText(std::string_view text);

/// Escapes attribute values: & < > " '.
std::string EscapeAttr(std::string_view text);

}  // namespace xarch::xml

#endif  // XARCH_XML_SERIALIZER_H_
