#ifndef XARCH_XML_SERIALIZER_H_
#define XARCH_XML_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "xml/node.h"

namespace xarch::xml {

/// Options controlling serialization.
struct SerializeOptions {
  /// Indent nested elements on their own lines. Text-only elements are kept
  /// on one line so that line diffs stay element-aligned, as the paper's
  /// data was formatted ("each element is represented by one or more
  /// consecutive lines", Sec. 5).
  bool pretty = true;
  int indent_width = 2;
};

/// \brief Read-only tree the serializer can walk without owning nodes.
///
/// Both heap `xml::Node` trees and the flat mapped records of an XAR2
/// snapshot implement this, so retrieval from a mapped store emits exactly
/// the bytes the heap path emits — one serializer, two storages. Ids are
/// whatever the source wants (a pointer, an arena offset); the serializer
/// only passes them back.
class NodeSource {
 public:
  using Id = uint64_t;

  virtual ~NodeSource() = default;

  virtual bool IsText(Id node) const = 0;
  /// Character data of a text node.
  virtual std::string_view Text(Id node) const = 0;
  /// Tag of an element node.
  virtual std::string_view Tag(Id node) const = 0;
  virtual size_t AttrCount(Id node) const = 0;
  virtual std::pair<std::string_view, std::string_view> Attr(
      Id node, size_t i) const = 0;
  virtual size_t ChildCount(Id node) const = 0;
  virtual Id Child(Id node, size_t i) const = 0;
};

/// Serializes `node` to XML text.
std::string Serialize(const Node& node, const SerializeOptions& options);

/// Serializes with default (pretty) options.
std::string Serialize(const Node& node);

/// Low-level entry point: appends the serialization of `node`, indented as
/// if it sat at nesting level `depth`, to `*out`. Lets callers that emit
/// XML incrementally (e.g. streaming retrieval from an archive scan) reuse
/// the exact formatting of Serialize() for embedded subtrees.
void SerializeAppend(const Node& node, const SerializeOptions& options,
                     int depth, std::string* out);

/// The same, over any NodeSource (the mapped-archive retrieval path).
void SerializeAppend(const NodeSource& source, NodeSource::Id node,
                     const SerializeOptions& options, int depth,
                     std::string* out);

/// Escapes character data: & < >.
std::string EscapeText(std::string_view text);

/// Escapes attribute values: & < > " '.
std::string EscapeAttr(std::string_view text);

}  // namespace xarch::xml

#endif  // XARCH_XML_SERIALIZER_H_
