#ifndef XARCH_XML_CANONICAL_H_
#define XARCH_XML_CANONICAL_H_

#include <string>

#include "util/hash.h"
#include "xml/node.h"

namespace xarch::xml {

/// \brief Canonical form of an XML value (Sec. 4.3).
///
/// The canonical form has the defining property that two XML values are
/// value equal iff their canonical forms are string equal:
///   V =v V'  <=>  Canonicalize(V) == Canonicalize(V').
/// It is a compact serialization with attributes sorted by name, all
/// delimiters escaped in character data, and no inter-element whitespace
/// (our XML model ignores such whitespace, as the paper's does).
std::string Canonicalize(const Node& node);

/// Canonical form of an ordered list of sibling nodes (an "XML value" that
/// is the content of an element, e.g. a key path value).
std::string CanonicalizeList(const std::vector<NodePtr>& nodes);

/// \brief Fingerprint of an XML value: MD5 over the canonical form
/// (DOMHash-style, Sec. 4.3). Value-equal nodes have equal fingerprints.
Md5Digest Fingerprint(const Node& node);

}  // namespace xarch::xml

#endif  // XARCH_XML_CANONICAL_H_
