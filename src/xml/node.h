#ifndef XARCH_XML_NODE_H_
#define XARCH_XML_NODE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xarch::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

/// Node kinds of the paper's XML model (Appendix A.1). Attribute nodes
/// (A-nodes) are stored inside their owning element as (name, value) pairs;
/// they participate in value equality and ordering as a set.
enum class NodeKind { kElement, kText };

/// \brief A node of an XML tree: an element (tag + attributes + ordered
/// children) or a text node.
///
/// Trees own their children via unique_ptr; Node is movable but not
/// copyable (use Clone()).
class Node {
 public:
  /// Creates an element node with the given tag name.
  static NodePtr Element(std::string tag) {
    return NodePtr(new Node(NodeKind::kElement, std::move(tag)));
  }
  /// Creates a text node with the given character data.
  static NodePtr Text(std::string text) {
    return NodePtr(new Node(NodeKind::kText, std::move(text)));
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Tag name; only meaningful for elements.
  const std::string& tag() const { return value_; }
  /// Character data; only meaningful for text nodes.
  const std::string& text() const { return value_; }
  void set_text(std::string text) { value_ = std::move(text); }

  /// Attributes, kept sorted by name (they form a set, Appendix A.1).
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }
  /// Sets (or replaces) an attribute.
  void SetAttr(std::string_view name, std::string_view value);
  /// Returns the attribute value or nullptr if absent.
  const std::string* FindAttr(std::string_view name) const;

  const std::vector<NodePtr>& children() const { return children_; }
  std::vector<NodePtr>& mutable_children() { return children_; }

  /// Appends a child and returns a raw pointer to it (owned by this node).
  Node* AddChild(NodePtr child) {
    children_.push_back(std::move(child));
    return children_.back().get();
  }
  /// Convenience: appends `<tag/>` and returns it.
  Node* AddElement(std::string tag) {
    return AddChild(Element(std::move(tag)));
  }
  /// Convenience: appends a text child and returns it.
  Node* AddText(std::string text) { return AddChild(Text(std::move(text))); }
  /// Convenience: appends `<tag>text</tag>` and returns the element.
  Node* AddElementWithText(std::string tag, std::string text) {
    Node* e = AddElement(std::move(tag));
    e->AddText(std::move(text));
    return e;
  }

  /// First child element with the given tag, or nullptr.
  Node* FindChild(std::string_view tag) const;
  /// All child elements with the given tag.
  std::vector<Node*> FindChildren(std::string_view tag) const;

  /// Concatenation of all descendant text, in document order.
  std::string TextContent() const;

  /// Deep copy.
  NodePtr Clone() const;

  /// Total node count of the subtree, counting elements, text nodes, and
  /// attribute nodes (the paper's N of Fig. 7).
  size_t CountNodes() const;

  /// Element nesting depth of the subtree (the paper's h of Fig. 7): a leaf
  /// element has height 1; text nodes do not add a level.
  int Height() const;

  /// Total Nodes constructed since process start. A counter hook for tests
  /// that assert a code path materializes no tree (e.g. streaming retrieval
  /// must serialize straight from the archive scan): sample before and
  /// after, the delta is the number of nodes allocated in between.
  static uint64_t CreatedCount() {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  Node(NodeKind kind, std::string value)
      : kind_(kind), value_(std::move(value)) {
    created_.fetch_add(1, std::memory_order_relaxed);
  }

  static std::atomic<uint64_t> created_;

  NodeKind kind_;
  std::string value_;  // tag for elements, character data for text nodes
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<NodePtr> children_;
};

}  // namespace xarch::xml

#endif  // XARCH_XML_NODE_H_
