#ifndef XARCH_XML_PATH_H_
#define XARCH_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/node.h"

namespace xarch::xml {

/// \brief A path expression (Appendix A.2): a sequence of node names, with
/// "/" as the concatenator. The empty path is written "", "." or "\e" (the
/// key-spec files of Appendix B use "\e").
///
/// The path language deliberately contains only names — no wildcards,
/// predicates or axes — exactly the fragment the paper uses for keys.
struct Path {
  std::vector<std::string> steps;
  /// True if the expression started with '/' (anchored at the root).
  bool absolute = false;

  bool empty() const { return steps.empty(); }
  size_t size() const { return steps.size(); }

  /// Renders "/a/b" (absolute), "a/b" (relative) or "." (empty relative).
  std::string ToString() const;

  /// Concatenation P/Q; Q must be relative.
  Path Concat(const Path& q) const;

  bool operator==(const Path& o) const {
    return absolute == o.absolute && steps == o.steps;
  }

  /// True if this path is a proper prefix of `other` (used to compute
  /// frontier paths, Sec. 3).
  bool IsProperPrefixOf(const Path& other) const;
};

/// Parses a path expression. Accepts "", ".", "\e" for the empty path.
StatusOr<Path> ParsePath(std::string_view text);

/// \brief The result of evaluating a path step: either an element/text node
/// or an attribute of some element. Attributes act as A-node leaves in the
/// paper's model, and XMark keys use them as key paths ({id}).
struct PathTarget {
  const Node* node = nullptr;        ///< set for element matches
  const Node* attr_owner = nullptr;  ///< set for attribute matches
  std::string attr_name;

  bool is_attr() const { return attr_owner != nullptr; }
};

/// Evaluates a relative path from `start` (n[[P]] of Appendix A). For the
/// empty path, the result is `start` itself. The final step may match an
/// attribute name when no child element matches.
std::vector<PathTarget> EvalPath(const Node& start, const Path& path);

}  // namespace xarch::xml

#endif  // XARCH_XML_PATH_H_
