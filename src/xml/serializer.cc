#include "xml/serializer.h"

namespace xarch::xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// True if the element's children are text nodes only (rendered inline).
bool IsTextOnly(const Node& node) {
  for (const auto& c : node.children()) {
    if (!c->is_text()) return false;
  }
  return true;
}

void WriteNode(const Node& node, const SerializeOptions& options, int depth,
               std::string* out) {
  std::string indent =
      options.pretty ? std::string(depth * options.indent_width, ' ') : "";
  if (node.is_text()) {
    *out += indent;
    *out += EscapeText(node.text());
    if (options.pretty) *out += '\n';
    return;
  }
  *out += indent;
  *out += '<';
  *out += node.tag();
  for (const auto& [name, value] : node.attrs()) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeAttr(value);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (options.pretty && IsTextOnly(node)) {
    for (const auto& c : node.children()) *out += EscapeText(c->text());
    *out += "</";
    *out += node.tag();
    *out += ">\n";
    return;
  }
  if (options.pretty) *out += '\n';
  for (const auto& c : node.children()) {
    WriteNode(*c, options, depth + 1, out);
  }
  *out += indent;
  *out += "</";
  *out += node.tag();
  *out += '>';
  if (options.pretty) *out += '\n';
}

}  // namespace

void SerializeAppend(const Node& node, const SerializeOptions& options,
                     int depth, std::string* out) {
  WriteNode(node, options, depth, out);
}

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  WriteNode(node, options, 0, &out);
  return out;
}

std::string Serialize(const Node& node) {
  return Serialize(node, SerializeOptions());
}

}  // namespace xarch::xml
