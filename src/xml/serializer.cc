#include "xml/serializer.h"

namespace xarch::xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// True if the element's children are text nodes only (rendered inline).
bool IsTextOnly(const NodeSource& source, NodeSource::Id node) {
  const size_t n = source.ChildCount(node);
  for (size_t i = 0; i < n; ++i) {
    if (!source.IsText(source.Child(node, i))) return false;
  }
  return true;
}

void WriteNode(const NodeSource& source, NodeSource::Id node,
               const SerializeOptions& options, int depth, std::string* out) {
  std::string indent =
      options.pretty ? std::string(depth * options.indent_width, ' ') : "";
  if (source.IsText(node)) {
    *out += indent;
    *out += EscapeText(source.Text(node));
    if (options.pretty) *out += '\n';
    return;
  }
  *out += indent;
  *out += '<';
  *out += source.Tag(node);
  const size_t attr_count = source.AttrCount(node);
  for (size_t i = 0; i < attr_count; ++i) {
    const auto [name, value] = source.Attr(node, i);
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeAttr(value);
    *out += '"';
  }
  const size_t child_count = source.ChildCount(node);
  if (child_count == 0) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (options.pretty && IsTextOnly(source, node)) {
    for (size_t i = 0; i < child_count; ++i) {
      *out += EscapeText(source.Text(source.Child(node, i)));
    }
    *out += "</";
    *out += source.Tag(node);
    *out += ">\n";
    return;
  }
  if (options.pretty) *out += '\n';
  for (size_t i = 0; i < child_count; ++i) {
    WriteNode(source, source.Child(node, i), options, depth + 1, out);
  }
  *out += indent;
  *out += "</";
  *out += source.Tag(node);
  *out += '>';
  if (options.pretty) *out += '\n';
}

/// NodeSource over a heap xml::Node tree; ids are node pointers, so the
/// classic entry points below funnel into the one generic writer.
class HeapNodeSource : public NodeSource {
 public:
  static Id IdOf(const Node& node) {
    return reinterpret_cast<Id>(&node);
  }
  static const Node& NodeOf(Id id) {
    return *reinterpret_cast<const Node*>(static_cast<uintptr_t>(id));
  }

  bool IsText(Id node) const override { return NodeOf(node).is_text(); }
  std::string_view Text(Id node) const override { return NodeOf(node).text(); }
  std::string_view Tag(Id node) const override { return NodeOf(node).tag(); }
  size_t AttrCount(Id node) const override {
    return NodeOf(node).attrs().size();
  }
  std::pair<std::string_view, std::string_view> Attr(
      Id node, size_t i) const override {
    const auto& [name, value] = NodeOf(node).attrs()[i];
    return {name, value};
  }
  size_t ChildCount(Id node) const override {
    return NodeOf(node).children().size();
  }
  Id Child(Id node, size_t i) const override {
    return IdOf(*NodeOf(node).children()[i]);
  }
};

const HeapNodeSource& HeapSource() {
  static const HeapNodeSource source;
  return source;
}

}  // namespace

void SerializeAppend(const Node& node, const SerializeOptions& options,
                     int depth, std::string* out) {
  WriteNode(HeapSource(), HeapNodeSource::IdOf(node), options, depth, out);
}

void SerializeAppend(const NodeSource& source, NodeSource::Id node,
                     const SerializeOptions& options, int depth,
                     std::string* out) {
  WriteNode(source, node, options, depth, out);
}

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeAppend(node, options, 0, &out);
  return out;
}

std::string Serialize(const Node& node) {
  return Serialize(node, SerializeOptions());
}

}  // namespace xarch::xml
