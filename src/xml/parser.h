#ifndef XARCH_XML_PARSER_H_
#define XARCH_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/node.h"

namespace xarch::xml {

/// Options controlling XML parsing.
struct ParseOptions {
  /// Drop text nodes that consist entirely of whitespace. The paper's XML
  /// model ignores inter-element whitespace (Sec. 4.3, footnote 3).
  bool skip_whitespace_text = true;
  /// Trim leading/trailing whitespace of retained text nodes.
  bool trim_text = false;
};

/// \brief Parses an XML document and returns its root element.
///
/// Supports elements, attributes, character data, entity references
/// (&lt; &gt; &amp; &quot; &apos; and numeric &#NN; / &#xHH;), comments,
/// CDATA sections, XML declarations and DOCTYPE (both skipped).
/// Namespaces are not expanded; prefixed names are kept verbatim, which
/// matches the paper's treatment of the `T` timestamp tag as "in a separate
/// namespace".
StatusOr<NodePtr> Parse(std::string_view input, const ParseOptions& options);

/// Parses with default options.
StatusOr<NodePtr> Parse(std::string_view input);

}  // namespace xarch::xml

#endif  // XARCH_XML_PARSER_H_
