#include "xml/canonical.h"

#include "xml/serializer.h"

namespace xarch::xml {

namespace {

void CanonAppend(const Node& node, std::string* out) {
  if (node.is_text()) {
    // 'T' marker distinguishes a text node "<x>" from an element <x>.
    *out += 'T';
    *out += EscapeText(node.text());
    return;
  }
  *out += '<';
  *out += node.tag();
  for (const auto& [name, value] : node.attrs()) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeAttr(value);
    *out += '"';
  }
  *out += '>';
  for (const auto& c : node.children()) CanonAppend(*c, out);
  *out += "</";
  *out += node.tag();
  *out += '>';
}

}  // namespace

std::string Canonicalize(const Node& node) {
  std::string out;
  CanonAppend(node, &out);
  return out;
}

std::string CanonicalizeList(const std::vector<NodePtr>& nodes) {
  std::string out;
  for (const auto& n : nodes) CanonAppend(*n, &out);
  return out;
}

Md5Digest Fingerprint(const Node& node) { return Md5(Canonicalize(node)); }

}  // namespace xarch::xml
