#ifndef XARCH_SYNTH_OMIM_H_
#define XARCH_SYNTH_OMIM_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "xml/node.h"

namespace xarch::synth {

/// \brief Generates OMIM-shaped versions (Appendix B.1).
///
/// Substitution note (DESIGN.md): real OMIM data is licensed and offline-
/// unavailable; this generator reproduces what the archiver is sensitive
/// to — the record schema of Appendix B.1, the key structure, height 5,
/// and the measured change ratios between daily versions, roughly
/// 0.02% deletions / 0.2% insertions / 0.03% modifications (Sec. 5.3):
/// OMIM is almost purely accretive.
class OmimGenerator {
 public:
  struct Options {
    size_t initial_records = 300;
    double insert_ratio = 0.002;
    double delete_ratio = 0.0002;
    double modify_ratio = 0.0003;
    uint64_t seed = 20020601;
  };

  explicit OmimGenerator(Options options);

  /// Produces the next version (version 1 is the initial state; later calls
  /// apply one day's worth of changes first).
  xml::NodePtr NextVersion();

  /// The Appendix B.1 key specification for this dataset.
  static const char* KeySpecText();

 private:
  struct Contributor {
    std::string name, cntype, month, day, year;
  };
  struct Record {
    std::string num;
    std::string title;
    std::vector<std::string> alt_titles;
    std::vector<std::string> texts;
    std::vector<Contributor> contributors;
    Contributor creation;
  };

  Record MakeRecord();
  Contributor MakeContributor();
  /// Appends a fresh contributor, re-rolling duplicates (Contributors is
  /// keyed by all its fields).
  void AddContributor(Record* r);
  void Mutate();
  xml::NodePtr Render() const;

  Options options_;
  Rng rng_;
  size_t next_num_ = 100050;
  size_t versions_emitted_ = 0;
  std::vector<Record> records_;
};

}  // namespace xarch::synth

#endif  // XARCH_SYNTH_OMIM_H_
