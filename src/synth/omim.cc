#include "synth/omim.h"

#include <algorithm>

#include "synth/words.h"

namespace xarch::synth {

const char* OmimGenerator::KeySpecText() {
  return R"((/, (ROOT, {}))
(/ROOT, (Record, {Num}))
(/ROOT/Record, (Title, {}))
(/ROOT/Record, (AlternativeTitle, {\e}))
(/ROOT/Record, (Text, {\e}))
(/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))
(/ROOT/Record/Contributors, (Date, {}))
(/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))
(/ROOT/Record/Creation_Date, (Date, {}))
)";
}

OmimGenerator::OmimGenerator(Options options)
    : options_(options), rng_(options.seed) {
  records_.reserve(options_.initial_records);
  for (size_t i = 0; i < options_.initial_records; ++i) {
    records_.push_back(MakeRecord());
  }
}

OmimGenerator::Contributor OmimGenerator::MakeContributor() {
  Contributor c;
  c.name = Name(rng_) + " " + Name(rng_);
  c.cntype = rng_.Chance(0.7) ? "updated" : "edited";
  c.month = std::to_string(rng_.Uniform(1, 12));
  c.day = std::to_string(rng_.Uniform(1, 28));
  c.year = std::to_string(rng_.Uniform(1993, 2002));
  return c;
}

void OmimGenerator::AddContributor(Record* r) {
  // Contributors is keyed by {Name, CNtype, Date/*}: re-roll duplicates.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Contributor c = MakeContributor();
    bool duplicate = false;
    for (const auto& existing : r->contributors) {
      if (existing.name == c.name && existing.cntype == c.cntype &&
          existing.month == c.month && existing.day == c.day &&
          existing.year == c.year) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      r->contributors.push_back(std::move(c));
      return;
    }
  }
}

OmimGenerator::Record OmimGenerator::MakeRecord() {
  Record r;
  r.num = std::to_string(next_num_);
  next_num_ += rng_.Uniform(1, 9);
  r.title = "*" + r.num + " " + Sentence(rng_, 3, 8);
  std::transform(r.title.begin(), r.title.end(), r.title.begin(), ::toupper);
  size_t alts = rng_.Uniform(0, 3);
  for (size_t i = 0; i < alts; ++i) {
    std::string alt = Sentence(rng_, 2, 5);
    std::transform(alt.begin(), alt.end(), alt.begin(), ::toupper);
    // AlternativeTitle is keyed by content ({\e}): skip duplicates.
    if (std::find(r.alt_titles.begin(), r.alt_titles.end(), alt) ==
        r.alt_titles.end()) {
      r.alt_titles.push_back(std::move(alt));
    }
  }
  size_t texts = rng_.Uniform(1, 4);
  for (size_t i = 0; i < texts; ++i) {
    r.texts.push_back(Sentence(rng_, 40, 140));
  }
  size_t contribs = rng_.Uniform(1, 4);
  for (size_t i = 0; i < contribs; ++i) {
    AddContributor(&r);
  }
  r.creation = MakeContributor();
  return r;
}

void OmimGenerator::Mutate() {
  size_t n = records_.size();
  size_t deletes = static_cast<size_t>(n * options_.delete_ratio + 0.5);
  size_t inserts = static_cast<size_t>(n * options_.insert_ratio + 0.5);
  size_t modifies = static_cast<size_t>(n * options_.modify_ratio + 0.5);
  // Daily OMIM always changes *something*; round small ratios up to 1.
  if (inserts == 0) inserts = 1;
  if (modifies == 0) modifies = 1;
  for (size_t i = 0; i < deletes && !records_.empty(); ++i) {
    records_.erase(records_.begin() + rng_.Uniform(0, records_.size() - 1));
  }
  for (size_t i = 0; i < inserts; ++i) {
    records_.push_back(MakeRecord());
  }
  for (size_t i = 0; i < modifies && !records_.empty(); ++i) {
    Record& r = records_[rng_.Uniform(0, records_.size() - 1)];
    if (rng_.Chance(0.6)) {
      // Curated update: append prose and record the contributor.
      r.texts.push_back(Sentence(rng_, 30, 100));
      AddContributor(&r);
    } else if (!r.texts.empty()) {
      r.texts[rng_.Uniform(0, r.texts.size() - 1)] = Sentence(rng_, 40, 140);
    }
  }
}

xml::NodePtr OmimGenerator::Render() const {
  xml::NodePtr root = xml::Node::Element("ROOT");
  for (const auto& r : records_) {
    xml::Node* rec = root->AddElement("Record");
    rec->AddElementWithText("Num", r.num);
    rec->AddElementWithText("Title", r.title);
    for (const auto& alt : r.alt_titles) {
      rec->AddElementWithText("AlternativeTitle", alt);
    }
    for (const auto& text : r.texts) {
      rec->AddElementWithText("Text", text);
    }
    auto add_dated = [](xml::Node* parent, const Contributor& c,
                        bool with_type) {
      parent->AddElementWithText("Name", c.name);
      if (with_type) parent->AddElementWithText("CNtype", c.cntype);
      xml::Node* date = parent->AddElement("Date");
      date->AddElementWithText("Month", c.month);
      date->AddElementWithText("Day", c.day);
      date->AddElementWithText("Year", c.year);
    };
    for (const auto& c : r.contributors) {
      add_dated(rec->AddElement("Contributors"), c, /*with_type=*/true);
    }
    add_dated(rec->AddElement("Creation_Date"), r.creation,
              /*with_type=*/false);
  }
  return root;
}

xml::NodePtr OmimGenerator::NextVersion() {
  if (versions_emitted_ > 0) Mutate();
  ++versions_emitted_;
  return Render();
}

}  // namespace xarch::synth
