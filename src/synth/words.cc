#include "synth/words.h"

namespace xarch::synth {

namespace {

const std::vector<std::string>& Vocabulary() {
  static const std::vector<std::string> kWords = {
      "protein",    "sequence",   "factor",     "replication", "gene",
      "expression", "binding",    "domain",     "mutation",    "variant",
      "observed",   "patients",   "analysis",   "structure",   "function",
      "cell",       "human",      "mouse",      "encodes",     "subunit",
      "complex",    "pathway",    "signal",     "receptor",    "kinase",
      "promoter",   "transcript", "chromosome", "locus",       "allele",
      "syndrome",   "disorder",   "clinical",   "evidence",    "studies",
      "reported",   "described",  "identified", "associated",  "linked",
      "auction",    "bidder",     "payment",    "shipping",    "category",
      "promotion",  "tempest",    "despair",    "varlet",      "modesty"};
  return kWords;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kNames = {
      "John", "Jane", "Victor", "Paul",  "Jennifer", "Maria", "Keishi",
      "Wang", "Peter", "Sanjeev", "Alice", "Robert",  "Elena", "Hiro"};
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Doe",     "Smith",  "McKusick", "Converse", "Macke", "Tan",
      "Tajima",  "Khanna", "Buneman",  "Mueller",  "Rehbein", "Glew",
      "Suwanda", "Ng"};
  return kNames;
}

}  // namespace

std::string Sentence(Rng& rng, size_t min_words, size_t max_words) {
  size_t n = rng.Uniform(min_words, max_words);
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += rng.Pick(Vocabulary());
  }
  return out;
}

std::string Name(Rng& rng) {
  return rng.Chance(0.5) ? rng.Pick(FirstNames()) : rng.Pick(LastNames());
}

std::string ResidueSequence(Rng& rng, size_t length) {
  static const char kResidues[] = "ACDEFGHIKLMNPQRSTVWY";
  std::string out;
  out.reserve(length + length / 60);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kResidues[rng.Uniform(0, 19)]);
  }
  return out;
}

std::string Date(Rng& rng) {
  static const char* kMonths[] = {"JAN", "FEB", "MAR", "APR", "MAY", "JUN",
                                  "JUL", "AUG", "SEP", "OCT", "NOV", "DEC"};
  std::string out = std::to_string(rng.Uniform(1, 28));
  if (out.size() == 1) out = "0" + out;
  out += "-";
  out += kMonths[rng.Uniform(0, 11)];
  out += "-";
  out += std::to_string(rng.Uniform(1990, 2002));
  return out;
}

}  // namespace xarch::synth
