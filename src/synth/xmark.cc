#include "synth/xmark.h"

#include "synth/words.h"

namespace xarch::synth {

namespace {
const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};
}  // namespace

const char* XMarkGenerator::KeySpecText() {
  return R"((/, (site, {}))
(/site, (regions, {}))
(/site, (people, {}))
(/site, (open_auctions, {}))
(/site/regions, (africa, {}))
(/site/regions, (asia, {}))
(/site/regions, (australia, {}))
(/site/regions, (europe, {}))
(/site/regions, (namerica, {}))
(/site/regions, (samerica, {}))
(/site/regions/_, (item, {id}))
(/site/regions/_/item, (location, {}))
(/site/regions/_/item, (quantity, {}))
(/site/regions/_/item, (name, {}))
(/site/regions/_/item, (payment, {}))
(/site/regions/_/item, (description, {}))
(/site/regions/_/item, (shipping, {}))
(/site/regions/_/item, (incategory, {category}))
(/site/regions/_/item, (mailbox, {}))
(/site/regions/_/item/mailbox, (mail, {from, to, date, text}))
(/site/people, (person, {id}))
(/site/people/person, (name, {}))
(/site/people/person, (emailaddress, {\e}))
(/site/people/person, (phone, {\e}))
(/site/people/person, (creditcard, {\e}))
(/site/open_auctions, (open_auction, {id}))
(/site/open_auctions/open_auction, (initial, {}))
(/site/open_auctions/open_auction, (reserve, {\e}))
(/site/open_auctions/open_auction, (bidder, {date, time, personref/person, increase}))
(/site/open_auctions/open_auction/bidder, (personref, {}))
(/site/open_auctions/open_auction, (current, {}))
(/site/open_auctions/open_auction, (itemref, {}))
(/site/open_auctions/open_auction/itemref, (item, {}))
(/site/open_auctions/open_auction, (seller, {}))
(/site/open_auctions/open_auction/seller, (person, {}))
(/site/open_auctions/open_auction, (annotation, {}))
(/site/open_auctions/open_auction/annotation, (author, {}))
(/site/open_auctions/open_auction/annotation/author, (person, {}))
(/site/open_auctions/open_auction/annotation, (description, {}))
(/site/open_auctions/open_auction/annotation, (happiness, {}))
(/site/open_auctions/open_auction, (quantity, {}))
(/site/open_auctions/open_auction, (type, {}))
)";
}

XMarkGenerator::XMarkGenerator(Options options)
    : options_(options), rng_(options.seed) {
  doc_ = xml::Node::Element("site");
  xml::Node* regions = doc_->AddElement("regions");
  for (const char* region : kRegions) {
    xml::Node* r = regions->AddElement(region);
    for (size_t i = 0; i < options_.items; ++i) {
      r->AddChild(MakeItem());
    }
  }
  xml::Node* people = doc_->AddElement("people");
  for (size_t i = 0; i < options_.people; ++i) {
    people->AddChild(MakePerson());
  }
  xml::Node* auctions = doc_->AddElement("open_auctions");
  for (size_t i = 0; i < options_.open_auctions; ++i) {
    auctions->AddChild(MakeOpenAuction());
  }
}

xml::NodePtr XMarkGenerator::MakeItem() {
  xml::NodePtr item = xml::Node::Element("item");
  item->SetAttr("id", "item" + std::to_string(next_item_++));
  item->AddElementWithText("location", Sentence(rng_, 1, 3));
  item->AddElementWithText("quantity", std::to_string(rng_.Uniform(1, 9)));
  item->AddElementWithText("name", Sentence(rng_, 1, 3));
  item->AddElementWithText("payment",
                           rng_.Chance(0.5) ? "Money order, Creditcard, Cash"
                                            : "Creditcard, Personal Check");
  xml::Node* desc = item->AddElement("description");
  if (rng_.Chance(0.3)) {
    // XMark's nested parlists push document height to 12 (Fig. 7);
    // description is a frontier node so the nesting is free-form content.
    xml::Node* level = desc;
    size_t depth = rng_.Uniform(1, 4);
    for (size_t d = 0; d < depth; ++d) {
      xml::Node* parlist = level->AddElement("parlist");
      xml::Node* listitem = parlist->AddElement("listitem");
      listitem->AddElementWithText("text", Sentence(rng_, 5, 20));
      level = listitem;
    }
  } else {
    desc->AddElementWithText("text", Sentence(rng_, 10, 40));
  }
  item->AddElementWithText("shipping",
                           "Will ship " + Sentence(rng_, 2, 5));
  size_t cats = rng_.Uniform(1, 3);
  for (size_t i = 0; i < cats; ++i) {
    xml::Node* cat = item->AddElement("incategory");
    cat->SetAttr("category",
                 "category" + std::to_string(rng_.Uniform(0, 99) * 4 + i));
  }
  xml::Node* mailbox = item->AddElement("mailbox");
  size_t mails = rng_.Uniform(0, 2);
  for (size_t i = 0; i < mails; ++i) {
    xml::Node* mail = mailbox->AddElement("mail");
    mail->AddElementWithText("from", Name(rng_) + " mailto:" +
                                         rng_.Word(3, 8) + "@example.org");
    mail->AddElementWithText("to", Name(rng_) + " mailto:" +
                                       rng_.Word(3, 8) + "@example.org");
    mail->AddElementWithText(
        "date", std::to_string(rng_.Uniform(1, 12)) + "/" +
                    std::to_string(rng_.Uniform(1, 28)) + "/" +
                    std::to_string(rng_.Uniform(1998, 2001)));
    mail->AddElementWithText("text", Sentence(rng_, 8, 30));
  }
  return item;
}

xml::NodePtr XMarkGenerator::MakePerson() {
  xml::NodePtr person = xml::Node::Element("person");
  person->SetAttr("id", "person" + std::to_string(next_person_++));
  person->AddElementWithText("name", Name(rng_) + " " + Name(rng_));
  person->AddElementWithText("emailaddress",
                             "mailto:" + rng_.Word(4, 10) + "@example.org");
  if (rng_.Chance(0.6)) {
    person->AddElementWithText(
        "phone", "+" + std::to_string(rng_.Uniform(1, 99)) + " (" +
                     std::to_string(rng_.Uniform(10, 999)) + ") " +
                     std::to_string(rng_.Uniform(1000000, 99999999)));
  }
  if (rng_.Chance(0.4)) {
    std::string cc;
    for (int g = 0; g < 4; ++g) {
      if (g > 0) cc += ' ';
      cc += std::to_string(rng_.Uniform(1000, 9999));
    }
    person->AddElementWithText("creditcard", cc);
  }
  return person;
}

xml::NodePtr XMarkGenerator::MakeOpenAuction() {
  xml::NodePtr auction = xml::Node::Element("open_auction");
  auction->SetAttr("id", "open_auction" + std::to_string(next_auction_++));
  auction->AddElementWithText(
      "initial", std::to_string(rng_.Uniform(10, 300)) + "." +
                     std::to_string(rng_.Uniform(10, 99)));
  if (rng_.Chance(0.4)) {
    auction->AddElementWithText("reserve",
                                std::to_string(rng_.Uniform(50, 900)) + ".00");
  }
  size_t bidders = rng_.Uniform(0, 4);
  for (size_t i = 0; i < bidders; ++i) {
    xml::Node* bidder = auction->AddElement("bidder");
    bidder->AddElementWithText(
        "date", std::to_string(rng_.Uniform(1, 12)) + "/" +
                    std::to_string(rng_.Uniform(1, 28)) + "/" +
                    std::to_string(rng_.Uniform(1998, 2001)));
    bidder->AddElementWithText(
        "time", std::to_string(rng_.Uniform(0, 23)) + ":" +
                    std::to_string(rng_.Uniform(10, 59)) + ":" +
                    std::to_string(rng_.Uniform(10, 59)));
    xml::Node* pref = bidder->AddElement("personref");
    pref->SetAttr("person",
                  "person" + std::to_string(rng_.Uniform(
                                 0, options_.people > 0
                                        ? options_.people - 1
                                        : 0)));
    bidder->AddElementWithText(
        "increase", std::to_string(rng_.Uniform(1, 50)) + "." +
                        std::to_string(i) + "0");
  }
  auction->AddElementWithText(
      "current", std::to_string(rng_.Uniform(10, 999)) + ".00");
  xml::Node* itemref = auction->AddElement("itemref");
  itemref->AddElementWithText(
      "item", "item" + std::to_string(rng_.Uniform(
                           0, next_item_ > 0 ? next_item_ - 1 : 0)));
  xml::Node* seller = auction->AddElement("seller");
  seller->AddElementWithText(
      "person", "person" + std::to_string(rng_.Uniform(
                               0, options_.people > 0 ? options_.people - 1
                                                      : 0)));
  xml::Node* annotation = auction->AddElement("annotation");
  xml::Node* author = annotation->AddElement("author");
  author->AddElementWithText(
      "person", "person" + std::to_string(rng_.Uniform(
                               0, options_.people > 0 ? options_.people - 1
                                                      : 0)));
  xml::Node* desc = annotation->AddElement("description");
  desc->AddElementWithText("text", Sentence(rng_, 10, 30));
  annotation->AddElementWithText("happiness",
                                 std::to_string(rng_.Uniform(1, 10)));
  auction->AddElementWithText("quantity", std::to_string(rng_.Uniform(1, 5)));
  auction->AddElementWithText("type",
                              rng_.Chance(0.5) ? "Regular" : "Featured");
  return auction;
}

xml::NodePtr XMarkGenerator::Current() const { return doc_->Clone(); }

size_t XMarkGenerator::ScaledCount(size_t n, double pct) {
  // Probabilistic rounding keeps fractional ratios meaningful at small
  // scale (3.33% of 20 records must differ from 6.66% on average).
  double exact = n * pct / 100.0;
  size_t whole = static_cast<size_t>(exact);
  if (rng_.NextDouble() < exact - whole) ++whole;
  return whole;
}

std::vector<XMarkGenerator::RecordSet> XMarkGenerator::RecordSets() {
  std::vector<RecordSet> sets;
  xml::Node* regions = doc_->FindChild("regions");
  for (const char* region : kRegions) {
    sets.push_back({regions->FindChild(region), &XMarkGenerator::MakeItem});
  }
  sets.push_back({doc_->FindChild("people"), &XMarkGenerator::MakePerson});
  sets.push_back(
      {doc_->FindChild("open_auctions"), &XMarkGenerator::MakeOpenAuction});
  return sets;
}

void XMarkGenerator::ModifyTextFields(xml::Node* record) {
  // "Modifying string values ... to random strings": replace the text of
  // one non-key field. Values are drawn from small domains, so "a text
  // sometimes happens to be modified to some of its old values" (Sec. 5.3)
  // — the effect that lets the archive revive a stored value while diffs
  // must store it again.
  static const char* kSafeFields[] = {"location",  "name",   "payment",
                                      "shipping",  "current", "initial",
                                      "quantity",  "happiness", "emailaddress",
                                      "phone"};
  std::vector<xml::Node*> candidates;
  for (const auto& child : record->children()) {
    if (!child->is_element()) continue;
    for (const char* field : kSafeFields) {
      if (child->tag() == field) {
        candidates.push_back(child.get());
        break;
      }
    }
    if (child->tag() == "description") {
      if (xml::Node* text = child->FindChild("text")) candidates.push_back(text);
    }
  }
  if (candidates.empty()) return;
  xml::Node* field = candidates[rng_.Uniform(0, candidates.size() - 1)];
  std::string value;
  if (field->tag() == "quantity" || field->tag() == "happiness") {
    value = std::to_string(rng_.Uniform(1, 10));
  } else if (field->tag() == "current" || field->tag() == "initial") {
    value = std::to_string(rng_.Uniform(1, 40) * 25) + ".00";
  } else {
    value = Sentence(rng_, 1, 2);
  }
  field->mutable_children().clear();
  field->AddText(std::move(value));
}

void XMarkGenerator::MutateSubElements(xml::Node* record, size_t deletes,
                                       size_t inserts) {
  // Element-granularity churn within a record: optional repeating children
  // (incategory, mail, bidder) come and go.
  auto repeating = [&](xml::Node* parent,
                       const char* tag) -> std::vector<xml::Node*> {
    return parent == nullptr ? std::vector<xml::Node*>{}
                             : parent->FindChildren(tag);
  };
  if (record->tag() == "item") {
    for (size_t i = 0; i < deletes; ++i) {
      auto cats = repeating(record, "incategory");
      if (cats.size() <= 1) break;
      auto& children = record->mutable_children();
      for (size_t c = 0; c < children.size(); ++c) {
        if (children[c].get() == cats[rng_.Uniform(0, cats.size() - 1)]) {
          children.erase(children.begin() + c);
          break;
        }
      }
    }
    for (size_t i = 0; i < inserts; ++i) {
      // Small category domain: a removed category often comes back later.
      std::string cat = "category" + std::to_string(rng_.Uniform(0, 49));
      bool exists = false;
      for (xml::Node* c : record->FindChildren("incategory")) {
        if (*c->FindAttr("category") == cat) exists = true;
      }
      if (exists) continue;
      xml::Node* c = record->AddElement("incategory");
      c->SetAttr("category", cat);
    }
  } else if (record->tag() == "open_auction") {
    for (size_t i = 0; i < deletes; ++i) {
      auto bidders = repeating(record, "bidder");
      if (bidders.empty()) break;
      auto& children = record->mutable_children();
      for (size_t c = 0; c < children.size(); ++c) {
        if (children[c].get() == bidders[0]) {  // oldest bidder leaves
          children.erase(children.begin() + c);
          break;
        }
      }
    }
    // (bidder inserts are covered by modifications to current/initial.)
  }
}

void XMarkGenerator::MutateRandom(double pct) {
  // The paper's ratios are per *element*, not per record: most churn lands
  // on sub-elements inside records; a smaller share removes or adds whole
  // records.
  for (auto& set : RecordSets()) {
    auto& children = set.container->mutable_children();
    size_t n = children.size();
    size_t count = ScaledCount(n, pct);
    size_t record_count = count / 4;      // whole-record delete+insert
    size_t element_count = count - record_count;  // sub-element churn
    for (size_t i = 0; i < record_count && !children.empty(); ++i) {
      children.erase(children.begin() + rng_.Uniform(0, children.size() - 1));
    }
    for (size_t i = 0; i < record_count; ++i) {
      size_t pos = children.empty() ? 0 : rng_.Uniform(0, children.size());
      children.insert(children.begin() + pos, (this->*set.factory)());
    }
    for (size_t i = 0; i < element_count && !children.empty(); ++i) {
      MutateSubElements(children[rng_.Uniform(0, children.size() - 1)].get(),
                        /*deletes=*/1, /*inserts=*/1);
    }
    // Modify string values of count elements.
    for (size_t i = 0; i < count && !children.empty(); ++i) {
      ModifyTextFields(
          children[rng_.Uniform(0, children.size() - 1)].get());
    }
  }
}

void XMarkGenerator::MutateKeys(double pct) {
  // Worst case: rewrite part of the key value of pct% of records. The
  // record keeps all its content but gets a brand-new id — to a key-based
  // archiver this is a delete + insert of a highly similar element, while
  // a line diff sees a one-line change.
  for (auto& set : RecordSets()) {
    auto& children = set.container->mutable_children();
    size_t n = children.size();
    size_t count = ScaledCount(n, pct);
    for (size_t i = 0; i < count && !children.empty(); ++i) {
      xml::Node* record =
          children[rng_.Uniform(0, children.size() - 1)].get();
      const std::string* id = record->FindAttr("id");
      if (id == nullptr) continue;
      std::string fresh;
      if (record->tag() == "item") {
        fresh = "item" + std::to_string(next_item_++);
      } else if (record->tag() == "person") {
        fresh = "person" + std::to_string(next_person_++);
      } else {
        fresh = "open_auction" + std::to_string(next_auction_++);
      }
      record->SetAttr("id", fresh);
    }
  }
}

}  // namespace xarch::synth
