#ifndef XARCH_SYNTH_WORDS_H_
#define XARCH_SYNTH_WORDS_H_

#include <string>

#include "util/random.h"

namespace xarch::synth {

/// English-ish filler text for generated documents. Real curated databases
/// carry prose (OMIM Text fields, auction descriptions); drawing words from
/// a fixed vocabulary reproduces their compressibility, which the Sec. 5
/// compression experiments depend on.
std::string Sentence(Rng& rng, size_t min_words, size_t max_words);

/// A capitalized person-like name, e.g. "Keishi" / "Tajima".
std::string Name(Rng& rng);

/// A protein-style residue sequence of the given length (A,C,G,T,...).
std::string ResidueSequence(Rng& rng, size_t length);

/// A date like "14-DEC-1993".
std::string Date(Rng& rng);

}  // namespace xarch::synth

#endif  // XARCH_SYNTH_WORDS_H_
