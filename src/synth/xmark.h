#ifndef XARCH_SYNTH_XMARK_H_
#define XARCH_SYNTH_XMARK_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "xml/node.h"

namespace xarch::synth {

/// \brief Generates XMark-shaped auction documents (Schmidt et al. 2002)
/// with the key structure of Appendix B.3, plus the paper's two change
/// simulators (Sec. 5.3):
///
///  - MutateRandom(n): "creates a new version by deleting n% of elements,
///    inserting the same number of elements with random string values, and
///    modifying string values of n% of elements to random strings"
///    (Fig. 13 / Appendix C.1);
///  - MutateKeys(n): "modifies part of key values for n% of elements
///    instead of deleting and inserting", simulating deletion + insertion
///    of highly similar elements at the same spot — the archiver's worst
///    case (Fig. 14 / Appendix C.2).
class XMarkGenerator {
 public:
  struct Options {
    size_t items = 120;      ///< per region (6 regions)
    size_t people = 150;
    size_t open_auctions = 120;
    uint64_t seed = 974750;
  };

  explicit XMarkGenerator(Options options);

  /// A deep copy of the current document state.
  xml::NodePtr Current() const;

  /// Applies the random change simulator at the given percentage.
  void MutateRandom(double pct);

  /// Applies the worst-case key-mutation simulator.
  void MutateKeys(double pct);

  /// The Appendix B.3 key specification for this dataset.
  static const char* KeySpecText();

 private:
  xml::NodePtr MakeItem();
  xml::NodePtr MakePerson();
  xml::NodePtr MakeOpenAuction();

  /// All mutable record containers: the six region elements, people, and
  /// open_auctions, each with a factory for fresh records.
  struct RecordSet {
    xml::Node* container;
    xml::NodePtr (XMarkGenerator::*factory)();
  };
  std::vector<RecordSet> RecordSets();

  void ModifyTextFields(xml::Node* record);
  void MutateSubElements(xml::Node* record, size_t deletes, size_t inserts);
  /// n·pct/100 with probabilistic rounding of the fractional part.
  size_t ScaledCount(size_t n, double pct);

  Options options_;
  Rng rng_;
  size_t next_item_ = 0, next_person_ = 0, next_auction_ = 0;
  xml::NodePtr doc_;
};

}  // namespace xarch::synth

#endif  // XARCH_SYNTH_XMARK_H_
