#ifndef XARCH_SYNTH_SWISSPROT_H_
#define XARCH_SYNTH_SWISSPROT_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "xml/node.h"

namespace xarch::synth {

/// \brief Generates Swiss-Prot-shaped releases (Appendix B.2).
///
/// Substitution note (DESIGN.md): reproduces the properties the archiver
/// sees in real Swiss-Prot — the record schema and keys of Appendix B.2,
/// height 6, release-to-release change ratios of roughly 14% deletions /
/// 26% insertions / 1.2% modifications (Sec. 5.3), and *growing* release
/// sizes, which is what makes the paper's Fig. 11/12(b) curves grow
/// quadratically.
class SwissProtGenerator {
 public:
  struct Options {
    size_t initial_records = 150;
    double insert_ratio = 0.26;
    double delete_ratio = 0.14;
    double modify_ratio = 0.012;
    uint64_t seed = 19971101;
  };

  explicit SwissProtGenerator(Options options);

  /// Produces the next release.
  xml::NodePtr NextVersion();

  /// The Appendix B.2 key specification for this dataset.
  static const char* KeySpecText();

 private:
  struct Ref {
    std::string num, pos, title, in;
    std::string xref_bib, xref_id;
    std::vector<std::string> authors;
    std::vector<std::string> comments;
  };
  struct CrossRef {
    std::string dbid, primaryid, secid;
  };
  struct Feature {
    std::string name, from, to, desc;
  };
  struct Record {
    std::string pac, id, clazz, type, slen;
    std::string protein_name, protein_from;
    std::vector<std::string> taxo;
    std::vector<Ref> refs;
    std::vector<CrossRef> xrefs;
    std::vector<std::string> keywords;
    std::vector<Feature> features;
    std::string aacid, mweight, checksum, seq;
  };

  /// True if `r` already has a feature with f's key {name, from, to}.
  static bool HasFeature(const Record& r, const Feature& f);

  Record MakeRecord();
  void Mutate();
  xml::NodePtr Render() const;

  Options options_;
  Rng rng_;
  size_t next_pac_ = 62000;
  size_t versions_emitted_ = 0;
  std::vector<Record> records_;
};

}  // namespace xarch::synth

#endif  // XARCH_SYNTH_SWISSPROT_H_
