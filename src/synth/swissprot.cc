#include "synth/swissprot.h"

#include "synth/words.h"
#include "util/hash.h"

namespace xarch::synth {

const char* SwissProtGenerator::KeySpecText() {
  return R"((/, (ROOT, {}))
(/ROOT, (Record, {pac}))
(/ROOT/Record, (id, {}))
(/ROOT/Record, (class, {}))
(/ROOT/Record, (type, {}))
(/ROOT/Record, (slen, {}))
(/ROOT/Record, (protein, {name}))
(/ROOT/Record/protein, (from, {\e}))
(/ROOT/Record/protein, (taxo, {\e}))
(/ROOT/Record, (References, {}))
(/ROOT/Record/References, (Ref, {num}))
(/ROOT/Record/References/Ref, (pos, {}))
(/ROOT/Record/References/Ref, (comment, {\e}))
(/ROOT/Record/References/Ref, (xref, {bib_name, id}))
(/ROOT/Record/References/Ref, (author, {\e}))
(/ROOT/Record/References/Ref, (title, {}))
(/ROOT/Record/References/Ref, (in, {}))
(/ROOT/Record, (CrossRefs, {}))
(/ROOT/Record/CrossRefs, (ref, {dbid, primaryid}))
(/ROOT/Record/CrossRefs/ref, (secid, {}))
(/ROOT/Record, (keywords, {}))
(/ROOT/Record/keywords, (word, {\e}))
(/ROOT/Record, (feature, {name, from, to}))
(/ROOT/Record/feature, (desc, {}))
(/ROOT/Record, (sequence, {}))
(/ROOT/Record/sequence, (aacid, {}))
(/ROOT/Record/sequence, (mweight, {}))
(/ROOT/Record/sequence, (crc, {}))
(/ROOT/Record/sequence/crc, (checksum, {}))
(/ROOT/Record/sequence, (seq, {}))
)";
}

SwissProtGenerator::SwissProtGenerator(Options options)
    : options_(options), rng_(options.seed) {
  for (size_t i = 0; i < options_.initial_records; ++i) {
    records_.push_back(MakeRecord());
  }
}

bool SwissProtGenerator::HasFeature(const Record& r, const Feature& f) {
  for (const auto& existing : r.features) {
    if (existing.name == f.name && existing.from == f.from &&
        existing.to == f.to) {
      return true;
    }
  }
  return false;
}

SwissProtGenerator::Record SwissProtGenerator::MakeRecord() {
  Record r;
  r.pac = "Q" + std::to_string(next_pac_++);
  r.id = rng_.Word(3, 5) + "_" + (rng_.Chance(0.5) ? "RAT" : "HUMAN");
  for (auto& c : r.id) c = static_cast<char>(::toupper(c));
  r.clazz = "STANDARD";
  r.type = "PRT";
  size_t seq_len = rng_.Uniform(120, 900);
  r.slen = std::to_string(seq_len);
  r.protein_name = Sentence(rng_, 2, 6);
  r.protein_from = rng_.Chance(0.5) ? "Rattus norvegicus (Rat)."
                                    : "Homo sapiens (Human).";
  r.taxo = {"Eukaryota", rng_.Chance(0.5) ? "Metazoa" : "Chordata"};
  size_t nrefs = rng_.Uniform(1, 4);
  for (size_t i = 0; i < nrefs; ++i) {
    Ref ref;
    ref.num = std::to_string(i + 1);
    ref.pos = "SEQUENCE FROM N.A.";
    ref.title = Sentence(rng_, 4, 10);
    ref.in = "Nucleic Acids Res. " + std::to_string(rng_.Uniform(10, 30)) +
             ":" + std::to_string(rng_.Uniform(100, 2000)) + "(" +
             std::to_string(rng_.Uniform(1985, 2002)) + ")";
    size_t nauth = rng_.Uniform(1, 4);
    for (size_t a = 0; a < nauth; ++a) {
      ref.authors.push_back(Name(rng_) + " " +
                            std::string(1, static_cast<char>('A' + a)) + ".");
    }
    if (rng_.Chance(0.5)) ref.comments.push_back("STRAIN=WISTAR");
    if (rng_.Chance(0.3)) ref.comments.push_back("TISSUE=TESTIS");
    ref.xref_bib = "MEDLINE";
    ref.xref_id = std::to_string(rng_.Uniform(90000000, 99999999));
    r.refs.push_back(std::move(ref));
  }
  size_t nxref = rng_.Uniform(1, 5);
  for (size_t i = 0; i < nxref; ++i) {
    CrossRef x;
    x.dbid = rng_.Chance(0.5) ? "EMBL" : (rng_.Chance(0.5) ? "PIR" : "PDB");
    x.primaryid = "X" + std::to_string(rng_.Uniform(10000, 99999)) +
                  std::to_string(i);
    x.secid = "CAA" + std::to_string(rng_.Uniform(10000, 99999)) + ".1";
    r.xrefs.push_back(std::move(x));
  }
  size_t nkw = rng_.Uniform(1, 4);
  for (size_t i = 0; i < nkw; ++i) {
    std::string w = Sentence(rng_, 1, 2) + "-" + std::to_string(i);
    r.keywords.push_back(std::move(w));
  }
  size_t nfeat = rng_.Uniform(0, 5);
  for (size_t i = 0; i < nfeat; ++i) {
    Feature f;
    f.name = rng_.Chance(0.5) ? "DOMAIN" : "CHAIN";
    size_t from = rng_.Uniform(1, seq_len - 2);
    f.from = std::to_string(from);
    f.to = std::to_string(rng_.Uniform(from + 1, seq_len));
    f.desc = Sentence(rng_, 2, 5);
    if (!HasFeature(r, f)) r.features.push_back(std::move(f));
  }
  r.aacid = r.slen;
  r.mweight = std::to_string(seq_len * 110 + rng_.Uniform(0, 109));
  r.seq = ResidueSequence(rng_, seq_len);
  r.checksum = Md5(r.seq).ToHex().substr(0, 16);
  for (auto& c : r.checksum) c = static_cast<char>(::toupper(c));
  return r;
}

void SwissProtGenerator::Mutate() {
  size_t n = records_.size();
  size_t deletes = static_cast<size_t>(n * options_.delete_ratio + 0.5);
  size_t inserts = static_cast<size_t>(n * options_.insert_ratio + 0.5);
  size_t modifies = static_cast<size_t>(n * options_.modify_ratio + 0.5);
  for (size_t i = 0; i < deletes && !records_.empty(); ++i) {
    records_.erase(records_.begin() + rng_.Uniform(0, records_.size() - 1));
  }
  for (size_t i = 0; i < inserts; ++i) records_.push_back(MakeRecord());
  for (size_t i = 0; i < modifies && !records_.empty(); ++i) {
    Record& r = records_[rng_.Uniform(0, records_.size() - 1)];
    switch (rng_.Uniform(0, 2)) {
      case 0:
        r.protein_name = Sentence(rng_, 2, 6);
        break;
      case 1:
        if (!r.keywords.empty()) {
          r.keywords.push_back(Sentence(rng_, 1, 2) + "-" +
                               std::to_string(r.keywords.size()));
        }
        break;
      default: {
        Feature f;
        f.name = "VARIANT";
        f.from = std::to_string(rng_.Uniform(1, 100));
        f.to = std::to_string(rng_.Uniform(101, 200));
        f.desc = Sentence(rng_, 2, 5);
        // feature is keyed by {name, from, to}: never emit a duplicate.
        if (!HasFeature(r, f)) r.features.push_back(std::move(f));
        break;
      }
    }
  }
}

xml::NodePtr SwissProtGenerator::Render() const {
  xml::NodePtr root = xml::Node::Element("ROOT");
  for (const auto& r : records_) {
    xml::Node* rec = root->AddElement("Record");
    rec->AddElementWithText("id", r.id);
    rec->AddElementWithText("class", r.clazz);
    rec->AddElementWithText("type", r.type);
    rec->AddElementWithText("slen", r.slen);
    rec->AddElementWithText("pac", r.pac);
    xml::Node* protein = rec->AddElement("protein");
    protein->AddElementWithText("name", r.protein_name);
    protein->AddElementWithText("from", r.protein_from);
    for (const auto& t : r.taxo) protein->AddElementWithText("taxo", t);
    xml::Node* refs = rec->AddElement("References");
    for (const auto& ref : r.refs) {
      xml::Node* e = refs->AddElement("Ref");
      e->AddElementWithText("num", ref.num);
      e->AddElementWithText("pos", ref.pos);
      for (const auto& c : ref.comments) e->AddElementWithText("comment", c);
      xml::Node* x = e->AddElement("xref");
      x->AddElementWithText("bib_name", ref.xref_bib);
      x->AddElementWithText("id", ref.xref_id);
      for (const auto& a : ref.authors) e->AddElementWithText("author", a);
      e->AddElementWithText("title", ref.title);
      e->AddElementWithText("in", ref.in);
    }
    xml::Node* xrefs = rec->AddElement("CrossRefs");
    for (const auto& x : r.xrefs) {
      xml::Node* e = xrefs->AddElement("ref");
      e->AddElementWithText("dbid", x.dbid);
      e->AddElementWithText("primaryid", x.primaryid);
      e->AddElementWithText("secid", x.secid);
    }
    xml::Node* kw = rec->AddElement("keywords");
    for (const auto& w : r.keywords) kw->AddElementWithText("word", w);
    for (const auto& f : r.features) {
      xml::Node* e = rec->AddElement("feature");
      e->AddElementWithText("name", f.name);
      e->AddElementWithText("from", f.from);
      e->AddElementWithText("to", f.to);
      e->AddElementWithText("desc", f.desc);
    }
    xml::Node* seq = rec->AddElement("sequence");
    seq->AddElementWithText("aacid", r.aacid);
    seq->AddElementWithText("mweight", r.mweight);
    xml::Node* crc = seq->AddElement("crc");
    crc->AddElementWithText("checksum", r.checksum);
    seq->AddElementWithText("seq", r.seq);
  }
  return root;
}

xml::NodePtr SwissProtGenerator::NextVersion() {
  if (versions_emitted_ > 0) Mutate();
  ++versions_emitted_;
  return Render();
}

}  // namespace xarch::synth
