#ifndef XARCH_DIFF_MYERS_H_
#define XARCH_DIFF_MYERS_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace xarch::diff {

/// One aligned region of a diff: `a_len` items of A starting at `a_pos`
/// matched against `b_len` items of B starting at `b_pos`.
/// Equal regions have a_len == b_len (> 0); a change has a_len items of A
/// replaced by b_len items of B (either may be 0 for pure delete/insert).
struct Hunk {
  size_t a_pos, a_len;
  size_t b_pos, b_len;
  bool equal;
};

/// \brief Myers' O(ND) greedy diff (Myers 1986) over abstract sequences.
///
/// `eq(i, j)` answers whether A[i] == B[j]. Returns hunks covering both
/// sequences in order, alternating equal/changed regions (no two adjacent
/// hunks are both equal or both changed). This is the minimal edit script:
/// the number of non-equal items is the edit distance D.
std::vector<Hunk> MyersDiff(size_t a_size, size_t b_size,
                            const std::function<bool(size_t, size_t)>& eq);

/// Convenience overload for vectors of comparable items.
template <typename T>
std::vector<Hunk> MyersDiff(const std::vector<T>& a, const std::vector<T>& b) {
  return MyersDiff(a.size(), b.size(),
                   [&](size_t i, size_t j) { return a[i] == b[j]; });
}

}  // namespace xarch::diff

#endif  // XARCH_DIFF_MYERS_H_
