#include "diff/sccs.h"

#include "diff/myers.h"

namespace xarch::diff {

void SccsWeave::AddVersion(const std::vector<std::string>& lines) {
  Version v = ++count_;

  // Indices of items live in the previous version.
  std::vector<size_t> prev;
  if (v > 1) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].stamp.Contains(v - 1)) prev.push_back(i);
    }
  }

  // Diff the previous version's lines against the new lines. We match
  // against the weave text of the previous version; dead weave items are
  // candidates for revival below.
  auto hunks = MyersDiff(prev.size(), lines.size(), [&](size_t i, size_t j) {
    return items_[prev[i]].text == lines[j];
  });

  std::vector<bool> matched_a(prev.size(), false);
  // Lines of B inserted after previous-version position p (p ranges over
  // -1..prev.size()-1; slot 0 of the vector is "at the very start").
  std::vector<std::vector<size_t>> inserts_after(prev.size() + 1);
  for (const auto& h : hunks) {
    if (h.equal) {
      for (size_t i = 0; i < h.a_len; ++i) matched_a[h.a_pos + i] = true;
    } else {
      size_t anchor = h.a_pos + h.a_len;  // insert after prev position anchor-1
      for (size_t j = 0; j < h.b_len; ++j) {
        inserts_after[anchor].push_back(h.b_pos + j);
      }
    }
  }

  std::vector<Item> result;
  result.reserve(items_.size() + lines.size());
  auto emit_inserts = [&](size_t slot) {
    for (size_t b : inserts_after[slot]) {
      // Revive a dead item with identical text if one exists at this point:
      // look ahead in the original weave for the next dead item equal to
      // this line before any live item. (Cheap local scan; keeps identical
      // flip-flopping content stored once.)
      result.push_back(Item{lines[b], VersionSet::Single(v)});
    }
  };
  emit_inserts(0);
  size_t p = 0;
  for (size_t wi = 0; wi < items_.size(); ++wi) {
    Item item = items_[wi];
    bool active = p < prev.size() && prev[p] == wi;
    if (active && matched_a[p]) item.stamp.Add(v);
    result.push_back(std::move(item));
    if (active) {
      ++p;
      emit_inserts(p);
    }
  }
  items_ = std::move(result);

  // Revival pass: an inserted item that value-equals an adjacent dead item
  // (inserted/deleted flip-flop) is folded into it.
  std::vector<Item> folded;
  folded.reserve(items_.size());
  for (auto& item : items_) {
    if (!folded.empty() && folded.back().text == item.text) {
      VersionSet overlap = folded.back().stamp.IntersectWith(item.stamp);
      if (overlap.empty()) {
        folded.back().stamp.UnionWith(item.stamp);
        continue;
      }
    }
    folded.push_back(std::move(item));
  }
  items_ = std::move(folded);
}

std::vector<std::string> SccsWeave::Retrieve(Version v) const {
  std::vector<std::string> out;
  for (const auto& item : items_) {
    if (item.stamp.Contains(v)) out.push_back(item.text);
  }
  return out;
}

size_t SccsWeave::ByteSize() const {
  size_t total = 0;
  const VersionSet* run_stamp = nullptr;
  for (const auto& item : items_) {
    total += item.text.size() + 1;
    if (run_stamp == nullptr || !(*run_stamp == item.stamp)) {
      // "^AI <stamp>\n" style marker for each run of identically-stamped lines.
      total += item.stamp.ToString().size() + 4;
      run_stamp = &item.stamp;
    }
  }
  return total;
}

}  // namespace xarch::diff
