#include "diff/repository.h"

#include "util/strings.h"

namespace xarch::diff {

namespace {

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

void IncrementalDiffRepo::AddVersion(const std::string& text) {
  std::vector<std::string> lines = SplitLines(text);
  if (count_ == 0) {
    first_version_ = text;
  } else {
    deltas_.push_back(LineDiff(latest_lines_, lines).FormatEd());
  }
  latest_lines_ = std::move(lines);
  ++count_;
}

StatusOr<std::string> IncrementalDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  std::vector<std::string> lines = SplitLines(first_version_);
  for (Version i = 2; i <= v; ++i) {
    XARCH_ASSIGN_OR_RETURN(EditScript script,
                           EditScript::ParseEd(deltas_[i - 2]));
    XARCH_ASSIGN_OR_RETURN(lines, script.Apply(lines));
  }
  return JoinLines(lines);
}

size_t IncrementalDiffRepo::ByteSize() const {
  size_t total = first_version_.size();
  for (const auto& d : deltas_) total += d.size();
  return total;
}

std::string IncrementalDiffRepo::ConcatenatedBytes() const {
  std::string out = first_version_;
  for (const auto& d : deltas_) out += d;
  return out;
}

void CumulativeDiffRepo::AddVersion(const std::string& text) {
  std::vector<std::string> lines = SplitLines(text);
  if (count_ == 0) {
    first_version_ = text;
    first_lines_ = std::move(lines);
  } else {
    deltas_.push_back(LineDiff(first_lines_, lines).FormatEd());
  }
  ++count_;
}

StatusOr<std::string> CumulativeDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  if (v == 1) return first_version_;
  XARCH_ASSIGN_OR_RETURN(EditScript script, EditScript::ParseEd(deltas_[v - 2]));
  XARCH_ASSIGN_OR_RETURN(auto lines, script.Apply(first_lines_));
  return JoinLines(lines);
}

size_t CumulativeDiffRepo::ByteSize() const {
  size_t total = first_version_.size();
  for (const auto& d : deltas_) total += d.size();
  return total;
}

std::string CumulativeDiffRepo::ConcatenatedBytes() const {
  std::string out = first_version_;
  for (const auto& d : deltas_) out += d;
  return out;
}

StatusOr<std::string> FullCopyRepo::Retrieve(Version v) const {
  if (v == 0 || v > versions_.size()) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  return versions_[v - 1];
}

size_t FullCopyRepo::ByteSize() const {
  size_t total = 0;
  for (const auto& v : versions_) total += v.size();
  return total;
}

std::string FullCopyRepo::ConcatenatedBytes() const {
  std::string out;
  for (const auto& v : versions_) out += v;
  return out;
}

}  // namespace xarch::diff
