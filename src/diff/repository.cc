#include "diff/repository.h"

#include <algorithm>

#include "persist/wire.h"
#include "util/strings.h"

namespace xarch::diff {

namespace {

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Shared (count, V1, deltas) wire layout of the two diff repositories.
void EncodeDiffState(size_t count, const std::string& first,
                     const std::vector<std::string>& deltas,
                     std::string* out) {
  persist::PutU64(count, out);
  persist::PutBytes(first, out);
  persist::PutU32(static_cast<uint32_t>(deltas.size()), out);
  for (const auto& d : deltas) persist::PutBytes(d, out);
}

Status DecodeDiffState(std::string_view data, size_t* count,
                       std::string* first, std::vector<std::string>* deltas) {
  persist::Cursor cursor(data);
  uint64_t n = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&n));
  std::string_view first_view;
  XARCH_RETURN_NOT_OK(cursor.ReadBytes(&first_view));
  uint32_t ndeltas = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&ndeltas));
  // Both diff repositories store V1 whole and one delta per later version.
  if (n == 0 ? ndeltas != 0 : ndeltas != n - 1) {
    return Status::DataLoss("diff repository snapshot declares " +
                            std::to_string(n) + " versions but " +
                            std::to_string(ndeltas) + " deltas");
  }
  // Clamped reserve: ndeltas is untrusted until the reads below verify
  // it, and an unclamped reserve would let a crafted count allocate GBs.
  deltas->reserve(std::min<uint32_t>(ndeltas, 4096));
  for (uint32_t i = 0; i < ndeltas; ++i) {
    std::string_view d;
    XARCH_RETURN_NOT_OK(cursor.ReadBytes(&d));
    deltas->emplace_back(d);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  *count = static_cast<size_t>(n);
  first->assign(first_view);
  return Status::OK();
}

}  // namespace

void IncrementalDiffRepo::AddVersion(const std::string& text) {
  std::vector<std::string> lines = SplitLines(text);
  if (count_ == 0) {
    first_version_ = text;
  } else {
    deltas_.push_back(LineDiff(latest_lines_, lines).FormatEd());
  }
  latest_lines_ = std::move(lines);
  ++count_;
}

StatusOr<std::string> IncrementalDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  std::vector<std::string> lines = SplitLines(first_version_);
  for (Version i = 2; i <= v; ++i) {
    XARCH_ASSIGN_OR_RETURN(EditScript script,
                           EditScript::ParseEd(deltas_[i - 2]));
    XARCH_ASSIGN_OR_RETURN(lines, script.Apply(lines));
  }
  return JoinLines(lines);
}

size_t IncrementalDiffRepo::ByteSize() const {
  size_t total = first_version_.size();
  for (const auto& d : deltas_) total += d.size();
  return total;
}

std::string IncrementalDiffRepo::ConcatenatedBytes() const {
  std::string out = first_version_;
  for (const auto& d : deltas_) out += d;
  return out;
}

void CumulativeDiffRepo::AddVersion(const std::string& text) {
  std::vector<std::string> lines = SplitLines(text);
  if (count_ == 0) {
    first_version_ = text;
    first_lines_ = std::move(lines);
  } else {
    deltas_.push_back(LineDiff(first_lines_, lines).FormatEd());
  }
  ++count_;
}

StatusOr<std::string> CumulativeDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  if (v == 1) return first_version_;
  XARCH_ASSIGN_OR_RETURN(EditScript script, EditScript::ParseEd(deltas_[v - 2]));
  XARCH_ASSIGN_OR_RETURN(auto lines, script.Apply(first_lines_));
  return JoinLines(lines);
}

size_t CumulativeDiffRepo::ByteSize() const {
  size_t total = first_version_.size();
  for (const auto& d : deltas_) total += d.size();
  return total;
}

std::string CumulativeDiffRepo::ConcatenatedBytes() const {
  std::string out = first_version_;
  for (const auto& d : deltas_) out += d;
  return out;
}

StatusOr<std::string> FullCopyRepo::Retrieve(Version v) const {
  if (v == 0 || v > versions_.size()) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  return versions_[v - 1];
}

size_t FullCopyRepo::ByteSize() const {
  size_t total = 0;
  for (const auto& v : versions_) total += v.size();
  return total;
}

std::string FullCopyRepo::ConcatenatedBytes() const {
  std::string out;
  for (const auto& v : versions_) out += v;
  return out;
}

// -------------------------------------------------- persistence snapshots

void IncrementalDiffRepo::EncodeState(std::string* out) const {
  EncodeDiffState(count_, first_version_, deltas_, out);
}

StatusOr<IncrementalDiffRepo> IncrementalDiffRepo::DecodeState(
    std::string_view data) {
  IncrementalDiffRepo repo;
  XARCH_RETURN_NOT_OK(DecodeDiffState(data, &repo.count_,
                                      &repo.first_version_, &repo.deltas_));
  // Rebuild the lines cache the next AddVersion diffs against by replaying
  // the delta chain; an undecodable or inapplicable delta means the
  // snapshot bytes are bad.
  if (repo.count_ > 0) {
    std::vector<std::string> lines = SplitLines(repo.first_version_);
    for (const std::string& d : repo.deltas_) {
      auto script = EditScript::ParseEd(d);
      if (!script.ok()) {
        return Status::DataLoss("diff repository snapshot holds an "
                                "undecodable delta: " +
                                script.status().message());
      }
      auto applied = script->Apply(lines);
      if (!applied.ok()) {
        return Status::DataLoss("diff repository snapshot holds an "
                                "inapplicable delta: " +
                                applied.status().message());
      }
      lines = std::move(applied).value();
    }
    repo.latest_lines_ = std::move(lines);
  }
  return repo;
}

void CumulativeDiffRepo::EncodeState(std::string* out) const {
  EncodeDiffState(count_, first_version_, deltas_, out);
}

StatusOr<CumulativeDiffRepo> CumulativeDiffRepo::DecodeState(
    std::string_view data) {
  CumulativeDiffRepo repo;
  XARCH_RETURN_NOT_OK(DecodeDiffState(data, &repo.count_,
                                      &repo.first_version_, &repo.deltas_));
  if (repo.count_ > 0) repo.first_lines_ = SplitLines(repo.first_version_);
  // Cumulative deltas all apply to V1 independently; validate each.
  for (const std::string& d : repo.deltas_) {
    auto script = EditScript::ParseEd(d);
    if (!script.ok() || !script->Apply(repo.first_lines_).ok()) {
      return Status::DataLoss(
          "cumulative diff repository snapshot holds a bad delta");
    }
  }
  return repo;
}

void FullCopyRepo::EncodeState(std::string* out) const {
  persist::PutU32(static_cast<uint32_t>(versions_.size()), out);
  for (const auto& v : versions_) persist::PutBytes(v, out);
}

StatusOr<FullCopyRepo> FullCopyRepo::DecodeState(std::string_view data) {
  persist::Cursor cursor(data);
  uint32_t count = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&count));
  FullCopyRepo repo;
  repo.versions_.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view v;
    XARCH_RETURN_NOT_OK(cursor.ReadBytes(&v));
    repo.versions_.emplace_back(v);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return repo;
}

}  // namespace xarch::diff
