#ifndef XARCH_DIFF_EDIT_SCRIPT_H_
#define XARCH_DIFF_EDIT_SCRIPT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch::diff {

/// One command of an ed-style edit script (the `unix diff` output format the
/// paper's repositories store, Sec. 5).
struct EditOp {
  enum class Type { kAppend, kDelete, kChange };
  Type type;
  /// 1-based inclusive line range in A (for kAppend: the line after which
  /// new lines go, possibly 0).
  size_t a_lo = 0, a_hi = 0;
  /// 1-based inclusive line range in B (for kDelete: the line after which
  /// B continues, possibly 0).
  size_t b_lo = 0, b_hi = 0;
  /// Lines removed from A (kDelete, kChange) — the "< " lines.
  std::vector<std::string> old_lines;
  /// Lines added from B (kAppend, kChange) — the "> " lines.
  std::vector<std::string> new_lines;
};

/// \brief A minimal line edit script in unix `diff` format ("2,3c2,3" with
/// "< "/"> " bodies). Scripts can be formatted, parsed back, applied
/// forward (A -> B), and inverted (applied backward), which is what the
/// incremental/cumulative diff repositories of Sec. 5 need.
class EditScript {
 public:
  std::vector<EditOp> ops;

  /// Renders the classic two-sided diff output ("< old" / "> new").
  std::string Format() const;

  /// Renders the ed-style script the paper's repositories store (Fig. 1
  /// shows this form): commands plus *new* lines only — deletions cost
  /// just their line numbers. This is what `diff -e` emits and what makes
  /// "each element appears exactly once in some diff" (Sec. 5) true.
  std::string FormatEd() const;

  /// Byte size of the stored (ed) form — the storage cost of this delta.
  size_t ByteSize() const { return FormatEd().size(); }

  /// Parses a script previously produced by Format().
  static StatusOr<EditScript> Parse(std::string_view text);

  /// Parses a script previously produced by FormatEd(). The result has no
  /// old_lines; Apply() then works positionally without verification.
  static StatusOr<EditScript> ParseEd(std::string_view text);

  /// Applies the script to `a`, producing B. Consumes A lines by the
  /// command ranges; where old_lines are present (classic form) they are
  /// verified against `a`.
  StatusOr<std::vector<std::string>> Apply(
      const std::vector<std::string>& a) const;

  /// Applies the script backward to `b`, producing A.
  StatusOr<std::vector<std::string>> ApplyInverse(
      const std::vector<std::string>& b) const;

  bool empty() const { return ops.empty(); }
};

/// Computes the minimal line diff A -> B (Myers, equivalent to `diff -d`).
EditScript LineDiff(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Convenience: diff of two texts split on newlines.
EditScript LineDiffText(std::string_view a, std::string_view b);

}  // namespace xarch::diff

#endif  // XARCH_DIFF_EDIT_SCRIPT_H_
