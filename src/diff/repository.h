#ifndef XARCH_DIFF_REPOSITORY_H_
#define XARCH_DIFF_REPOSITORY_H_

#include <string>
#include <vector>

#include "diff/edit_script.h"
#include "util/status.h"
#include "util/version_set.h"

namespace xarch::diff {

/// \brief The "sequence-of-delta" baselines of Sec. 5.
///
/// IncrementalDiffRepo stores V1 plus the minimal forward line diff between
/// every pair of consecutive versions ("V1 + incremental diffs"). Retrieval
/// of version i applies i-1 deltas. (Backward-delta repositories have the
/// same size, as the paper notes, so only the forward variant is built.)
class IncrementalDiffRepo {
 public:
  /// Appends a new version (its serialized text).
  void AddVersion(const std::string& text);

  /// Number of archived versions.
  size_t version_count() const { return count_; }

  /// Reconstructs version v (1-based) by applying v-1 edit scripts.
  StatusOr<std::string> Retrieve(Version v) const;

  /// Storage cost: |V1| + sum of formatted delta sizes.
  size_t ByteSize() const;

  /// Number of delta applications Retrieve(v) performs.
  size_t ApplicationsFor(Version v) const { return v == 0 ? 0 : v - 1; }

  /// Concatenated repository bytes (V1 then each delta) — what gzip is run
  /// over in the compression experiments.
  std::string ConcatenatedBytes() const;

  const std::vector<std::string>& deltas() const { return deltas_; }

  /// Appends the full repository state (count, V1, deltas) in the
  /// persistence wire format. DecodeState rebuilds a byte-identical
  /// repository, including the lines cache, and rejects inconsistent or
  /// truncated input with kDataLoss.
  void EncodeState(std::string* out) const;
  static StatusOr<IncrementalDiffRepo> DecodeState(std::string_view data);

 private:
  size_t count_ = 0;
  std::string first_version_;
  std::vector<std::string> deltas_;  // ed-format edit scripts (FormatEd)
  std::vector<std::string> latest_lines_;  // cache for the next diff
};

/// \brief "V1 + cumulative diffs": V1 plus, for every version i, the diff
/// from V1 straight to Vi. Any version needs one application, but storage
/// grows quadratically (Sec. 5.2, Fig. 11).
class CumulativeDiffRepo {
 public:
  void AddVersion(const std::string& text);
  size_t version_count() const { return count_; }

  /// Reconstructs version v with at most one delta application.
  StatusOr<std::string> Retrieve(Version v) const;

  size_t ByteSize() const;
  std::string ConcatenatedBytes() const;

  /// Persistence wire-format state snapshot; see IncrementalDiffRepo.
  void EncodeState(std::string* out) const;
  static StatusOr<CumulativeDiffRepo> DecodeState(std::string_view data);

 private:
  size_t count_ = 0;
  std::string first_version_;
  std::vector<std::string> first_lines_;
  std::vector<std::string> deltas_;  // delta V1 -> Vi for i >= 2
};

/// \brief Keeps every version verbatim (the Swiss-Prot archiving practice
/// the introduction describes, and the "xmill(V1+...+Vi)" baseline).
class FullCopyRepo {
 public:
  void AddVersion(const std::string& text) { versions_.push_back(text); }
  size_t version_count() const { return versions_.size(); }
  StatusOr<std::string> Retrieve(Version v) const;
  size_t ByteSize() const;
  /// All versions side by side (what XMill compresses in Fig. 12).
  std::string ConcatenatedBytes() const;

  /// Persistence wire-format state snapshot; see IncrementalDiffRepo.
  void EncodeState(std::string* out) const;
  static StatusOr<FullCopyRepo> DecodeState(std::string_view data);

 private:
  std::vector<std::string> versions_;
};

}  // namespace xarch::diff

#endif  // XARCH_DIFF_REPOSITORY_H_
