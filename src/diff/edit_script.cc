#include "diff/edit_script.h"

#include <unordered_map>

#include "diff/myers.h"
#include "util/strings.h"

namespace xarch::diff {

namespace {

std::string FormatRange(size_t lo, size_t hi) {
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "," + std::to_string(hi);
}

}  // namespace

std::string EditScript::Format() const {
  std::string out;
  for (const auto& op : ops) {
    switch (op.type) {
      case EditOp::Type::kAppend:
        out += std::to_string(op.a_lo) + "a" + FormatRange(op.b_lo, op.b_hi);
        out += '\n';
        for (const auto& l : op.new_lines) out += "> " + l + "\n";
        break;
      case EditOp::Type::kDelete:
        out += FormatRange(op.a_lo, op.a_hi) + "d" + std::to_string(op.b_lo);
        out += '\n';
        for (const auto& l : op.old_lines) out += "< " + l + "\n";
        break;
      case EditOp::Type::kChange:
        out += FormatRange(op.a_lo, op.a_hi) + "c" + FormatRange(op.b_lo, op.b_hi);
        out += '\n';
        for (const auto& l : op.old_lines) out += "< " + l + "\n";
        out += "---\n";
        for (const auto& l : op.new_lines) out += "> " + l + "\n";
        break;
    }
  }
  return out;
}

std::string EditScript::FormatEd() const {
  std::string out;
  for (const auto& op : ops) {
    switch (op.type) {
      case EditOp::Type::kAppend:
        out += std::to_string(op.a_lo) + "a\n";
        for (const auto& l : op.new_lines) out += l + "\n";
        out += ".\n";
        break;
      case EditOp::Type::kDelete:
        out += FormatRange(op.a_lo, op.a_hi) + "d\n";
        break;
      case EditOp::Type::kChange:
        out += FormatRange(op.a_lo, op.a_hi) + "c\n";
        for (const auto& l : op.new_lines) out += l + "\n";
        out += ".\n";
        break;
    }
  }
  return out;
}

StatusOr<EditScript> EditScript::ParseEd(std::string_view text) {
  EditScript script;
  auto lines = SplitLines(text);
  size_t i = 0;
  while (i < lines.size()) {
    const std::string& header = lines[i];
    if (header.empty()) return Status::ParseError("empty ed command");
    char cmd = header.back();
    if (cmd != 'a' && cmd != 'd' && cmd != 'c') {
      return Status::ParseError("bad ed command '" + header + "'");
    }
    EditOp op;
    size_t comma = header.find(',');
    auto parse_num = [](std::string_view s) -> StatusOr<size_t> {
      if (s.empty()) return Status::ParseError("empty line number");
      size_t v = 0;
      for (char c : s) {
        if (c < '0' || c > '9') return Status::ParseError("bad line number");
        v = v * 10 + (c - '0');
      }
      return v;
    };
    std::string_view body = std::string_view(header).substr(0, header.size() - 1);
    if (comma == std::string::npos) {
      XARCH_ASSIGN_OR_RETURN(op.a_lo, parse_num(body));
      op.a_hi = op.a_lo;
    } else {
      XARCH_ASSIGN_OR_RETURN(op.a_lo, parse_num(body.substr(0, comma)));
      XARCH_ASSIGN_OR_RETURN(op.a_hi, parse_num(body.substr(comma + 1)));
    }
    ++i;
    auto read_dot_body = [&](std::vector<std::string>* out) -> Status {
      while (i < lines.size() && lines[i] != ".") {
        out->push_back(lines[i]);
        ++i;
      }
      if (i >= lines.size()) {
        return Status::ParseError("unterminated ed text block");
      }
      ++i;  // skip "."
      return Status::OK();
    };
    switch (cmd) {
      case 'a':
        op.type = EditOp::Type::kAppend;
        XARCH_RETURN_NOT_OK(read_dot_body(&op.new_lines));
        break;
      case 'd':
        op.type = EditOp::Type::kDelete;
        break;
      case 'c':
        op.type = EditOp::Type::kChange;
        XARCH_RETURN_NOT_OK(read_dot_body(&op.new_lines));
        break;
    }
    script.ops.push_back(std::move(op));
  }
  return script;
}

namespace {

StatusOr<std::pair<size_t, size_t>> ParseRange(std::string_view text) {
  size_t comma = text.find(',');
  auto parse_num = [](std::string_view s) -> StatusOr<size_t> {
    if (s.empty()) return Status::ParseError("empty line number");
    size_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') {
        return Status::ParseError("bad line number '" + std::string(s) + "'");
      }
      v = v * 10 + (c - '0');
    }
    return v;
  };
  if (comma == std::string_view::npos) {
    XARCH_ASSIGN_OR_RETURN(size_t v, parse_num(text));
    return std::pair<size_t, size_t>{v, v};
  }
  XARCH_ASSIGN_OR_RETURN(size_t lo, parse_num(text.substr(0, comma)));
  XARCH_ASSIGN_OR_RETURN(size_t hi, parse_num(text.substr(comma + 1)));
  return std::pair<size_t, size_t>{lo, hi};
}

}  // namespace

StatusOr<EditScript> EditScript::Parse(std::string_view text) {
  EditScript script;
  auto lines = SplitLines(text);
  size_t i = 0;
  while (i < lines.size()) {
    const std::string& header = lines[i];
    size_t cmd_pos = header.find_first_of("adc");
    if (cmd_pos == std::string::npos) {
      return Status::ParseError("bad edit script header '" + header + "'");
    }
    char cmd = header[cmd_pos];
    EditOp op;
    XARCH_ASSIGN_OR_RETURN(auto a_range, ParseRange(header.substr(0, cmd_pos)));
    XARCH_ASSIGN_OR_RETURN(auto b_range, ParseRange(header.substr(cmd_pos + 1)));
    op.a_lo = a_range.first;
    op.a_hi = a_range.second;
    op.b_lo = b_range.first;
    op.b_hi = b_range.second;
    ++i;
    auto read_body = [&](std::string_view prefix,
                         std::vector<std::string>* out) {
      while (i < lines.size() && StartsWith(lines[i], prefix)) {
        out->push_back(lines[i].substr(prefix.size()));
        ++i;
      }
    };
    switch (cmd) {
      case 'a':
        op.type = EditOp::Type::kAppend;
        read_body("> ", &op.new_lines);
        break;
      case 'd':
        op.type = EditOp::Type::kDelete;
        read_body("< ", &op.old_lines);
        break;
      case 'c':
        op.type = EditOp::Type::kChange;
        read_body("< ", &op.old_lines);
        if (i >= lines.size() || lines[i] != "---") {
          return Status::ParseError("missing --- separator in change command");
        }
        ++i;
        read_body("> ", &op.new_lines);
        break;
      default:
        return Status::ParseError("unknown edit command");
    }
    script.ops.push_back(std::move(op));
  }
  return script;
}

StatusOr<std::vector<std::string>> EditScript::Apply(
    const std::vector<std::string>& a) const {
  std::vector<std::string> b;
  size_t next_a = 0;  // 0-based index of the next unconsumed line of A
  for (const auto& op : ops) {
    // Copy the unchanged region before this op.
    size_t copy_until =
        (op.type == EditOp::Type::kAppend) ? op.a_lo : op.a_lo - 1;
    if (copy_until < next_a || copy_until > a.size()) {
      return Status::Corruption("edit script does not fit input (at line " +
                                std::to_string(op.a_lo) + ")");
    }
    for (; next_a < copy_until; ++next_a) b.push_back(a[next_a]);
    // Consume the command's A-range, verifying context where the classic
    // form recorded the old lines.
    size_t consume =
        (op.type == EditOp::Type::kAppend) ? 0 : op.a_hi - op.a_lo + 1;
    for (size_t k = 0; k < consume; ++k) {
      if (next_a >= a.size()) {
        return Status::Corruption("edit script overruns input at line " +
                                  std::to_string(next_a + 1));
      }
      if (k < op.old_lines.size() && a[next_a] != op.old_lines[k]) {
        return Status::Corruption("edit script context mismatch at line " +
                                  std::to_string(next_a + 1));
      }
      ++next_a;
    }
    for (const auto& new_line : op.new_lines) b.push_back(new_line);
  }
  for (; next_a < a.size(); ++next_a) b.push_back(a[next_a]);
  return b;
}

StatusOr<std::vector<std::string>> EditScript::ApplyInverse(
    const std::vector<std::string>& b) const {
  // The inverse script swaps roles: new_lines are removed, old_lines added.
  EditScript inverse;
  for (const auto& op : ops) {
    EditOp inv;
    inv.a_lo = op.b_lo;
    inv.a_hi = op.b_hi;
    inv.b_lo = op.a_lo;
    inv.b_hi = op.a_hi;
    inv.old_lines = op.new_lines;
    inv.new_lines = op.old_lines;
    switch (op.type) {
      case EditOp::Type::kAppend:
        inv.type = EditOp::Type::kDelete;
        break;
      case EditOp::Type::kDelete:
        inv.type = EditOp::Type::kAppend;
        break;
      case EditOp::Type::kChange:
        inv.type = EditOp::Type::kChange;
        break;
    }
    inverse.ops.push_back(std::move(inv));
  }
  return inverse.Apply(b);
}

EditScript LineDiff(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  // Intern lines so the Myers inner loop compares integers, not strings.
  std::unordered_map<std::string_view, int> intern;
  auto id_of = [&](const std::string& s) {
    auto [it, inserted] = intern.try_emplace(s, intern.size());
    (void)inserted;
    return it->second;
  };
  std::vector<int> a_ids, b_ids;
  a_ids.reserve(a.size());
  b_ids.reserve(b.size());
  for (const auto& l : a) a_ids.push_back(id_of(l));
  for (const auto& l : b) b_ids.push_back(id_of(l));

  auto hunks = MyersDiff(a_ids, b_ids);
  EditScript script;
  for (const auto& h : hunks) {
    if (h.equal) continue;
    EditOp op;
    if (h.a_len == 0) {
      op.type = EditOp::Type::kAppend;
      op.a_lo = op.a_hi = h.a_pos;  // append after line a_pos (1-based: pos)
      op.b_lo = h.b_pos + 1;
      op.b_hi = h.b_pos + h.b_len;
    } else if (h.b_len == 0) {
      op.type = EditOp::Type::kDelete;
      op.a_lo = h.a_pos + 1;
      op.a_hi = h.a_pos + h.a_len;
      op.b_lo = op.b_hi = h.b_pos;
    } else {
      op.type = EditOp::Type::kChange;
      op.a_lo = h.a_pos + 1;
      op.a_hi = h.a_pos + h.a_len;
      op.b_lo = h.b_pos + 1;
      op.b_hi = h.b_pos + h.b_len;
    }
    for (size_t i = 0; i < h.a_len; ++i) op.old_lines.push_back(a[h.a_pos + i]);
    for (size_t i = 0; i < h.b_len; ++i) op.new_lines.push_back(b[h.b_pos + i]);
    script.ops.push_back(std::move(op));
  }
  return script;
}

EditScript LineDiffText(std::string_view a, std::string_view b) {
  return LineDiff(SplitLines(a), SplitLines(b));
}

}  // namespace xarch::diff
