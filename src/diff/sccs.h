#ifndef XARCH_DIFF_SCCS_H_
#define XARCH_DIFF_SCCS_H_

#include <string>
#include <vector>

#include "util/version_set.h"

namespace xarch::diff {

/// \brief An SCCS-style weave (Rochkind 1975, Sec. 8): all versions of a
/// line sequence interleaved in one body, each line carrying the timestamp
/// of the versions it belongs to. A single scan retrieves any version.
///
/// This is both a related-work baseline and the mechanism behind the
/// paper's "further compaction" of content below frontier nodes (Sec. 4.2,
/// Fig. 10) — there the "lines" are the frontier node's child values.
///
/// Unlike real SCCS, a re-inserted line that value-equals a dead line in
/// the weave revives that line's timestamp instead of storing a second
/// copy, matching the archiver's stored-once behaviour (Sec. 5.3).
class SccsWeave {
 public:
  struct Item {
    std::string text;
    VersionSet stamp;
  };

  /// Merges the next version (its lines) into the weave.
  void AddVersion(const std::vector<std::string>& lines);

  /// Lines of version v, in order.
  std::vector<std::string> Retrieve(Version v) const;

  size_t version_count() const { return count_; }
  const std::vector<Item>& items() const { return items_; }

  /// Storage cost: line bytes plus one timestamp marker per run of items
  /// sharing a stamp (as the SCCS body would store them).
  size_t ByteSize() const;

 private:
  Version count_ = 0;
  std::vector<Item> items_;
};

}  // namespace xarch::diff

#endif  // XARCH_DIFF_SCCS_H_
