#include "diff/myers.h"

#include <algorithm>
#include <cassert>

namespace xarch::diff {

namespace {

using Eq = std::function<bool(size_t, size_t)>;

/// The middle snake of the divide-and-conquer Myers variant (Myers 1986,
/// Sec. 4b): the central run of diagonal moves on an optimal D-path, found
/// with two simultaneous frontier searches in O(N+M) space.
struct Snake {
  size_t x, y;  // snake start (in A/B coordinates of the subproblem)
  size_t u, v;  // snake end
  int d;        // edit distance of the subproblem
};

class Solver {
 public:
  Solver(size_t a_size, size_t b_size, const Eq& eq)
      : a_size_(a_size), b_size_(b_size), eq_(eq) {
    size_t max = a_size_ + b_size_ + 2;
    vf_.assign(2 * max + 1, 0);
    vb_.assign(2 * max + 1, 0);
  }

  std::vector<std::pair<size_t, size_t>> Run() {
    Compare(0, a_size_, 0, b_size_);
    return std::move(matches_);
  }

 private:
  Snake FindMiddleSnake(size_t a0, size_t n, size_t b0, size_t m) {
    const int N = static_cast<int>(n), M = static_cast<int>(m);
    const int delta = N - M;
    const bool odd = (delta % 2) != 0;
    const int dmax = (N + M + 1) / 2;
    const int off = dmax + 1;  // array offset for diagonal indices
    vf_[off + 1] = 0;
    vb_[off + 1] = 0;
    for (int d = 0; d <= dmax; ++d) {
      // Forward frontier.
      for (int k = -d; k <= d; k += 2) {
        int x;
        if (k == -d || (k != d && vf_[off + k - 1] < vf_[off + k + 1])) {
          x = vf_[off + k + 1];
        } else {
          x = vf_[off + k - 1] + 1;
        }
        int y = x - k;
        int x0 = x, y0 = y;
        while (x < N && y < M && eq_(a0 + x, b0 + y)) {
          ++x;
          ++y;
        }
        vf_[off + k] = x;
        if (odd) {
          int kr = delta - k;  // reverse diagonal on the same absolute diag
          if (kr >= -(d - 1) && kr <= d - 1 && x + vb_[off + kr] >= N) {
            return Snake{static_cast<size_t>(x0), static_cast<size_t>(y0),
                         static_cast<size_t>(x), static_cast<size_t>(y),
                         2 * d - 1};
          }
        }
      }
      // Reverse frontier (coordinates measured from the ends).
      for (int k = -d; k <= d; k += 2) {
        int x;
        if (k == -d || (k != d && vb_[off + k - 1] < vb_[off + k + 1])) {
          x = vb_[off + k + 1];
        } else {
          x = vb_[off + k - 1] + 1;
        }
        int y = x - k;
        int x0 = x, y0 = y;
        while (x < N && y < M && eq_(a0 + N - 1 - x, b0 + M - 1 - y)) {
          ++x;
          ++y;
        }
        vb_[off + k] = x;
        if (!odd) {
          int kf = delta - k;  // forward diagonal on the same absolute diag
          if (kf >= -d && kf <= d && x + vf_[off + kf] >= N) {
            return Snake{static_cast<size_t>(N - x), static_cast<size_t>(M - y),
                         static_cast<size_t>(N - x0),
                         static_cast<size_t>(M - y0), 2 * d};
          }
        }
      }
    }
    assert(false && "middle snake must exist");
    return Snake{0, 0, 0, 0, 0};
  }

  void Compare(size_t a0, size_t n, size_t b0, size_t m) {
    // Strip common prefix.
    while (n > 0 && m > 0 && eq_(a0, b0)) {
      matches_.push_back({a0, b0});
      ++a0;
      ++b0;
      --n;
      --m;
    }
    // Strip common suffix (recorded after the middle is solved).
    size_t suffix = 0;
    while (n > suffix && m > suffix &&
           eq_(a0 + n - 1 - suffix, b0 + m - 1 - suffix)) {
      ++suffix;
    }
    n -= suffix;
    m -= suffix;
    if (n > 0 && m > 0) {
      Snake s = FindMiddleSnake(a0, n, b0, m);
      if (s.d > 1) {
        Compare(a0, s.x, b0, s.y);
        for (size_t i = 0; i < s.u - s.x; ++i) {
          matches_.push_back({a0 + s.x + i, b0 + s.y + i});
        }
        Compare(a0 + s.u, n - s.u, b0 + s.v, m - s.v);
      } else {
        // d <= 1: a single insertion or deletion separates the sequences;
        // the greedy walk is optimal.
        size_t i = 0, j = 0;
        while (i < n && j < m) {
          if (eq_(a0 + i, b0 + j)) {
            matches_.push_back({a0 + i, b0 + j});
            ++i;
            ++j;
          } else if (n - i > m - j) {
            ++i;
          } else {
            ++j;
          }
        }
      }
    }
    for (size_t t = 0; t < suffix; ++t) {
      matches_.push_back({a0 + n + t, b0 + m + t});
    }
  }

  size_t a_size_, b_size_;
  const Eq& eq_;
  std::vector<int> vf_, vb_;
  std::vector<std::pair<size_t, size_t>> matches_;
};

}  // namespace

std::vector<Hunk> MyersDiff(size_t a_size, size_t b_size, const Eq& eq) {
  Solver solver(a_size, b_size, eq);
  auto matches = solver.Run();

  std::vector<Hunk> hunks;
  size_t ai = 0, bi = 0;
  auto emit_change = [&](size_t a_end, size_t b_end) {
    if (a_end > ai || b_end > bi) {
      hunks.push_back(Hunk{ai, a_end - ai, bi, b_end - bi, false});
      ai = a_end;
      bi = b_end;
    }
  };
  size_t mi = 0;
  while (mi < matches.size()) {
    emit_change(matches[mi].first, matches[mi].second);
    // Coalesce the maximal run of consecutive matches.
    size_t run = 0;
    while (mi + run < matches.size() &&
           matches[mi + run].first == ai + run &&
           matches[mi + run].second == bi + run) {
      ++run;
    }
    hunks.push_back(Hunk{ai, run, bi, run, true});
    ai += run;
    bi += run;
    mi += run;
  }
  emit_change(a_size, b_size);
  return hunks;
}

}  // namespace xarch::diff
