#ifndef XARCH_INDEX_ARCHIVE_INDEX_H_
#define XARCH_INDEX_ARCHIVE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "core/archive.h"
#include "index/timestamp_tree.h"
#include "util/status.h"

namespace xarch::index {

/// Counters comparing indexed against naive access (the Sec. 7 analyses).
struct ProbeStats {
  size_t tree_probes = 0;    ///< timestamp-tree nodes inspected
  size_t naive_probes = 0;   ///< children a full scan would inspect
  size_t comparisons = 0;    ///< key comparisons (history lookups)
};

/// \brief Index structures over an Archive: a timestamp tree per inner node
/// (Sec. 7.1) and sorted child-key lists for history lookups (Sec. 7.2).
///
/// The index is built with one scan of the archive ("constructed each time
/// a new version arrives, after nested merge") and must be rebuilt after
/// AddVersion. It borrows the archive; the archive must outlive it.
///
/// Publish protocol (the synchronized rebuild the Store layer uses): the
/// constructor records the archive's ingest generation, so holders can
/// assert an index is current (built_at_generation() ==
/// archive.ingest_generation()). An index must be (re)built and published
/// by the INGEST path, under the same exclusive lock that guarded the
/// merge — never lazily from a read, where concurrent readers would race
/// on the swap. After construction the index is immutable: every query
/// method is const and safe to call from any number of threads.
class ArchiveIndex {
 public:
  explicit ArchiveIndex(const core::Archive& archive);

  /// The archive ingest generation this index was built at; stale when the
  /// archive's ingest_generation() has moved past it.
  uint64_t built_at_generation() const { return built_at_generation_; }

  /// Version retrieval directed by timestamp trees: at every inner node
  /// only the relevant children are visited. Probe counts accumulate into
  /// *stats (optional).
  StatusOr<xml::NodePtr> RetrieveVersion(Version v, ProbeStats* stats) const;

  /// Temporal history via binary search over the sorted child-key lists:
  /// O(l log d) comparisons for a path of length l and max degree d.
  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path,
                               ProbeStats* stats) const;

  /// Keyed child lookup via the sorted child-key list — the History step
  /// primitive, exposed for the XAQL query evaluator. Returns nullptr when
  /// no child carries the exact label (tag + all key values).
  const core::ArchiveNode* FindChild(const core::ArchiveNode& parent,
                                     const core::KeyStep& step,
                                     ProbeStats* stats) const {
    return FindChildSorted(parent, step, stats);
  }

  /// Pruned-subtree cursor hook (the Sec. 7.1 search applied below any
  /// archive node): fills `*relevant` with the indices of `node`'s
  /// children whose timestamp contains v, via the node's timestamp tree,
  /// and returns true. Returns false when `node` is not indexed (frontier
  /// nodes), directing the caller to a full child scan. `*probes` receives
  /// the tree nodes inspected. Matches core::ChildSelector, so it plugs
  /// straight into core::ScanCursor.
  bool RelevantChildren(const core::ArchiveNode& node, Version v,
                        std::vector<size_t>* relevant, size_t* probes) const;

  /// Total timestamp-tree nodes across the archive (index space cost).
  size_t TreeNodeCount() const;

  /// Per inner node: its timestamp tree (over child effective stamps) and
  /// its children sorted by plain label order (for binary search).
  struct NodeIndex {
    TimestampTree tree;
    std::vector<const core::ArchiveNode*> sorted_children;
  };

  /// The index entry of `node`, or nullptr when the node is not indexed
  /// (frontier nodes). Exposed for XAR2 index-page serialization.
  const NodeIndex* EntryFor(const core::ArchiveNode& node) const {
    auto it = nodes_.find(&node);
    return it == nodes_.end() ? nullptr : &it->second;
  }

 private:
  void BuildRecursive(const core::ArchiveNode& node);
  const core::ArchiveNode* FindChildSorted(const core::ArchiveNode& parent,
                                           const core::KeyStep& step,
                                           ProbeStats* stats) const;

  const core::Archive& archive_;
  uint64_t built_at_generation_ = 0;
  std::unordered_map<const core::ArchiveNode*, NodeIndex> nodes_;
};

/// The candidate query labels for a KeyStep: values are plain text, stored
/// values are canonical ("T" + text for element content, raw for
/// attributes); both encodings are tried, canonical first. Shared between
/// the heap index and the mapped XAR2 index so both probe identically.
std::vector<keys::Label> QueryLabels(const core::KeyStep& step);

}  // namespace xarch::index

#endif  // XARCH_INDEX_ARCHIVE_INDEX_H_
