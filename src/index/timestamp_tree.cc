#include "index/timestamp_tree.h"

#include <algorithm>

namespace xarch::index {

TimestampTree TimestampTree::Build(std::vector<VersionSet> child_stamps) {
  TimestampTree tree;
  tree.leaf_count_ = child_stamps.size();
  if (child_stamps.empty()) return tree;
  // Level 0: leaves.
  std::vector<int> level;
  level.reserve(child_stamps.size());
  for (size_t i = 0; i < child_stamps.size(); ++i) {
    tree.nodes_.push_back(Node{std::move(child_stamps[i]), i, i, -1, -1});
    level.push_back(static_cast<int>(tree.nodes_.size() - 1));
  }
  // Pair repeatedly, unioning timestamps (bottom-up construction).
  while (level.size() > 1) {
    std::vector<int> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const Node& l = tree.nodes_[level[i]];
      const Node& r = tree.nodes_[level[i + 1]];
      VersionSet stamp = l.stamp;
      stamp.UnionWith(r.stamp);
      tree.nodes_.push_back(Node{std::move(stamp), l.leaf_lo, r.leaf_hi,
                                 level[i], level[i + 1]});
      next.push_back(static_cast<int>(tree.nodes_.size() - 1));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  tree.root_ = level[0];
  return tree;
}

std::vector<size_t> TimestampTree::Lookup(Version v, size_t* probes,
                                          size_t probe_budget) const {
  std::vector<size_t> hits;
  size_t probe_count = 0;
  if (root_ >= 0) {
    bool budget_hit = false;
    // Iterative DFS with a probe budget (the paper's is 2k); on budget
    // exhaustion, scan all k leaves instead.
    std::vector<int> pending = {root_};
    while (!pending.empty() && !budget_hit) {
      int id = pending.back();
      pending.pop_back();
      const Node& node = nodes_[id];
      ++probe_count;
      if (!node.stamp.Contains(v)) continue;
      if (node.left < 0) {
        hits.push_back(node.leaf_lo);
        continue;
      }
      if (probe_count >= probe_budget) {
        budget_hit = true;
        break;
      }
      // Right pushed first so the left child pops first (in-order hits).
      pending.push_back(node.right);
      pending.push_back(node.left);
    }
    if (budget_hit) {
      hits.clear();
      for (size_t i = 0; i < leaf_count_; ++i) {
        const Node& leaf = nodes_[i];
        ++probe_count;
        if (leaf.stamp.Contains(v)) hits.push_back(i);
      }
    } else {
      std::sort(hits.begin(), hits.end());
    }
  }
  if (probes != nullptr) *probes = probe_count;
  return hits;
}

}  // namespace xarch::index
