#include "index/archive_index.h"

#include <algorithm>

namespace xarch::index {

std::vector<keys::Label> QueryLabels(const core::KeyStep& step) {
  keys::Label canonical, raw;
  canonical.tag = raw.tag = step.tag;
  for (const auto& [path, text] : step.key) {
    bool is_attr = !path.empty() && path[0] == '@';
    canonical.parts.push_back(
        keys::LabelPart{path, is_attr ? text : "T" + text});
    raw.parts.push_back(keys::LabelPart{path, text});
  }
  auto by_path = [](const keys::LabelPart& a, const keys::LabelPart& b) {
    return a.path < b.path;
  };
  std::sort(canonical.parts.begin(), canonical.parts.end(), by_path);
  std::sort(raw.parts.begin(), raw.parts.end(), by_path);
  std::vector<keys::Label> out;
  out.push_back(std::move(canonical));
  if (!step.key.empty()) out.push_back(std::move(raw));
  return out;
}

ArchiveIndex::ArchiveIndex(const core::Archive& archive)
    : archive_(archive),
      built_at_generation_(archive.ingest_generation()) {
  BuildRecursive(archive.root());
}

void ArchiveIndex::BuildRecursive(const core::ArchiveNode& node) {
  if (node.is_frontier) return;
  NodeIndex entry;
  std::vector<VersionSet> stamps;
  stamps.reserve(node.children.size());
  // Trees are built over the children's own timestamps where present; an
  // inheriting child is relevant exactly when its parent is, which the
  // parent's own lookup already established, so its leaf gets the parent
  // stamp — here represented by the child's effective stamp relative to
  // the node's (the archive invariant keeps this sound).
  const VersionSet& node_eff =
      node.stamp.has_value() ? *node.stamp : *archive_.root().stamp;
  for (const auto& child : node.children) {
    stamps.push_back(child->EffectiveStamp(node_eff));
    entry.sorted_children.push_back(child.get());
  }
  entry.tree = TimestampTree::Build(std::move(stamps));
  std::sort(entry.sorted_children.begin(), entry.sorted_children.end(),
            [](const core::ArchiveNode* a, const core::ArchiveNode* b) {
              return a->label.Compare(b->label) < 0;
            });
  nodes_.emplace(&node, std::move(entry));
  for (const auto& child : node.children) BuildRecursive(*child);
}

StatusOr<xml::NodePtr> ArchiveIndex::RetrieveVersion(Version v,
                                                     ProbeStats* stats) const {
  if (v == 0 || v > archive_.version_count()) {
    return Status::NotFound("version " + std::to_string(v) + " not archived");
  }
  ProbeStats local;
  ProbeStats* ps = stats != nullptr ? stats : &local;

  // Recursive reconstruction directed by the timestamp trees.
  struct Builder {
    const ArchiveIndex& index;
    Version v;
    ProbeStats* stats;

    xml::NodePtr Build(const core::ArchiveNode& node) {
      xml::NodePtr elem = xml::Node::Element(node.label.tag);
      for (const auto& [name, value] : node.attrs) elem->SetAttr(name, value);
      if (node.is_frontier) {
        for (const auto& bucket : node.buckets) {
          if (bucket.stamp.has_value() && !bucket.stamp->Contains(v)) continue;
          for (const auto& n : bucket.content) elem->AddChild(n->Clone());
        }
        return elem;
      }
      auto it = index.nodes_.find(&node);
      stats->naive_probes += node.children.size();
      if (it == index.nodes_.end()) return elem;
      size_t probes = 0;
      std::vector<size_t> relevant = it->second.tree.Lookup(v, &probes);
      stats->tree_probes += probes;
      for (size_t child_index : relevant) {
        elem->AddChild(Build(*node.children[child_index]));
      }
      return elem;
    }
  } builder{*this, v, ps};

  // Find the relevant top-level child via the root's tree.
  auto it = nodes_.find(&archive_.root());
  if (it == nodes_.end()) return xml::NodePtr(nullptr);
  size_t probes = 0;
  std::vector<size_t> tops = it->second.tree.Lookup(v, &probes);
  ps->tree_probes += probes;
  ps->naive_probes += archive_.root().children.size();
  if (tops.empty()) return xml::NodePtr(nullptr);  // empty database at v
  return builder.Build(*archive_.root().children[tops[0]]);
}

const core::ArchiveNode* ArchiveIndex::FindChildSorted(
    const core::ArchiveNode& parent, const core::KeyStep& step,
    ProbeStats* stats) const {
  auto it = nodes_.find(&parent);
  if (it == nodes_.end()) return nullptr;
  const auto& sorted = it->second.sorted_children;
  for (const keys::Label& query : QueryLabels(step)) {
    size_t comparisons = 0;
    auto pos = std::lower_bound(
        sorted.begin(), sorted.end(), query,
        [&comparisons](const core::ArchiveNode* a, const keys::Label& q) {
          ++comparisons;
          return a->label.Compare(q) < 0;
        });
    if (stats != nullptr) stats->comparisons += comparisons + 1;
    if (pos != sorted.end() && (*pos)->label.Compare(query) == 0) {
      return *pos;
    }
  }
  return nullptr;
}

StatusOr<VersionSet> ArchiveIndex::History(
    const std::vector<core::KeyStep>& path, ProbeStats* stats) const {
  const core::ArchiveNode* node = &archive_.root();
  VersionSet effective = *archive_.root().stamp;
  for (const auto& step : path) {
    if (node->is_frontier) {
      return Status::InvalidArgument("history path descends below frontier");
    }
    const core::ArchiveNode* child = FindChildSorted(*node, step, stats);
    if (child == nullptr) {
      return Status::NotFound("no element " + step.tag + " on the given path");
    }
    effective = child->EffectiveStamp(effective);
    node = child;
  }
  return effective;
}

bool ArchiveIndex::RelevantChildren(const core::ArchiveNode& node, Version v,
                                    std::vector<size_t>* relevant,
                                    size_t* probes) const {
  auto it = nodes_.find(&node);
  if (it == nodes_.end()) return false;
  *relevant = it->second.tree.Lookup(v, probes);
  return true;
}

size_t ArchiveIndex::TreeNodeCount() const {
  size_t total = 0;
  for (const auto& [node, entry] : nodes_) {
    (void)node;
    total += entry.tree.node_count();
  }
  return total;
}

}  // namespace xarch::index
