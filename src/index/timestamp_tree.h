#ifndef XARCH_INDEX_TIMESTAMP_TREE_H_
#define XARCH_INDEX_TIMESTAMP_TREE_H_

#include <cstddef>
#include <vector>

#include "util/version_set.h"

namespace xarch::index {

/// \brief The timestamp binary tree of Sec. 7.1.
///
/// Built over the k children of an archive node: leaves hold each child's
/// timestamp (plus the child index, standing in for the paper's file
/// offset); internal nodes hold the union of their children's timestamps.
/// Lookup(v) finds the α children relevant to version v while probing at
/// most min(2α − 1 + 2α·log(k/α) , 2k) tree nodes: the paper's search
/// keeps a probe budget of 2k and falls back to scanning all leaves when
/// the budget is hit before the leaf level.
class TimestampTree {
 public:
  /// Builds the tree bottom-up by pairing nodes (Sec. 7.1 construction).
  static TimestampTree Build(std::vector<VersionSet> child_stamps);

  /// Returns the indices of children whose timestamp contains v, in order.
  /// `*probes` (optional) receives the number of tree nodes inspected.
  std::vector<size_t> Lookup(Version v, size_t* probes) const {
    return Lookup(v, probes, 2 * leaf_count_);
  }

  /// Lookup with an explicit probe budget (the paper uses 2k). When the
  /// tree search exhausts the budget before reaching all relevant leaves,
  /// it abandons the descent and scans the k leaves directly; the answer
  /// is identical either way. Exposed so tests can drive the fallback
  /// path, which the default budget — at least the full node count
  /// 2k − 1 — never triggers.
  std::vector<size_t> Lookup(Version v, size_t* probes,
                             size_t probe_budget) const;

  size_t leaf_count() const { return leaf_count_; }

  /// Total tree nodes (space cost of the index).
  size_t node_count() const { return nodes_.size(); }

  struct Node {
    VersionSet stamp;
    size_t leaf_lo, leaf_hi;  // inclusive child-index range
    int left = -1, right = -1;  // -1: leaf
  };

  /// The i-th tree node (leaves occupy [0, leaf_count()) in child order).
  /// Exposed for XAR2 index-page serialization, which persists the tree
  /// verbatim so the mapped lookup probes the same nodes in the same order.
  const Node& node(size_t i) const { return nodes_[i]; }

  /// Index of the root node, -1 when the tree is empty.
  int root_index() const { return root_; }

 private:
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t leaf_count_ = 0;
};

}  // namespace xarch::index

#endif  // XARCH_INDEX_TIMESTAMP_TREE_H_
