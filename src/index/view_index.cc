#include "index/view_index.h"

#include <algorithm>
#include <cstring>

namespace xarch::index {

namespace {

using core::FlatArchive;

uint32_t LoadU32(std::string_view bytes, size_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

int32_t LoadI32(std::string_view bytes, size_t offset) {
  return static_cast<int32_t>(LoadU32(bytes, offset));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

Status Bad() { return Status::DataLoss("snapshot index pages are corrupt"); }

constexpr size_t kTreeRecordBytes = 20;

// Tree record fields: stamp_id, leaf_lo, leaf_hi (u32), left, right (i32).
uint32_t TreeU32(std::string_view tree, size_t record, size_t field) {
  return LoadU32(tree, kTreeRecordBytes * record + 4 * field);
}

int32_t TreeI32(std::string_view tree, size_t record, size_t field) {
  return LoadI32(tree, kTreeRecordBytes * record + 4 * field);
}

uint32_t SortedId(std::string_view sorted_ids, size_t i) {
  return LoadU32(sorted_ids, 4 * i);
}

/// Label order between a flat node's stored label and a query label, at the
/// string_view level — the exact comparisons keys::Label::Compare makes.
int CompareFlatLabel(const FlatArchive& a, uint32_t node,
                     const keys::Label& query) {
  int c = a.StringAt(a.NodeField(node, FlatArchive::kNodeTagSid))
              .compare(std::string_view(query.tag));
  if (c != 0) return c < 0 ? -1 : 1;
  const uint32_t count = a.NodeField(node, FlatArchive::kNodePartCount);
  if (count != query.parts.size()) {
    return count < query.parts.size() ? -1 : 1;
  }
  const uint32_t begin = a.NodeField(node, FlatArchive::kNodePartBegin);
  for (uint32_t i = 0; i < count; ++i) {
    c = a.StringAt(a.PartPathSid(begin + i))
            .compare(std::string_view(query.parts[i].path));
    if (c != 0) return c < 0 ? -1 : 1;
    c = a.StringAt(a.PartValueSid(begin + i))
            .compare(std::string_view(query.parts[i].value));
    if (c != 0) return c < 0 ? -1 : 1;
  }
  return 0;
}

}  // namespace

StatusOr<FlatViewIndex> FlatViewIndex::Attach(const core::FlatArchive* archive,
                                              std::string_view section) {
  FlatViewIndex index;
  index.archive_ = archive;
  if (section.size() < 4) return Bad();
  const uint32_t node_count = LoadU32(section, 0);
  if (node_count != archive->node_count()) return Bad();
  const uint64_t offsets_bytes = 4ull * (uint64_t{node_count} + 1);
  if (4 + offsets_bytes > section.size()) return Bad();
  index.offsets_ = section.substr(4, offsets_bytes);
  index.blob_ = section.substr(4 + offsets_bytes);
  if (LoadU32(index.offsets_, 0) != 0 ||
      LoadU32(index.offsets_, 4ull * node_count) != index.blob_.size()) {
    return Bad();
  }
  for (uint32_t n = 0; n < node_count; ++n) {
    const uint32_t lo = LoadU32(index.offsets_, 4ull * n);
    const uint32_t hi = LoadU32(index.offsets_, 4ull * n + 4);
    if (lo > hi) return Bad();
    const bool frontier =
        (archive->NodeField(n, FlatArchive::kNodeFlags) &
         FlatArchive::kFlagFrontier) != 0;
    // Probe parity with the heap index: every inner node indexed, no
    // frontier node indexed.
    if ((lo == hi) != frontier) return Bad();
    if (lo == hi) continue;
    const std::string_view entry = index.blob_.substr(lo, hi - lo);
    if (entry.size() < 4) return Bad();
    const uint32_t sorted_count = LoadU32(entry, 0);
    const uint64_t tree_header = 4 + 4ull * sorted_count;
    if (tree_header + 12 > entry.size()) return Bad();
    const uint32_t leaf_count = LoadU32(entry, tree_header);
    const uint32_t tree_node_count = LoadU32(entry, tree_header + 4);
    const int32_t root = LoadI32(entry, tree_header + 8);
    if (tree_header + 12 + kTreeRecordBytes * uint64_t{tree_node_count} !=
        entry.size()) {
      return Bad();
    }
    const uint32_t child_begin =
        archive->NodeField(n, FlatArchive::kNodeChildBegin);
    const uint32_t child_count =
        archive->NodeField(n, FlatArchive::kNodeChildCount);
    if (sorted_count != child_count || leaf_count != child_count) {
      return Bad();
    }
    const std::string_view sorted_ids = entry.substr(4, 4ull * sorted_count);
    for (uint32_t i = 0; i < sorted_count; ++i) {
      const uint32_t id = SortedId(sorted_ids, i);
      if (id < child_begin || id >= child_begin + child_count) return Bad();
    }
    const std::string_view tree = entry.substr(tree_header + 12);
    if (tree_node_count == 0) {
      if (root != -1 || leaf_count != 0) return Bad();
      continue;
    }
    if (leaf_count > tree_node_count || root < 0 ||
        static_cast<uint32_t>(root) >= tree_node_count) {
      return Bad();
    }
    for (uint32_t t = 0; t < tree_node_count; ++t) {
      if (TreeU32(tree, t, 0) >= archive->stamp_count()) return Bad();
      const uint32_t leaf_lo = TreeU32(tree, t, 1);
      const uint32_t leaf_hi = TreeU32(tree, t, 2);
      const int32_t left = TreeI32(tree, t, 3);
      const int32_t right = TreeI32(tree, t, 4);
      if (leaf_lo > leaf_hi || leaf_hi >= leaf_count) return Bad();
      if ((left < 0) != (right < 0)) return Bad();
      if (left >= 0 &&
          (static_cast<uint32_t>(left) >= tree_node_count ||
           static_cast<uint32_t>(right) >= tree_node_count)) {
        return Bad();
      }
      // Leaves occupy [0, leaf_count) in child order; the budget-fallback
      // scan depends on it.
      if (t < leaf_count && (left >= 0 || leaf_lo != t || leaf_hi != t)) {
        return Bad();
      }
    }
  }
  return index;
}

bool FlatViewIndex::EntryFor(uint32_t node, Entry* entry) const {
  const uint32_t lo = LoadU32(offsets_, 4ull * node);
  const uint32_t hi = LoadU32(offsets_, 4ull * node + 4);
  if (lo == hi) return false;
  const std::string_view bytes = blob_.substr(lo, hi - lo);
  entry->sorted_count = LoadU32(bytes, 0);
  entry->sorted_ids = bytes.substr(4, 4ull * entry->sorted_count);
  const uint64_t tree_header = 4 + 4ull * entry->sorted_count;
  entry->leaf_count = LoadU32(bytes, tree_header);
  entry->tree_node_count = LoadU32(bytes, tree_header + 4);
  entry->root = LoadI32(bytes, tree_header + 8);
  entry->tree = bytes.substr(tree_header + 12);
  return true;
}

std::vector<size_t> FlatViewIndex::TreeLookup(const Entry& entry, Version v,
                                              size_t* probes) const {
  // TimestampTree::Lookup replayed over the mapped records: identical
  // visit order, budget, and fallback, so probe counts match the heap
  // index exactly.
  std::vector<size_t> hits;
  size_t probe_count = 0;
  const size_t probe_budget = 2 * size_t{entry.leaf_count};
  if (entry.root >= 0) {
    bool budget_hit = false;
    std::vector<int32_t> pending = {entry.root};
    while (!pending.empty() && !budget_hit) {
      const int32_t id = pending.back();
      pending.pop_back();
      ++probe_count;
      if (!archive_->StampContains(TreeU32(entry.tree, id, 0), v)) continue;
      const int32_t left = TreeI32(entry.tree, id, 3);
      if (left < 0) {
        hits.push_back(TreeU32(entry.tree, id, 1));
        continue;
      }
      if (probe_count >= probe_budget) {
        budget_hit = true;
        break;
      }
      pending.push_back(TreeI32(entry.tree, id, 4));
      pending.push_back(left);
    }
    if (budget_hit) {
      hits.clear();
      for (size_t i = 0; i < entry.leaf_count; ++i) {
        ++probe_count;
        if (archive_->StampContains(TreeU32(entry.tree, i, 0), v)) {
          hits.push_back(i);
        }
      }
    } else {
      std::sort(hits.begin(), hits.end());
    }
  }
  if (probes != nullptr) *probes = probe_count;
  return hits;
}

bool FlatViewIndex::RelevantChildren(NodeId node, Version v,
                                     std::vector<size_t>* relevant,
                                     size_t* probes) const {
  Entry entry;
  if (!EntryFor(static_cast<uint32_t>(node), &entry)) return false;
  *relevant = TreeLookup(entry, v, probes);
  return true;
}

ViewIndex::NodeId FlatViewIndex::FindChild(NodeId parent,
                                           const core::KeyStep& step,
                                           ProbeStats* stats) const {
  Entry entry;
  if (!EntryFor(static_cast<uint32_t>(parent), &entry)) {
    return core::ArchiveView::kNoNode;
  }
  for (const keys::Label& query : QueryLabels(step)) {
    // std::lower_bound replayed by hand over the mapped sorted-id records,
    // counting comparator calls the way the heap path does.
    size_t comparisons = 0;
    size_t first = 0;
    size_t count = entry.sorted_count;
    while (count > 0) {
      const size_t half = count / 2;
      const size_t pos = first + half;
      ++comparisons;
      if (CompareFlatLabel(*archive_, SortedId(entry.sorted_ids, pos), query) <
          0) {
        first = pos + 1;
        count -= half + 1;
      } else {
        count = half;
      }
    }
    if (stats != nullptr) stats->comparisons += comparisons + 1;
    if (first != entry.sorted_count) {
      const uint32_t id = SortedId(entry.sorted_ids, first);
      if (CompareFlatLabel(*archive_, id, query) == 0) return id;
    }
  }
  return core::ArchiveView::kNoNode;
}

StatusOr<VersionSet> FlatViewIndex::History(
    const std::vector<core::KeyStep>& path, ProbeStats* stats) const {
  NodeId node = 0;
  VersionSet effective = archive_->StampAt(
      archive_->NodeField(0, FlatArchive::kNodeStampIdPlus1) - 1);
  for (const auto& step : path) {
    if ((archive_->NodeField(static_cast<uint32_t>(node),
                             FlatArchive::kNodeFlags) &
         FlatArchive::kFlagFrontier) != 0) {
      return Status::InvalidArgument("history path descends below frontier");
    }
    const NodeId child = FindChild(node, step, stats);
    if (child == core::ArchiveView::kNoNode) {
      return Status::NotFound("no element " + step.tag + " on the given path");
    }
    const uint32_t stamp_plus1 = archive_->NodeField(
        static_cast<uint32_t>(child), FlatArchive::kNodeStampIdPlus1);
    if (stamp_plus1 != 0) effective = archive_->StampAt(stamp_plus1 - 1);
    node = child;
  }
  return effective;
}

std::string EncodeIndexPages(const ArchiveIndex& index,
                             core::FlatArchiveEncoder* encoder) {
  const std::vector<const core::ArchiveNode*>& order = encoder->node_order();
  std::string blob;
  std::vector<uint32_t> offsets;
  offsets.reserve(order.size() + 1);
  offsets.push_back(0);
  for (const core::ArchiveNode* node : order) {
    const ArchiveIndex::NodeIndex* entry = index.EntryFor(*node);
    if (entry != nullptr) {
      PutU32(&blob, static_cast<uint32_t>(entry->sorted_children.size()));
      for (const core::ArchiveNode* child : entry->sorted_children) {
        PutU32(&blob, encoder->NodeIdOf(*child));
      }
      PutU32(&blob, static_cast<uint32_t>(entry->tree.leaf_count()));
      PutU32(&blob, static_cast<uint32_t>(entry->tree.node_count()));
      PutI32(&blob, entry->tree.root_index());
      for (size_t t = 0; t < entry->tree.node_count(); ++t) {
        const TimestampTree::Node& tree_node = entry->tree.node(t);
        PutU32(&blob, encoder->InternStamp(tree_node.stamp));
        PutU32(&blob, static_cast<uint32_t>(tree_node.leaf_lo));
        PutU32(&blob, static_cast<uint32_t>(tree_node.leaf_hi));
        PutI32(&blob, tree_node.left);
        PutI32(&blob, tree_node.right);
      }
    }
    offsets.push_back(static_cast<uint32_t>(blob.size()));
  }
  std::string out;
  PutU32(&out, static_cast<uint32_t>(order.size()));
  for (uint32_t offset : offsets) PutU32(&out, offset);
  out += blob;
  return out;
}

}  // namespace xarch::index
