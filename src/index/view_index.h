#ifndef XARCH_INDEX_VIEW_INDEX_H_
#define XARCH_INDEX_VIEW_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/archive.h"
#include "core/flat_archive.h"
#include "core/tree_view.h"
#include "index/archive_index.h"
#include "util/status.h"

namespace xarch::index {

/// \brief Index access over an ArchiveView: the three query primitives the
/// XAQL evaluator uses, answerable either by the heap ArchiveIndex or by
/// the persisted XAR2 index pages navigated in place.
///
/// Both implementations probe identically — same timestamp-tree search,
/// same binary-search comparison counts — so EXPLAIN output matches across
/// heap-opened and mapped-opened stores.
class ViewIndex {
 public:
  using NodeId = core::ArchiveView::NodeId;

  virtual ~ViewIndex() = default;

  /// The ScanCursor hook: fills *relevant with the indices of node's
  /// children relevant to v (true), or returns false when the node is not
  /// indexed (frontier nodes), directing the caller to a full scan.
  virtual bool RelevantChildren(NodeId node, Version v,
                                std::vector<size_t>* relevant,
                                size_t* probes) const = 0;

  /// Keyed child lookup via the sorted child list; kNoNode when absent.
  virtual NodeId FindChild(NodeId parent, const core::KeyStep& step,
                           ProbeStats* stats) const = 0;

  /// Temporal history along a keyed path (Sec. 7.2 binary searches).
  virtual StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path,
                                       ProbeStats* stats) const = 0;
};

/// ViewIndex over the heap ArchiveIndex (NodeIds are ArchiveNode pointers,
/// as assigned by core::HeapArchiveView).
class HeapViewIndex : public ViewIndex {
 public:
  explicit HeapViewIndex(const ArchiveIndex* index) : index_(index) {}

  bool RelevantChildren(NodeId node, Version v, std::vector<size_t>* relevant,
                        size_t* probes) const override {
    return index_->RelevantChildren(core::HeapArchiveView::Node(node), v,
                                    relevant, probes);
  }

  NodeId FindChild(NodeId parent, const core::KeyStep& step,
                   ProbeStats* stats) const override {
    const core::ArchiveNode* child =
        index_->FindChild(core::HeapArchiveView::Node(parent), step, stats);
    return child == nullptr ? core::ArchiveView::kNoNode
                            : core::HeapArchiveView::Id(*child);
  }

  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path,
                               ProbeStats* stats) const override {
    return index_->History(path, stats);
  }

 private:
  const ArchiveIndex* index_;
};

/// \brief The persisted index pages of an XAR2 snapshot, navigated in
/// place: per archive node, its timestamp tree (verbatim node records) and
/// its children sorted by label.
///
/// Section layout ("index"):
///   u32 node_count                      — must equal the archive's
///   u32 entry_offsets[node_count + 1]   — byte offsets into the blob;
///                                         a zero-length span = not indexed
///   blob of entries, one per indexed node:
///     u32 sorted_count | u32 sorted_child_node_ids[sorted_count]
///     u32 leaf_count | u32 tree_node_count | i32 root_index
///     tree records, 20 bytes each:
///       u32 stamp_id | u32 leaf_lo | u32 leaf_hi | i32 left | i32 right
///
/// Tree records persist TimestampTree::node(i) verbatim (leaves first, in
/// child order), with stamps deduplicated into the archive's timestamp
/// pool — Lookup here replays the exact heap search, probe for probe.
class FlatViewIndex : public ViewIndex {
 public:
  /// Validates the section against the attached archive (every id, offset,
  /// and range checked once) and attaches. kDataLoss on any inconsistency.
  static StatusOr<FlatViewIndex> Attach(const core::FlatArchive* archive,
                                        std::string_view section);

  bool RelevantChildren(NodeId node, Version v, std::vector<size_t>* relevant,
                        size_t* probes) const override;
  NodeId FindChild(NodeId parent, const core::KeyStep& step,
                   ProbeStats* stats) const override;
  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path,
                               ProbeStats* stats) const override;

 private:
  struct Entry {
    std::string_view sorted_ids;  // u32 records
    std::string_view tree;        // 20-byte records
    uint32_t sorted_count = 0;
    uint32_t leaf_count = 0;
    uint32_t tree_node_count = 0;
    int32_t root = -1;
  };

  /// Parses node's entry; false when the node is not indexed.
  bool EntryFor(uint32_t node, Entry* entry) const;
  std::vector<size_t> TreeLookup(const Entry& entry, Version v,
                                 size_t* probes) const;

  const core::FlatArchive* archive_ = nullptr;
  std::string_view offsets_;  // u32 entry_offsets[node_count + 1]
  std::string_view blob_;
};

/// Serializes `index` as XAR2 index pages, mapping archive nodes to flat
/// ids and interning tree stamps via `encoder` (which must already have
/// EncodeStructure() done, and must Finish() after this call so the interned
/// stamps land in the pool).
std::string EncodeIndexPages(const ArchiveIndex& index,
                             core::FlatArchiveEncoder* encoder);

}  // namespace xarch::index

#endif  // XARCH_INDEX_VIEW_INDEX_H_
