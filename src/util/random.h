#ifndef XARCH_UTIL_RANDOM_H_
#define XARCH_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace xarch {

/// \brief Deterministic pseudo-random generator for synthetic data.
///
/// All generators in src/synth take an explicit seed so experiments are
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Random lowercase word of length in [min_len, max_len].
  std::string Word(size_t min_len, size_t max_len) {
    size_t len = Uniform(min_len, max_len);
    std::string w(len, 'a');
    for (auto& c : w) c = static_cast<char>('a' + Uniform(0, 25));
    return w;
  }

  /// Picks a uniformly random element of `items` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Uniform(0, items.size() - 1)];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xarch

#endif  // XARCH_UTIL_RANDOM_H_
