#include "util/strings.h"

#include <cstdio>

namespace xarch {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : Split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsSpace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsSpace(c)) return false;
  }
  return true;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) lines.emplace_back(text.substr(start));
  return lines;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace xarch
