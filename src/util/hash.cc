#include "util/hash.h"

#include <cstring>

namespace xarch {

namespace {

constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                               5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                               6, 10, 15, 21};

inline uint32_t RotL(uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

Md5Hasher::Md5Hasher()
    : a_(0x67452301), b_(0xefcdab89), c_(0x98badcfe), d_(0x10325476) {}

void Md5Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }
  uint32_t a = a_, b = b_, c = c_, d = d_;
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t temp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
    a = temp;
  }
  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5Hasher::Update(std::string_view data) {
  length_ += data.size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  if (buffered_ > 0) {
    size_t take = std::min(remaining, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    ProcessBlock(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_.data(), p, remaining);
    buffered_ = remaining;
  }
}

Md5Digest Md5Hasher::Finish() {
  uint64_t bit_len = length_ * 8;
  // Padding: a single 0x80 byte, zeros, then the 64-bit length.
  uint8_t pad[72] = {0x80};
  size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  Update(std::string_view(reinterpret_cast<const char*>(pad), pad_len));
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>((bit_len >> (8 * i)) & 0xff);
  }
  Update(std::string_view(reinterpret_cast<const char*>(len_bytes), 8));
  Md5Digest digest;
  uint32_t regs[4] = {a_, b_, c_, d_};
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 4; ++i) {
      digest.bytes[r * 4 + i] = static_cast<uint8_t>((regs[r] >> (8 * i)) & 0xff);
    }
  }
  return digest;
}

Md5Digest Md5(std::string_view data) {
  Md5Hasher hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::string Md5Digest::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

uint64_t Md5Digest::Low64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return v;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(std::string_view(strings_.back()), id);
  return id;
}

void StringInterner::EncodeTo(std::string* out) const {
  auto put_u32 = [out](uint32_t v) {
    out->push_back(static_cast<char>(v & 0xff));
    out->push_back(static_cast<char>((v >> 8) & 0xff));
    out->push_back(static_cast<char>((v >> 16) & 0xff));
    out->push_back(static_cast<char>((v >> 24) & 0xff));
  };
  put_u32(static_cast<uint32_t>(strings_.size()));
  uint32_t offset = 0;
  put_u32(offset);
  for (const std::string& s : strings_) {
    offset += static_cast<uint32_t>(s.size());
    put_u32(offset);
  }
  for (const std::string& s : strings_) out->append(s);
}

}  // namespace xarch
