#ifndef XARCH_UTIL_VERSION_SET_H_
#define XARCH_UTIL_VERSION_SET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch {

/// A version number. Versions are numbered from 1 as in the paper.
using Version = uint32_t;

/// \brief A set of version numbers stored as sorted disjoint intervals —
/// the paper's timestamps (Sec. 2): "the time intervals [1-3,5,7-9] denotes
/// the set {1,2,3,5,7,8,9}".
///
/// Scientific data is accretive, so an element usually lives in one long
/// interval; this representation makes its timestamp O(1) in space.
class VersionSet {
 public:
  VersionSet() = default;

  /// The set {v}.
  static VersionSet Single(Version v) { return Interval(v, v); }
  /// The set {lo, ..., hi}.
  static VersionSet Interval(Version lo, Version hi);

  /// Parses "1-3,5,7-9". Fails on malformed or non-canonical input
  /// (unsorted or overlapping intervals).
  static StatusOr<VersionSet> Parse(std::string_view text);

  bool empty() const { return intervals_.empty(); }
  /// Number of versions in the set.
  size_t Count() const;
  /// Number of maximal intervals (the space cost of the timestamp).
  size_t IntervalCount() const { return intervals_.size(); }
  /// Largest version in the set; set must be non-empty.
  Version Max() const { return intervals_.back().second; }
  /// Smallest version in the set; set must be non-empty.
  Version Min() const { return intervals_.front().first; }

  bool Contains(Version v) const;

  /// Adds one version (extends the last interval in O(1) for the common
  /// accretive case v == Max()+1).
  void Add(Version v);

  /// Set union.
  void UnionWith(const VersionSet& other);
  /// Removes one version.
  void Remove(Version v);

  /// Set difference this \ other.
  VersionSet Minus(const VersionSet& other) const;
  /// Set intersection.
  VersionSet IntersectWith(const VersionSet& other) const;

  /// True if this ⊇ other. The paper's archive invariant: the timestamp of
  /// a node is always a superset of the timestamps of its descendants.
  bool IsSupersetOf(const VersionSet& other) const;

  bool operator==(const VersionSet& other) const {
    return intervals_ == other.intervals_;
  }
  bool operator!=(const VersionSet& other) const { return !(*this == other); }

  /// Renders "1-3,5,7-9" ("" for the empty set).
  std::string ToString() const;

  /// The underlying sorted disjoint [lo, hi] intervals.
  const std::vector<std::pair<Version, Version>>& intervals() const {
    return intervals_;
  }

 private:
  void Normalize();

  std::vector<std::pair<Version, Version>> intervals_;
};

}  // namespace xarch

#endif  // XARCH_UTIL_VERSION_SET_H_
