#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace xarch::util {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared fork-join state. Helpers race the caller for indices through
  // `next`; `done` counts finished indices so the caller knows when the
  // join is complete even if helpers picked up most of the work.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first failure; guarded by error_mu
    std::mutex error_mu;
    std::mutex join_mu;
    std::condition_variable join_cv;
    size_t total = 0;
  };
  auto state = std::make_shared<ForState>();
  state->total = n;

  auto drain = [state, &body] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->total) return;
      if (!state->failed.load(std::memory_order_relaxed)) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mu);
          if (!state->failed.exchange(true)) {
            state->error = std::current_exception();
          }
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        std::lock_guard<std::mutex> lock(state->join_mu);
        state->join_cv.notify_all();
      }
    }
  };

  // One helper per worker, capped by the work available beyond what the
  // caller will do itself. Helpers capture `state` by value, so a helper
  // scheduled after the caller returns (all indices already claimed)
  // exits immediately without touching freed stack.
  //
  // NOTE: `body` is captured by reference in `drain` but helpers hold
  // `state` keeping the join alive: the caller cannot return before
  // done == total, and once done == total every helper has finished its
  // last body() call, so the reference never dangles.
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);

  drain();  // the caller works too

  {
    std::unique_lock<std::mutex> lock(state->join_mu);
    state->join_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->total;
    });
  }
  if (state->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 1 ? hw - 1 : 0);
  }();
  return *pool;
}

}  // namespace xarch::util
