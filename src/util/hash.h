#ifndef XARCH_UTIL_HASH_H_
#define XARCH_UTIL_HASH_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xarch {

/// \brief 128-bit MD5 digest.
///
/// The paper fingerprints canonical XML key values with a hash such as MD5
/// (via DOMHash); collisions are expected with probability O(1/t), t = 2^64
/// or 2^128 (Sec. 4.3). This is a from-scratch RFC 1321 implementation used
/// only as a fingerprint, never for security.
struct Md5Digest {
  std::array<uint8_t, 16> bytes{};

  bool operator==(const Md5Digest& o) const { return bytes == o.bytes; }
  bool operator!=(const Md5Digest& o) const { return !(*this == o); }

  /// Lowercase hex rendering, e.g. "d41d8cd98f00b204e9800998ecf8427e".
  std::string ToHex() const;

  /// First 8 bytes as a little-endian integer (cheap comparisons).
  uint64_t Low64() const;
};

/// Computes the MD5 digest of `data`.
Md5Digest Md5(std::string_view data);

/// FNV-1a 64-bit hash; used for hash tables and as a "truncatable"
/// fingerprint in collision-injection tests.
uint64_t Fnv1a64(std::string_view data);

/// \brief Incremental MD5 hasher for streaming input.
class Md5Hasher {
 public:
  Md5Hasher();
  /// Absorbs `data` into the running digest.
  void Update(std::string_view data);
  /// Finalizes and returns the digest. The hasher must not be reused after.
  Md5Digest Finish();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t a_, b_, c_, d_;
  uint64_t length_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t buffered_ = 0;
};

/// \brief Build-time string interner: deduplicates strings into dense
/// 32-bit ids in first-seen order.
///
/// The XAR2 snapshot container stores every tag, key path, and value once
/// in an interned string table; flat node records refer to strings by id.
/// `EncodeTo` emits the table in the persisted layout:
///
///     u32 count | u32 offsets[count + 1] | concatenated bytes
///
/// with `offsets[0] == 0` and `offsets[i+1] - offsets[i]` the length of
/// string `i` (all integers little-endian via persist/wire.h-compatible
/// encoding).
class StringInterner {
 public:
  /// Returns the id for `s`, assigning the next dense id on first sight.
  uint32_t Intern(std::string_view s);

  /// The string with id `id`; `id` must be < size().
  std::string_view At(uint32_t id) const { return strings_[id]; }

  /// Number of distinct strings interned so far.
  uint32_t size() const { return static_cast<uint32_t>(strings_.size()); }

  /// Appends the persisted table layout (see class comment) to `out`.
  void EncodeTo(std::string* out) const;

 private:
  // Deque keeps element addresses stable, so the map may key string_views
  // into the stored strings without re-copying them.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> ids_;
};

}  // namespace xarch

#endif  // XARCH_UTIL_HASH_H_
