#ifndef XARCH_UTIL_STRINGS_H_
#define XARCH_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xarch {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty fields.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character of `s` is ASCII whitespace (or `s` is empty).
bool IsAllWhitespace(std::string_view s);

/// Splits text into lines on '\n'. A trailing newline does not produce an
/// extra empty line.
std::vector<std::string> SplitLines(std::string_view text);

/// Formats a byte count with a thousands separator, e.g. "1,234,567".
std::string FormatWithCommas(uint64_t n);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace xarch

#endif  // XARCH_UTIL_STRINGS_H_
