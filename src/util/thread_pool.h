#ifndef XARCH_UTIL_THREAD_POOL_H_
#define XARCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xarch::util {

/// \brief A small fixed-size worker pool for fan-out over read-only data
/// (the XAQL parallel range executor, concurrent benches).
///
/// Design points:
///  - `threads` is the number of *worker* threads; a pool of size 0 is
///    valid and makes every ParallelFor run entirely on the caller, so
///    callers never need a serial special case.
///  - ParallelFor is a blocking fork-join: the caller participates in the
///    work, indices are handed out through a shared atomic cursor (so
///    uneven per-index cost load-balances), and the call returns only
///    after every index is done. Exceptions from the body are rethrown on
///    the caller thread (the first one wins).
///  - The pool is reusable and safe to share between threads; concurrent
///    ParallelFor calls interleave their tasks on the same workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is valid: everything runs inline).
  explicit ThreadPool(size_t threads);

  /// Drains pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (callers typically fan out size() + 1 ways).
  size_t size() const { return workers_.size(); }

  /// Enqueues one task for a worker. With size() == 0 the task runs
  /// inline, on the calling thread, before Submit returns.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n are done. The
  /// first exception thrown by any body is rethrown here after the join.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// A process-wide pool sized hardware_concurrency() - 1 (0 on a single
  /// CPU — ParallelFor then degrades to the serial loop). Created on first
  /// use; lives for the process.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xarch::util

#endif  // XARCH_UTIL_THREAD_POOL_H_
