#include "util/version_set.h"

#include <algorithm>

#include "util/strings.h"

namespace xarch {

VersionSet VersionSet::Interval(Version lo, Version hi) {
  VersionSet set;
  if (lo <= hi) set.intervals_.push_back({lo, hi});
  return set;
}

StatusOr<VersionSet> VersionSet::Parse(std::string_view text) {
  VersionSet set;
  std::string_view t = Trim(text);
  if (t.empty()) return set;
  for (const auto& part : Split(t, ',')) {
    std::string_view p = Trim(part);
    size_t dash = p.find('-');
    Version lo = 0, hi = 0;
    auto parse_num = [](std::string_view s, Version* out) {
      if (s.empty()) return false;
      uint64_t v = 0;
      for (char c : s) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + (c - '0');
        if (v > UINT32_MAX) return false;
      }
      *out = static_cast<Version>(v);
      return true;
    };
    if (dash == std::string_view::npos) {
      if (!parse_num(p, &lo)) {
        return Status::ParseError("bad timestamp '" + std::string(text) + "'");
      }
      hi = lo;
    } else {
      if (!parse_num(Trim(p.substr(0, dash)), &lo) ||
          !parse_num(Trim(p.substr(dash + 1)), &hi) || lo > hi) {
        return Status::ParseError("bad timestamp '" + std::string(text) + "'");
      }
    }
    if (!set.intervals_.empty() && lo <= set.intervals_.back().second + 1) {
      return Status::ParseError("non-canonical timestamp '" +
                                std::string(text) + "'");
    }
    set.intervals_.push_back({lo, hi});
  }
  return set;
}

size_t VersionSet::Count() const {
  size_t n = 0;
  for (const auto& [lo, hi] : intervals_) n += hi - lo + 1;
  return n;
}

bool VersionSet::Contains(Version v) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), v,
      [](Version value, const auto& iv) { return value < iv.first; });
  if (it == intervals_.begin()) return false;
  --it;
  return v >= it->first && v <= it->second;
}

void VersionSet::Add(Version v) {
  // Fast path: accretive append.
  if (!intervals_.empty()) {
    auto& last = intervals_.back();
    if (v == last.second + 1) {
      last.second = v;
      return;
    }
    if (v >= last.first && v <= last.second) return;
    if (v > last.second) {
      intervals_.push_back({v, v});
      return;
    }
  } else {
    intervals_.push_back({v, v});
    return;
  }
  UnionWith(Single(v));
}

void VersionSet::UnionWith(const VersionSet& other) {
  if (other.intervals_.empty()) return;
  std::vector<std::pair<Version, Version>> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  std::merge(intervals_.begin(), intervals_.end(), other.intervals_.begin(),
             other.intervals_.end(), std::back_inserter(merged));
  intervals_ = std::move(merged);
  Normalize();
}

void VersionSet::Normalize() {
  if (intervals_.empty()) return;
  std::vector<std::pair<Version, Version>> out;
  out.push_back(intervals_[0]);
  for (size_t i = 1; i < intervals_.size(); ++i) {
    auto& last = out.back();
    const auto& cur = intervals_[i];
    if (cur.first <= last.second + 1 && cur.first >= last.first) {
      last.second = std::max(last.second, cur.second);
    } else if (cur.first < last.first) {
      // Shouldn't happen with sorted input; re-sort defensively.
      std::sort(intervals_.begin(), intervals_.end());
      out.clear();
      out.push_back(intervals_[0]);
      i = 0;
    } else {
      out.push_back(cur);
    }
  }
  intervals_ = std::move(out);
}

void VersionSet::Remove(Version v) {
  for (size_t i = 0; i < intervals_.size(); ++i) {
    auto& [lo, hi] = intervals_[i];
    if (v < lo || v > hi) continue;
    if (lo == hi) {
      intervals_.erase(intervals_.begin() + i);
    } else if (v == lo) {
      lo = v + 1;
    } else if (v == hi) {
      hi = v - 1;
    } else {
      Version old_hi = hi;
      hi = v - 1;
      intervals_.insert(intervals_.begin() + i + 1, {v + 1, old_hi});
    }
    return;
  }
}

VersionSet VersionSet::Minus(const VersionSet& other) const {
  VersionSet out;
  size_t j = 0;
  for (auto [lo, hi] : intervals_) {
    Version cur = lo;
    while (cur <= hi) {
      // Skip other-intervals entirely below cur.
      while (j < other.intervals_.size() && other.intervals_[j].second < cur) {
        ++j;
      }
      if (j >= other.intervals_.size() || other.intervals_[j].first > hi) {
        out.intervals_.push_back({cur, hi});
        break;
      }
      const auto& o = other.intervals_[j];
      if (o.first > cur) {
        out.intervals_.push_back({cur, o.first - 1});
      }
      if (o.second >= hi) break;
      cur = o.second + 1;
    }
  }
  return out;
}

VersionSet VersionSet::IntersectWith(const VersionSet& other) const {
  VersionSet out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    Version lo = std::max(intervals_[i].first, other.intervals_[j].first);
    Version hi = std::min(intervals_[i].second, other.intervals_[j].second);
    if (lo <= hi) out.intervals_.push_back({lo, hi});
    if (intervals_[i].second < other.intervals_[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

bool VersionSet::IsSupersetOf(const VersionSet& other) const {
  size_t i = 0;
  for (const auto& [lo, hi] : other.intervals_) {
    while (i < intervals_.size() && intervals_[i].second < lo) ++i;
    if (i >= intervals_.size() || intervals_[i].first > lo ||
        intervals_[i].second < hi) {
      return false;
    }
  }
  return true;
}

std::string VersionSet::ToString() const {
  std::string out;
  for (const auto& [lo, hi] : intervals_) {
    if (!out.empty()) out += ',';
    out += std::to_string(lo);
    if (hi != lo) {
      out += '-';
      out += std::to_string(hi);
    }
  }
  return out;
}

}  // namespace xarch
