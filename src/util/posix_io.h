#ifndef XARCH_UTIL_POSIX_IO_H_
#define XARCH_UTIL_POSIX_IO_H_

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace xarch::util {

/// \brief The one audited EINTR/short-write retry implementation, shared by
/// the posix VFS backend (file descriptors) and the network layer
/// (sockets). Scattered ad-hoc copies of these loops are exactly the kind
/// of code that is right four times and torn-write-prone the fifth, so
/// every descriptor write in the tree funnels through here.

/// Retries `op()` (a syscall returning a signed count, -1 + errno on
/// failure) while it fails with EINTR; returns the final result with errno
/// intact. Usage: `ssize_t n = RetryEintr([&] { return ::read(fd, ...); });`
template <typename Op>
auto RetryEintr(Op&& op) -> decltype(op()) {
  for (;;) {
    auto result = op();
    if (result >= 0 || errno != EINTR) return result;
  }
}

/// Writes ALL of `data` through `write_some(ptr, len) -> ssize_t`, retrying
/// both EINTR and short writes. `write_some` is called with the unwritten
/// suffix until it is empty; `what` names the destination in error
/// messages. A zero return from `write_some` is treated as an error (the
/// descriptor accepts no more bytes) rather than a spin.
template <typename WriteSome>
Status WriteFull(std::string_view data, WriteSome&& write_some,
                 const std::string& what) {
  size_t written = 0;
  while (written < data.size()) {
    const auto n = write_some(data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed on " + what + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("write stalled on " + what +
                             " (descriptor accepts no bytes)");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace xarch::util

#endif  // XARCH_UTIL_POSIX_IO_H_
