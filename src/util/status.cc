#include "util/status.h"

namespace xarch {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kKeyViolation:
      return "KeyViolation";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace xarch
