#ifndef XARCH_UTIL_STATUS_H_
#define XARCH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xarch {

/// \brief Error codes used across the library.
///
/// xarch does not use C++ exceptions; fallible operations return a Status
/// (or a StatusOr<T> when they produce a value). This mirrors the idiom of
/// Arrow and RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kKeyViolation,
  kNotFound,
  kIoError,
  kCorruption,
  /// Persisted bytes failed validation on the way back in: checksum
  /// mismatch, truncated or bit-flipped stream, impossible declared sizes.
  /// Distinct from kCorruption (in-memory structural invariants) so callers
  /// can tell "your file rotted" from "your document is malformed".
  kDataLoss,
  kUnimplemented,
};

/// \brief A success-or-error outcome carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status KeyViolation(std::string msg) {
    return Status(StatusCode::kKeyViolation, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error Status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define XARCH_RETURN_NOT_OK(expr)         \
  do {                                    \
    ::xarch::Status _st = (expr);         \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else assigns the value.
#define XARCH_ASSIGN_OR_RETURN(lhs, expr)       \
  auto XARCH_CONCAT_(_so_, __LINE__) = (expr);  \
  if (!XARCH_CONCAT_(_so_, __LINE__).ok())      \
    return XARCH_CONCAT_(_so_, __LINE__).status(); \
  lhs = std::move(XARCH_CONCAT_(_so_, __LINE__)).value();

#define XARCH_CONCAT_(a, b) XARCH_CONCAT_IMPL_(a, b)
#define XARCH_CONCAT_IMPL_(a, b) a##b

}  // namespace xarch

#endif  // XARCH_UTIL_STATUS_H_
