#ifndef XARCH_KEYS_LABEL_H_
#define XARCH_KEYS_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xarch::keys {

/// One key-path/value pair of a node label, e.g. ("fn", "TJohn"). Values
/// are stored in canonical XML form (Sec. 4.3) so that string equality
/// coincides with value equality of the underlying XML values.
struct LabelPart {
  std::string path;   ///< key path as text ("fn", "Date/Month", "." or "@id")
  std::string value;  ///< canonical form of the key path value
};

/// \brief The full label of a node (Sec. 4.2): its tag name plus its key
/// values, e.g. emp{fn=John, ln=Doe}. Two nodes correspond across versions
/// iff their labels are equal.
struct Label {
  std::string tag;
  std::vector<LabelPart> parts;  ///< sorted by path
  /// Fingerprint of (tag, parts); equal labels have equal fingerprints.
  /// May be truncated (AnnotateOptions::fingerprint_bits) to exercise the
  /// collision-handling path of Sec. 4.3.
  uint64_t fingerprint = 0;

  /// The `<=lab` order of Sec. 4.2: by tag, then number of key parts, then
  /// lexicographically by (path, value). Returns <0, 0, >0.
  int Compare(const Label& other) const;

  bool operator==(const Label& other) const { return Compare(other) == 0; }

  /// Sort order used for children in archives and annotated versions:
  /// fingerprint first (cheap), full label compare on ties. With untruncated
  /// fingerprints ties are almost surely equal labels; with truncated ones
  /// the label comparison performs the paper's "verify actual key values".
  bool OrderBefore(const Label& other) const {
    if (fingerprint != other.fingerprint) return fingerprint < other.fingerprint;
    return Compare(other) < 0;
  }

  /// Computes and stores the fingerprint, keeping only the low
  /// `fingerprint_bits` bits (64 = full strength).
  void ComputeFingerprint(int fingerprint_bits);

  /// Renders "emp{fn=John, ln=Doe}". Canonical text-only values are shown
  /// without their T marker for readability.
  std::string ToString() const;
};

}  // namespace xarch::keys

#endif  // XARCH_KEYS_LABEL_H_
