#include "keys/annotate.h"

#include <algorithm>

#include "xml/canonical.h"

namespace xarch::keys {

namespace {

std::string StepsToString(const std::vector<std::string>& steps) {
  std::string out;
  for (const auto& s : steps) {
    out += '/';
    out += s;
  }
  return out.empty() ? "/" : out;
}

}  // namespace

StatusOr<Label> ComputeLabel(const xml::Node& node, const Key& key,
                             const AnnotateOptions& options) {
  Label label;
  label.tag = node.tag();
  std::vector<std::string> used_attrs;
  for (const auto& kp : key.key_paths) {
    auto targets = xml::EvalPath(node, kp);
    std::string path_text = kp.empty() ? "." : kp.ToString();
    if (targets.size() != 1) {
      return Status::KeyViolation(
          "key path " + path_text + " of " + key.ToString() + " matched " +
          std::to_string(targets.size()) + " nodes under <" + node.tag() +
          "> (must exist uniquely)");
    }
    LabelPart part;
    if (targets[0].is_attr()) {
      part.path = "@" + targets[0].attr_name;
      part.value = *targets[0].attr_owner->FindAttr(targets[0].attr_name);
      used_attrs.push_back(targets[0].attr_name);
    } else {
      part.path = path_text;
      // The key path value is the XML value rooted under the node at the end
      // of the key path (Sec. 4.1) — its content, canonicalized.
      part.value = xml::CanonicalizeList(targets[0].node->children());
    }
    label.parts.push_back(std::move(part));
  }
  // Attributes not consumed by key paths also carry identity: the paper
  // assumes versions have no attributes outside key values (Sec. 4.2), so
  // extra attributes are folded into the label rather than silently dropped.
  for (const auto& [name, value] : node.attrs()) {
    if (std::find(used_attrs.begin(), used_attrs.end(), name) ==
        used_attrs.end()) {
      label.parts.push_back(LabelPart{"@" + name, value});
    }
  }
  std::sort(label.parts.begin(), label.parts.end(),
            [](const LabelPart& a, const LabelPart& b) {
              return a.path < b.path;
            });
  label.ComputeFingerprint(options.fingerprint_bits);
  return label;
}

namespace {

class Annotator {
 public:
  Annotator(const KeySpecSet& spec, const AnnotateOptions& options)
      : spec_(spec), options_(options) {}

  StatusOr<KeyedNode> Run(const xml::Node& root) {
    steps_.push_back(root.tag());
    KeyedNode out;
    XARCH_RETURN_NOT_OK(Annotate(root, &out));
    return out;
  }

 private:
  Status Annotate(const xml::Node& node, KeyedNode* out) {
    const Key* key = spec_.Lookup(steps_);
    if (key == nullptr) {
      return Status::KeyViolation("element at " + StepsToString(steps_) +
                                  " is not covered by any key");
    }
    out->node = &node;
    XARCH_ASSIGN_OR_RETURN(out->label, ComputeLabel(node, *key, options_));
    out->is_frontier = spec_.IsFrontier(steps_);
    if (out->is_frontier) return Status::OK();

    out->children.reserve(node.children().size());
    for (const auto& child : node.children()) {
      if (child->is_text()) {
        return Status::KeyViolation(
            "text content under non-frontier keyed node at " +
            StepsToString(steps_) +
            " (keys must cover everything above the frontier, Sec. 3)");
      }
      steps_.push_back(child->tag());
      out->children.emplace_back();
      Status st = Annotate(*child, &out->children.back());
      steps_.pop_back();
      XARCH_RETURN_NOT_OK(st);
    }
    if (options_.sort_children) {
      std::stable_sort(out->children.begin(), out->children.end(),
                       [](const KeyedNode& a, const KeyedNode& b) {
                         return a.label.OrderBefore(b.label);
                       });
    }
    // Key satisfaction: no two siblings may share a label.
    for (size_t i = 1; i < out->children.size(); ++i) {
      if (out->children[i - 1].label == out->children[i].label) {
        return Status::KeyViolation("duplicate key value " +
                                    out->children[i].label.ToString() +
                                    " under " + StepsToString(steps_));
      }
    }
    return Status::OK();
  }

  const KeySpecSet& spec_;
  const AnnotateOptions& options_;
  std::vector<std::string> steps_;
};

}  // namespace

StatusOr<KeyedNode> AnnotateKeys(const xml::Node& root, const KeySpecSet& spec,
                                 const AnnotateOptions& options) {
  Annotator annotator(spec, options);
  return annotator.Run(root);
}

StatusOr<KeyedNode> AnnotateKeys(const xml::Node& root,
                                 const KeySpecSet& spec) {
  return AnnotateKeys(root, spec, AnnotateOptions());
}

Status CheckKeys(const xml::Node& root, const KeySpecSet& spec) {
  return AnnotateKeys(root, spec).status();
}

}  // namespace xarch::keys
