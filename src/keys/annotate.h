#ifndef XARCH_KEYS_ANNOTATE_H_
#define XARCH_KEYS_ANNOTATE_H_

#include <vector>

#include "keys/key_spec.h"
#include "keys/label.h"
#include "util/status.h"
#include "xml/node.h"

namespace xarch::keys {

/// Options for Annotate Keys.
struct AnnotateOptions {
  /// Bits kept in label fingerprints (Sec. 4.3). 64 is full strength; tests
  /// truncate to force collisions and exercise the verification path.
  int fingerprint_bits = 64;
  /// Sort keyed siblings by (fingerprint, label). Nested Merge requires
  /// sorted children (its merge phase is a sorted-list merge, Sec. 4.2).
  bool sort_children = true;
};

/// \brief A node of a key-annotated document: the underlying XML node, its
/// label (tag + key values, Fig. 3), and its keyed children. Frontier nodes
/// (Sec. 3) have no keyed children; their XML content is reachable through
/// `node`.
struct KeyedNode {
  const xml::Node* node = nullptr;
  Label label;
  bool is_frontier = false;
  std::vector<KeyedNode> children;
};

/// \brief Algorithm "Annotate Keys" (Sec. 4.1) over a parsed document.
///
/// Walks the version in document order, identifies every keyed node via the
/// key specification, and attaches its key value(s). The result is the
/// key-annotated view of Fig. 3 that Nested Merge consumes. Enforces the
/// key constraints along the way:
///  - each key path of a keyed node exists uniquely (strong keys, App. A.4),
///  - no two siblings carry an equal label,
///  - every element above the frontier is keyed and non-frontier keyed
///    nodes have no text content (the coverage assumption of Sec. 3).
StatusOr<KeyedNode> AnnotateKeys(const xml::Node& root, const KeySpecSet& spec,
                                 const AnnotateOptions& options);

/// Annotates with default options.
StatusOr<KeyedNode> AnnotateKeys(const xml::Node& root, const KeySpecSet& spec);

/// Verifies that `root` satisfies `spec` (a document check without keeping
/// the annotation).
Status CheckKeys(const xml::Node& root, const KeySpecSet& spec);

/// Computes the label of a single node known to sit at `steps` (root tag
/// included). Used when loading archives, where timestamp tags interleave
/// with keyed nodes.
StatusOr<Label> ComputeLabel(const xml::Node& node, const Key& key,
                             const AnnotateOptions& options);

}  // namespace xarch::keys

#endif  // XARCH_KEYS_ANNOTATE_H_
