#ifndef XARCH_KEYS_INFER_H_
#define XARCH_KEYS_INFER_H_

#include <vector>

#include "keys/key_spec.h"
#include "util/status.h"
#include "xml/node.h"

namespace xarch::keys {

/// Options for key inference.
struct InferOptions {
  /// Largest composite key tried (1 = single key paths only, 2 = also
  /// pairs, ...). The paper's real specs rarely exceed arity 4; inference
  /// cost grows combinatorially.
  size_t max_key_arity = 3;
};

/// \brief Derives a key specification from example versions — the Sec. 9
/// open question: "whether the keys can be automatically derived, through
/// data analysis or mining methodologies on various versions".
///
/// For every element path observed in the versions it searches for a
/// minimal set of key paths (single-valued child paths, attributes, or the
/// node's own content ".") whose values distinguish all siblings in every
/// instance across every provided version. Paths for which no key exists
/// become content below a frontier: all inferred keys beneath them are
/// discarded so the result satisfies the coverage assumptions of Sec. 3
/// and can be fed straight to KeySpecSet::Build / the Archive.
///
/// More versions give better evidence: a field that happens to be unique
/// in one snapshot (e.g. salary) is eliminated once any version shows a
/// duplicate.
StatusOr<std::vector<Key>> InferKeys(
    const std::vector<const xml::Node*>& versions, const InferOptions& options);

/// Infers with default options.
StatusOr<std::vector<Key>> InferKeys(
    const std::vector<const xml::Node*>& versions);

}  // namespace xarch::keys

#endif  // XARCH_KEYS_INFER_H_
