#include "keys/infer.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"
#include "xml/canonical.h"

namespace xarch::keys {

namespace {

/// Evidence about one element path: every sibling group (children with
/// this tag under one parent instance) observed in any version.
struct PathEvidence {
  std::vector<std::vector<const xml::Node*>> groups;
  bool has_text_content = false;  ///< some instance has text children
};

using EvidenceMap = std::map<std::vector<std::string>, PathEvidence>;

void Collect(const xml::Node& node, std::vector<std::string>* steps,
             EvidenceMap* evidence) {
  // Group element children by tag.
  std::map<std::string, std::vector<const xml::Node*>> by_tag;
  for (const auto& child : node.children()) {
    if (child->is_element()) by_tag[child->tag()].push_back(child.get());
  }
  for (const auto& [tag, group] : by_tag) {
    steps->push_back(tag);
    PathEvidence& entry = (*evidence)[*steps];
    entry.groups.push_back(group);
    for (const xml::Node* child : group) {
      for (const auto& grandchild : child->children()) {
        if (grandchild->is_text()) entry.has_text_content = true;
      }
      Collect(*child, steps, evidence);
    }
    steps->pop_back();
  }
}

/// A candidate key path for a path's instances: a child tag that exists
/// exactly once in every instance, an attribute present on every instance,
/// or "." (the content itself).
struct Candidate {
  enum class Kind { kChild, kAttr, kContent };
  Kind kind;
  std::string name;

  /// Key value of one instance, or nullopt if the candidate is not
  /// applicable to it.
  std::optional<std::string> ValueOf(const xml::Node& instance) const {
    switch (kind) {
      case Kind::kChild: {
        const xml::Node* hit = nullptr;
        for (const auto& child : instance.children()) {
          if (child->is_element() && child->tag() == name) {
            if (hit != nullptr) return std::nullopt;  // not single-valued
            hit = child.get();
          }
        }
        if (hit == nullptr) return std::nullopt;
        return xml::CanonicalizeList(hit->children());
      }
      case Kind::kAttr: {
        const std::string* value = instance.FindAttr(name);
        if (value == nullptr) return std::nullopt;
        return *value;
      }
      case Kind::kContent:
        return xml::CanonicalizeList(instance.children());
    }
    return std::nullopt;
  }
};

std::vector<Candidate> FindCandidates(const PathEvidence& evidence) {
  // A candidate must be applicable (present, single-valued) on EVERY
  // instance in every group.
  std::set<std::string> child_tags, attrs;
  bool first = true;
  for (const auto& group : evidence.groups) {
    for (const xml::Node* instance : group) {
      std::set<std::string> my_tags, my_attrs;
      std::map<std::string, int> tag_counts;
      for (const auto& child : instance->children()) {
        if (child->is_element()) ++tag_counts[child->tag()];
      }
      for (const auto& [tag, count] : tag_counts) {
        if (count == 1) my_tags.insert(tag);
      }
      for (const auto& [name, value] : instance->attrs()) {
        (void)value;
        my_attrs.insert(name);
      }
      if (first) {
        child_tags = std::move(my_tags);
        attrs = std::move(my_attrs);
        first = false;
      } else {
        std::set<std::string> kept;
        std::set_intersection(child_tags.begin(), child_tags.end(),
                              my_tags.begin(), my_tags.end(),
                              std::inserter(kept, kept.begin()));
        child_tags = std::move(kept);
        kept.clear();
        std::set_intersection(attrs.begin(), attrs.end(), my_attrs.begin(),
                              my_attrs.end(),
                              std::inserter(kept, kept.begin()));
        attrs = std::move(kept);
      }
    }
  }
  std::vector<Candidate> out;
  for (const auto& name : attrs) {
    out.push_back(Candidate{Candidate::Kind::kAttr, name});
  }
  for (const auto& tag : child_tags) {
    out.push_back(Candidate{Candidate::Kind::kChild, tag});
  }
  // Prefer short, id-like fields: order candidates by average value
  // length (real keys — accession numbers, ids — are short; prose fields
  // that merely happen to be unique are long). Ties: attributes first,
  // then by name.
  auto avg_length = [&](const Candidate& candidate) {
    size_t total = 0, count = 0;
    for (const auto& group : evidence.groups) {
      for (const xml::Node* instance : group) {
        auto value = candidate.ValueOf(*instance);
        if (value.has_value()) {
          total += value->size();
          ++count;
        }
      }
    }
    return count == 0 ? 1e9 : static_cast<double>(total) / count;
  };
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < out.size(); ++i) {
    ranked.push_back({avg_length(out[i]), i});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<Candidate> sorted;
  sorted.reserve(out.size() + 1);
  for (const auto& [len, i] : ranked) {
    (void)len;
    sorted.push_back(std::move(out[i]));
  }
  sorted.push_back(Candidate{Candidate::Kind::kContent, "."});
  return sorted;
}

/// True if the candidate combination distinguishes all siblings in every
/// group.
bool Distinguishes(const std::vector<Candidate>& combo,
                   const PathEvidence& evidence) {
  for (const auto& group : evidence.groups) {
    std::set<std::string> seen;
    for (const xml::Node* instance : group) {
      std::string tuple;
      for (const Candidate& candidate : combo) {
        auto value = candidate.ValueOf(*instance);
        if (!value.has_value()) return false;
        tuple += *value;
        tuple.push_back('\x00');
      }
      if (!seen.insert(tuple).second) return false;  // duplicate key value
    }
  }
  return true;
}

/// Searches combinations of increasing arity; returns the first (smallest,
/// lexicographically earliest) one that works.
std::optional<std::vector<Candidate>> FindKeyPaths(
    const PathEvidence& evidence, size_t max_arity) {
  std::vector<Candidate> candidates = FindCandidates(evidence);
  // "." subsumes everything; try it last and alone (a content key cannot
  // combine with others — it already contains them).
  std::vector<Candidate> proper;
  for (const auto& c : candidates) {
    if (c.kind != Candidate::Kind::kContent) proper.push_back(c);
  }
  auto next_combination = [](std::vector<size_t>& idx, size_t n) {
    size_t k = idx.size();
    for (size_t i = k; i-- > 0;) {
      if (idx[i] < n - (k - i)) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  for (size_t arity = 1; arity <= std::min(max_arity, proper.size());
       ++arity) {
    std::vector<size_t> idx(arity);
    for (size_t i = 0; i < arity; ++i) idx[i] = i;
    do {
      std::vector<Candidate> combo;
      for (size_t i : idx) combo.push_back(proper[i]);
      if (Distinguishes(combo, evidence)) return combo;
    } while (next_combination(idx, proper.size()));
  }
  // Fall back to keying by content.
  std::vector<Candidate> content = {{Candidate::Kind::kContent, "."}};
  if (Distinguishes(content, evidence)) return content;
  return std::nullopt;
}

}  // namespace

StatusOr<std::vector<Key>> InferKeys(
    const std::vector<const xml::Node*>& versions,
    const InferOptions& options) {
  if (versions.empty()) {
    return Status::InvalidArgument("need at least one version to infer keys");
  }
  const std::string& root_tag = versions[0]->tag();
  EvidenceMap evidence;
  for (const xml::Node* version : versions) {
    if (version->tag() != root_tag) {
      return Status::InvalidArgument(
          "versions disagree on the root element tag");
    }
    std::vector<std::string> steps = {root_tag};
    Collect(*version, &steps, &evidence);
  }

  // Find key paths per path; record unkeyable paths. Paths that are
  // singletons in every instance need no key values ({} keys) and never
  // fall back to content keying.
  std::map<std::vector<std::string>, std::vector<Candidate>> keyed;
  std::set<std::vector<std::string>> singletons;
  std::set<std::vector<std::string>> unkeyable;
  for (const auto& [path, entry] : evidence) {
    bool always_single = true;
    for (const auto& group : entry.groups) {
      if (group.size() > 1) always_single = false;
    }
    if (always_single) {
      singletons.insert(path);
      keyed[path] = {};
      continue;
    }
    auto combo = FindKeyPaths(entry, options.max_key_arity);
    if (combo.has_value()) {
      keyed[path] = std::move(*combo);
    } else {
      unkeyable.insert(path);
    }
  }

  // Coverage (Sec. 3): a node with an unkeyable child becomes a frontier —
  // drop every inferred key strictly below it. Also drop keys beneath
  // paths keyed by "." (their content is the key; nothing below may be
  // keyed) and beneath chosen key paths.
  std::set<std::vector<std::string>> frontier_roots;
  for (const auto& path : unkeyable) {
    std::vector<std::string> parent(path.begin(), path.end() - 1);
    frontier_roots.insert(parent);
  }
  for (const auto& [path, combo] : keyed) {
    if (combo.size() == 1 && combo[0].kind == Candidate::Kind::kContent) {
      frontier_roots.insert(path);
    }
  }
  auto below_frontier = [&](const std::vector<std::string>& path) {
    for (const auto& root : frontier_roots) {
      if (root.size() < path.size() &&
          std::equal(root.begin(), root.end(), path.begin())) {
        return true;
      }
    }
    return false;
  };

  std::vector<Key> keys;
  // A key for the root element itself: (/, (root, {})).
  {
    Key root_key;
    root_key.context.absolute = true;
    root_key.target.steps = {root_tag};
    keys.push_back(std::move(root_key));
  }
  for (const auto& [path, combo] : keyed) {
    if (below_frontier(path)) continue;
    Key key;
    key.context.absolute = true;
    key.context.steps.assign(path.begin(), path.end() - 1);
    key.target.steps = {path.back()};
    // Singleton paths get the {} key: at most one such child per parent.
    if (singletons.count(path) == 0) {
      for (const Candidate& candidate : combo) {
        xml::Path key_path;
        if (candidate.kind != Candidate::Kind::kContent) {
          key_path.steps = {candidate.name};
        }
        key.key_paths.push_back(std::move(key_path));
      }
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

StatusOr<std::vector<Key>> InferKeys(
    const std::vector<const xml::Node*>& versions) {
  return InferKeys(versions, InferOptions());
}

}  // namespace xarch::keys
