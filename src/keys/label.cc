#include "keys/label.h"

#include "util/hash.h"
#include "util/strings.h"

namespace xarch::keys {

int Label::Compare(const Label& other) const {
  int c = tag.compare(other.tag);
  if (c != 0) return c < 0 ? -1 : 1;
  if (parts.size() != other.parts.size()) {
    return parts.size() < other.parts.size() ? -1 : 1;
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    c = parts[i].path.compare(other.parts[i].path);
    if (c != 0) return c < 0 ? -1 : 1;
    c = parts[i].value.compare(other.parts[i].value);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  return 0;
}

void Label::ComputeFingerprint(int fingerprint_bits) {
  Md5Hasher hasher;
  hasher.Update(tag);
  for (const auto& part : parts) {
    hasher.Update("\x01");
    hasher.Update(part.path);
    hasher.Update("\x02");
    hasher.Update(part.value);
  }
  uint64_t fp = hasher.Finish().Low64();
  if (fingerprint_bits < 64) {
    fp &= (uint64_t{1} << fingerprint_bits) - 1;
  }
  fingerprint = fp;
}

std::string Label::ToString() const {
  if (parts.empty()) return tag;
  std::string out = tag + "{";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i].path;
    out += '=';
    // A canonical value that is a single text node reads "Tdata".
    if (!parts[i].value.empty() && parts[i].value[0] == 'T' &&
        parts[i].value.find('<') == std::string::npos) {
      out += parts[i].value.substr(1);
    } else {
      out += parts[i].value;
    }
  }
  out += '}';
  return out;
}

}  // namespace xarch::keys
