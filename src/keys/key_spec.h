#ifndef XARCH_KEYS_KEY_SPEC_H_
#define XARCH_KEYS_KEY_SPEC_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/path.h"

namespace xarch::keys {

/// \brief One relative key (Q, (Q', {P1, ..., Pk})) (Sec. 3, Appendix A.5).
///
/// `context` (Q) is an absolute path; `target` (Q') is relative to a context
/// node; `key_paths` (Pi) are relative to a target node. An empty key-path
/// set `{}` asserts the target exists at most once under its context node; a
/// single empty path `{.}` (written `{\e}` in the Appendix B files) keys the
/// node by its own content.
struct Key {
  xml::Path context;
  xml::Path target;
  std::vector<xml::Path> key_paths;

  /// The concatenation Q/Q' — the full path of nodes keyed by this key.
  xml::Path FullPath() const { return context.Concat(target); }

  /// Renders "(/db/dept, (emp, {fn, ln}))".
  std::string ToString() const;
};

/// \brief A set of keys plus the derived lookup structures the archiver
/// needs: which paths are keyed, which are frontier paths, and which key
/// applies at each keyed path.
///
/// The paper's XMark keys use "_" as a step standing for any one of the
/// region names (Appendix B.3); we support "_" as a match-any single step in
/// context/target paths.
class KeySpecSet {
 public:
  /// Builds the lookup structures. Adds the implied keys of Sec. 3: for
  /// every key (Q, (Q', {P1..Pk})) and every non-empty prefix R of each Pi,
  /// the key (Q/Q', (R, {})) — unless an explicit key already targets that
  /// full path. Fails if two keys target the same full path or an
  /// assumption from Sec. 3 is violated (a keyed node beneath a key path).
  static StatusOr<KeySpecSet> Build(std::vector<Key> keys);

  /// The explicit keys this set was built from.
  const std::vector<Key>& keys() const { return keys_; }

  /// Deep copy (KeySpecSet is move-only because the trie points into
  /// all_keys_; Clone rebuilds from the explicit keys).
  StatusOr<KeySpecSet> Clone() const { return Build(keys_); }

  /// All keys including implied ones.
  const std::vector<Key>& all_keys() const { return all_keys_; }

  /// Returns the key applying at the full path given by `steps` (root tag
  /// first), or nullptr if nodes at that path are unkeyed.
  const Key* Lookup(const std::vector<std::string>& steps) const;

  /// True if `steps` is a frontier path: keyed, with no keyed proper
  /// descendants (Sec. 3).
  bool IsFrontier(const std::vector<std::string>& steps) const;

  /// Number of keys (q of the Sec. 4.1 analysis).
  size_t size() const { return all_keys_.size(); }

 private:
  struct TrieNode {
    std::map<std::string, std::unique_ptr<TrieNode>> children;
    const Key* key = nullptr;       // set when this path is keyed
    bool has_keyed_below = false;   // any keyed strict descendant?
  };

  void WalkAll(const std::vector<std::string>& steps,
               std::vector<const TrieNode*>* out) const;

  std::vector<Key> keys_;
  std::vector<Key> all_keys_;
  std::unique_ptr<TrieNode> root_;
};

/// \brief Parses a key-specification file in the Appendix B format: one key
/// per line like
///   (/ROOT/Record, (Contributors, {Name, CNtype, Date/Month}))
///   (/ROOT/Record, (AlternativeTitle, {\e}))
/// Blank lines and lines starting with '#' are ignored.
StatusOr<std::vector<Key>> ParseKeySpecText(std::string_view text);

/// Parses and builds in one step.
StatusOr<KeySpecSet> ParseKeySpecSet(std::string_view text);

}  // namespace xarch::keys

#endif  // XARCH_KEYS_KEY_SPEC_H_
