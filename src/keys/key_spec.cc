#include "keys/key_spec.h"

#include <algorithm>

#include "util/strings.h"

namespace xarch::keys {

std::string Key::ToString() const {
  std::string out = "(" + context.ToString() + ", (" + target.ToString() + ", {";
  for (size_t i = 0; i < key_paths.size(); ++i) {
    if (i > 0) out += ", ";
    out += key_paths[i].empty() ? "\\e" : key_paths[i].ToString();
  }
  out += "}))";
  return out;
}

namespace {

/// Splits a brace list "a, b/c, \e" on top-level commas.
std::vector<std::string> SplitKeyPathList(std::string_view body) {
  std::vector<std::string> out;
  for (auto& part : Split(body, ',')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

StatusOr<Key> ParseKeyLine(std::string_view line) {
  // Grammar: '(' ctx ',' '(' target ',' '{' paths '}' ')' ')'
  auto fail = [&](const std::string& why) {
    return Status::ParseError("bad key line '" + std::string(line) +
                              "': " + why);
  };
  std::string_view s = Trim(line);
  if (s.empty() || s.front() != '(' || s.back() != ')') {
    return fail("expected outer parentheses");
  }
  s = Trim(s.substr(1, s.size() - 2));
  size_t comma = s.find(',');
  if (comma == std::string_view::npos) return fail("missing context path");
  std::string_view ctx_text = Trim(s.substr(0, comma));
  std::string_view rest = Trim(s.substr(comma + 1));
  if (rest.empty() || rest.front() != '(' || rest.back() != ')') {
    return fail("expected (target, {key paths})");
  }
  rest = Trim(rest.substr(1, rest.size() - 2));
  size_t brace = rest.find('{');
  size_t brace_end = rest.rfind('}');
  if (brace == std::string_view::npos || brace_end == std::string_view::npos ||
      brace_end < brace) {
    return fail("expected {key paths}");
  }
  std::string_view target_text = Trim(rest.substr(0, brace));
  if (target_text.empty() || target_text.back() != ',') {
    return fail("expected ',' between target and key paths");
  }
  target_text = Trim(target_text.substr(0, target_text.size() - 1));
  std::string_view paths_text = rest.substr(brace + 1, brace_end - brace - 1);

  Key key;
  XARCH_ASSIGN_OR_RETURN(key.context, xml::ParsePath(ctx_text));
  if (!key.context.absolute) return fail("context path must be absolute");
  XARCH_ASSIGN_OR_RETURN(key.target, xml::ParsePath(target_text));
  if (key.target.absolute || key.target.empty()) {
    return fail("target path must be relative and non-empty");
  }
  for (const auto& p : SplitKeyPathList(paths_text)) {
    XARCH_ASSIGN_OR_RETURN(xml::Path kp, xml::ParsePath(p));
    if (kp.absolute) return fail("key path must be relative");
    key.key_paths.push_back(std::move(kp));
  }
  return key;
}

}  // namespace

StatusOr<std::vector<Key>> ParseKeySpecText(std::string_view text) {
  std::vector<Key> keys;
  for (const auto& raw : SplitLines(text)) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    XARCH_ASSIGN_OR_RETURN(Key key, ParseKeyLine(line));
    keys.push_back(std::move(key));
  }
  return keys;
}

StatusOr<KeySpecSet> ParseKeySpecSet(std::string_view text) {
  XARCH_ASSIGN_OR_RETURN(std::vector<Key> keys, ParseKeySpecText(text));
  return KeySpecSet::Build(std::move(keys));
}

StatusOr<KeySpecSet> KeySpecSet::Build(std::vector<Key> keys) {
  KeySpecSet set;
  set.keys_ = keys;
  set.all_keys_ = std::move(keys);

  // Add implied keys (Sec. 3): for every non-empty prefix R of a key path
  // Pi, the key (Q/Q', (R, {})) — skipped when an explicit key already
  // targets that full path.
  auto targets_path = [&](const xml::Path& full) {
    for (const auto& k : set.all_keys_) {
      if (k.FullPath() == full) return true;
    }
    return false;
  };
  size_t explicit_count = set.all_keys_.size();
  for (size_t i = 0; i < explicit_count; ++i) {
    const Key key = set.all_keys_[i];  // copy: vector may reallocate
    for (const auto& kp : key.key_paths) {
      for (size_t len = 1; len <= kp.steps.size(); ++len) {
        Key implied;
        implied.context = key.FullPath();
        implied.target.steps.assign(kp.steps.begin(), kp.steps.begin() + len);
        if (!targets_path(implied.FullPath())) {
          set.all_keys_.push_back(std::move(implied));
        }
      }
    }
  }

  // Build the path trie.
  set.root_ = std::make_unique<TrieNode>();
  for (const auto& key : set.all_keys_) {
    TrieNode* node = set.root_.get();
    for (const auto& step : key.FullPath().steps) {
      auto& child = node->children[step];
      if (!child) child = std::make_unique<TrieNode>();
      node = child.get();
    }
    if (node->key != nullptr) {
      return Status::InvalidArgument("two keys target the same path " +
                                     key.FullPath().ToString());
    }
    node->key = &key;  // fixed after this point: all_keys_ is not resized
  }

  // Mark ancestors that have keyed descendants (frontier computation).
  struct Marker {
    static bool Mark(TrieNode* n) {
      bool any_below = false;
      for (auto& [step, child] : n->children) {
        (void)step;
        bool child_or_below = Mark(child.get()) || child->key != nullptr;
        any_below = any_below || child_or_below;
      }
      n->has_keyed_below = any_below;
      return any_below;
    }
  };
  Marker::Mark(set.root_.get());
  return set;
}

void KeySpecSet::WalkAll(const std::vector<std::string>& steps,
                         std::vector<const TrieNode*>* out) const {
  // Both exact and "_" wildcard branches can match the same path (e.g.
  // (/site/regions, (africa, {})) keys the region while
  // (/site/regions/_, (item, {id})) keys its items); all matching trie
  // nodes must be combined, with exact matches listed first.
  struct Walker {
    static void Go(const TrieNode* node, const std::vector<std::string>& steps,
                   size_t i, std::vector<const TrieNode*>* out) {
      if (i == steps.size()) {
        out->push_back(node);
        return;
      }
      auto it = node->children.find(steps[i]);
      if (it != node->children.end()) {
        Go(it->second.get(), steps, i + 1, out);
      }
      it = node->children.find("_");
      if (it != node->children.end()) {
        Go(it->second.get(), steps, i + 1, out);
      }
    }
  };
  Walker::Go(root_.get(), steps, 0, out);
}

const Key* KeySpecSet::Lookup(const std::vector<std::string>& steps) const {
  std::vector<const TrieNode*> hits;
  WalkAll(steps, &hits);
  for (const TrieNode* node : hits) {
    if (node->key != nullptr) return node->key;
  }
  return nullptr;
}

bool KeySpecSet::IsFrontier(const std::vector<std::string>& steps) const {
  std::vector<const TrieNode*> hits;
  WalkAll(steps, &hits);
  bool keyed = false;
  for (const TrieNode* node : hits) {
    if (node->key != nullptr) keyed = true;
    if (node->has_keyed_below) return false;
  }
  return keyed;
}

}  // namespace xarch::keys
