#ifndef XARCH_VFS_VFS_H_
#define XARCH_VFS_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch::vfs {

/// \brief The pluggable file-system seam every durability layer sits on
/// (LevelDB-Env-style, scaled to the archiver).
///
/// All file traffic of the persistence stack — snapshot containers, the
/// ingest WAL, durable-store directories, extmem row files, the daemon's
/// key-spec and port files — goes through one of these instead of raw
/// `open`/`fstream` calls. That buys three things at once:
///
///   * recovery paths become testable: the fault-injecting backend fails
///     the Nth write/fsync/rename deterministically, so "crash during
///     checkpoint" is a unit test, not a hope;
///   * tests and benches run on the in-memory backend with no temp-dir
///     churn;
///   * zero-copy open has a seam: the mmap backend maps snapshots instead
///     of buffering them, and future container formats can be navigated
///     in place.
///
/// Backends: `Vfs::Posix()` (buffered, EINTR-safe), `Vfs::Mmap()` (posix
/// writes + mmap'd reads), `MemVfs` (mem_vfs.h), `FaultVfs` (fault_vfs.h).
/// Implementations must be safe for concurrent use from many threads;
/// distinct files never synchronize against each other.

/// Sequential reader (one pass, explicit buffer).
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  /// Reads up to `n` bytes into `scratch`; returns the count actually
  /// read. 0 means end of file — never a transient empty read.
  virtual StatusOr<size_t> Read(char* scratch, size_t n) = 0;
};

/// Positional reader (pread or an mmap view behind it).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`. The returned view points into
  /// `scratch` OR into backend-owned memory (the mmap backend returns the
  /// mapping itself — zero copies); it stays valid until the next ReadAt
  /// on this file or the file's destruction, whichever is first. Reads
  /// past EOF return a shortened (possibly empty) view.
  virtual StatusOr<std::string_view> ReadAt(uint64_t offset, size_t n,
                                            char* scratch) const = 0;

  /// File size at open time.
  virtual uint64_t size() const = 0;
};

/// A whole file mapped (or loaded) read-only. The view is stable for the
/// mapping's lifetime.
class MappedFile {
 public:
  virtual ~MappedFile() = default;
  virtual std::string_view data() const = 0;
};

/// Appending writer. Created by Vfs::OpenWritable; byte traffic is
/// unbuffered at this layer (callers batch), so after an OK Append the
/// bytes have reached the backend (page cache for posix — Sync() makes
/// them crash-durable).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;

  /// fsync (posix) — after OK, appended bytes survive an OS crash.
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes; subsequent Appends continue from
  /// the new end (the WAL uses Truncate(0) to reset to a bare header).
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes and releases the descriptor, reporting errors (the
  /// destructor closes silently). Idempotent.
  virtual Status Close() = 0;
};

enum class WriteMode {
  kTruncate,  ///< create or wipe, write from the start
  kAppend,    ///< create if absent, write at the end
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Stable backend name ("posix", "mmap", "mem", "fault(<base>)").
  virtual std::string name() const = 0;

  // ------------------------------------------------------------ file open
  virtual StatusOr<std::unique_ptr<ReadableFile>> OpenReadable(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, WriteMode mode) = 0;

  /// Maps a whole file read-only. The base implementation buffers the file
  /// into memory (correct everywhere); the mmap backend overrides it with
  /// a real mapping, which is what makes snapshot open zero-copy there.
  virtual StatusOr<std::unique_ptr<MappedFile>> Map(const std::string& path);

  /// Reads a whole file into a string; kIoError / kNotFound on failure.
  virtual StatusOr<std::string> ReadFile(const std::string& path);

  // -------------------------------------------------------- namespace ops
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes one file; kNotFound when absent.
  virtual Status Remove(const std::string& path) = 0;

  /// True when a file or directory exists at `path`.
  virtual StatusOr<bool> Exists(const std::string& path) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// Truncates the file at `path` to `size` bytes.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Creates a directory and any missing parents (ok if already present).
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Recursively removes a directory tree (ok if already absent).
  virtual Status RemoveTree(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, sorted.
  virtual StatusOr<std::vector<std::string>> List(const std::string& dir) = 0;

  /// Best-effort fsync of a directory, making renames inside it durable.
  /// Backends without directory metadata return OK.
  virtual Status SyncDir(const std::string& path) = 0;

  // -------------------------------------------------------- singletons
  /// The buffered POSIX backend (EINTR-safe reads and writes). Process-
  /// wide; never destroyed.
  static Vfs* Posix();

  /// POSIX writes + mmap'd Map()/OpenRandomAccess(). The on-ramp for
  /// zero-copy snapshot open.
  static Vfs* Mmap();
};

/// Writes `bytes` atomically through any backend: to `path + ".tmp"`, then
/// Sync (when `sync`), then Rename over `path`, then SyncDir so the rename
/// itself is durable. A crash (or injected fault) mid-write never leaves a
/// half-written file at `path`; on failure the temp file is removed.
Status AtomicWriteFile(Vfs& vfs, const std::string& path,
                       std::string_view bytes, bool sync);

/// The directory part of `path` ("." when there is none).
std::string DirOf(const std::string& path);

/// Joins a directory and a name with exactly one separator.
std::string Join(const std::string& dir, const std::string& name);

}  // namespace xarch::vfs

#endif  // XARCH_VFS_VFS_H_
