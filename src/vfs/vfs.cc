#include "vfs/vfs.h"

#include <utility>

namespace xarch::vfs {

namespace {

/// The base-class Map(): the whole file buffered into an owned string.
class BufferedMapping final : public MappedFile {
 public:
  explicit BufferedMapping(std::string bytes) : bytes_(std::move(bytes)) {}
  std::string_view data() const override { return bytes_; }

 private:
  const std::string bytes_;
};

}  // namespace

StatusOr<std::unique_ptr<MappedFile>> Vfs::Map(const std::string& path) {
  XARCH_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return std::unique_ptr<MappedFile>(
      std::make_unique<BufferedMapping>(std::move(bytes)));
}

StatusOr<std::string> Vfs::ReadFile(const std::string& path) {
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<ReadableFile> file,
                         OpenReadable(path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    XARCH_ASSIGN_OR_RETURN(size_t n, file->Read(buf, sizeof buf));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

Status AtomicWriteFile(Vfs& vfs, const std::string& path,
                       std::string_view bytes, bool sync) {
  const std::string tmp = path + ".tmp";
  auto file_or = vfs.OpenWritable(tmp, WriteMode::kTruncate);
  if (!file_or.ok()) return file_or.status();
  WritableFile& file = **file_or;
  Status status = file.Append(bytes);
  if (status.ok() && sync) status = file.Sync();
  Status closed = file.Close();
  if (status.ok()) status = closed;
  if (status.ok()) status = vfs.Rename(tmp, path);
  if (!status.ok()) {
    (void)vfs.Remove(tmp);
    return status;
  }
  if (sync) return vfs.SyncDir(DirOf(path));
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string Join(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace xarch::vfs
