#include "vfs/mem_vfs.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

namespace xarch::vfs {

namespace {

/// Reads from a snapshot of the bytes taken at open time; later writes to
/// the file are not seen (matching a buffered read of a posix file that was
/// fully read before the write).
class MemReadableFile final : public ReadableFile {
 public:
  explicit MemReadableFile(std::string snapshot)
      : snapshot_(std::move(snapshot)) {}

  StatusOr<size_t> Read(char* scratch, size_t n) override {
    const size_t left = snapshot_.size() - pos_;
    const size_t take = std::min(n, left);
    std::copy_n(snapshot_.data() + pos_, take, scratch);
    pos_ += take;
    return take;
  }

 private:
  const std::string snapshot_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::string snapshot)
      : snapshot_(std::move(snapshot)) {}

  StatusOr<std::string_view> ReadAt(uint64_t offset, size_t n,
                                    char* /*scratch*/) const override {
    const std::string_view all = snapshot_;
    if (offset >= all.size()) return std::string_view();
    return all.substr(static_cast<size_t>(offset), n);
  }

  uint64_t size() const override { return snapshot_.size(); }

 private:
  const std::string snapshot_;
};

}  // namespace

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemVfs* vfs, std::shared_ptr<std::string> bytes)
      : vfs_(vfs), bytes_(std::move(bytes)) {}

  Status Append(std::string_view data) override {
    if (bytes_ == nullptr) return Status::IoError("mem file is closed");
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    bytes_->append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    if (bytes_ == nullptr) return Status::IoError("mem file is closed");
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (bytes_ == nullptr) return Status::IoError("mem file is closed");
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (size < bytes_->size()) {
      bytes_->resize(static_cast<size_t>(size));
    } else {
      bytes_->resize(static_cast<size_t>(size), '\0');
    }
    return Status::OK();
  }

  Status Close() override {
    bytes_.reset();
    return Status::OK();
  }

 private:
  MemVfs* const vfs_;
  std::shared_ptr<std::string> bytes_;
};

std::string MemNormalize(const std::string& path) {
  std::string out = std::filesystem::path(path).lexically_normal().string();
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

std::shared_ptr<std::string> MemVfs::FindLocked(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

StatusOr<std::unique_ptr<ReadableFile>> MemVfs::OpenReadable(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bytes = FindLocked(MemNormalize(path));
  if (bytes == nullptr) return Status::NotFound("mem open " + path);
  return std::unique_ptr<ReadableFile>(
      std::make_unique<MemReadableFile>(*bytes));
}

StatusOr<std::unique_ptr<RandomAccessFile>> MemVfs::OpenRandomAccess(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bytes = FindLocked(MemNormalize(path));
  if (bytes == nullptr) return Status::NotFound("mem open " + path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<MemRandomAccessFile>(*bytes));
}

StatusOr<std::unique_ptr<WritableFile>> MemVfs::OpenWritable(
    const std::string& path, WriteMode mode) {
  const std::string key = MemNormalize(path);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(key);
  std::shared_ptr<std::string> bytes;
  if (it == files_.end()) {
    bytes = std::make_shared<std::string>();
    files_.emplace(key, bytes);
  } else if (mode == WriteMode::kTruncate) {
    // A fresh string, not clear(): readers opened earlier keep their
    // snapshot and any stale writer keeps mutating the orphaned bytes.
    bytes = std::make_shared<std::string>();
    it->second = bytes;
  } else {
    bytes = it->second;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(this, std::move(bytes)));
}

Status MemVfs::Rename(const std::string& from, const std::string& to) {
  const std::string src = MemNormalize(from);
  const std::string dst = MemNormalize(to);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it != files_.end()) {
    files_[dst] = it->second;
    files_.erase(it);
    return Status::OK();
  }
  if (dirs_.count(src) != 0) {
    // Directory rename: rewrite the dir entry and every path under it.
    const std::string prefix = src + "/";
    std::map<std::string, std::shared_ptr<std::string>> moved;
    for (auto file = files_.begin(); file != files_.end();) {
      if (file->first.compare(0, prefix.size(), prefix) == 0) {
        moved[dst + "/" + file->first.substr(prefix.size())] = file->second;
        file = files_.erase(file);
      } else {
        ++file;
      }
    }
    files_.insert(moved.begin(), moved.end());
    std::set<std::string> kept_dirs;
    for (const std::string& dir : dirs_) {
      if (dir == src) {
        kept_dirs.insert(dst);
      } else if (dir.compare(0, prefix.size(), prefix) == 0) {
        kept_dirs.insert(dst + "/" + dir.substr(prefix.size()));
      } else {
        kept_dirs.insert(dir);
      }
    }
    dirs_ = std::move(kept_dirs);
    return Status::OK();
  }
  return Status::NotFound("mem rename " + from);
}

Status MemVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(MemNormalize(path)) == 0) {
    return Status::NotFound("mem remove " + path);
  }
  return Status::OK();
}

StatusOr<bool> MemVfs::Exists(const std::string& path) {
  const std::string key = MemNormalize(path);
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(key) != 0 || dirs_.count(key) != 0;
}

StatusOr<uint64_t> MemVfs::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bytes = FindLocked(MemNormalize(path));
  if (bytes == nullptr) return Status::NotFound("mem stat " + path);
  return static_cast<uint64_t>(bytes->size());
}

Status MemVfs::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bytes = FindLocked(MemNormalize(path));
  if (bytes == nullptr) return Status::NotFound("mem truncate " + path);
  if (size < bytes->size()) {
    bytes->resize(static_cast<size_t>(size));
  } else {
    bytes->resize(static_cast<size_t>(size), '\0');
  }
  return Status::OK();
}

Status MemVfs::CreateDirs(const std::string& path) {
  std::string key = MemNormalize(path);
  std::lock_guard<std::mutex> lock(mu_);
  while (!key.empty() && key != "/" && key != ".") {
    dirs_.insert(key);
    const size_t slash = key.find_last_of('/');
    if (slash == std::string::npos) break;
    key = slash == 0 ? "/" : key.substr(0, slash);
  }
  return Status::OK();
}

Status MemVfs::RemoveTree(const std::string& path) {
  const std::string key = MemNormalize(path);
  const std::string prefix = key + "/";
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(key);
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    if (*it == key || it->compare(0, prefix.size(), prefix) == 0) {
      it = dirs_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> MemVfs::List(const std::string& dir) {
  const std::string key = MemNormalize(dir);
  const std::string prefix = key == "/" ? "/" : key + "/";
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> names;
  auto collect = [&](const std::string& entry) {
    if (entry.compare(0, prefix.size(), prefix) != 0) return;
    const std::string rest = entry.substr(prefix.size());
    const size_t slash = rest.find('/');
    const std::string name =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    if (!name.empty()) names.insert(name);
  };
  for (const auto& [path, bytes] : files_) collect(path);
  for (const std::string& sub : dirs_) collect(sub);
  if (names.empty() && dirs_.count(key) == 0) {
    return Status::NotFound("mem list " + dir);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Status MemVfs::SyncDir(const std::string& /*path*/) { return Status::OK(); }

size_t MemVfs::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace xarch::vfs
