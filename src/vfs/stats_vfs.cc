#include "vfs/stats_vfs.h"

#include <utility>

namespace xarch::vfs {

namespace {

constexpr const char* kOpNames[] = {
    "open_readable", "open_random_access", "open_writable", "map",
    "read_file", "rename", "remove", "exists", "file_size", "truncate",
    "create_dirs", "remove_tree", "list", "sync_dir", "read", "read_at",
    "append", "fsync", "file_truncate", "close",
};
static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) ==
              static_cast<size_t>(StatsVfs::kOpCount));

/// Sequential reader counting bytes and errors through the wrapper.
class StatsReadableFile final : public ReadableFile {
 public:
  StatsReadableFile(std::unique_ptr<ReadableFile> base, StatsVfs* stats)
      : base_(std::move(base)), stats_(stats) {}

  StatusOr<size_t> Read(char* scratch, size_t n) override {
    StatusOr<size_t> got = base_->Read(scratch, n);
    stats_->Count(StatsVfs::kRead, got.ok());
    if (got.ok()) stats_->CountReadBytes(*got);
    return got;
  }

 private:
  std::unique_ptr<ReadableFile> base_;
  StatsVfs* stats_;
};

class StatsRandomAccessFile final : public RandomAccessFile {
 public:
  StatsRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        StatsVfs* stats)
      : base_(std::move(base)), stats_(stats) {}

  StatusOr<std::string_view> ReadAt(uint64_t offset, size_t n,
                                    char* scratch) const override {
    StatusOr<std::string_view> got = base_->ReadAt(offset, n, scratch);
    stats_->Count(StatsVfs::kReadAt, got.ok());
    if (got.ok()) stats_->CountReadBytes(got->size());
    return got;
  }

  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  StatsVfs* stats_;
};

class StatsWritableFile final : public WritableFile {
 public:
  StatsWritableFile(std::unique_ptr<WritableFile> base, StatsVfs* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Append(std::string_view data) override {
    Status st = base_->Append(data);
    stats_->Count(StatsVfs::kAppend, st.ok());
    if (st.ok()) stats_->CountWriteBytes(data.size());
    return st;
  }

  Status Sync() override {
    Status st = base_->Sync();
    stats_->Count(StatsVfs::kFsync, st.ok());
    return st;
  }

  Status Truncate(uint64_t size) override {
    Status st = base_->Truncate(size);
    stats_->Count(StatsVfs::kFileTruncate, st.ok());
    return st;
  }

  Status Close() override {
    Status st = base_->Close();
    stats_->Count(StatsVfs::kClose, st.ok());
    return st;
  }

 private:
  std::unique_ptr<WritableFile> base_;
  StatsVfs* stats_;
};

}  // namespace

StatsVfs::StatsVfs(Vfs* base, obs::Registry* registry) : base_(base) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  const std::string backend = "backend=\"" + base_->name() + "\"";
  for (size_t op = 0; op < kOpCount; ++op) {
    const std::string labels = backend + ",op=\"" + kOpNames[op] + "\"";
    ops_[op] = reg.GetCounter("xarch_vfs_ops_total", labels,
                              "VFS operations by backend and op");
    errors_[op] = reg.GetCounter("xarch_vfs_errors_total", labels,
                                 "Failed VFS operations by backend and op");
  }
  read_bytes_ =
      reg.GetCounter("xarch_vfs_bytes_total", backend + ",dir=\"read\"",
                     "Bytes moved through the VFS by direction");
  write_bytes_ =
      reg.GetCounter("xarch_vfs_bytes_total", backend + ",dir=\"write\"", "");
}

void StatsVfs::Count(Op op, bool ok) {
  ops_[op]->Increment();
  if (!ok) errors_[op]->Increment();
}

std::string StatsVfs::name() const { return "stats(" + base_->name() + ")"; }

StatusOr<std::unique_ptr<ReadableFile>> StatsVfs::OpenReadable(
    const std::string& path) {
  auto got = base_->OpenReadable(path);
  Count(kOpenReadable, got.ok());
  if (!got.ok()) return got.status();
  return std::unique_ptr<ReadableFile>(
      std::make_unique<StatsReadableFile>(std::move(*got), this));
}

StatusOr<std::unique_ptr<RandomAccessFile>> StatsVfs::OpenRandomAccess(
    const std::string& path) {
  auto got = base_->OpenRandomAccess(path);
  Count(kOpenRandomAccess, got.ok());
  if (!got.ok()) return got.status();
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<StatsRandomAccessFile>(std::move(*got), this));
}

StatusOr<std::unique_ptr<WritableFile>> StatsVfs::OpenWritable(
    const std::string& path, WriteMode mode) {
  auto got = base_->OpenWritable(path, mode);
  Count(kOpenWritable, got.ok());
  if (!got.ok()) return got.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<StatsWritableFile>(std::move(*got), this));
}

StatusOr<std::unique_ptr<MappedFile>> StatsVfs::Map(const std::string& path) {
  auto got = base_->Map(path);
  Count(kMap, got.ok());
  if (got.ok()) CountReadBytes((*got)->data().size());
  return got;
}

StatusOr<std::string> StatsVfs::ReadFile(const std::string& path) {
  auto got = base_->ReadFile(path);
  Count(kReadFile, got.ok());
  if (got.ok()) CountReadBytes(got->size());
  return got;
}

Status StatsVfs::Rename(const std::string& from, const std::string& to) {
  Status st = base_->Rename(from, to);
  Count(kRename, st.ok());
  return st;
}

Status StatsVfs::Remove(const std::string& path) {
  Status st = base_->Remove(path);
  Count(kRemove, st.ok());
  return st;
}

StatusOr<bool> StatsVfs::Exists(const std::string& path) {
  auto got = base_->Exists(path);
  Count(kExists, got.ok());
  return got;
}

StatusOr<uint64_t> StatsVfs::FileSize(const std::string& path) {
  auto got = base_->FileSize(path);
  Count(kFileSize, got.ok());
  return got;
}

Status StatsVfs::Truncate(const std::string& path, uint64_t size) {
  Status st = base_->Truncate(path, size);
  Count(kTruncate, st.ok());
  return st;
}

Status StatsVfs::CreateDirs(const std::string& path) {
  Status st = base_->CreateDirs(path);
  Count(kCreateDirs, st.ok());
  return st;
}

Status StatsVfs::RemoveTree(const std::string& path) {
  Status st = base_->RemoveTree(path);
  Count(kRemoveTree, st.ok());
  return st;
}

StatusOr<std::vector<std::string>> StatsVfs::List(const std::string& dir) {
  auto got = base_->List(dir);
  Count(kList, got.ok());
  return got;
}

Status StatsVfs::SyncDir(const std::string& path) {
  Status st = base_->SyncDir(path);
  Count(kSyncDir, st.ok());
  return st;
}

}  // namespace xarch::vfs
