#ifndef XARCH_VFS_MEM_VFS_H_
#define XARCH_VFS_MEM_VFS_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "vfs/vfs.h"

namespace xarch::vfs {

/// \brief An entirely in-memory Vfs: files are strings in a map, directories
/// a set of names. Tests and benches run the full save/open/recover stack on
/// it with no temp-dir churn, and it is the usual base under FaultVfs —
/// "crash" is simply dropping the writer and reopening.
///
/// Semantics mirror POSIX where the persistence stack cares: Rename
/// atomically replaces the target, Truncate(0)+Append restarts a file,
/// writers opened before a rename keep mutating the same bytes (fd
/// semantics). Sync/SyncDir are no-ops — every OK Append is already
/// "durable" here.
class MemVfs final : public Vfs {
 public:
  MemVfs() = default;
  MemVfs(const MemVfs&) = delete;
  MemVfs& operator=(const MemVfs&) = delete;

  std::string name() const override { return "mem"; }

  StatusOr<std::unique_ptr<ReadableFile>> OpenReadable(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, WriteMode mode) override;

  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  StatusOr<bool> Exists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveTree(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(const std::string& dir) override;
  Status SyncDir(const std::string& path) override;

  /// Number of files currently stored (diagnostics in tests).
  size_t file_count() const;

 private:
  friend class MemWritableFile;

  /// Returns the file's bytes, or null when absent. Caller holds mu_.
  std::shared_ptr<std::string> FindLocked(const std::string& path) const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
  std::set<std::string> dirs_;
};

/// Normalizes a path the way MemVfs keys its map ("a//b/../c" -> "a/c").
/// Exposed so tests can assert on stored names.
std::string MemNormalize(const std::string& path);

}  // namespace xarch::vfs

#endif  // XARCH_VFS_MEM_VFS_H_
