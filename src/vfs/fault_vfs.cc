#include "vfs/fault_vfs.h"

#include <algorithm>
#include <utility>

namespace xarch::vfs {

namespace {

Status InjectedFault(const char* what) {
  return Status::IoError(std::string("injected fault: ") + what);
}

}  // namespace

/// Wraps a base WritableFile, consulting the FaultVfs before every mutating
/// call. A fired write fault may first push a torn prefix into the base file.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultVfs* vfs, std::unique_ptr<WritableFile> base)
      : vfs_(vfs), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    size_t prefix = 0;
    if (vfs_->ShouldFail(FaultVfs::Op::kWrite, &prefix)) {
      if (prefix > 0) {
        (void)base_->Append(data.substr(0, std::min(prefix, data.size())));
      }
      return InjectedFault("write");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    size_t unused;
    if (vfs_->ShouldFail(FaultVfs::Op::kSync, &unused)) {
      return InjectedFault("fsync");
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    size_t unused;
    if (vfs_->ShouldFail(FaultVfs::Op::kTruncate, &unused)) {
      return InjectedFault("truncate");
    }
    return base_->Truncate(size);
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultVfs* const vfs_;
  const std::unique_ptr<WritableFile> base_;
};

void FaultVfs::FailNth(Op op, uint64_t n, size_t persist_prefix) {
  const int i = static_cast<int>(op);
  std::lock_guard<std::mutex> lock(mu_);
  armed_[i] = true;
  fail_at_[i] = counts_[i] + n;
  prefix_[i] = persist_prefix;
}

void FaultVfs::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(armed_, armed_ + kOpCount, false);
}

uint64_t FaultVfs::Count(Op op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<int>(op)];
}

void FaultVfs::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_, counts_ + kOpCount, 0);
}

uint64_t FaultVfs::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

bool FaultVfs::ShouldFail(Op op, size_t* persist_prefix) {
  const int i = static_cast<int>(op);
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[i];
  if (!armed_[i] || counts_[i] != fail_at_[i]) return false;
  armed_[i] = false;
  *persist_prefix = prefix_[i];
  ++faults_injected_;
  return true;
}

StatusOr<std::unique_ptr<WritableFile>> FaultVfs::OpenWritable(
    const std::string& path, WriteMode mode) {
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->OpenWritable(path, mode));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(base)));
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  size_t unused;
  if (ShouldFail(Op::kRename, &unused)) return InjectedFault("rename");
  return base_->Rename(from, to);
}

Status FaultVfs::Truncate(const std::string& path, uint64_t size) {
  size_t unused;
  if (ShouldFail(Op::kTruncate, &unused)) return InjectedFault("truncate");
  return base_->Truncate(path, size);
}

}  // namespace xarch::vfs
