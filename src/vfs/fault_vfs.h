#ifndef XARCH_VFS_FAULT_VFS_H_
#define XARCH_VFS_FAULT_VFS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "vfs/vfs.h"

namespace xarch::vfs {

/// \brief A Vfs decorator that fails the Nth mutating operation on demand —
/// the deterministic stand-in for a disk that dies mid-checkpoint.
///
/// Reads always pass through untouched; only the four mutating ops are
/// interceptable. A schedule is armed with FailNth(op, n): the nth op of
/// that kind (1-based, counted from arming) returns kIoError instead of
/// reaching the base backend, then the trap disarms itself, so recovery code
/// runs against a healthy backend — exactly the crash-then-reboot shape.
///
/// For kWrite faults, `persist_prefix` simulates a torn write: that many
/// bytes of the failing Append reach the base file before the error, which
/// is how the tests plant torn WAL tails at every byte boundary.
///
/// Counters run independently of traps: run a scenario once fault-free,
/// read `Count(op)`, and you know the exact sweep range for "fail every
/// possible Nth op" loops.
class FaultVfs final : public Vfs {
 public:
  enum class Op : int { kWrite = 0, kSync = 1, kRename = 2, kTruncate = 3 };
  static constexpr int kOpCount = 4;

  explicit FaultVfs(Vfs* base) : base_(base) {}
  FaultVfs(const FaultVfs&) = delete;
  FaultVfs& operator=(const FaultVfs&) = delete;

  /// Arms a one-shot trap: the nth `op` from now (1-based) fails with
  /// kIoError and disarms the trap. For kWrite, `persist_prefix` bytes of
  /// the failing Append still reach the base file (torn write); it is
  /// ignored for other ops. Re-arming an op replaces its pending trap.
  void FailNth(Op op, uint64_t n, size_t persist_prefix = 0);

  /// Disarms every pending trap (counters keep running).
  void Clear();

  /// Ops of this kind observed since construction or ResetCounters().
  uint64_t Count(Op op) const;

  /// Zeroes all counters (traps, if armed, still count from their arming).
  void ResetCounters();

  /// Total faults injected since construction (sanity checks in tests).
  uint64_t faults_injected() const;

  std::string name() const override { return "fault(" + base_->name() + ")"; }

  StatusOr<std::unique_ptr<ReadableFile>> OpenReadable(
      const std::string& path) override {
    return base_->OpenReadable(path);
  }
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    return base_->OpenRandomAccess(path);
  }
  StatusOr<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, WriteMode mode) override;
  StatusOr<std::unique_ptr<MappedFile>> Map(const std::string& path) override {
    return base_->Map(path);
  }
  StatusOr<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }

  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override { return base_->Remove(path); }
  StatusOr<bool> Exists(const std::string& path) override {
    return base_->Exists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Status RemoveTree(const std::string& path) override {
    return base_->RemoveTree(path);
  }
  StatusOr<std::vector<std::string>> List(const std::string& dir) override {
    return base_->List(dir);
  }
  Status SyncDir(const std::string& path) override {
    return base_->SyncDir(path);
  }

 private:
  friend class FaultWritableFile;

  /// Counts one `op`; returns true (and the torn-write prefix) when the
  /// armed trap for it fires. Firing disarms the trap.
  bool ShouldFail(Op op, size_t* persist_prefix);

  Vfs* const base_;
  mutable std::mutex mu_;
  uint64_t counts_[kOpCount] = {};
  bool armed_[kOpCount] = {};
  uint64_t fail_at_[kOpCount] = {};
  size_t prefix_[kOpCount] = {};
  uint64_t faults_injected_ = 0;
};

}  // namespace xarch::vfs

#endif  // XARCH_VFS_FAULT_VFS_H_
