#ifndef XARCH_VFS_STATS_VFS_H_
#define XARCH_VFS_STATS_VFS_H_

#include <string>

#include "obs/metrics.h"
#include "vfs/vfs.h"

namespace xarch::vfs {

/// \brief An instrumenting Vfs wrapper: forwards every call to a base
/// backend and counts operations, bytes, and errors into an obs::Registry
/// under the base backend's name —
///
///   xarch_vfs_ops_total{backend="posix",op="append"}
///   xarch_vfs_errors_total{backend="posix",op="fsync"}
///   xarch_vfs_bytes_total{backend="posix",dir="write"}
///
/// File handles returned by the open calls are wrapped too, so per-read
/// and per-append byte counts are attributed to the backend that served
/// them. xarchd wraps its disk Vfs in one of these; tests wrap MemVfs to
/// assert I/O shapes without touching a disk.
///
/// All counters are pre-registered at construction: the per-op hot path
/// is two relaxed atomic adds, no registry lookups.
class StatsVfs final : public Vfs {
 public:
  /// Counts into `registry` (the process default when nullptr). `base`
  /// must outlive this wrapper.
  explicit StatsVfs(Vfs* base, obs::Registry* registry = nullptr);

  std::string name() const override;

  StatusOr<std::unique_ptr<ReadableFile>> OpenReadable(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, WriteMode mode) override;
  StatusOr<std::unique_ptr<MappedFile>> Map(const std::string& path) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  StatusOr<bool> Exists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveTree(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(const std::string& dir) override;
  Status SyncDir(const std::string& path) override;

  /// The fixed operation vocabulary (indexes the op label table). Public
  /// so the wrapped file handles (internal to stats_vfs.cc) can report
  /// through the wrapper; not part of the intended caller surface.
  enum Op {
    kOpenReadable, kOpenRandomAccess, kOpenWritable, kMap, kReadFile,
    kRename, kRemove, kExists, kFileSize, kTruncate, kCreateDirs,
    kRemoveTree, kList, kSyncDir, kRead, kReadAt, kAppend, kFsync,
    kFileTruncate, kClose,
    kOpCount,
  };

  void Count(Op op, bool ok);
  void CountReadBytes(uint64_t n) { read_bytes_->Add(n); }
  void CountWriteBytes(uint64_t n) { write_bytes_->Add(n); }

 private:
  Vfs* base_;
  obs::Counter* ops_[kOpCount];
  obs::Counter* errors_[kOpCount];
  obs::Counter* read_bytes_;
  obs::Counter* write_bytes_;
};

}  // namespace xarch::vfs

#endif  // XARCH_VFS_STATS_VFS_H_
