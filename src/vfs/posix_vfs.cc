#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/posix_io.h"
#include "vfs/vfs.h"

namespace xarch::vfs {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) {
    return Status::NotFound(what + " " + path + ": " + std::strerror(err));
  }
  return Status::IoError(what + " " + path + ": " + std::strerror(err));
}

// ------------------------------------------------------------------ files

class PosixReadableFile final : public ReadableFile {
 public:
  PosixReadableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixReadableFile() override { ::close(fd_); }

  StatusOr<size_t> Read(char* scratch, size_t n) override {
    const ssize_t got = util::RetryEintr([&] { return ::read(fd_, scratch, n); });
    if (got < 0) return Errno("read", path_);
    return static_cast<size_t>(got);
  }

 private:
  const int fd_;
  const std::string path_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  StatusOr<std::string_view> ReadAt(uint64_t offset, size_t n,
                                    char* scratch) const override {
    const ssize_t got = util::RetryEintr(
        [&] { return ::pread(fd_, scratch, n, static_cast<off_t>(offset)); });
    if (got < 0) return Errno("pread", path_);
    return std::string_view(scratch, static_cast<size_t>(got));
  }

  uint64_t size() const override { return size_; }

 private:
  const int fd_;
  const uint64_t size_;
  const std::string path_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError(path_ + " is closed");
    return util::WriteFull(
        data,
        [&](const char* p, size_t n) { return ::write(fd_, p, n); }, path_);
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError(path_ + " is closed");
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::IoError(path_ + " is closed");
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
};

// ------------------------------------------------------------------- mmap

class MmapMapping final : public MappedFile {
 public:
  MmapMapping(void* base, size_t length) : base_(base), length_(length) {}
  ~MmapMapping() override {
    if (base_ != nullptr) ::munmap(base_, length_);
  }
  std::string_view data() const override {
    return std::string_view(static_cast<const char*>(base_), length_);
  }

 private:
  void* const base_;
  const size_t length_;
};

class EmptyMapping final : public MappedFile {
 public:
  std::string_view data() const override { return {}; }
};

/// A RandomAccessFile over an mmap: ReadAt returns views straight into the
/// mapping — no copy, no scratch use.
class MmapRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MmapRandomAccessFile(std::unique_ptr<MappedFile> mapping)
      : mapping_(std::move(mapping)) {}

  StatusOr<std::string_view> ReadAt(uint64_t offset, size_t n,
                                    char* /*scratch*/) const override {
    const std::string_view all = mapping_->data();
    if (offset >= all.size()) return std::string_view();
    return all.substr(static_cast<size_t>(offset), n);
  }

  uint64_t size() const override { return mapping_->data().size(); }

 private:
  const std::unique_ptr<MappedFile> mapping_;
};

// -------------------------------------------------------------- PosixVfs

class PosixVfs : public Vfs {
 public:
  std::string name() const override { return "posix"; }

  StatusOr<std::unique_ptr<ReadableFile>> OpenReadable(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<ReadableFile>(
        std::make_unique<PosixReadableFile>(fd, path));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status status = Errno("fstat", path);
      ::close(fd);
      return status;
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(
            fd, static_cast<uint64_t>(st.st_size), path));
  }

  StatusOr<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, WriteMode mode) override {
    const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                      (mode == WriteMode::kTruncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("remove", path);
    return Status::OK();
  }

  StatusOr<bool> Exists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return Errno("stat", path);
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IoError("mkdir " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveTree(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
    if (ec) {
      return Status::IoError("remove tree " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> List(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IoError("list " + dir + ": " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::OK();  // best-effort metadata sync
    ::fsync(fd);
    ::close(fd);
    return Status::OK();
  }
};

// --------------------------------------------------------------- MmapVfs

class MmapVfs final : public PosixVfs {
 public:
  std::string name() const override { return "mmap"; }

  StatusOr<std::unique_ptr<MappedFile>> Map(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status status = Errno("fstat", path);
      ::close(fd);
      return status;
    }
    const size_t length = static_cast<size_t>(st.st_size);
    if (length == 0) {
      ::close(fd);
      return std::unique_ptr<MappedFile>(std::make_unique<EmptyMapping>());
    }
    void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the pages alive
    if (base == MAP_FAILED) return Errno("mmap", path);
    return std::unique_ptr<MappedFile>(
        std::make_unique<MmapMapping>(base, length));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    XARCH_ASSIGN_OR_RETURN(std::unique_ptr<MappedFile> mapping, Map(path));
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<MmapRandomAccessFile>(std::move(mapping)));
  }
};

}  // namespace

Vfs* Vfs::Posix() {
  static PosixVfs* const vfs = new PosixVfs();
  return vfs;
}

Vfs* Vfs::Mmap() {
  static MmapVfs* const vfs = new MmapVfs();
  return vfs;
}

}  // namespace xarch::vfs
