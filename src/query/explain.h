#ifndef XARCH_QUERY_EXPLAIN_H_
#define XARCH_QUERY_EXPLAIN_H_

#include "query/evaluator.h"

namespace xarch::query {

/// \brief EXPLAIN mode: runs the plan with its results discarded (counted,
/// not streamed) and streams a report instead — the compiled operators
/// plus the evaluation counters. Because ProbeStats counts the indexed
/// probes and the hypothetical full-scan probes in the same pass, one run
/// reports indexed vs naive cost side by side.

/// EXPLAIN over the archive plans.
Status ExplainArchive(const Plan& plan, const core::Archive& archive,
                      const index::ArchiveIndex* index, Sink& sink,
                      EvalResult* result, const EvalOptions& options = {});

/// EXPLAIN over any ArchiveView (the mapped XAR2 read path); the report's
/// access line carries `mapped=true` when the view navigates mapped bytes.
Status ExplainView(const Plan& plan, const core::ArchiveView& view,
                   const index::ViewIndex* index, const ArchiveDiffFn& diff,
                   Sink& sink, EvalResult* result,
                   const EvalOptions& options = {});

/// EXPLAIN over the generic store plan.
Status ExplainOverStore(const Plan& plan, StorePrimitives& store, Sink& sink,
                        EvalResult* result, const EvalOptions& options = {});

/// The report text itself (shared by both entry points; exposed for
/// tests). `eval_status` is the outcome of the discarded evaluation run.
/// With a non-null `trace` (EXPLAIN ANALYZE: the trace the evaluation ran
/// under), the rendered span tree follows the stats block.
std::string FormatExplain(const Plan& plan, const EvalResult& result,
                          const Status& eval_status,
                          const obs::Trace* trace = nullptr);

}  // namespace xarch::query

#endif  // XARCH_QUERY_EXPLAIN_H_
