#ifndef XARCH_QUERY_PLANNER_H_
#define XARCH_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "query/ast.h"

namespace xarch::query {

/// How the plan reaches the data.
enum class Access {
  /// Streaming evaluation over the merged hierarchy, directed by an
  /// index::ArchiveIndex: sorted-key binary search for keyed steps and
  /// timestamp-tree pruning for snapshots.
  kArchiveIndexed,
  /// Streaming evaluation over the merged hierarchy with full child scans
  /// (the Sec. 7.1 naive scan).
  kArchiveScan,
  /// Interface-level evaluation through Store primitives (Retrieve /
  /// History / DiffVersions) — the fallback that gives every backend
  /// queries, at full-scan cost.
  kGeneric,
  /// Interface-level evaluation over a sharded store: every primitive
  /// call scatters to (or is routed within) the key-range shards and the
  /// per-shard results merge in key order (xarch/sharded_store.h).
  kShardScatter,
};

const char* AccessName(Access access);

/// \brief A compiled query: the AST plus the chosen access strategy and
/// per-operator notes (what EXPLAIN prints).
struct Plan {
  Query ast;
  Access access = Access::kArchiveScan;
  /// One line per path step: the navigation operator chosen for it.
  std::vector<std::string> step_notes;
  /// The execution operator for the temporal qualifier.
  std::string exec_note;
};

/// Compiles an AST into a plan for the given access strategy. Pure
/// function of (ast, access): operator choice depends only on step shape
/// (keyed steps get the sorted-key binary search under kArchiveIndexed;
/// bare and wildcard steps always scan the children).
Plan MakePlan(Query ast, Access access);

}  // namespace xarch::query

#endif  // XARCH_QUERY_PLANNER_H_
