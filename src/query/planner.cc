#include "query/planner.h"

namespace xarch::query {

const char* AccessName(Access access) {
  switch (access) {
    case Access::kArchiveIndexed: return "archive-indexed";
    case Access::kArchiveScan: return "archive-scan";
    case Access::kGeneric: return "store-generic";
    case Access::kShardScatter: return "shard-scatter";
  }
  return "?";
}

namespace {

std::string StepNote(const Step& step, Access access) {
  if (access == Access::kGeneric || access == Access::kShardScatter) {
    return step.keyed() ? "navigate parsed document, match key paths"
                        : "navigate parsed document, match tag";
  }
  if (step.keyed()) {
    return access == Access::kArchiveIndexed
               ? "sorted-key binary search (index)"
               : "keyed-child scan";
  }
  return "child scan by tag";
}

std::string ExecNote(const Temporal& temporal, Access access) {
  switch (temporal.kind) {
    case TemporalKind::kVersion:
    case TemporalKind::kRange:
      switch (access) {
        case Access::kArchiveIndexed:
          return "timestamp-tree pruned subtree stream";
        case Access::kArchiveScan:
          return "full-scan subtree stream";
        case Access::kGeneric:
          return "Retrieve() + parse + subtree serialization";
        case Access::kShardScatter:
          return "scatter Retrieve() across shards, merge sub-documents "
                 "in key order";
      }
      break;
    case TemporalKind::kHistory:
      switch (access) {
        case Access::kArchiveIndexed:
        case Access::kArchiveScan:
          return "effective-timestamp read at the matched nodes";
        case Access::kGeneric:
          return "History() when advertised, else per-version full scan";
        case Access::kShardScatter:
          return "route History() to candidate shards by key fingerprint";
      }
      break;
    case TemporalKind::kDiff:
      switch (access) {
        case Access::kArchiveIndexed:
        case Access::kArchiveScan:
          return "key-based change walk, filtered to the path";
        case Access::kGeneric:
          return "DiffVersions(), filtered to the path";
        case Access::kShardScatter:
          return "scatter DiffVersions(), concatenate per-shard changes "
                 "in key order";
      }
      break;
  }
  return "?";
}

}  // namespace

Plan MakePlan(Query ast, Access access) {
  Plan plan;
  plan.access = access;
  plan.step_notes.reserve(ast.steps.size());
  for (const Step& step : ast.steps) {
    plan.step_notes.push_back(StepNote(step, access));
  }
  plan.exec_note = ExecNote(ast.temporal, access);
  plan.ast = std::move(ast);
  return plan;
}

}  // namespace xarch::query
