#include "query/lexer.h"

#include <cctype>

namespace xarch::query {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == ':';
}

Status ErrorAt(size_t pos, const std::string& what) {
  return Status::ParseError("query: " + what + " at offset " +
                            std::to_string(pos));
}

}  // namespace

std::string TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kComma: return "','";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kName: return "name";
    case TokenKind::kInt: return "integer";
    case TokenKind::kString: return "quoted string";
    case TokenKind::kEnd: return "end of query";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, size_t pos, std::string text = "") {
    tokens.push_back(Token{kind, std::move(text), pos});
  };
  while (i < n) {
    const char c = input[i];
    const size_t pos = i;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '/': push(TokenKind::kSlash, pos); ++i; continue;
      case '[': push(TokenKind::kLBracket, pos); ++i; continue;
      case ']': push(TokenKind::kRBracket, pos); ++i; continue;
      case '@': push(TokenKind::kAt, pos); ++i; continue;
      case '=': push(TokenKind::kEq, pos); ++i; continue;
      case ',': push(TokenKind::kComma, pos); ++i; continue;
      case '*': push(TokenKind::kStar, pos); ++i; continue;
      case '.':
        if (i + 1 < n && input[i + 1] == '.') {
          push(TokenKind::kDotDot, pos);
          i += 2;
        } else {
          push(TokenKind::kDot, pos);
          ++i;
        }
        continue;
      case '"': {
        std::string value;
        ++i;
        bool closed = false;
        while (i < n) {
          if (input[i] == '\\') {
            if (i + 1 >= n) break;
            const char esc = input[i + 1];
            if (esc != '"' && esc != '\\') {
              return ErrorAt(i, "unknown escape '\\" + std::string(1, esc) +
                                    "' in string");
            }
            value += esc;
            i += 2;
            continue;
          }
          if (input[i] == '"') {
            closed = true;
            ++i;
            break;
          }
          value += input[i];
          ++i;
        }
        if (!closed) return ErrorAt(pos, "unterminated string");
        push(TokenKind::kString, pos, std::move(value));
        continue;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      push(TokenKind::kInt, pos, std::string(input.substr(i, j - i)));
      i = j;
      continue;
    }
    if (IsNameStart(c)) {
      size_t j = i + 1;
      while (j < n && IsNameChar(input[j])) ++j;
      push(TokenKind::kName, pos, std::string(input.substr(i, j - i)));
      i = j;
      continue;
    }
    return ErrorAt(pos, "stray character '" + std::string(1, c) + "'");
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace xarch::query
