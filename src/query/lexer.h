#ifndef XARCH_QUERY_LEXER_H_
#define XARCH_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch::query {

/// Token kinds of the XAQL surface syntax.
enum class TokenKind {
  kSlash,     // /
  kLBracket,  // [
  kRBracket,  // ]
  kAt,        // @
  kEq,        // =
  kComma,     // ,
  kStar,      // *
  kDot,       // .
  kDotDot,    // ..
  kName,      // tag / key-path segment / keyword
  kInt,       // version number
  kString,    // "quoted value" with \" and \\ escapes
  kEnd,       // end of input
};

/// Renders a kind for error messages ("'['", "name", ...).
std::string TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Name text, digits of an int, or the unescaped string value.
  std::string text;
  /// Byte offset in the query (for error messages).
  size_t pos = 0;
};

/// Tokenizes a whole query. Names are [A-Za-z_][A-Za-z0-9_:-]* (no dots —
/// '.' and '..' are tokens of their own). Whitespace separates tokens and
/// is otherwise ignored. Fails with kParseError on stray characters or an
/// unterminated string, naming the byte offset.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace xarch::query

#endif  // XARCH_QUERY_LEXER_H_
