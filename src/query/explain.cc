#include "query/explain.h"

namespace xarch::query {

namespace {

Status StreamReport(const Plan& plan, const EvalResult& result,
                    const Status& eval_status, const obs::Trace* trace,
                    Sink& sink) {
  XARCH_RETURN_NOT_OK(
      sink.Append(FormatExplain(plan, result, eval_status, trace)));
  return sink.Flush();
}

}  // namespace

std::string FormatExplain(const Plan& plan, const EvalResult& result,
                          const Status& eval_status, const obs::Trace* trace) {
  Query canonical = plan.ast;
  canonical.explain = false;
  canonical.analyze = false;
  std::string out = "XAQL EXPLAIN\n";
  out += "query:  " + canonical.ToString() + "\n";
  out += "access: " + std::string(AccessName(plan.access));
  if (result.mapped) out += " (mapped=true)";
  out += "\n";
  out += "plan:\n";
  for (size_t i = 0; i < plan.ast.steps.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". /" + plan.ast.steps[i].ToString();
    if (i < plan.step_notes.size()) out += " — " + plan.step_notes[i];
    out += '\n';
  }
  out += "  exec: " + plan.ast.temporal.ToString() + " — " + plan.exec_note +
         "\n";
  out += "stats:\n";
  out += "  matches:          " + std::to_string(result.matches) + "\n";
  out += "  bytes streamed:   " + std::to_string(result.bytes_streamed) + "\n";
  out += "  tree probes:      " + std::to_string(result.probes.tree_probes) +
         "\n";
  out += "  naive probes:     " + std::to_string(result.probes.naive_probes) +
         "\n";
  out += "  key comparisons:  " + std::to_string(result.probes.comparisons) +
         "\n";
  if (result.versions_scanned > 0) {
    out += "  versions scanned: " + std::to_string(result.versions_scanned) +
           "\n";
  }
  if (!result.shards.empty()) {
    out += "shards:\n";
    for (const EvalResult::ShardProbe& probe : result.shards) {
      out += "  shard " + std::to_string(probe.shard) +
             ": probes=" + std::to_string(probe.probes) + "\n";
    }
  }
  if (!eval_status.ok()) {
    out += "result: " + eval_status.ToString() + "\n";
  }
  if (trace != nullptr && trace->span_count() > 0) {
    out += trace->Render();
  }
  return out;
}

Status ExplainArchive(const Plan& plan, const core::Archive& archive,
                      const index::ArchiveIndex* index, Sink& sink,
                      EvalResult* result, const EvalOptions& options) {
  EvalResult local;
  EvalResult& r = result != nullptr ? *result : local;
  CountingSink discard;
  Status eval_status = Evaluate(plan, archive, index, discard, &r, options);
  return StreamReport(plan, r, eval_status, options.trace, sink);
}

Status ExplainView(const Plan& plan, const core::ArchiveView& view,
                   const index::ViewIndex* index, const ArchiveDiffFn& diff,
                   Sink& sink, EvalResult* result, const EvalOptions& options) {
  EvalResult local;
  EvalResult& r = result != nullptr ? *result : local;
  CountingSink discard;
  Status eval_status =
      EvaluateView(plan, view, index, diff, discard, &r, options);
  return StreamReport(plan, r, eval_status, options.trace, sink);
}

Status ExplainOverStore(const Plan& plan, StorePrimitives& store, Sink& sink,
                        EvalResult* result, const EvalOptions& options) {
  EvalResult local;
  EvalResult& r = result != nullptr ? *result : local;
  CountingSink discard;
  Status eval_status = EvaluateOverStore(plan, store, discard, &r, options);
  return StreamReport(plan, r, eval_status, options.trace, sink);
}

}  // namespace xarch::query
