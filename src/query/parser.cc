#include "query/parser.h"

#include <limits>

#include "query/lexer.h"

namespace xarch::query {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> Run() {
    Query query;
    if (At(TokenKind::kName) && Peek().text == "explain") {
      query.explain = true;
      Advance();
      if (At(TokenKind::kName) && Peek().text == "analyze") {
        query.analyze = true;
        Advance();
      }
    }
    if (!At(TokenKind::kSlash)) {
      return Error("expected a path expression starting with '/'");
    }
    while (At(TokenKind::kSlash)) {
      Advance();
      XARCH_ASSIGN_OR_RETURN(Step step, ParseStep());
      query.steps.push_back(std::move(step));
    }
    XARCH_ASSIGN_OR_RETURN(query.temporal, ParseTemporal());
    if (!At(TokenKind::kEnd)) {
      return Error("trailing input after the temporal qualifier");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[i_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  void Advance() { if (i_ + 1 < tokens_.size()) ++i_; }

  Status Error(const std::string& what) const {
    return Status::ParseError("query: " + what + ", got " +
                              TokenKindName(Peek().kind) + " at offset " +
                              std::to_string(Peek().pos));
  }

  StatusOr<std::string> ExpectName(const char* what) {
    if (!At(TokenKind::kName)) {
      return Error(std::string("expected ") + what);
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  StatusOr<Version> ExpectInt(const char* what) {
    if (!At(TokenKind::kInt)) {
      return Error(std::string("expected ") + what);
    }
    unsigned long long value = 0;
    for (char c : Peek().text) {
      value = value * 10 + static_cast<unsigned long long>(c - '0');
      if (value > std::numeric_limits<Version>::max()) {
        return Error("version number out of range");
      }
    }
    Advance();
    return static_cast<Version>(value);
  }

  StatusOr<Step> ParseStep() {
    Step step;
    XARCH_ASSIGN_OR_RETURN(step.tag, ExpectName("an element tag"));
    if (!At(TokenKind::kLBracket)) return step;
    Advance();
    if (At(TokenKind::kStar)) {
      Advance();
      step.wildcard = true;
    } else {
      while (true) {
        XARCH_ASSIGN_OR_RETURN(KeyMatch match, ParseMatch());
        step.matches.push_back(std::move(match));
        if (!At(TokenKind::kComma)) break;
        Advance();
      }
    }
    if (!At(TokenKind::kRBracket)) return Error("expected ']'");
    Advance();
    return step;
  }

  StatusOr<KeyMatch> ParseMatch() {
    KeyMatch match;
    if (At(TokenKind::kDot)) {
      Advance();
      match.key_path = ".";
    } else if (At(TokenKind::kAt)) {
      Advance();
      XARCH_ASSIGN_OR_RETURN(std::string name,
                             ExpectName("an attribute name after '@'"));
      match.key_path = "@" + name;
    } else {
      XARCH_ASSIGN_OR_RETURN(match.key_path, ExpectName("a key path"));
      while (At(TokenKind::kSlash)) {
        Advance();
        XARCH_ASSIGN_OR_RETURN(std::string segment,
                               ExpectName("a key-path segment after '/'"));
        match.key_path += "/" + segment;
      }
    }
    if (!At(TokenKind::kEq)) return Error("expected '=' in key predicate");
    Advance();
    if (!At(TokenKind::kString)) {
      return Error("expected a quoted value after '='");
    }
    match.value = Peek().text;
    Advance();
    return match;
  }

  StatusOr<Temporal> ParseTemporal() {
    Temporal temporal;
    if (At(TokenKind::kAt)) {
      Advance();
      XARCH_ASSIGN_OR_RETURN(std::string keyword,
                             ExpectName("'version' or 'versions' after '@'"));
      if (keyword == "version") {
        temporal.kind = TemporalKind::kVersion;
        XARCH_ASSIGN_OR_RETURN(temporal.from, ExpectInt("a version number"));
        return temporal;
      }
      if (keyword == "versions") {
        temporal.kind = TemporalKind::kRange;
        XARCH_ASSIGN_OR_RETURN(temporal.from, ExpectInt("a version number"));
        if (!At(TokenKind::kDotDot)) {
          return Error("expected '..' in version range");
        }
        Advance();
        XARCH_ASSIGN_OR_RETURN(temporal.to, ExpectInt("a version number"));
        if (temporal.from > temporal.to) {
          return Error("empty version range (from > to)");
        }
        return temporal;
      }
      return Status::ParseError(
          "query: expected 'version' or 'versions' after '@', got '" +
          keyword + "'");
    }
    if (At(TokenKind::kName) && Peek().text == "history") {
      Advance();
      temporal.kind = TemporalKind::kHistory;
      return temporal;
    }
    if (At(TokenKind::kName) && Peek().text == "diff") {
      Advance();
      temporal.kind = TemporalKind::kDiff;
      XARCH_ASSIGN_OR_RETURN(temporal.from, ExpectInt("a version number"));
      XARCH_ASSIGN_OR_RETURN(temporal.to, ExpectInt("a version number"));
      // Same ordering rule as `@ versions A..B`: reversed bounds are a
      // parse error, not a silently-empty (or backwards) diff. `diff A A`
      // stays legal — it is the empty change set.
      if (temporal.from > temporal.to) {
        return Error("diff versions out of order (from > to)");
      }
      return temporal;
    }
    return Error(
        "expected a temporal qualifier "
        "(@ version N | @ versions A..B | history | diff A B)");
  }

  std::vector<Token> tokens_;
  size_t i_ = 0;
};

}  // namespace

StatusOr<Query> Parse(std::string_view text) {
  XARCH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).Run();
}

}  // namespace xarch::query
