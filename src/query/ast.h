#ifndef XARCH_QUERY_AST_H_
#define XARCH_QUERY_AST_H_

#include <string>
#include <vector>

#include "core/archive.h"
#include "util/version_set.h"

namespace xarch::query {

/// One key predicate inside a step: `fn="John"`, `@id="item0"`, `.="x"`.
/// Key paths use the key-spec syntax: an element path ("fn",
/// "Date/Month"), an attribute ("@id"), or the element's own content
/// ("."). Values are plain text, matched against the canonical stored
/// form exactly as core::KeyStep values are.
struct KeyMatch {
  std::string key_path;
  std::string value;
};

/// One navigation step of a path expression: `/tag`, `/tag[*]`, or
/// `/tag[k="v", ...]`. A keyed step must give the element's full key (keys
/// identify elements, Sec. 2 — partial keys identify nothing); a bare or
/// wildcard step selects every child with the tag.
struct Step {
  std::string tag;
  bool wildcard = false;          ///< `[*]` was written explicitly
  std::vector<KeyMatch> matches;  ///< full key values; empty otherwise

  bool keyed() const { return !matches.empty(); }

  /// Renders `tag`, `tag[*]`, or `tag[k="v", ...]`.
  std::string ToString() const;

  /// The step as a Sec. 7.2 history step (keyed steps only).
  core::KeyStep ToKeyStep() const;

  /// The step rendered as a key-based change path component — the
  /// keys::Label::ToString form DescribeChanges uses ("entry{id=2}"), so
  /// query paths compare against change paths.
  std::string ToLabelString() const;
};

/// The temporal qualifier that closes every query.
enum class TemporalKind {
  kVersion,  ///< `@ version 17` — snapshot at one version
  kRange,    ///< `@ versions 3..9` — one snapshot per version
  kHistory,  ///< `history` — the versions in which the element exists
  kDiff,     ///< `diff 3 9` — key-based changes under the path
};

struct Temporal {
  TemporalKind kind = TemporalKind::kVersion;
  Version from = 0;  ///< kVersion: the version; kRange/kDiff: lower bound
  Version to = 0;    ///< kRange/kDiff: upper bound; unused otherwise

  std::string ToString() const;
};

/// A parsed XAQL query: a path expression plus a temporal qualifier,
/// optionally under `explain` or `explain analyze`.
struct Query {
  bool explain = false;
  bool analyze = false;  ///< `explain analyze` — run traced, report spans
  std::vector<Step> steps;
  Temporal temporal;

  /// Canonical text of the query. Parsing the result yields an equal AST
  /// and an identical canonical text (the round-trip property pinned by
  /// query_test).
  std::string ToString() const;
};

bool operator==(const KeyMatch& a, const KeyMatch& b);
bool operator==(const Step& a, const Step& b);
bool operator==(const Temporal& a, const Temporal& b);
bool operator==(const Query& a, const Query& b);

}  // namespace xarch::query

#endif  // XARCH_QUERY_AST_H_
