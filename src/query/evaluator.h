#ifndef XARCH_QUERY_EVALUATOR_H_
#define XARCH_QUERY_EVALUATOR_H_

#include <cstddef>

#include "core/archive.h"
#include "index/archive_index.h"
#include "query/planner.h"
#include "util/status.h"
#include "xarch/sink.h"
#include "xarch/store.h"

namespace xarch::query {

/// Counters of one query evaluation (what EXPLAIN reports and what
/// Store::Stats() accumulates).
struct EvalResult {
  /// Tree probes, the children a naive scan would have inspected at the
  /// same nodes, and key comparisons — both real and hypothetical cost
  /// are counted in the one pass, so indexed vs naive needs no second run.
  index::ProbeStats probes;
  /// Elements the path expression matched (changes emitted, for diff).
  size_t matches = 0;
  /// Bytes streamed into the result sink.
  size_t bytes_streamed = 0;
  /// Full versions retrieved and parsed (generic-plan history fallback).
  size_t versions_scanned = 0;
};

/// \brief Streaming evaluation over the merged hierarchy (the archive
/// plans): walks the archive once, serializing straight into `sink` —
/// no intermediate xml::Node tree is materialized. With `index` non-null
/// keyed steps use the sorted-key binary search and snapshots are pruned
/// by the timestamp trees; otherwise every step is a full child scan.
Status Evaluate(const Plan& plan, const core::Archive& archive,
                const index::ArchiveIndex* index, Sink& sink,
                EvalResult* result);

/// \brief Interface-level evaluation through Store primitives (the
/// kGeneric plan): snapshots via Retrieve() + parse + navigate, history
/// via History() (or a per-version full scan when temporal queries are
/// not advertised), diffs via DiffVersions(). Gives every backend XAQL
/// queries at full-scan cost; output bytes match the archive plans on
/// store-canonical documents.
Status EvaluateOverStore(const Plan& plan, Store& store, Sink& sink,
                         EvalResult* result);

}  // namespace xarch::query

#endif  // XARCH_QUERY_EVALUATOR_H_
