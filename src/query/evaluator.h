#ifndef XARCH_QUERY_EVALUATOR_H_
#define XARCH_QUERY_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/archive.h"
#include "core/changes.h"
#include "core/tree_view.h"
#include "index/archive_index.h"
#include "index/view_index.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xarch/sink.h"
#include "xarch/store.h"

namespace xarch::query {

/// Counters of one query evaluation (what EXPLAIN reports and what
/// Store::Stats() accumulates).
struct EvalResult {
  /// Tree probes, the children a naive scan would have inspected at the
  /// same nodes, and key comparisons — both real and hypothetical cost
  /// are counted in the one pass, so indexed vs naive needs no second run.
  index::ProbeStats probes;
  /// True when the evaluation navigated mapped snapshot bytes rather than
  /// heap nodes (EXPLAIN reports it as `mapped=true`).
  bool mapped = false;
  /// Elements the path expression matched (changes emitted, for diff).
  size_t matches = 0;
  /// Bytes streamed into the result sink.
  size_t bytes_streamed = 0;
  /// Full versions retrieved and parsed (generic-plan history fallback).
  size_t versions_scanned = 0;
  /// Read probes one shard answered during a scatter/gather evaluation
  /// (kShardScatter plans; filled by the sharded store, which is the only
  /// layer that can attribute primitive calls to shards).
  struct ShardProbe {
    size_t shard = 0;
    uint64_t probes = 0;
  };
  /// Per-shard probe counts, in shard order; empty for unsharded plans.
  std::vector<ShardProbe> shards;
};

/// \brief Execution tuning for one evaluation.
///
/// With a pool, range workloads (`@ versions A..B`) and the generic
/// history fallback's per-version full scan fan versions across the
/// workers: each version is evaluated into a private buffer and the
/// buffers are emitted into the sink in version order, so the output is
/// byte-identical to the serial run and probe counters sum to the same
/// totals. Callers hand out a pool only when the underlying data is safe
/// to read from several threads (the archive under the store's shared
/// lock; StorePrimitives::concurrent_reads() for generic plans).
struct EvalOptions {
  /// Worker pool for the parallel range executor; nullptr = serial.
  util::ThreadPool* pool = nullptr;
  /// Fan out only when at least this many versions are in the range —
  /// below it, task bookkeeping costs more than the scans.
  size_t min_parallel_versions = 4;
  /// When non-null, the evaluation records nested spans (eval → navigate /
  /// per-version scans, annotated with probe and byte counts) under
  /// `trace_parent`. A traced evaluation runs serially — the parallel
  /// range executor is bypassed so span order is deterministic; totals
  /// are identical either way.
  obs::Trace* trace = nullptr;
  obs::Trace::SpanId trace_parent = obs::Trace::kNoSpan;
};

/// \brief Streaming evaluation over the merged hierarchy (the archive
/// plans): walks the archive once, serializing straight into `sink` —
/// no intermediate xml::Node tree is materialized. With `index` non-null
/// keyed steps use the sorted-key binary search and snapshots are pruned
/// by the timestamp trees; otherwise every step is a full child scan.
/// The archive (and index) must not be mutated during the call — the
/// Store layer guarantees that by holding the store's reader lock.
Status Evaluate(const Plan& plan, const core::Archive& archive,
                const index::ArchiveIndex* index, Sink& sink,
                EvalResult* result, const EvalOptions& options = {});

/// Change-list provider for `@ diff` on view evaluations. The heap path
/// binds core::DescribeChanges; a mapped store materializes its archive
/// once and binds the same. Null-valued = diff unsupported.
using ArchiveDiffFn =
    std::function<StatusOr<std::vector<core::Change>>(Version from,
                                                      Version to)>;

/// The archive-plan evaluator over any ArchiveView — the one
/// implementation behind Evaluate(); mapped XAR2 stores call it directly
/// with their FlatArchiveView + FlatViewIndex, producing bytes and probe
/// counts identical to the heap path.
Status EvaluateView(const Plan& plan, const core::ArchiveView& view,
                    const index::ViewIndex* index, const ArchiveDiffFn& diff,
                    Sink& sink, EvalResult* result,
                    const EvalOptions& options = {});

/// \brief Interface-level evaluation through Store primitives (the
/// kGeneric plan): snapshots via Retrieve() + parse + navigate, history
/// via History() (or a per-version full scan when temporal queries are
/// not advertised), diffs via DiffVersions(). Gives every backend XAQL
/// queries at full-scan cost; output bytes match the archive plans on
/// store-canonical documents. Takes the unlocked StorePrimitives view:
/// it runs inside Store::Query, which already holds the store lock.
Status EvaluateOverStore(const Plan& plan, StorePrimitives& store, Sink& sink,
                         EvalResult* result, const EvalOptions& options = {});

}  // namespace xarch::query

#endif  // XARCH_QUERY_EVALUATOR_H_
