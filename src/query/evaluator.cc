#include "query/evaluator.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/changes.h"
#include "core/scan.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/serializer.h"

namespace xarch::query {

namespace {

// ------------------------------------------------------- shared helpers

/// The query path rendered in DescribeChanges' path syntax
/// ("/db/entry{id=2}"); bare and wildcard steps render as the bare tag.
std::string RenderPathPrefix(const std::vector<Step>& steps) {
  std::string out;
  for (const Step& step : steps) {
    out += '/';
    out += step.ToLabelString();
  }
  return out;
}

/// True if a change path lies at or under the rendered query path. A bare
/// prefix step ("/db/entry") covers every keyed sibling ("/db/entry{id=2}"),
/// but not unrelated tags that merely share the prefix bytes ("/db/entryX").
bool ChangeUnderPrefix(const std::string& change_path,
                       const std::string& prefix) {
  if (!StartsWith(change_path, prefix)) return false;
  if (change_path.size() == prefix.size()) return true;
  const char next = change_path[prefix.size()];
  return next == '/' || next == '{';
}

Status EmitText(Sink& sink, std::string_view text, EvalResult* result) {
  result->bytes_streamed += text.size();
  return sink.Append(text);
}

std::string VersionOpenTag(Version v) {
  return "<version n=\"" + std::to_string(v) + "\">\n";
}

std::string VersionEmptyTag(Version v) {
  return "<version n=\"" + std::to_string(v) + "\"/>\n";
}

Status NoMatchError(const Query& ast) {
  Query canonical = ast;
  canonical.explain = false;
  return Status::NotFound("no element matches " + canonical.ToString());
}

Status RangeBoundsError(Version count) {
  return Status::InvalidArgument("versions must be in 1-" +
                                 std::to_string(count));
}

/// Builds "scan v<N>" only when a trace is attached — untraced hot loops
/// must not pay a per-version string allocation.
std::string ScanSpanName(const obs::Trace* trace, Version v) {
  if (trace == nullptr) return std::string();
  return "scan v" + std::to_string(v);
}

/// True when `options` allow fanning `versions` across pool workers. A
/// traced evaluation always runs serially: the span tree's order must be
/// deterministic, and the serial path produces identical totals.
bool WantParallel(const EvalOptions& options, size_t versions) {
  return options.trace == nullptr && options.pool != nullptr &&
         options.pool->size() > 0 &&
         versions >= options.min_parallel_versions && versions > 1;
}

// ------------------------------------------------------- query metrics

/// Per-plan-kind instruments, resolved once per process (registry lookups
/// are mutexed; the per-query cost after the first is atomic adds only).
struct QueryMetrics {
  obs::Counter* queries;
  obs::Histogram* duration_us;
  obs::Counter* tree_probes;
  obs::Counter* naive_probes;
  obs::Counter* key_comparisons;
  obs::Counter* bytes_streamed;
};

QueryMetrics MakeQueryMetrics(const char* plan) {
  obs::Registry& reg = obs::Registry::Default();
  const std::string labels = "plan=\"" + std::string(plan) + "\"";
  QueryMetrics m;
  m.queries = reg.GetCounter("xarch_queries_total", labels,
                             "Query evaluations by plan kind");
  m.duration_us = reg.GetHistogram("xarch_query_duration_us", labels,
                                   "Query evaluation latency (microseconds)");
  m.tree_probes =
      reg.GetCounter("xarch_query_probes_total", labels + ",kind=\"tree\"",
                     "Evaluation probes by plan kind and probe kind");
  m.naive_probes = reg.GetCounter("xarch_query_probes_total",
                                  labels + ",kind=\"naive\"", "");
  m.key_comparisons = reg.GetCounter("xarch_query_probes_total",
                                     labels + ",kind=\"key_comparison\"", "");
  m.bytes_streamed =
      reg.GetCounter("xarch_query_bytes_streamed_total", labels,
                     "Bytes streamed into query sinks by plan kind");
  return m;
}

const QueryMetrics& MetricsFor(Access access) {
  static QueryMetrics indexed = MakeQueryMetrics("archive-indexed");
  static QueryMetrics scan = MakeQueryMetrics("archive-scan");
  static QueryMetrics generic = MakeQueryMetrics("store-generic");
  static QueryMetrics scatter = MakeQueryMetrics("shard-scatter");
  switch (access) {
    case Access::kArchiveIndexed: return indexed;
    case Access::kArchiveScan: return scan;
    case Access::kGeneric: return generic;
    case Access::kShardScatter: return scatter;
  }
  return generic;
}

void RecordQueryMetrics(Access access, const EvalResult& result,
                        uint64_t duration_us) {
  if (!obs::MetricsEnabled()) return;
  const QueryMetrics& m = MetricsFor(access);
  m.queries->Increment();
  m.duration_us->Record(duration_us);
  m.tree_probes->Add(result.probes.tree_probes);
  m.naive_probes->Add(result.probes.naive_probes);
  m.key_comparisons->Add(result.probes.comparisons);
  m.bytes_streamed->Add(result.bytes_streamed);
}

/// Runs the shared diff pipeline: describe → filter to the query path →
/// format. `changes` is the full key-based change list between the two
/// versions.
Status EmitFilteredChanges(const std::vector<core::Change>& changes,
                           const std::vector<Step>& steps, Sink& sink,
                           EvalResult* result) {
  const std::string prefix = RenderPathPrefix(steps);
  std::vector<core::Change> filtered;
  for (const core::Change& change : changes) {
    if (ChangeUnderPrefix(change.path, prefix)) filtered.push_back(change);
  }
  result->matches = filtered.size();
  return EmitText(sink, core::FormatChanges(filtered), result);
}

// ------------------------------------------------- archive-plan support

struct NodeMatch {
  core::ArchiveView::NodeId node = core::ArchiveView::kNoNode;
  VersionSet effective;
  std::string path;  // DescribeChanges-style, e.g. "/db/entry{id=2}"
};

class ArchiveEvaluator {
 public:
  ArchiveEvaluator(const core::ArchiveView& view,
                   const index::ViewIndex* index, const ArchiveDiffFn& diff,
                   Sink& sink, EvalResult& result, const EvalOptions& options)
      : view_(view),
        index_(index),
        diff_(diff),
        sink_(sink),
        result_(result),
        options_(options) {}

  Status Run(const Plan& plan) {
    const Query& ast = plan.ast;
    obs::ScopedSpan eval(options_.trace, "eval", options_.trace_parent);
    eval_span_ = eval.id();
    if (ast.temporal.kind == TemporalKind::kDiff) {
      // Diff needs no navigation: the change walk visits the whole
      // hierarchy once and the query path filters its output, so absent
      // paths yield an empty change list, exactly as on generic plans.
      obs::ScopedSpan span(options_.trace, "diff", eval_span_);
      if (!diff_) {
        return Status::Unimplemented(
            "diff queries are not available on this archive view");
      }
      XARCH_ASSIGN_OR_RETURN(std::vector<core::Change> changes,
                             diff_(ast.temporal.from, ast.temporal.to));
      XARCH_RETURN_NOT_OK(
          EmitFilteredChanges(changes, ast.steps, sink_, &result_));
      span.Note("changes", result_.matches);
      return sink_.Flush();
    }
    // A range query over a path that never existed streams empty
    // <version/> wrappers (like the generic plan); the other kinds report
    // the miss. History gives bare steps Store::History's exact semantics
    // (the unkeyed element with that tag; `[*]` enumerates keyed
    // siblings), so every plan answers history queries identically.
    const bool missing_path_is_error =
        ast.temporal.kind != TemporalKind::kRange;
    const bool bare_is_exact = ast.temporal.kind == TemporalKind::kHistory;
    StatusOr<std::vector<NodeMatch>> navigated = [&] {
      obs::ScopedSpan span(options_.trace, "navigate", eval_span_);
      auto got = Navigate(ast.steps, missing_path_is_error, bare_is_exact);
      span.Note("tree_probes", result_.probes.tree_probes);
      span.Note("naive_probes", result_.probes.naive_probes);
      if (got.ok()) span.Note("matches", got->size());
      return got;
    }();
    XARCH_ASSIGN_OR_RETURN(std::vector<NodeMatch> matches,
                           std::move(navigated));
    result_.matches = matches.size();
    switch (ast.temporal.kind) {
      case TemporalKind::kVersion:
        XARCH_RETURN_NOT_OK(RunSnapshot(ast, matches));
        break;
      case TemporalKind::kRange:
        XARCH_RETURN_NOT_OK(RunRange(ast, matches));
        break;
      case TemporalKind::kHistory:
        XARCH_RETURN_NOT_OK(RunHistory(matches));
        break;
      case TemporalKind::kDiff:
        break;  // handled above
    }
    return sink_.Flush();
  }

 private:
  StatusOr<std::vector<NodeMatch>> Navigate(const std::vector<Step>& steps,
                                            bool missing_is_error,
                                            bool bare_is_exact) {
    std::vector<NodeMatch> frontier;
    frontier.push_back(
        NodeMatch{view_.Root(), view_.StampValue(view_.Root()), ""});
    for (const Step& step : steps) {
      std::vector<NodeMatch> next;
      for (const NodeMatch& parent : frontier) {
        if (view_.IsFrontier(parent.node)) {
          return Status::InvalidArgument(
              "query path descends below frontier node " +
              view_.LabelString(parent.node));
        }
        result_.probes.naive_probes += view_.ChildCount(parent.node);
        if (step.keyed()) {
          core::ArchiveView::NodeId child = core::ArchiveView::kNoNode;
          if (index_ != nullptr) {
            child = index_->FindChild(parent.node, step.ToKeyStep(),
                                      &result_.probes);
          } else {
            child =
                core::FindChildByKeyStep(view_, parent.node, step.ToKeyStep());
          }
          if (child != core::ArchiveView::kNoNode) {
            next.push_back(MakeMatch(parent, child));
          }
        } else {
          const size_t child_count = view_.ChildCount(parent.node);
          for (size_t i = 0; i < child_count; ++i) {
            const core::ArchiveView::NodeId child = view_.Child(parent.node, i);
            if (view_.Tag(child) != step.tag) continue;
            if (bare_is_exact && !step.wildcard &&
                view_.LabelPartCount(child) != 0) {
              continue;  // a bare step addresses only the unkeyed element
            }
            next.push_back(MakeMatch(parent, child));
          }
        }
      }
      if (next.empty()) {
        if (missing_is_error) return NoMatchErrorForStep(step);
        return std::vector<NodeMatch>();
      }
      frontier = std::move(next);
    }
    return frontier;
  }

  Status NoMatchErrorForStep(const Step& step) const {
    return Status::NotFound("no element " + step.ToString() +
                            " on the given path");
  }

  NodeMatch MakeMatch(const NodeMatch& parent,
                      core::ArchiveView::NodeId child) const {
    NodeMatch match;
    match.node = child;
    match.effective = view_.EffectiveStamp(child, parent.effective);
    match.path = parent.path + "/" + view_.LabelString(child);
    return match;
  }

  /// A cursor streaming into the query sink, counting into result_ — for
  /// the serial paths, which run on the caller thread only.
  core::ScanCursor MakeCursor() {
    core::ScanCursor cursor(
        xml::SerializeOptions{},
        [this](std::string_view chunk) {
          result_.bytes_streamed += chunk.size();
          return sink_.Append(chunk);
        });
    SetSelector(cursor);
    return cursor;
  }

  void SetSelector(core::ScanCursor& cursor) {
    if (index_ == nullptr) return;
    // The hook reads only the (immutable during evaluation) index; it is
    // shared by the parallel workers' private cursors.
    cursor.set_selector([this](core::ArchiveView::NodeId node, Version v,
                               std::vector<size_t>* relevant,
                               size_t* probes) {
      return index_->RelevantChildren(node, v, relevant, probes);
    });
  }

  Status FinishCursor(core::ScanCursor& cursor,
                      const core::ScanStats& stats) {
    result_.probes.tree_probes += stats.tree_probes;
    result_.probes.naive_probes += stats.naive_probes;
    return cursor.Finish();
  }

  Status RunSnapshot(const Query& ast, const std::vector<NodeMatch>& matches) {
    const Version v = ast.temporal.from;
    if (v == 0 || v > view_.version_count()) {
      return Status::NotFound("version " + std::to_string(v) +
                              " is not archived (have 1-" +
                              std::to_string(view_.version_count()) + ")");
    }
    obs::ScopedSpan span(options_.trace, ScanSpanName(options_.trace, v),
                         eval_span_);
    core::ScanCursor cursor = MakeCursor();
    core::ScanStats stats;
    cursor.set_stats(&stats);
    size_t active = 0;
    for (const NodeMatch& match : matches) {
      if (!match.effective.Contains(v)) continue;
      ++active;
      XARCH_RETURN_NOT_OK(cursor.Scan(view_, match.node, v, 0));
    }
    XARCH_RETURN_NOT_OK(FinishCursor(cursor, stats));
    span.Note("tree_probes", stats.tree_probes);
    span.Note("naive_probes", stats.naive_probes);
    span.Note("bytes", result_.bytes_streamed);
    if (active == 0) return NoMatchError(ast);
    return Status::OK();
  }

  /// One range version through `cursor`, wrapper included — the single
  /// source of the range output format, shared by the serial loop (one
  /// streaming cursor) and the parallel work units (a private buffered
  /// cursor each), which is what keeps parallel output byte-identical.
  Status ScanRangeVersion(core::ScanCursor& cursor,
                          const std::vector<NodeMatch>& matches, Version v) {
    bool any = false;
    for (const NodeMatch& match : matches) {
      if (!match.effective.Contains(v)) continue;
      if (!any) {
        XARCH_RETURN_NOT_OK(cursor.Emit(VersionOpenTag(v)));
        any = true;
      }
      XARCH_RETURN_NOT_OK(cursor.Scan(view_, match.node, v, 1));
    }
    return cursor.Emit(any ? std::string("</version>\n")
                           : VersionEmptyTag(v));
  }

  /// One range version, serialized complete into a private buffer with
  /// private stats — the parallel work unit.
  Status ScanVersionToBuffer(const std::vector<NodeMatch>& matches, Version v,
                             std::string* out, core::ScanStats* stats) {
    core::ScanCursor cursor(
        xml::SerializeOptions{},
        [out](std::string_view chunk) {
          out->append(chunk);
          return Status::OK();
        });
    SetSelector(cursor);
    cursor.set_stats(stats);
    XARCH_RETURN_NOT_OK(ScanRangeVersion(cursor, matches, v));
    return cursor.Finish();
  }

  Status RunRange(const Query& ast, const std::vector<NodeMatch>& matches) {
    const Version from = ast.temporal.from, to = ast.temporal.to;
    if (from == 0 || to > view_.version_count()) {
      return RangeBoundsError(view_.version_count());
    }
    const size_t n = static_cast<size_t>(to - from) + 1;
    if (WantParallel(options_, n)) {
      return RunRangeParallel(matches, from, n);
    }
    core::ScanCursor cursor = MakeCursor();
    core::ScanStats stats;
    cursor.set_stats(&stats);
    for (Version v = from; v <= to; ++v) {
      obs::ScopedSpan span(options_.trace, ScanSpanName(options_.trace, v),
                           eval_span_);
      const size_t tree = stats.tree_probes, naive = stats.naive_probes;
      const size_t bytes = result_.bytes_streamed;
      XARCH_RETURN_NOT_OK(ScanRangeVersion(cursor, matches, v));
      span.Note("tree_probes", stats.tree_probes - tree);
      span.Note("naive_probes", stats.naive_probes - naive);
      span.Note("bytes", result_.bytes_streamed - bytes);
    }
    return FinishCursor(cursor, stats);
  }

  /// The parallel range executor: versions fan out across the pool, each
  /// serialized into a private buffer; buffers are then emitted in version
  /// order, so the sink sees bytes identical to the serial run and the
  /// probe counters sum to the same totals. The archive and index are read
  /// concurrently but never mutated (the store's reader lock guarantees
  /// no ingest runs during evaluation).
  Status RunRangeParallel(const std::vector<NodeMatch>& matches, Version from,
                          size_t n) {
    std::vector<std::string> outputs(n);
    std::vector<core::ScanStats> stats(n);
    std::vector<Status> statuses(n);
    options_.pool->ParallelFor(n, [&](size_t i) {
      statuses[i] =
          ScanVersionToBuffer(matches, from + static_cast<Version>(i),
                              &outputs[i], &stats[i]);
    });
    for (size_t i = 0; i < n; ++i) {
      result_.probes.tree_probes += stats[i].tree_probes;
      result_.probes.naive_probes += stats[i].naive_probes;
      XARCH_RETURN_NOT_OK(statuses[i]);
      XARCH_RETURN_NOT_OK(EmitText(sink_, outputs[i], &result_));
    }
    return Status::OK();
  }

  Status RunHistory(const std::vector<NodeMatch>& matches) {
    obs::ScopedSpan span(options_.trace, "history", eval_span_);
    span.Note("matches", matches.size());
    std::string out;
    for (const NodeMatch& match : matches) {
      out += match.path;
      out += ": ";
      out += match.effective.ToString();
      out += '\n';
    }
    return EmitText(sink_, out, &result_);
  }

  const core::ArchiveView& view_;
  const index::ViewIndex* index_;
  const ArchiveDiffFn& diff_;
  Sink& sink_;
  EvalResult& result_;
  const EvalOptions& options_;
  obs::Trace::SpanId eval_span_ = obs::Trace::kNoSpan;
};

// ------------------------------------------------- generic-plan support

/// True if the parsed element satisfies a step: same tag, and every key
/// predicate's path evaluates (uniquely) to the given plain-text value.
bool MatchesStep(const xml::Node& node, const Step& step) {
  if (!node.is_element() || node.tag() != step.tag) return false;
  for (const KeyMatch& match : step.matches) {
    if (!match.key_path.empty() && match.key_path[0] == '@') {
      const std::string* attr = node.FindAttr(match.key_path.substr(1));
      if (attr == nullptr || *attr != match.value) return false;
      continue;
    }
    if (match.key_path == ".") {
      if (node.TextContent() != match.value) return false;
      continue;
    }
    auto path = xml::ParsePath(match.key_path);
    if (!path.ok()) return false;
    std::vector<xml::PathTarget> targets = xml::EvalPath(node, *path);
    if (targets.size() != 1) return false;
    const xml::PathTarget& target = targets[0];
    if (target.is_attr()) {
      const std::string* attr = target.attr_owner->FindAttr(target.attr_name);
      if (attr == nullptr || *attr != match.value) return false;
    } else {
      if (target.node->TextContent() != match.value) return false;
    }
  }
  return true;
}

/// Navigates a parsed document: the first step must match the document
/// root, later steps descend through child elements.
std::vector<const xml::Node*> NavigateDoc(const xml::Node& root,
                                          const std::vector<Step>& steps) {
  std::vector<const xml::Node*> frontier;
  if (steps.empty()) return frontier;
  if (MatchesStep(root, steps[0])) frontier.push_back(&root);
  for (size_t i = 1; i < steps.size() && !frontier.empty(); ++i) {
    std::vector<const xml::Node*> next;
    for (const xml::Node* parent : frontier) {
      for (const auto& child : parent->children()) {
        if (MatchesStep(*child, steps[i])) next.push_back(child.get());
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

class StoreEvaluator {
 public:
  StoreEvaluator(StorePrimitives& store, Sink& sink, EvalResult& result,
                 const EvalOptions& options)
      : store_(store), sink_(sink), result_(result), options_(options) {}

  Status Run(const Plan& plan) {
    const Query& ast = plan.ast;
    obs::ScopedSpan eval(options_.trace, "eval", options_.trace_parent);
    eval_span_ = eval.id();
    switch (ast.temporal.kind) {
      case TemporalKind::kVersion:
        XARCH_RETURN_NOT_OK(RunSnapshot(ast));
        break;
      case TemporalKind::kRange:
        XARCH_RETURN_NOT_OK(RunRange(ast));
        break;
      case TemporalKind::kHistory:
        XARCH_RETURN_NOT_OK(RunHistory(ast));
        break;
      case TemporalKind::kDiff:
        XARCH_RETURN_NOT_OK(RunDiff(ast));
        break;
    }
    return sink_.Flush();
  }

 private:
  /// Matched subtrees at version v, serialized into `*out` at `depth`.
  /// Returns the number of matches (0 for a version where the database
  /// was empty or the path matched nothing). Pure per-version work —
  /// touches no evaluator state, so versions may run on pool workers when
  /// the store's reads are concurrency-safe (callers account
  /// versions_scanned themselves).
  StatusOr<size_t> SnapshotInto(const Query& ast, Version v, int depth,
                                std::string* out) {
    XARCH_ASSIGN_OR_RETURN(std::string text, store_.Retrieve(v));
    if (text.empty()) return size_t{0};  // empty database state
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(text));
    std::vector<const xml::Node*> matches = NavigateDoc(*doc, ast.steps);
    if (out != nullptr) {  // history wants counts only, not bytes
      for (const xml::Node* match : matches) {
        xml::SerializeAppend(*match, xml::SerializeOptions{}, depth, out);
      }
    }
    return matches.size();
  }

  /// True when the per-version scans of an n-version workload may fan
  /// across the pool: options allow it AND the backend's read primitives
  /// are safe to call from several threads at once.
  bool ParallelScanAllowed(size_t n) const {
    return WantParallel(options_, n) && store_.concurrent_reads();
  }

  /// Parallel per-version scan: runs SnapshotInto for versions
  /// from..from+n-1 into private buffers on the pool workers (`outputs`
  /// may be null for count-only workloads). Results land at index
  /// i = v - from. Only called when ParallelScanAllowed(n).
  void ScanVersionsParallel(const Query& ast, Version from, size_t n,
                            int depth, std::vector<std::string>* outputs,
                            std::vector<StatusOr<size_t>>* counts) {
    if (outputs != nullptr) outputs->assign(n, std::string());
    counts->assign(n, StatusOr<size_t>(size_t{0}));
    options_.pool->ParallelFor(n, [&](size_t i) {
      (*counts)[i] =
          SnapshotInto(ast, from + static_cast<Version>(i), depth,
                       outputs != nullptr ? &(*outputs)[i] : nullptr);
    });
    result_.versions_scanned += n;
  }

  Status RunSnapshot(const Query& ast) {
    obs::ScopedSpan span(
        options_.trace, ScanSpanName(options_.trace, ast.temporal.from),
        eval_span_);
    std::string out;
    ++result_.versions_scanned;
    XARCH_ASSIGN_OR_RETURN(size_t matches,
                           SnapshotInto(ast, ast.temporal.from, 0, &out));
    span.Note("matches", matches);
    span.Note("bytes", out.size());
    if (matches == 0) return NoMatchError(ast);
    result_.matches = matches;
    return EmitText(sink_, out, &result_);
  }

  /// Emits one range version in the shared wrapper format.
  Status EmitRangeVersion(Version v, size_t matches, const std::string& body) {
    result_.matches += matches;
    if (matches == 0) {
      return EmitText(sink_, VersionEmptyTag(v), &result_);
    }
    XARCH_RETURN_NOT_OK(EmitText(sink_, VersionOpenTag(v), &result_));
    XARCH_RETURN_NOT_OK(EmitText(sink_, body, &result_));
    return EmitText(sink_, "</version>\n", &result_);
  }

  Status RunRange(const Query& ast) {
    const Version from = ast.temporal.from, to = ast.temporal.to;
    if (from == 0 || to > store_.version_count()) {
      return RangeBoundsError(store_.version_count());
    }
    const size_t n = static_cast<size_t>(to - from) + 1;
    if (ParallelScanAllowed(n)) {
      std::vector<std::string> bodies;
      std::vector<StatusOr<size_t>> counts;
      ScanVersionsParallel(ast, from, n, 1, &bodies, &counts);
      // Deterministic merge: emit in version order; the first failed
      // version reports its error exactly as the serial loop does.
      for (size_t i = 0; i < n; ++i) {
        XARCH_RETURN_NOT_OK(counts[i].status());
        XARCH_RETURN_NOT_OK(EmitRangeVersion(from + static_cast<Version>(i),
                                             *counts[i], bodies[i]));
      }
      return Status::OK();
    }
    for (Version v = from; v <= to; ++v) {
      obs::ScopedSpan span(options_.trace, ScanSpanName(options_.trace, v),
                           eval_span_);
      std::string body;
      ++result_.versions_scanned;
      XARCH_ASSIGN_OR_RETURN(size_t matches, SnapshotInto(ast, v, 1, &body));
      span.Note("matches", matches);
      span.Note("bytes", body.size());
      XARCH_RETURN_NOT_OK(EmitRangeVersion(v, matches, body));
    }
    return Status::OK();
  }

  /// Folds one version's match count into the history, rejecting the
  /// ambiguous fan-out case with the shared diagnostic.
  Status NoteHistoryMatches(Version v, size_t matches, VersionSet* history) {
    if (matches > 1) {
      return Status::InvalidArgument(
          "ambiguous history path (a bare step matches " +
          std::to_string(matches) + " siblings at version " +
          std::to_string(v) +
          "); give the full key, or use [*] on an archive backend");
    }
    if (matches > 0) history->Add(v);
    return Status::OK();
  }

  Status RunHistory(const Query& ast) {
    for (const Step& step : ast.steps) {
      if (step.wildcard) {
        return Status::InvalidArgument(
            "wildcard history requires an archive backend (generic plans "
            "cannot enumerate keyed siblings)");
      }
    }
    VersionSet history;
    obs::ScopedSpan span(options_.trace, "history", eval_span_);
    if (store_.Has(kTemporalQueries)) {
      std::vector<core::KeyStep> path;
      path.reserve(ast.steps.size());
      for (const Step& step : ast.steps) path.push_back(step.ToKeyStep());
      XARCH_ASSIGN_OR_RETURN(history, store_.History(path));
    } else {
      // Full scan: retrieve and navigate every archived version — the
      // fallback cost a backend without temporal queries pays (versions
      // fan across the pool when reads allow). Without a key
      // specification a bare step matches by tag alone, so a fan-out
      // means the path addresses keyed siblings ambiguously; fail loudly
      // rather than silently merging their histories.
      const size_t n = static_cast<size_t>(store_.version_count());
      if (ParallelScanAllowed(n)) {
        std::vector<StatusOr<size_t>> counts;
        ScanVersionsParallel(ast, 1, n, 0, /*outputs=*/nullptr, &counts);
        for (size_t i = 0; i < n; ++i) {
          XARCH_RETURN_NOT_OK(counts[i].status());
          XARCH_RETURN_NOT_OK(
              NoteHistoryMatches(static_cast<Version>(i + 1), *counts[i],
                                 &history));
        }
      } else {
        for (Version v = 1; v <= store_.version_count(); ++v) {
          obs::ScopedSpan scan(options_.trace,
                               ScanSpanName(options_.trace, v), span.id());
          ++result_.versions_scanned;
          XARCH_ASSIGN_OR_RETURN(size_t matches,
                                 SnapshotInto(ast, v, 0, nullptr));
          scan.Note("matches", matches);
          XARCH_RETURN_NOT_OK(NoteHistoryMatches(v, matches, &history));
        }
      }
      if (history.empty()) return NoMatchError(ast);
    }
    result_.matches = 1;
    return EmitText(
        sink_, RenderPathPrefix(ast.steps) + ": " + history.ToString() + "\n",
        &result_);
  }

  Status RunDiff(const Query& ast) {
    if (!store_.Has(kTemporalQueries)) {
      return Status::Unimplemented(
          "diff queries need key-based change tracking; store \"" +
          store_.name() + "\" does not advertise temporal-queries");
    }
    obs::ScopedSpan span(options_.trace, "diff", eval_span_);
    XARCH_ASSIGN_OR_RETURN(
        std::vector<core::Change> changes,
        store_.DiffVersions(ast.temporal.from, ast.temporal.to));
    XARCH_RETURN_NOT_OK(
        EmitFilteredChanges(changes, ast.steps, sink_, &result_));
    span.Note("changes", result_.matches);
    return Status::OK();
  }

  StorePrimitives& store_;
  Sink& sink_;
  EvalResult& result_;
  const EvalOptions& options_;
  obs::Trace::SpanId eval_span_ = obs::Trace::kNoSpan;
};

}  // namespace

Status Evaluate(const Plan& plan, const core::Archive& archive,
                const index::ArchiveIndex* index, Sink& sink,
                EvalResult* result, const EvalOptions& options) {
  core::HeapArchiveView view(&archive);
  std::optional<index::HeapViewIndex> view_index;
  if (index != nullptr) view_index.emplace(index);
  ArchiveDiffFn diff = [&archive](Version from, Version to) {
    return core::DescribeChanges(archive, from, to);
  };
  return EvaluateView(plan, view,
                      view_index.has_value() ? &*view_index : nullptr, diff,
                      sink, result, options);
}

Status EvaluateView(const Plan& plan, const core::ArchiveView& view,
                    const index::ViewIndex* index, const ArchiveDiffFn& diff,
                    Sink& sink, EvalResult* result,
                    const EvalOptions& options) {
  EvalResult local;
  EvalResult& r = result != nullptr ? *result : local;
  r.mapped = view.mapped();
  ArchiveEvaluator evaluator(view, index, diff, sink, r, options);
  const uint64_t start_us = obs::MonotonicMicros();
  Status status = evaluator.Run(plan);
  RecordQueryMetrics(plan.access, r, obs::MonotonicMicros() - start_us);
  return status;
}

Status EvaluateOverStore(const Plan& plan, StorePrimitives& store, Sink& sink,
                         EvalResult* result, const EvalOptions& options) {
  EvalResult local;
  EvalResult& r = result != nullptr ? *result : local;
  StoreEvaluator evaluator(store, sink, r, options);
  const uint64_t start_us = obs::MonotonicMicros();
  Status status = evaluator.Run(plan);
  RecordQueryMetrics(plan.access, r, obs::MonotonicMicros() - start_us);
  return status;
}

}  // namespace xarch::query
