#include "query/ast.h"

#include <algorithm>

namespace xarch::query {

namespace {

std::string QuoteValue(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Step::ToString() const {
  std::string out = tag;
  if (wildcard) {
    out += "[*]";
  } else if (!matches.empty()) {
    out += '[';
    for (size_t i = 0; i < matches.size(); ++i) {
      if (i > 0) out += ", ";
      out += matches[i].key_path;
      out += '=';
      out += QuoteValue(matches[i].value);
    }
    out += ']';
  }
  return out;
}

core::KeyStep Step::ToKeyStep() const {
  core::KeyStep step;
  step.tag = tag;
  for (const auto& match : matches) {
    step.key.emplace_back(match.key_path, match.value);
  }
  return step;
}

std::string Step::ToLabelString() const {
  if (matches.empty()) return tag;
  // Label parts are sorted by key path; mirror that so rendered paths
  // compare against DescribeChanges output.
  std::vector<const KeyMatch*> sorted;
  sorted.reserve(matches.size());
  for (const auto& match : matches) sorted.push_back(&match);
  std::sort(sorted.begin(), sorted.end(),
            [](const KeyMatch* a, const KeyMatch* b) {
              return a->key_path < b->key_path;
            });
  std::string out = tag + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i]->key_path;
    out += '=';
    out += sorted[i]->value;
  }
  out += '}';
  return out;
}

std::string Temporal::ToString() const {
  switch (kind) {
    case TemporalKind::kVersion:
      return "@ version " + std::to_string(from);
    case TemporalKind::kRange:
      return "@ versions " + std::to_string(from) + ".." + std::to_string(to);
    case TemporalKind::kHistory:
      return "history";
    case TemporalKind::kDiff:
      return "diff " + std::to_string(from) + " " + std::to_string(to);
  }
  return "";
}

std::string Query::ToString() const {
  std::string out;
  if (explain) out += analyze ? "explain analyze " : "explain ";
  for (const Step& step : steps) {
    out += '/';
    out += step.ToString();
  }
  out += ' ';
  out += temporal.ToString();
  return out;
}

bool operator==(const KeyMatch& a, const KeyMatch& b) {
  return a.key_path == b.key_path && a.value == b.value;
}

bool operator==(const Step& a, const Step& b) {
  return a.tag == b.tag && a.wildcard == b.wildcard && a.matches == b.matches;
}

bool operator==(const Temporal& a, const Temporal& b) {
  return a.kind == b.kind && a.from == b.from && a.to == b.to;
}

bool operator==(const Query& a, const Query& b) {
  return a.explain == b.explain && a.analyze == b.analyze &&
         a.steps == b.steps && a.temporal == b.temporal;
}

}  // namespace xarch::query
