#ifndef XARCH_QUERY_PARSER_H_
#define XARCH_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace xarch::query {

/// \brief Parses an XAQL query.
///
/// Grammar (EBNF):
///
///   query     = [ "explain" ] path temporal ;
///   path      = step { step } ;
///   step      = "/" tag [ "[" predicate "]" ] ;
///   predicate = "*" | match { "," match } ;
///   match     = keyref "=" STRING ;
///   keyref    = "." | "@" NAME | NAME { "/" NAME } ;
///   temporal  = "@" "version" INT
///             | "@" "versions" INT ".." INT
///             | "history"
///             | "diff" INT INT ;
///
/// Examples:
///   /db/entry[id="2"] @ version 17
///   /site/people/person[*] @ versions 3..9
///   /db/dept[name="finance"]/emp[fn="John", ln="Doe"] history
///   explain /site diff 3 9
///
/// Fails with kParseError, naming the byte offset of the offending token.
StatusOr<Query> Parse(std::string_view text);

}  // namespace xarch::query

#endif  // XARCH_QUERY_PARSER_H_
