#include "persist/container.h"

#include <cstring>
#include <utility>

#include "compress/lzss.h"
#include "persist/crc32c.h"
#include "persist/wire.h"

namespace xarch::persist {

namespace {

constexpr char kMagic[4] = {'X', 'A', 'R', '1'};
constexpr uint8_t kFlagLzss = 1u << 0;

}  // namespace

void SnapshotWriter::Add(std::string name, std::string payload) {
  sections_.push_back({std::move(name), std::move(payload)});
}

std::string SnapshotWriter::Serialize() const {
  std::string out;
  out.append(kMagic, 4);
  PutU32(kContainerFormatVersion, &out);
  PutU32(static_cast<uint32_t>(sections_.size()), &out);
  PutU32(MaskCrc(Crc32c(std::string_view(out.data(), out.size()))), &out);
  for (const Section& section : sections_) {
    std::string body;
    PutU32(static_cast<uint32_t>(section.name.size()), &body);
    body += section.name;
    uint8_t flags = 0;
    std::string_view stored = section.payload;
    std::string compressed;
    if (options_.compress &&
        section.payload.size() >= options_.compress_min_bytes) {
      auto lzss = compress::LzssTryCompress(section.payload);
      if (lzss.ok() && lzss->size() < section.payload.size()) {
        compressed = std::move(lzss).value();
        stored = compressed;
        flags |= kFlagLzss;
      }
    }
    PutU8(flags, &body);
    PutU64(section.payload.size(), &body);
    PutU64(stored.size(), &body);
    body.append(stored.data(), stored.size());
    PutU32(MaskCrc(Crc32c(body)), &body);
    out += body;
  }
  return out;
}

StatusOr<SnapshotReader> SnapshotReader::Parse(std::string_view bytes) {
  Cursor cursor(bytes);
  if (bytes.size() < 16 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::DataLoss("not an xarch snapshot container (bad magic)");
  }
  uint32_t header_crc = UnmaskCrc(
      static_cast<uint8_t>(bytes[12]) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[13])) << 8) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[14])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[15])) << 24));
  if (Crc32c(bytes.substr(0, 12)) != header_crc) {
    return Status::DataLoss("snapshot header checksum mismatch");
  }
  uint32_t magic_skip, version = 0, count = 0, crc_skip;
  (void)cursor.ReadU32(&magic_skip);
  (void)cursor.ReadU32(&version);
  (void)cursor.ReadU32(&count);
  (void)cursor.ReadU32(&crc_skip);
  if (version != kContainerFormatVersion) {
    return Status::DataLoss("unsupported snapshot format version " +
                            std::to_string(version) + " (this build reads " +
                            std::to_string(kContainerFormatVersion) + ")");
  }

  SnapshotReader reader;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t section_start = cursor.position();
    uint32_t name_len = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&name_len));
    if (name_len > cursor.remaining()) {
      return Status::DataLoss("snapshot section name length " +
                              std::to_string(name_len) + " exceeds file");
    }
    std::string name(bytes.substr(cursor.position(), name_len));
    XARCH_RETURN_NOT_OK(cursor.Skip(name_len));
    uint8_t flags = 0;
    uint64_t raw_len = 0, stored_len = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&flags));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&raw_len));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&stored_len));
    if (stored_len > cursor.remaining()) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" payload length " +
                              std::to_string(stored_len) + " exceeds file");
    }
    std::string_view stored = bytes.substr(cursor.position(),
                                           static_cast<size_t>(stored_len));
    XARCH_RETURN_NOT_OK(cursor.Skip(stored_len));
    const size_t section_end = cursor.position();
    uint32_t masked = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&masked));
    uint32_t actual = Crc32c(
        bytes.substr(section_start, section_end - section_start));
    if (UnmaskCrc(masked) != actual) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" checksum mismatch");
    }
    std::string payload;
    if (flags & kFlagLzss) {
      XARCH_ASSIGN_OR_RETURN(payload, compress::LzssDecompress(stored));
    } else {
      payload.assign(stored.data(), stored.size());
    }
    if (payload.size() != raw_len) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" decoded to " +
                              std::to_string(payload.size()) +
                              " bytes, expected " + std::to_string(raw_len));
    }
    if (flags & ~kFlagLzss) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" has unknown flags");
    }
    auto [it, inserted] =
        reader.sections_.emplace(std::move(name), std::move(payload));
    if (!inserted) {
      return Status::DataLoss("duplicate snapshot section \"" + it->first +
                              "\"");
    }
    reader.names_.push_back(it->first);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return reader;
}

StatusOr<std::string_view> SnapshotReader::Section(
    const std::string& name) const {
  const std::string* payload = FindSection(name);
  if (payload == nullptr) {
    return Status::DataLoss("snapshot is missing required section \"" + name +
                            "\"");
  }
  return std::string_view(*payload);
}

const std::string* SnapshotReader::FindSection(const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

}  // namespace xarch::persist
