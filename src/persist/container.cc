#include "persist/container.h"

#include <cstring>
#include <utility>

#include "compress/lzss.h"
#include "persist/crc32c.h"
#include "persist/wire.h"
#include "vfs/vfs.h"

namespace xarch::persist {

namespace {

constexpr char kMagic[4] = {'X', 'A', 'R', '1'};
constexpr char kMagicV2[4] = {'X', 'A', 'R', '2'};
constexpr uint8_t kFlagLzss = 1u << 0;

// "XAR2" header: magic | u32 format | u32 count | u32 reserved |
// u64 table offset | u64 table length | u32 table CRC | u32 header CRC.
constexpr size_t kV2HeaderSize = 40;
constexpr size_t kV2HeaderCrcOffset = 36;

uint32_t ReadU32At(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(std::string_view bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

bool IsXar2Snapshot(std::string_view bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kMagicV2, 4) == 0;
}

void SnapshotWriter::Add(std::string name, std::string payload) {
  sections_.push_back({std::move(name), std::move(payload), true});
}

void SnapshotWriter::AddRaw(std::string name, std::string payload) {
  sections_.push_back({std::move(name), std::move(payload), false});
}

std::string SnapshotWriter::StoredPayload(const Section& section,
                                          bool* compressed) const {
  *compressed = false;
  if (section.allow_compress && options_.compress &&
      section.payload.size() >= options_.compress_min_bytes) {
    auto lzss = compress::LzssTryCompress(section.payload);
    if (lzss.ok() && lzss->size() < section.payload.size()) {
      *compressed = true;
      return std::move(lzss).value();
    }
  }
  return section.payload;
}

std::string SnapshotWriter::Serialize() const {
  return options_.format == kContainerFormatVersion2 ? SerializeV2()
                                                     : SerializeV1();
}

std::string SnapshotWriter::SerializeV1() const {
  std::string out;
  out.append(kMagic, 4);
  PutU32(kContainerFormatVersion, &out);
  PutU32(static_cast<uint32_t>(sections_.size()), &out);
  PutU32(MaskCrc(Crc32c(std::string_view(out.data(), out.size()))), &out);
  for (const Section& section : sections_) {
    std::string body;
    PutU32(static_cast<uint32_t>(section.name.size()), &body);
    body += section.name;
    bool compressed = false;
    std::string stored = StoredPayload(section, &compressed);
    PutU8(compressed ? kFlagLzss : 0, &body);
    PutU64(section.payload.size(), &body);
    PutU64(stored.size(), &body);
    body.append(stored.data(), stored.size());
    PutU32(MaskCrc(Crc32c(body)), &body);
    out += body;
  }
  return out;
}

std::string SnapshotWriter::SerializeV2() const {
  std::string payloads;
  std::string table;
  uint64_t offset = kV2HeaderSize;
  for (const Section& section : sections_) {
    bool compressed = false;
    std::string stored = StoredPayload(section, &compressed);
    PutU32(static_cast<uint32_t>(section.name.size()), &table);
    table += section.name;
    PutU8(compressed ? kFlagLzss : 0, &table);
    PutU64(offset, &table);
    PutU64(stored.size(), &table);
    PutU64(section.payload.size(), &table);
    PutU32(MaskCrc(Crc32c(stored)), &table);
    offset += stored.size();
    payloads += stored;
  }
  std::string out;
  out.reserve(kV2HeaderSize + payloads.size() + table.size());
  out.append(kMagicV2, 4);
  PutU32(kContainerFormatVersion2, &out);
  PutU32(static_cast<uint32_t>(sections_.size()), &out);
  PutU32(0, &out);  // reserved
  PutU64(offset, &out);
  PutU64(table.size(), &out);
  PutU32(MaskCrc(Crc32c(table)), &out);
  PutU32(MaskCrc(Crc32c(std::string_view(out.data(), out.size()))), &out);
  out += payloads;
  out += table;
  return out;
}

StatusOr<SnapshotReader> SnapshotReader::Parse(std::string_view bytes) {
  Cursor cursor(bytes);
  if (bytes.size() < 16 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::DataLoss("not an xarch snapshot container (bad magic)");
  }
  uint32_t header_crc = UnmaskCrc(
      static_cast<uint8_t>(bytes[12]) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[13])) << 8) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[14])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[15])) << 24));
  if (Crc32c(bytes.substr(0, 12)) != header_crc) {
    return Status::DataLoss("snapshot header checksum mismatch");
  }
  uint32_t magic_skip, version = 0, count = 0, crc_skip;
  (void)cursor.ReadU32(&magic_skip);
  (void)cursor.ReadU32(&version);
  (void)cursor.ReadU32(&count);
  (void)cursor.ReadU32(&crc_skip);
  if (version != kContainerFormatVersion) {
    return Status::DataLoss("unsupported snapshot format version " +
                            std::to_string(version) + " (this build reads " +
                            std::to_string(kContainerFormatVersion) + ")");
  }

  SnapshotReader reader;
  for (uint32_t i = 0; i < count; ++i) {
    const size_t section_start = cursor.position();
    uint32_t name_len = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&name_len));
    if (name_len > cursor.remaining()) {
      return Status::DataLoss("snapshot section name length " +
                              std::to_string(name_len) + " exceeds file");
    }
    std::string name(bytes.substr(cursor.position(), name_len));
    XARCH_RETURN_NOT_OK(cursor.Skip(name_len));
    uint8_t flags = 0;
    uint64_t raw_len = 0, stored_len = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&flags));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&raw_len));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&stored_len));
    if (stored_len > cursor.remaining()) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" payload length " +
                              std::to_string(stored_len) + " exceeds file");
    }
    std::string_view stored = bytes.substr(cursor.position(),
                                           static_cast<size_t>(stored_len));
    XARCH_RETURN_NOT_OK(cursor.Skip(stored_len));
    const size_t section_end = cursor.position();
    uint32_t masked = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&masked));
    uint32_t actual = Crc32c(
        bytes.substr(section_start, section_end - section_start));
    if (UnmaskCrc(masked) != actual) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" checksum mismatch");
    }
    std::string payload;
    if (flags & kFlagLzss) {
      XARCH_ASSIGN_OR_RETURN(payload, compress::LzssDecompress(stored));
    } else {
      payload.assign(stored.data(), stored.size());
    }
    if (payload.size() != raw_len) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" decoded to " +
                              std::to_string(payload.size()) +
                              " bytes, expected " + std::to_string(raw_len));
    }
    if (flags & ~kFlagLzss) {
      return Status::DataLoss("snapshot section \"" + name +
                              "\" has unknown flags");
    }
    auto [it, inserted] =
        reader.sections_.emplace(std::move(name), std::move(payload));
    if (!inserted) {
      return Status::DataLoss("duplicate snapshot section \"" + it->first +
                              "\"");
    }
    reader.names_.push_back(it->first);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return reader;
}

StatusOr<std::string_view> SnapshotReader::Section(
    const std::string& name) const {
  const std::string* payload = FindSection(name);
  if (payload == nullptr) {
    return Status::DataLoss("snapshot is missing required section \"" + name +
                            "\"");
  }
  return std::string_view(*payload);
}

const std::string* SnapshotReader::FindSection(const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

Status SnapshotView::ParseInto(std::string_view bytes, SnapshotView* view) {
  if (bytes.size() < kV2HeaderSize ||
      std::memcmp(bytes.data(), kMagicV2, 4) != 0) {
    return Status::DataLoss("not an xarch snapshot container (bad magic)");
  }
  uint32_t header_crc = UnmaskCrc(ReadU32At(bytes, kV2HeaderCrcOffset));
  if (Crc32c(bytes.substr(0, kV2HeaderCrcOffset)) != header_crc) {
    return Status::DataLoss("snapshot header checksum mismatch");
  }
  uint32_t version = ReadU32At(bytes, 4);
  if (version != kContainerFormatVersion2) {
    return Status::DataLoss("unsupported snapshot format version " +
                            std::to_string(version) + " (this build reads " +
                            std::to_string(kContainerFormatVersion2) + ")");
  }
  uint32_t count = ReadU32At(bytes, 8);
  uint64_t table_offset = ReadU64At(bytes, 16);
  uint64_t table_len = ReadU64At(bytes, 24);
  uint32_t table_crc = UnmaskCrc(ReadU32At(bytes, 32));
  if (table_offset < kV2HeaderSize || table_offset > bytes.size() ||
      table_len != bytes.size() - table_offset) {
    return Status::DataLoss("snapshot section table is out of bounds");
  }
  std::string_view table = bytes.substr(static_cast<size_t>(table_offset));
  if (Crc32c(table) != table_crc) {
    return Status::DataLoss("snapshot section table checksum mismatch");
  }

  // The table parses under a bounds-checked cursor; payload regions must
  // tile [header end, table start) exactly in file order, so every byte of
  // the file is covered by exactly one checksum (header, a payload, or the
  // table) and any truncation or splice is caught structurally.
  Cursor cursor(table);
  uint64_t expected_offset = kV2HeaderSize;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&name_len));
    if (name_len > cursor.remaining()) {
      return Status::DataLoss("snapshot section name length " +
                              std::to_string(name_len) + " exceeds file");
    }
    Entry entry;
    entry.name.assign(table.substr(cursor.position(), name_len));
    XARCH_RETURN_NOT_OK(cursor.Skip(name_len));
    uint32_t masked = 0;
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&entry.flags));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&entry.payload_offset));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&entry.stored_len));
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&entry.raw_len));
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&masked));
    if (entry.flags & ~kFlagLzss) {
      return Status::DataLoss("snapshot section \"" + entry.name +
                              "\" has unknown flags");
    }
    if (!(entry.flags & kFlagLzss) && entry.raw_len != entry.stored_len) {
      return Status::DataLoss("snapshot section \"" + entry.name +
                              "\" stored " + std::to_string(entry.stored_len) +
                              " bytes but declares " +
                              std::to_string(entry.raw_len) + " raw bytes");
    }
    if (entry.payload_offset != expected_offset ||
        entry.stored_len > table_offset - expected_offset) {
      return Status::DataLoss("snapshot payload layout is corrupt");
    }
    expected_offset += entry.stored_len;
    std::string_view stored =
        bytes.substr(static_cast<size_t>(entry.payload_offset),
                     static_cast<size_t>(entry.stored_len));
    if (Crc32c(stored) != UnmaskCrc(masked)) {
      return Status::DataLoss("snapshot section \"" + entry.name +
                              "\" checksum mismatch");
    }
    size_t slot = view->entries_.size();
    auto [it, inserted] = view->index_.emplace(entry.name, slot);
    if (!inserted) {
      return Status::DataLoss("duplicate snapshot section \"" + it->first +
                              "\"");
    }
    view->names_.push_back(entry.name);
    view->entries_.push_back(std::move(entry));
  }
  if (expected_offset != table_offset) {
    return Status::DataLoss("snapshot payload layout is corrupt");
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  view->bytes_ = bytes;
  return Status::OK();
}

StatusOr<SnapshotView> SnapshotView::OpenFromBytes(std::string_view bytes) {
  auto owned = std::make_shared<std::string>(bytes);
  SnapshotView view;
  XARCH_RETURN_NOT_OK(ParseInto(*owned, &view));
  view.owner_ = owned;
  return view;
}

StatusOr<SnapshotView> SnapshotView::Adopt(
    std::unique_ptr<vfs::MappedFile> file) {
  std::shared_ptr<vfs::MappedFile> shared(std::move(file));
  SnapshotView view;
  XARCH_RETURN_NOT_OK(ParseInto(shared->data(), &view));
  view.owner_ = shared;
  return view;
}

const SnapshotView::Entry* SnapshotView::FindEntry(
    const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

bool SnapshotView::HasSection(const std::string& name) const {
  return FindEntry(name) != nullptr;
}

StatusOr<std::string_view> SnapshotView::RawSection(
    const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::DataLoss("snapshot is missing required section \"" + name +
                            "\"");
  }
  if (entry->flags & kFlagLzss) {
    return Status::DataLoss("snapshot section \"" + name +
                            "\" is compressed where raw bytes were expected");
  }
  return bytes_.substr(static_cast<size_t>(entry->payload_offset),
                       static_cast<size_t>(entry->stored_len));
}

StatusOr<std::string> SnapshotView::SectionString(
    const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::DataLoss("snapshot is missing required section \"" + name +
                            "\"");
  }
  std::string_view stored =
      bytes_.substr(static_cast<size_t>(entry->payload_offset),
                    static_cast<size_t>(entry->stored_len));
  if (!(entry->flags & kFlagLzss)) return std::string(stored);
  XARCH_ASSIGN_OR_RETURN(std::string payload,
                         compress::LzssDecompress(stored));
  if (payload.size() != entry->raw_len) {
    return Status::DataLoss("snapshot section \"" + name + "\" decoded to " +
                            std::to_string(payload.size()) +
                            " bytes, expected " +
                            std::to_string(entry->raw_len));
  }
  return payload;
}

StatusOr<std::string> ReadSnapshotBackend(std::string_view bytes) {
  if (IsXar2Snapshot(bytes)) {
    SnapshotView view;
    XARCH_RETURN_NOT_OK(SnapshotView::ParseInto(bytes, &view));
    return view.SectionString("backend");
  }
  XARCH_ASSIGN_OR_RETURN(SnapshotReader reader, SnapshotReader::Parse(bytes));
  XARCH_ASSIGN_OR_RETURN(std::string_view backend, reader.Section("backend"));
  return std::string(backend);
}

}  // namespace xarch::persist
