#ifndef XARCH_PERSIST_LOG_H_
#define XARCH_PERSIST_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/version_set.h"
#include "vfs/vfs.h"

namespace xarch::persist {

/// Bytes of the log header (magic "XALG" + u32 format version): the file
/// offset of the first record, and what a log truncated to empty keeps.
inline constexpr uint64_t kIngestLogHeaderBytes = 8;

/// When appended log records reach the disk.
enum class FsyncPolicy {
  /// Never fsync from the writer: the OS flushes when it likes. Fastest;
  /// an OS crash can lose recent records (a process crash cannot — the
  /// bytes are already in the page cache).
  kNever,
  /// fsync after every record: a record acknowledged is a record on disk.
  kEveryRecord,
};

/// \brief One entry of the append-only ingest log.
struct LogRecord {
  enum Type : uint8_t {
    kAppend = 1,      ///< one version; texts has exactly one element
    kBatch = 2,       ///< AppendBatch; texts in ingest order
    kCheckpoint = 3,  ///< forced checkpoint boundary; texts empty
  };

  uint8_t type = kAppend;
  /// The first version number this record produces (for kCheckpoint: the
  /// version the next ingest would produce). Replay uses it to skip
  /// records already covered by the snapshot, which makes recovery
  /// idempotent when a crash lands between snapshot write and log truncate.
  Version first_version = 0;
  std::vector<std::string> texts;
  /// File offset just past this record's frame. Filled by ReadIngestLog
  /// (0 on records built for appending); recovery that drops a record
  /// suffix truncates the file to the last kept record's end_offset.
  uint64_t end_offset = 0;
};

/// \brief Appender for the crash-safe ingest log. All file traffic goes
/// through the Vfs handed to Open, so the fault-injecting backend can kill
/// any append or fsync and recovery can be exercised deterministically.
///
/// File layout: 8-byte header (magic "XALG" + u32 format version), then
/// records. Each record is
///
///   u32 body length | u32 CRC32C (masked) of the body | body
///   body = u8 type | u32 first version | u32 count | count × (u64 length,
///   bytes)
///
/// A torn final record (crash mid-write) fails its length or CRC check and
/// is truncated away by Replay; every record before it is recovered intact.
class IngestLogWriter {
 public:
  IngestLogWriter() = default;
  IngestLogWriter(IngestLogWriter&&) noexcept = default;
  IngestLogWriter& operator=(IngestLogWriter&&) noexcept = default;

  /// Opens (creating or appending) the log at `path` on `vfs`. A fresh
  /// file gets the header; an existing file must already carry it.
  static StatusOr<IngestLogWriter> Open(vfs::Vfs* vfs, const std::string& path,
                                        FsyncPolicy policy);

  /// Appends one record, fsyncing per policy.
  Status Append(const LogRecord& record);

  /// Empties the log back to a bare header (after a snapshot subsumed it).
  Status Reset();

  uint64_t appended_records() const { return appended_records_; }

 private:
  IngestLogWriter(std::unique_ptr<vfs::WritableFile> file, std::string path,
                  FsyncPolicy policy)
      : file_(std::move(file)), path_(std::move(path)), policy_(policy) {}

  std::unique_ptr<vfs::WritableFile> file_;
  std::string path_;
  FsyncPolicy policy_ = FsyncPolicy::kEveryRecord;
  uint64_t appended_records_ = 0;
};

/// \brief Result of scanning an ingest log for recovery.
struct LogReplay {
  std::vector<LogRecord> records;  ///< every intact record, in order
  uint64_t valid_bytes = 0;        ///< file offset after the last good record
  bool torn_tail = false;          ///< trailing bytes failed validation
};

/// Scans the log at `path` on `vfs`. A missing file yields an empty replay.
/// Trailing bytes that do not form a complete, checksummed record are
/// reported as a torn tail (valid_bytes marks where to truncate); they never
/// abort the records before them. A file that does not start with the log
/// header is rejected with kDataLoss — that is not an ingest log at all.
StatusOr<LogReplay> ReadIngestLog(vfs::Vfs* vfs, const std::string& path);

}  // namespace xarch::persist

#endif  // XARCH_PERSIST_LOG_H_
