#ifndef XARCH_PERSIST_WIRE_H_
#define XARCH_PERSIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace xarch::persist {

/// \brief Little-endian binary encoding helpers for the persistence layer.
///
/// Writers append fixed-width integers and length-prefixed byte strings to
/// a std::string; readers go through a bounds-checked Cursor that returns
/// kDataLoss instead of ever reading past the end — the decode side is
/// driven by untrusted on-disk bytes, so every length is validated against
/// the remaining input before it is used.

inline void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// u64 length prefix, then the raw bytes.
inline void PutBytes(std::string_view s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s.data(), s.size());
}

/// Overwrites 4 bytes at `pos` with a little-endian u32. For headers whose
/// fields (length, checksum) are only known after the body is serialized:
/// reserve the header with PutU32(0, ...), append the body, then patch.
inline void PatchU32(uint32_t v, size_t pos, std::string* out) {
  for (int i = 0; i < 4; ++i) (*out)[pos + i] = static_cast<char>(v >> (8 * i));
}

/// \brief Bounds-checked sequential reader over untrusted bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  /// Advances past `n` bytes without decoding them.
  Status Skip(uint64_t n) {
    if (n > remaining()) return Truncated("skip");
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// Reads a PutBytes() string; the returned view borrows the input.
  Status ReadBytes(std::string_view* out) {
    uint64_t len = 0;
    XARCH_RETURN_NOT_OK(ReadU64(&len));
    if (len > remaining()) {
      return Status::DataLoss(
          "declared length " + std::to_string(len) + " exceeds the " +
          std::to_string(remaining()) + " bytes remaining");
    }
    *out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  /// kDataLoss when trailing undecoded bytes remain — a decoder that
  /// thinks it is done while input is left has mis-parsed something.
  Status ExpectDone() const {
    if (!done()) {
      return Status::DataLoss(std::to_string(remaining()) +
                              " trailing bytes after decoded payload");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::DataLoss(std::string("truncated input reading ") + what +
                            " at offset " + std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace xarch::persist

#endif  // XARCH_PERSIST_WIRE_H_
