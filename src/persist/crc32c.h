#ifndef XARCH_PERSIST_CRC32C_H_
#define XARCH_PERSIST_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace xarch::persist {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78)
/// — the checksum iSCSI, ext4, LevelDB and RocksDB use for on-disk page
/// and record integrity.
///
/// Dispatches at first use to the CRC32 instruction when the CPU has one
/// (SSE4.2 on x86-64, the ARMv8 CRC extension) and otherwise to the
/// portable slice-by-8 tables. Both paths are bit-identical — the hardware
/// path is pinned against the software one in tests — so archives written
/// on one machine verify on any other.
///
/// Every persisted artifact (snapshot container sections, ingest-log
/// records) carries one of these, computed over the exact stored bytes, so
/// bit flips and torn writes are detected before any payload is decoded.
uint32_t Crc32c(std::string_view data);

/// Extends a running CRC with more data (crc = Crc32cExtend(crc, chunk)).
/// Crc32c(data) == Crc32cExtend(0, data).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// Name of the implementation the dispatcher selected for this process:
/// "hw-sse4.2", "hw-armv8", or "sw-slice8". Diagnostics and bench metadata.
const char* Crc32cImplementation();

namespace internal {
/// The portable slice-by-8 path, reachable directly so tests can pin the
/// hardware path against it on machines where both exist.
uint32_t Crc32cSoftwareExtend(uint32_t crc, std::string_view data);
}  // namespace internal

/// \brief Masked CRC in the LevelDB style: storing the raw CRC of bytes
/// that themselves embed CRCs makes accidental fixed points more likely,
/// so stored checksums are rotated and offset.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace xarch::persist

#endif  // XARCH_PERSIST_CRC32C_H_
