#include "persist/log.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "persist/crc32c.h"
#include "persist/wire.h"

namespace xarch::persist {

namespace {

// ---------------------------------------------------------- WAL metrics

/// Process-wide WAL instruments, resolved once (all IngestLogWriter
/// instances share them; the per-append cost is atomic adds).
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* append_bytes;
  obs::Histogram* append_us;
  obs::Counter* fsyncs;
  obs::Histogram* fsync_us;
  obs::Counter* resets;
};

const WalMetrics& Wal() {
  static WalMetrics m = [] {
    obs::Registry& reg = obs::Registry::Default();
    WalMetrics w;
    w.appends = reg.GetCounter("xarch_wal_appends_total", "",
                               "Ingest-log records appended");
    w.append_bytes = reg.GetCounter("xarch_wal_append_bytes_total", "",
                                    "Framed bytes appended to the ingest log");
    w.append_us =
        reg.GetHistogram("xarch_wal_append_duration_us", "",
                         "Ingest-log append latency, fsync included "
                         "(microseconds)");
    w.fsyncs =
        reg.GetCounter("xarch_wal_fsyncs_total", "", "Ingest-log fsyncs");
    w.fsync_us = reg.GetHistogram("xarch_wal_fsync_duration_us", "",
                                  "Ingest-log fsync latency (microseconds)");
    w.resets = reg.GetCounter("xarch_wal_resets_total", "",
                              "Ingest-log truncations (checkpoints)");
    return w;
  }();
  return m;
}

constexpr char kLogMagic[4] = {'X', 'A', 'L', 'G'};
constexpr uint32_t kLogFormatVersion = 1;
constexpr size_t kLogHeaderBytes = 8;

std::string LogHeader() {
  std::string header(kLogMagic, 4);
  PutU32(kLogFormatVersion, &header);
  return header;
}

std::string EncodeBody(const LogRecord& record) {
  std::string body;
  PutU8(record.type, &body);
  PutU32(record.first_version, &body);
  PutU32(static_cast<uint32_t>(record.texts.size()), &body);
  for (const std::string& text : record.texts) PutBytes(text, &body);
  return body;
}

StatusOr<LogRecord> DecodeBody(std::string_view body) {
  Cursor cursor(body);
  LogRecord record;
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&record.type));
  if (record.type != LogRecord::kAppend && record.type != LogRecord::kBatch &&
      record.type != LogRecord::kCheckpoint) {
    return Status::DataLoss("unknown ingest-log record type " +
                            std::to_string(record.type));
  }
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&record.first_version));
  uint32_t count = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&count));
  record.texts.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view text;
    XARCH_RETURN_NOT_OK(cursor.ReadBytes(&text));
    record.texts.emplace_back(text);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return record;
}

}  // namespace

StatusOr<IngestLogWriter> IngestLogWriter::Open(vfs::Vfs* vfs,
                                                const std::string& path,
                                                FsyncPolicy policy) {
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<vfs::WritableFile> file,
                         vfs->OpenWritable(path, vfs::WriteMode::kAppend));
  XARCH_ASSIGN_OR_RETURN(uint64_t size, vfs->FileSize(path));
  IngestLogWriter writer(std::move(file), path, policy);
  if (size == 0) {
    XARCH_RETURN_NOT_OK(writer.file_->Append(LogHeader()));
    if (policy == FsyncPolicy::kEveryRecord) {
      XARCH_RETURN_NOT_OK(writer.file_->Sync());
    }
  }
  return writer;
}

Status IngestLogWriter::Append(const LogRecord& record) {
  if (file_ == nullptr) return Status::IoError("ingest log is not open");
  const uint64_t start_us = obs::MonotonicMicros();
  std::string body = EncodeBody(record);
  std::string framed;
  framed.reserve(body.size() + 8);
  PutU32(static_cast<uint32_t>(body.size()), &framed);
  PutU32(MaskCrc(Crc32c(body)), &framed);
  framed += body;
  XARCH_RETURN_NOT_OK(file_->Append(framed));
  if (policy_ == FsyncPolicy::kEveryRecord) {
    const uint64_t fsync_start_us = obs::MonotonicMicros();
    XARCH_RETURN_NOT_OK(file_->Sync());
    Wal().fsyncs->Increment();
    Wal().fsync_us->Record(obs::MonotonicMicros() - fsync_start_us);
  }
  ++appended_records_;
  Wal().appends->Increment();
  Wal().append_bytes->Add(framed.size());
  Wal().append_us->Record(obs::MonotonicMicros() - start_us);
  return Status::OK();
}

Status IngestLogWriter::Reset() {
  if (file_ == nullptr) return Status::IoError("ingest log is not open");
  XARCH_RETURN_NOT_OK(file_->Truncate(0));
  XARCH_RETURN_NOT_OK(file_->Append(LogHeader()));
  if (policy_ == FsyncPolicy::kEveryRecord) {
    const uint64_t fsync_start_us = obs::MonotonicMicros();
    XARCH_RETURN_NOT_OK(file_->Sync());
    Wal().fsyncs->Increment();
    Wal().fsync_us->Record(obs::MonotonicMicros() - fsync_start_us);
  }
  appended_records_ = 0;
  Wal().resets->Increment();
  return Status::OK();
}

StatusOr<LogReplay> ReadIngestLog(vfs::Vfs* vfs, const std::string& path) {
  LogReplay replay;
  XARCH_ASSIGN_OR_RETURN(bool exists, vfs->Exists(path));
  if (!exists) return replay;
  XARCH_ASSIGN_OR_RETURN(std::string bytes, vfs->ReadFile(path));
  if (bytes.empty()) return replay;  // created but header never landed
  if (bytes.size() < kLogHeaderBytes) {
    // Torn header: nothing recoverable, truncate the whole file.
    replay.torn_tail = true;
    replay.valid_bytes = 0;
    return replay;
  }
  if (std::memcmp(bytes.data(), kLogMagic, 4) != 0) {
    return Status::DataLoss(path + " is not an xarch ingest log (bad magic)");
  }
  Cursor header(std::string_view(bytes).substr(4, 4));
  uint32_t version = 0;
  (void)header.ReadU32(&version);
  if (version != kLogFormatVersion) {
    return Status::DataLoss("unsupported ingest-log format version " +
                            std::to_string(version));
  }

  size_t pos = kLogHeaderBytes;
  while (pos < bytes.size()) {
    Cursor cursor(std::string_view(bytes).substr(pos));
    uint32_t body_len = 0, masked = 0;
    if (!cursor.ReadU32(&body_len).ok() || !cursor.ReadU32(&masked).ok() ||
        body_len > cursor.remaining()) {
      replay.torn_tail = true;  // incomplete frame: crash mid-write
      break;
    }
    std::string_view body =
        std::string_view(bytes).substr(pos + 8, body_len);
    if (Crc32c(body) != UnmaskCrc(masked)) {
      replay.torn_tail = true;  // checksum mismatch: torn or flipped tail
      break;
    }
    auto record = DecodeBody(body);
    if (!record.ok()) {
      // The frame checksummed correctly but does not decode: a writer bug
      // or deliberate tampering, not a torn write. Refuse the log.
      return Status::DataLoss("ingest log record at offset " +
                              std::to_string(pos) + " is undecodable: " +
                              record.status().message());
    }
    pos += 8 + body_len;
    record->end_offset = pos;
    replay.records.push_back(std::move(record).value());
  }
  replay.valid_bytes = pos;
  return replay;
}

}  // namespace xarch::persist
