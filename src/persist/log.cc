#include "persist/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "persist/container.h"
#include "persist/crc32c.h"
#include "persist/wire.h"

namespace xarch::persist {

namespace {

constexpr char kLogMagic[4] = {'X', 'A', 'L', 'G'};
constexpr uint32_t kLogFormatVersion = 1;
constexpr size_t kLogHeaderBytes = 8;

std::string LogHeader() {
  std::string header(kLogMagic, 4);
  PutU32(kLogFormatVersion, &header);
  return header;
}

std::string EncodeBody(const LogRecord& record) {
  std::string body;
  PutU8(record.type, &body);
  PutU32(record.first_version, &body);
  PutU32(static_cast<uint32_t>(record.texts.size()), &body);
  for (const std::string& text : record.texts) PutBytes(text, &body);
  return body;
}

StatusOr<LogRecord> DecodeBody(std::string_view body) {
  Cursor cursor(body);
  LogRecord record;
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&record.type));
  if (record.type != LogRecord::kAppend && record.type != LogRecord::kBatch &&
      record.type != LogRecord::kCheckpoint) {
    return Status::DataLoss("unknown ingest-log record type " +
                            std::to_string(record.type));
  }
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&record.first_version));
  uint32_t count = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&count));
  record.texts.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view text;
    XARCH_RETURN_NOT_OK(cursor.ReadBytes(&text));
    record.texts.emplace_back(text);
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return record;
}

}  // namespace

IngestLogWriter::IngestLogWriter(IngestLogWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      policy_(other.policy_),
      appended_records_(other.appended_records_) {
  other.fd_ = -1;
}

IngestLogWriter& IngestLogWriter::operator=(IngestLogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    policy_ = other.policy_;
    appended_records_ = other.appended_records_;
    other.fd_ = -1;
  }
  return *this;
}

IngestLogWriter::~IngestLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<IngestLogWriter> IngestLogWriter::Open(const std::string& path,
                                                FsyncPolicy policy) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IoError("cannot open ingest log " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat failed on " + path);
  }
  IngestLogWriter writer(fd, path, policy);
  if (st.st_size == 0) {
    Status header = WriteAllToFd(fd, LogHeader(), path);
    if (!header.ok()) return header;
    if (policy == FsyncPolicy::kEveryRecord && ::fsync(fd) != 0) {
      return Status::IoError("fsync failed on " + path);
    }
  }
  return writer;
}

Status IngestLogWriter::Append(const LogRecord& record) {
  if (fd_ < 0) return Status::IoError("ingest log is not open");
  std::string body = EncodeBody(record);
  std::string framed;
  framed.reserve(body.size() + 8);
  PutU32(static_cast<uint32_t>(body.size()), &framed);
  PutU32(MaskCrc(Crc32c(body)), &framed);
  framed += body;
  XARCH_RETURN_NOT_OK(WriteAllToFd(fd_, framed, path_));
  if (policy_ == FsyncPolicy::kEveryRecord && ::fsync(fd_) != 0) {
    return Status::IoError("fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  ++appended_records_;
  return Status::OK();
}

Status IngestLogWriter::Reset() {
  if (fd_ < 0) return Status::IoError("ingest log is not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("truncate failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  // O_APPEND writes follow the (now zero) end of file.
  XARCH_RETURN_NOT_OK(WriteAllToFd(fd_, LogHeader(), path_));
  if (policy_ == FsyncPolicy::kEveryRecord && ::fsync(fd_) != 0) {
    return Status::IoError("fsync failed on " + path_);
  }
  appended_records_ = 0;
  return Status::OK();
}

StatusOr<LogReplay> ReadIngestLog(const std::string& path) {
  LogReplay replay;
  if (!std::filesystem::exists(path)) return replay;
  XARCH_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.empty()) return replay;  // created but header never landed
  if (bytes.size() < kLogHeaderBytes) {
    // Torn header: nothing recoverable, truncate the whole file.
    replay.torn_tail = true;
    replay.valid_bytes = 0;
    return replay;
  }
  if (std::memcmp(bytes.data(), kLogMagic, 4) != 0) {
    return Status::DataLoss(path + " is not an xarch ingest log (bad magic)");
  }
  Cursor header(std::string_view(bytes).substr(4, 4));
  uint32_t version = 0;
  (void)header.ReadU32(&version);
  if (version != kLogFormatVersion) {
    return Status::DataLoss("unsupported ingest-log format version " +
                            std::to_string(version));
  }

  size_t pos = kLogHeaderBytes;
  while (pos < bytes.size()) {
    Cursor cursor(std::string_view(bytes).substr(pos));
    uint32_t body_len = 0, masked = 0;
    if (!cursor.ReadU32(&body_len).ok() || !cursor.ReadU32(&masked).ok() ||
        body_len > cursor.remaining()) {
      replay.torn_tail = true;  // incomplete frame: crash mid-write
      break;
    }
    std::string_view body =
        std::string_view(bytes).substr(pos + 8, body_len);
    if (Crc32c(body) != UnmaskCrc(masked)) {
      replay.torn_tail = true;  // checksum mismatch: torn or flipped tail
      break;
    }
    auto record = DecodeBody(body);
    if (!record.ok()) {
      // The frame checksummed correctly but does not decode: a writer bug
      // or deliberate tampering, not a torn write. Refuse the log.
      return Status::DataLoss("ingest log record at offset " +
                              std::to_string(pos) + " is undecodable: " +
                              record.status().message());
    }
    replay.records.push_back(std::move(record).value());
    pos += 8 + body_len;
  }
  replay.valid_bytes = pos;
  return replay;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError("truncate failed on " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace xarch::persist
