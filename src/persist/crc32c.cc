#include "persist/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define XARCH_CRC32C_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define XARCH_CRC32C_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace xarch::persist {

namespace {

/// Slice-by-8 tables, built once at first use.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

#if defined(XARCH_CRC32C_X86)
/// The SSE4.2 CRC32 instruction path. Compiled with a per-function target
/// so the translation unit stays baseline; only entered after
/// __builtin_cpu_supports said the instruction exists.
__attribute__((target("sse4.2"))) uint32_t Sse42Extend(uint32_t crc,
                                                       std::string_view data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = _mm_crc32_u32(crc, chunk);
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return ~crc;
}
#endif  // XARCH_CRC32C_X86

#if defined(XARCH_CRC32C_ARM)
uint32_t Armv8Extend(uint32_t crc, std::string_view data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __crc32cd(crc, chunk);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return ~crc;
}
#endif  // XARCH_CRC32C_ARM

using ExtendFn = uint32_t (*)(uint32_t, std::string_view);

struct Impl {
  ExtendFn fn;
  const char* name;
};

/// Runtime dispatch, resolved once. A function-local static keeps the
/// choice safe against static-init ordering and data races.
const Impl& Dispatch() {
  static const Impl impl = [] {
#if defined(XARCH_CRC32C_X86)
    if (__builtin_cpu_supports("sse4.2")) {
      return Impl{&Sse42Extend, "hw-sse4.2"};
    }
#endif
#if defined(XARCH_CRC32C_ARM)
#if defined(__linux__)
    if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) {
      return Impl{&Armv8Extend, "hw-armv8"};
    }
#else
    // __ARM_FEATURE_CRC32 implies the compiler already targets a CPU with
    // the extension; trust it where there is no auxv to ask.
    return Impl{&Armv8Extend, "hw-armv8"};
#endif
#endif
    return Impl{&internal::Crc32cSoftwareExtend, "sw-slice8"};
  }();
  return impl;
}

}  // namespace

namespace internal {

uint32_t Crc32cSoftwareExtend(uint32_t crc, std::string_view data) {
  const auto& t = Tables().t;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
          t[5][(crc >> 16) & 0xff] ^ t[4][(crc >> 24) & 0xff] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  return Dispatch().fn(crc, data);
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

const char* Crc32cImplementation() { return Dispatch().name; }

}  // namespace xarch::persist
