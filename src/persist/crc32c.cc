#include "persist/crc32c.h"

#include <array>

namespace xarch::persist {

namespace {

/// Slice-by-8 tables, built once at first use.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const auto& t = Tables().t;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
          t[5][(crc >> 16) & 0xff] ^ t[4][(crc >> 24) & 0xff] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace xarch::persist
