#ifndef XARCH_PERSIST_CONTAINER_H_
#define XARCH_PERSIST_CONTAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch::vfs {
class MappedFile;
}  // namespace xarch::vfs

namespace xarch::persist {

/// Legacy snapshot container format version (XAR1).
inline constexpr uint32_t kContainerFormatVersion = 1;

/// The mmap-navigable flat container format (XAR2); see docs/FORMAT.md.
inline constexpr uint32_t kContainerFormatVersion2 = 2;

/// True when `bytes` start with the XAR2 magic. Dispatch is by magic, never
/// by the format field, so a damaged version field still routes to the
/// parser that owns the matching layout (and its error message).
bool IsXar2Snapshot(std::string_view bytes);

/// \brief Writer for the versioned binary snapshot container.
///
/// Format 1 layout (all integers little-endian):
///
///   magic "XAR1" | u32 format version | u32 section count | u32 CRC32C
///   of the 12 header bytes (masked), then per section:
///
///   u32 name length | name bytes | u8 flags (bit 0 = LZSS payload) |
///   u64 raw payload length | u64 stored payload length | stored bytes |
///   u32 CRC32C (masked) over everything from the name length through the
///   stored bytes
///
/// Format 2 ("XAR2") moves section metadata into a trailing table so a
/// reader can locate any stored payload from the mapped file without
/// touching payload bytes:
///
///   magic "XAR2" | u32 format version | u32 section count | u32 reserved |
///   u64 table offset | u64 table length | u32 table CRC32C (masked) |
///   u32 header CRC32C (masked, over the first 36 bytes), then the stored
///   payloads back to back from offset 40, then the section table at
///   `table offset`; per table entry:
///
///   u32 name length | name bytes | u8 flags (bit 0 = LZSS) |
///   u64 payload offset | u64 stored length | u64 raw length |
///   u32 CRC32C (masked) over the stored payload bytes
///
/// Every stored byte of either format is covered by some checksum, so a
/// bit flip is detected before any decompression or decoding touches the
/// payload. Payloads at least `compress_min_bytes` long are LZSS-compressed
/// when that actually shrinks them; incompressible sections are stored raw.
/// Sections added with `AddRaw` are never compressed — their bytes land in
/// the file verbatim, which is what makes XAR2 sections navigable in place.
class SnapshotWriter {
 public:
  struct Options {
    bool compress = true;
    size_t compress_min_bytes = 128;
    /// Container format to emit: kContainerFormatVersion (default) or
    /// kContainerFormatVersion2.
    uint32_t format = kContainerFormatVersion;
  };

  SnapshotWriter() = default;
  explicit SnapshotWriter(Options options) : options_(options) {}

  /// Adds one named section. Names must be unique per container.
  void Add(std::string name, std::string payload);

  /// Adds one named section that is stored verbatim (never compressed), so
  /// a mapped reader can navigate its bytes in place.
  void AddRaw(std::string name, std::string payload);

  /// Serializes the container.
  std::string Serialize() const;

 private:
  struct Section {
    std::string name;
    std::string payload;
    bool allow_compress = true;
  };

  std::string SerializeV1() const;
  std::string SerializeV2() const;
  /// Stored form of one section: LZSS-compressed when allowed and smaller.
  /// Returns the stored bytes and sets `*compressed`.
  std::string StoredPayload(const Section& section, bool* compressed) const;

  Options options_;
  std::vector<Section> sections_;
};

/// \brief Reader for format-1 SnapshotWriter output. Parse() eagerly
/// verifies the header, every section CRC, and decompresses compressed
/// payloads, so any corruption surfaces as kDataLoss at open time — never
/// as a crash or a half-decoded store later.
class SnapshotReader {
 public:
  static StatusOr<SnapshotReader> Parse(std::string_view bytes);

  /// The payload of a named section; kDataLoss when absent (a snapshot
  /// missing a section its backend requires is a damaged snapshot).
  StatusOr<std::string_view> Section(const std::string& name) const;

  /// The payload of a named section, or nullptr when absent.
  const std::string* FindSection(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, std::string> sections_;
  std::vector<std::string> names_;
};

/// \brief A parsed XAR2 container over bytes it owns (a copied buffer or an
/// adopted file mapping) — the zero-copy open path.
///
/// Opening verifies the header CRC, the table CRC, and every stored
/// payload's CRC (pure checksum passes over the mapped bytes — no parse,
/// no decompression, no per-node allocation), so corruption anywhere in
/// the file surfaces as kDataLoss at open time, exactly like the format-1
/// reader. Raw sections are then served as string_views into the mapped
/// bytes; compressed sections decompress on demand.
///
/// Copies of a SnapshotView share the underlying storage.
class SnapshotView {
 public:
  /// Parses a copy of `bytes` (the view owns the copy).
  static StatusOr<SnapshotView> OpenFromBytes(std::string_view bytes);

  /// Parses and adopts a read-only file mapping: O(mmap + CRC verify),
  /// zero payload copies.
  static StatusOr<SnapshotView> Adopt(std::unique_ptr<vfs::MappedFile> file);

  /// The whole container, byte for byte (what SaveToBytes of an unmodified
  /// mapped store returns).
  std::string_view bytes() const { return bytes_; }

  /// Stored bytes of an uncompressed section, in place. kDataLoss when the
  /// section is absent or was stored compressed.
  StatusOr<std::string_view> RawSection(const std::string& name) const;

  /// Payload of any section as an owned string (decompresses LZSS
  /// sections; copies raw ones).
  StatusOr<std::string> SectionString(const std::string& name) const;

  /// True when the named section exists.
  bool HasSection(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  struct Entry {
    std::string name;
    uint8_t flags = 0;
    uint64_t payload_offset = 0;
    uint64_t stored_len = 0;
    uint64_t raw_len = 0;
  };

  /// Parses `bytes` (borrowed; caller keeps them alive) into `*view`.
  static Status ParseInto(std::string_view bytes, SnapshotView* view);

  friend StatusOr<std::string> ReadSnapshotBackend(std::string_view bytes);

  const Entry* FindEntry(const std::string& name) const;

  std::shared_ptr<const void> owner_;
  std::string_view bytes_;
  std::vector<Entry> entries_;
  std::map<std::string, size_t> index_;
  std::vector<std::string> names_;
};

/// Reads the "backend" section from snapshot bytes of either format — the
/// cheap probe open paths use to decide which restorer to call.
StatusOr<std::string> ReadSnapshotBackend(std::string_view bytes);

// File I/O lives behind the pluggable backend in vfs/vfs.h now: whole-file
// reads are Vfs::ReadFile / Vfs::Map, atomic replacement is
// vfs::AtomicWriteFile, and the EINTR/short-write loops are
// util/posix_io.h. The container layer itself is pure bytes-in/bytes-out.

}  // namespace xarch::persist

#endif  // XARCH_PERSIST_CONTAINER_H_
