#ifndef XARCH_PERSIST_CONTAINER_H_
#define XARCH_PERSIST_CONTAINER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xarch::persist {

/// Snapshot container format version. Bump on incompatible layout changes;
/// readers reject versions they do not understand with kDataLoss.
inline constexpr uint32_t kContainerFormatVersion = 1;

/// \brief Writer for the versioned binary snapshot container.
///
/// Layout (all integers little-endian):
///
///   magic "XAR1" | u32 format version | u32 section count | u32 CRC32C
///   of the 12 header bytes (masked), then per section:
///
///   u32 name length | name bytes | u8 flags (bit 0 = LZSS payload) |
///   u64 raw payload length | u64 stored payload length | stored bytes |
///   u32 CRC32C (masked) over everything from the name length through the
///   stored bytes
///
/// Every section is independently checksummed over its STORED form, so a
/// bit flip is detected before any decompression or decoding touches the
/// payload. Payloads at least `compress_min_bytes` long are LZSS-compressed
/// when that actually shrinks them; incompressible sections are stored raw.
class SnapshotWriter {
 public:
  struct Options {
    bool compress = true;
    size_t compress_min_bytes = 128;
  };

  SnapshotWriter() = default;
  explicit SnapshotWriter(Options options) : options_(options) {}

  /// Adds one named section. Names must be unique per container.
  void Add(std::string name, std::string payload);

  /// Serializes the container.
  std::string Serialize() const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };

  Options options_;
  std::vector<Section> sections_;
};

/// \brief Reader for SnapshotWriter output. Parse() eagerly verifies the
/// header, every section CRC, and decompresses compressed payloads, so any
/// corruption surfaces as kDataLoss at open time — never as a crash or a
/// half-decoded store later.
class SnapshotReader {
 public:
  static StatusOr<SnapshotReader> Parse(std::string_view bytes);

  /// The payload of a named section; kDataLoss when absent (a snapshot
  /// missing a section its backend requires is a damaged snapshot).
  StatusOr<std::string_view> Section(const std::string& name) const;

  /// The payload of a named section, or nullptr when absent.
  const std::string* FindSection(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, std::string> sections_;
  std::vector<std::string> names_;
};

// File I/O lives behind the pluggable backend in vfs/vfs.h now: whole-file
// reads are Vfs::ReadFile / Vfs::Map, atomic replacement is
// vfs::AtomicWriteFile, and the EINTR/short-write loops are
// util/posix_io.h. The container layer itself is pure bytes-in/bytes-out.

}  // namespace xarch::persist

#endif  // XARCH_PERSIST_CONTAINER_H_
