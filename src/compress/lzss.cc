#include "compress/lzss.h"

#include <cstring>
#include <vector>

namespace xarch::compress {

namespace {

constexpr size_t kWindowSize = 32 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 258;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;
constexpr int kMaxChain = 64;
constexpr char kMagic[4] = {'L', 'Z', 'S', '1'};

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// All-literal encoding: a valid LZSS stream with no matches. Used for
/// inputs beyond kLzssMaxInputBytes, where positions no longer fit the
/// int32_t hash-chain tables — correctness (a decodable stream) is kept
/// and only ratio is lost.
std::string CompressAllLiterals(std::string_view data) {
  std::string out;
  out.append(kMagic, 4);
  PutU64(data.size(), &out);
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t run = std::min(size_t{8}, data.size() - pos);
    out.push_back(0);  // flag byte: 8 literals
    out.append(data.data() + pos, run);
    pos += run;
  }
  return out;
}

}  // namespace

std::string LzssCompress(std::string_view data) {
  if (data.size() > kLzssMaxInputBytes) return CompressAllLiterals(data);
  std::string out;
  out.append(kMagic, 4);
  PutU64(data.size(), &out);
  if (data.empty()) return out;

  const uint8_t* src = reinterpret_cast<const uint8_t*>(data.data());
  const size_t n = data.size();

  // Positions fit int32_t: n <= kLzssMaxInputBytes < 2^31 (checked above).
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(n, -1);

  // Token group: one flag byte describes the next 8 tokens (bit set =
  // match), followed by the token bytes.
  size_t flag_pos = 0;
  int flag_count = 0;
  uint8_t flags = 0;
  auto begin_group = [&]() {
    flag_pos = out.size();
    out.push_back(0);
    flags = 0;
    flag_count = 0;
  };
  auto end_token = [&](bool is_match) {
    if (is_match) flags |= static_cast<uint8_t>(1 << flag_count);
    if (++flag_count == 8) {
      out[flag_pos] = static_cast<char>(flags);
      begin_group();
    }
  };
  begin_group();

  size_t pos = 0;
  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      uint32_t h = HashAt(src + pos);
      int32_t cand = head[h];
      int chain = 0;
      size_t limit = std::min(kMaxMatch, n - pos);
      while (cand >= 0 && chain < kMaxChain &&
             pos - static_cast<size_t>(cand) <= kWindowSize) {
        const uint8_t* a = src + cand;
        const uint8_t* b = src + pos;
        // Only a match longer than best_len can improve the token, and
        // such a match must agree at offset best_len — one byte rules out
        // most chain entries without running the compare loop. (best_len
        // stays < limit inside the walk: reaching limit breaks out below,
        // so both reads are in bounds.)
        if (best_len > 0 && a[best_len] != b[best_len]) {
          cand = prev[cand];
          ++chain;
          continue;
        }
        size_t len = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
        // Word-at-a-time compare: XOR + count-trailing-zeros locates the
        // first differing byte eight bytes per step, with the same result
        // as the byte loop (so the emitted stream is unchanged).
        while (len + 8 <= limit) {
          uint64_t wa, wb;
          std::memcpy(&wa, a + len, 8);
          std::memcpy(&wb, b + len, 8);
          const uint64_t diff = wa ^ wb;
          if (diff != 0) {
            len += static_cast<size_t>(__builtin_ctzll(diff)) / 8;
            break;
          }
          len += 8;
        }
#endif
        while (len < limit && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<size_t>(cand);
          if (len == limit) break;
        }
        cand = prev[cand];
        ++chain;
      }
    }
    if (best_len >= kMinMatch) {
      // Match token: 2-byte distance, 1-byte (length - kMinMatch).
      out.push_back(static_cast<char>(best_dist & 0xff));
      out.push_back(static_cast<char>((best_dist >> 8) & 0xff));
      out.push_back(static_cast<char>(best_len - kMinMatch > 254
                                          ? 254
                                          : best_len - kMinMatch));
      if (best_len - kMinMatch > 254) best_len = kMinMatch + 254;
      end_token(true);
      // Insert hash entries for all covered positions.
      size_t end = pos + best_len;
      for (; pos < end && pos + kMinMatch <= n; ++pos) {
        uint32_t h = HashAt(src + pos);
        prev[pos] = head[h];
        head[h] = static_cast<int32_t>(pos);
      }
      pos = end;
    } else {
      out.push_back(static_cast<char>(src[pos]));
      end_token(false);
      if (pos + kMinMatch <= n) {
        uint32_t h = HashAt(src + pos);
        prev[pos] = head[h];
        head[h] = static_cast<int32_t>(pos);
      }
      ++pos;
    }
  }
  out[flag_pos] = static_cast<char>(flags);
  // Drop a trailing empty group.
  if (flag_count == 0 && out.size() == flag_pos + 1) out.pop_back();
  return out;
}

StatusOr<std::string> LzssTryCompress(std::string_view data) {
  return LzssTryCompress(data, kLzssMaxInputBytes);
}

StatusOr<std::string> LzssTryCompress(std::string_view data,
                                      size_t max_input_bytes) {
  if (data.size() > max_input_bytes) {
    return Status::InvalidArgument(
        "LZSS input of " + std::to_string(data.size()) +
        " bytes exceeds the supported maximum of " +
        std::to_string(max_input_bytes) +
        " bytes (hash-chain positions are 32-bit)");
  }
  return LzssCompress(data);
}

StatusOr<std::string> LzssDecompress(std::string_view data) {
  // Every validation failure below is kDataLoss: the input claims to be an
  // LZSS stream but its bytes are torn, truncated, or flipped. Decoding is
  // driven entirely by bounds-checked reads — corrupt input yields a clear
  // Status, never an out-of-bounds access or an unbounded allocation.
  if (data.size() < 12 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::DataLoss("not an LZSS stream");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  const uint64_t orig_size = GetU64(p + 4);
  const size_t n = data.size();
  // A token byte can produce at most kMaxMatch output bytes (a match token
  // spends 3 bytes; a literal spends 1 for 1). A declared size beyond that
  // bound cannot come from LzssCompress: reject it up front instead of
  // letting a bit-flipped size field drive a multi-gigabyte allocation.
  const uint64_t max_plausible =
      static_cast<uint64_t>(n - 12) * kMaxMatch;
  if (orig_size > max_plausible) {
    return Status::DataLoss(
        "LZSS header declares " + std::to_string(orig_size) +
        " output bytes, impossible for a " + std::to_string(n) +
        "-byte stream");
  }
  std::string out;
  out.reserve(static_cast<size_t>(orig_size));
  size_t pos = 12;
  while (out.size() < orig_size) {
    if (pos >= n) return Status::DataLoss("truncated LZSS stream");
    uint8_t flags = p[pos++];
    for (int bit = 0; bit < 8 && out.size() < orig_size; ++bit) {
      if (flags & (1 << bit)) {
        if (pos + 3 > n) return Status::DataLoss("truncated match token");
        size_t dist = p[pos] | (static_cast<size_t>(p[pos + 1]) << 8);
        size_t len = static_cast<size_t>(p[pos + 2]) + kMinMatch;
        pos += 3;
        if (dist == 0 || dist > out.size()) {
          return Status::DataLoss(
              "match distance " + std::to_string(dist) +
              " out of range (have " + std::to_string(out.size()) +
              " decoded bytes)");
        }
        if (out.size() + len > orig_size) {
          return Status::DataLoss(
              "match length " + std::to_string(len) +
              " runs past the declared output size");
        }
        size_t from = out.size() - dist;
        for (size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
      } else {
        if (pos >= n) return Status::DataLoss("truncated literal");
        out.push_back(static_cast<char>(p[pos++]));
      }
    }
  }
  if (pos != n) {
    return Status::DataLoss(std::to_string(n - pos) +
                            " trailing bytes after LZSS stream");
  }
  return out;
}

size_t LzssCompressedSize(std::string_view data) {
  return LzssCompress(data).size();
}

}  // namespace xarch::compress
