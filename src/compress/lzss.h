#ifndef XARCH_COMPRESS_LZSS_H_
#define XARCH_COMPRESS_LZSS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace xarch::compress {

/// \brief LZSS compression (LZ77 with literal/match flags), the library's
/// stand-in for gzip in the Sec. 5 compression experiments.
///
/// gzip is LZ77 plus Huffman coding; LZSS keeps the dictionary stage —
/// which is what makes cross-version redundancy in diff repositories and
/// archives compress away — and drops the entropy stage. Ratios are
/// uniformly a little worse than gzip's, but orderings between compared
/// artifacts are preserved, which is what the experiments measure.
/// Parameters: 32 KiB window (gzip's), minimum match 4, maximum match 258,
/// greedy hash-chain matching.
std::string LzssCompress(std::string_view data);

/// Decompresses LzssCompress output. Fails on malformed input.
StatusOr<std::string> LzssDecompress(std::string_view data);

/// Convenience: the size LzssCompress(data) would occupy.
size_t LzssCompressedSize(std::string_view data);

}  // namespace xarch::compress

#endif  // XARCH_COMPRESS_LZSS_H_
