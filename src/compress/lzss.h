#ifndef XARCH_COMPRESS_LZSS_H_
#define XARCH_COMPRESS_LZSS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace xarch::compress {

/// \brief LZSS compression (LZ77 with literal/match flags), the library's
/// stand-in for gzip in the Sec. 5 compression experiments.
///
/// gzip is LZ77 plus Huffman coding; LZSS keeps the dictionary stage —
/// which is what makes cross-version redundancy in diff repositories and
/// archives compress away — and drops the entropy stage. Ratios are
/// uniformly a little worse than gzip's, but orderings between compared
/// artifacts are preserved, which is what the experiments measure.
/// Parameters: 32 KiB window (gzip's), minimum match 4, maximum match 258,
/// greedy hash-chain matching.
///
/// The hash-chain tables index positions with int32_t; inputs at or above
/// 2 GiB would overflow them, so dictionary compression is bounded at
/// kLzssMaxInputBytes. LzssTryCompress rejects larger inputs with a clear
/// Status. LzssCompress (the legacy infallible entry point) accepts any
/// size: above the bound it emits a valid all-literal stream (decodable,
/// no matches — correctness kept, ratio lost) instead of overflowing.
inline constexpr size_t kLzssMaxInputBytes = (size_t{1} << 31) - 1;

std::string LzssCompress(std::string_view data);

/// Bounds-checked compression: kInvalidArgument when data.size() exceeds
/// the supported maximum, otherwise exactly LzssCompress(data). The
/// `max_input_bytes` overload exists so the rejection path is unit-testable
/// without allocating 2 GiB; production callers use the default.
StatusOr<std::string> LzssTryCompress(std::string_view data);
StatusOr<std::string> LzssTryCompress(std::string_view data,
                                      size_t max_input_bytes);

/// Decompresses LzssCompress output. Fails on malformed input.
StatusOr<std::string> LzssDecompress(std::string_view data);

/// Convenience: the size LzssCompress(data) would occupy.
size_t LzssCompressedSize(std::string_view data);

}  // namespace xarch::compress

#endif  // XARCH_COMPRESS_LZSS_H_
