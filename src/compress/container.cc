#include "compress/container.h"

#include <map>
#include <unordered_map>
#include <vector>

#include "compress/lzss.h"
#include "xml/parser.h"

namespace xarch::compress {

namespace {

constexpr char kMagic[4] = {'X', 'M', 'C', '1'};

// Structure stream tokens.
constexpr uint8_t kOpenElement = 0x01;  // + varint tag id
constexpr uint8_t kAttr = 0x02;         // + varint attr-name id; value in container
constexpr uint8_t kText = 0x03;         // content in container of enclosing tag
constexpr uint8_t kClose = 0x04;

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t b = static_cast<uint8_t>(data[(*pos)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Corruption("bad varint");
}

void PutString(std::string_view s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

Status GetString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len;
  XARCH_RETURN_NOT_OK(GetVarint(data, pos, &len));
  if (*pos + len > data.size()) return Status::Corruption("bad string length");
  out->assign(data.substr(*pos, len));
  *pos += len;
  return Status::OK();
}

/// Splits a document into dictionary + structure stream + text containers.
class Splitter {
 public:
  void Walk(const xml::Node& node) {
    if (node.is_text()) {
      structure_.push_back(static_cast<char>(kText));
      AppendToContainer(current_tag_, node.text());
      return;
    }
    structure_.push_back(static_cast<char>(kOpenElement));
    PutVarint(NameId(node.tag()), &structure_);
    for (const auto& [name, value] : node.attrs()) {
      structure_.push_back(static_cast<char>(kAttr));
      PutVarint(NameId(name), &structure_);
      AppendToContainer("@" + name, value);
    }
    std::string saved_tag = current_tag_;
    current_tag_ = node.tag();
    for (const auto& c : node.children()) Walk(*c);
    current_tag_ = saved_tag;
    structure_.push_back(static_cast<char>(kClose));
  }

  std::string Finish() {
    std::string out;
    out.append(kMagic, 4);
    PutVarint(names_.size(), &out);
    for (const auto& name : names_) PutString(name, &out);
    // All containers plus the structure stream are compressed as ONE
    // stream in container order: grouping still puts similar text side by
    // side (the XMill effect) while matches can reach across container
    // boundaries, as XMill's shared dictionary does.
    PutVarint(containers_.size(), &out);
    std::string super;
    for (const auto& [key, body] : containers_) {  // std::map: stable order
      PutString(key, &out);
      PutVarint(body.size(), &out);
      super += body;
    }
    PutVarint(structure_.size(), &out);
    super += structure_;
    PutString(LzssCompress(super), &out);
    return out;
  }

 private:
  uint64_t NameId(const std::string& name) {
    auto [it, inserted] = name_ids_.try_emplace(name, names_.size());
    if (inserted) names_.push_back(name);
    return it->second;
  }

  void AppendToContainer(const std::string& key, std::string_view text) {
    std::string& body = containers_[key];
    PutVarint(text.size(), &body);
    body.append(text);
  }

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint64_t> name_ids_;
  std::map<std::string, std::string> containers_;
  std::string structure_;
  std::string current_tag_;
};

/// Sequential reader over one decompressed container.
struct ContainerCursor {
  std::string body;
  size_t pos = 0;

  StatusOr<std::string> Next() {
    uint64_t len;
    XARCH_RETURN_NOT_OK(GetVarint(body, &pos, &len));
    if (pos + len > body.size()) return Status::Corruption("container overrun");
    std::string out = body.substr(pos, len);
    pos += len;
    return out;
  }
};

}  // namespace

std::string XmlContainerCompressor::Compress(const xml::Node& root) {
  Splitter splitter;
  splitter.Walk(root);
  return splitter.Finish();
}

StatusOr<std::string> XmlContainerCompressor::CompressText(
    std::string_view xml_text) {
  XARCH_ASSIGN_OR_RETURN(xml::NodePtr root, xml::Parse(xml_text));
  return Compress(*root);
}

size_t XmlContainerCompressor::CompressedSize(const xml::Node& root) {
  return Compress(root).size();
}

StatusOr<xml::NodePtr> XmlContainerCompressor::Decompress(
    std::string_view data) {
  if (data.size() < 4 || std::string_view(data.data(), 4) !=
                             std::string_view(kMagic, 4)) {
    return Status::Corruption("not an XMC stream");
  }
  size_t pos = 4;
  uint64_t name_count;
  XARCH_RETURN_NOT_OK(GetVarint(data, &pos, &name_count));
  std::vector<std::string> names(name_count);
  for (auto& name : names) XARCH_RETURN_NOT_OK(GetString(data, &pos, &name));
  uint64_t container_count;
  XARCH_RETURN_NOT_OK(GetVarint(data, &pos, &container_count));
  std::vector<std::pair<std::string, uint64_t>> layout(container_count);
  for (auto& [key, len] : layout) {
    XARCH_RETURN_NOT_OK(GetString(data, &pos, &key));
    XARCH_RETURN_NOT_OK(GetVarint(data, &pos, &len));
  }
  uint64_t structure_len;
  XARCH_RETURN_NOT_OK(GetVarint(data, &pos, &structure_len));
  std::string blob;
  XARCH_RETURN_NOT_OK(GetString(data, &pos, &blob));
  XARCH_ASSIGN_OR_RETURN(std::string super, LzssDecompress(blob));
  std::unordered_map<std::string, ContainerCursor> containers;
  size_t offset = 0;
  for (const auto& [key, len] : layout) {
    if (offset + len > super.size()) {
      return Status::Corruption("container layout overruns stream");
    }
    containers[key] = ContainerCursor{super.substr(offset, len), 0};
    offset += len;
  }
  if (offset + structure_len != super.size()) {
    return Status::Corruption("structure stream size mismatch");
  }
  std::string structure = super.substr(offset, structure_len);

  // Rebuild the tree from the token stream.
  size_t spos = 0;
  std::vector<xml::Node*> stack;
  xml::NodePtr root;
  auto next_text = [&](const std::string& key) -> StatusOr<std::string> {
    auto it = containers.find(key);
    if (it == containers.end()) return Status::Corruption("missing container");
    return it->second.Next();
  };
  while (spos < structure.size()) {
    uint8_t token = static_cast<uint8_t>(structure[spos++]);
    switch (token) {
      case kOpenElement: {
        uint64_t id;
        XARCH_RETURN_NOT_OK(GetVarint(structure, &spos, &id));
        if (id >= names.size()) return Status::Corruption("bad tag id");
        xml::NodePtr elem = xml::Node::Element(names[id]);
        xml::Node* raw = elem.get();
        if (stack.empty()) {
          if (root != nullptr) return Status::Corruption("multiple roots");
          root = std::move(elem);
        } else {
          stack.back()->AddChild(std::move(elem));
        }
        stack.push_back(raw);
        break;
      }
      case kAttr: {
        uint64_t id;
        XARCH_RETURN_NOT_OK(GetVarint(structure, &spos, &id));
        if (id >= names.size() || stack.empty()) {
          return Status::Corruption("bad attribute token");
        }
        XARCH_ASSIGN_OR_RETURN(std::string value,
                               next_text("@" + names[id]));
        stack.back()->SetAttr(names[id], value);
        break;
      }
      case kText: {
        if (stack.empty()) return Status::Corruption("text outside element");
        XARCH_ASSIGN_OR_RETURN(std::string text,
                               next_text(stack.back()->tag()));
        stack.back()->AddText(std::move(text));
        break;
      }
      case kClose:
        if (stack.empty()) return Status::Corruption("unbalanced close");
        stack.pop_back();
        break;
      default:
        return Status::Corruption("unknown structure token");
    }
  }
  if (!stack.empty() || root == nullptr) {
    return Status::Corruption("unbalanced structure stream");
  }
  return root;
}

}  // namespace xarch::compress
