#ifndef XARCH_COMPRESS_CONTAINER_H_
#define XARCH_COMPRESS_CONTAINER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/node.h"

namespace xarch::compress {

/// \brief A container-based XML compressor in the style of XMill
/// (Liefke & Suciu 2000), the library's stand-in for `xmill -9` in the
/// Sec. 5 experiments.
///
/// Like XMill it separates structure from content: tag/attribute names go
/// to a dictionary, the tree shape becomes a token stream, and character
/// data is routed to per-container streams grouped by the enclosing element
/// (or attribute) name. "Text data that belong to elements of the same
/// name tend to be fairly similar, [so] high compression ratios can usually
/// be achieved" (Sec. 5.4) — grouping puts that similar text side by side
/// before the dictionary compressor (our LZSS) runs per container. That
/// mechanism, not the particular entropy coder, is what makes
/// xmill(archive) beat gzip(diff repository) in the paper, and it is
/// preserved here.
class XmlContainerCompressor {
 public:
  /// Compresses a parsed document.
  static std::string Compress(const xml::Node& root);

  /// Parses and compresses serialized XML.
  static StatusOr<std::string> CompressText(std::string_view xml_text);

  /// Reconstructs the document from Compress() output.
  static StatusOr<xml::NodePtr> Decompress(std::string_view data);

  /// The size Compress() output would occupy.
  static size_t CompressedSize(const xml::Node& root);
};

}  // namespace xarch::compress

#endif  // XARCH_COMPRESS_CONTAINER_H_
