#ifndef XARCH_SERVER_SERVER_H_
#define XARCH_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/net_util.h"
#include "server/protocol.h"
#include "util/thread_pool.h"
#include "xarch/store.h"

namespace xarch::server {

/// Tuning for one Server instance.
struct ServerOptions {
  /// Bind address. Loopback by default: exposing an archive to a network
  /// is an explicit decision (the protocol has no authentication).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see Server::port()).
  uint16_t port = 0;
  /// Worker threads running session loops — the maximum number of
  /// concurrently served connections; further accepted connections queue
  /// until a session ends. Clamped to at least 1.
  size_t session_threads = 8;
  /// Admission control: QUERY frames beyond this many concurrently
  /// evaluating queries are answered with ERROR (busy) instead of piling
  /// onto the store lock. Clamped to at least 1.
  size_t max_inflight_queries = 4;
  /// How often an idle session rechecks the stop flag, and therefore the
  /// upper bound a drain waits on a session that is between requests.
  int idle_poll_ms = 100;
  /// A peer that stalls this long in the middle of a frame is dropped.
  int stall_timeout_ms = 5000;
  /// Banner returned in HELLO_OK.
  std::string server_name = "xarchd";
  /// Log a structured span tree (obs::Logger) for any query at least this
  /// slow, in microseconds. 0 logs every query (CI smoke runs use that);
  /// negative (default) disables slow-query logging entirely.
  int64_t slow_query_us = -1;
  /// Test-only: runs after a query passes admission control and before it
  /// evaluates. Lets tests park queries deterministically to fill the
  /// admission gate or exercise drain; never set in production.
  std::function<void()> query_gate_hook;
};

/// Monotonic server-wide counters (a point-in-time copy; see
/// Server::StatsSnapshot).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_active = 0;
  uint64_t queries = 0;        ///< successfully answered QUERYs
  uint64_t ingests = 0;        ///< successfully answered INGESTs
  uint64_t documents_ingested = 0;
  uint64_t bytes_in = 0;       ///< wire bytes read across all sessions
  uint64_t bytes_out = 0;      ///< wire bytes written across all sessions
  uint64_t rejected_busy = 0;  ///< queries bounced by admission control
  uint64_t protocol_errors = 0;
  uint64_t query_latency_p50_us = 0;  ///< histogram upper bound (<=6.25% off)
  uint64_t query_latency_p99_us = 0;
};

/// \brief The xarchd service core: accepts TCP connections and serves the
/// wire protocol (server/protocol.h) over one Store.
///
/// Threading: one accept thread hands each connection to a fixed
/// util::ThreadPool whose workers run the session loops, so at most
/// `session_threads` sessions are live at once. All store access goes
/// through the public Store API — reads ride its shared lock
/// (snapshot-isolated, any number in parallel), ingest its exclusive lock
/// — so the server adds no locking of its own around the store.
///
/// Lifecycle: Start() binds and begins accepting. RequestStop() (thread-
/// and signal-context-safe apart from memory allocation — call it from a
/// thread, not a signal handler) stops accepting and asks sessions to
/// drain: each finishes its in-flight request, then closes. Join() blocks
/// until the drain completes. The Store outlives the Server; the caller
/// checkpoints it after Join() for a clean shutdown (xarchd does).
class Server {
 public:
  /// Binds, spawns the accept loop, and returns a running server. `store`
  /// must outlive the returned Server.
  static StatusOr<std::unique_ptr<Server>> Start(Store& store,
                                                 ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (useful with options.port == 0).
  uint16_t port() const { return listener_.bound_port(); }

  /// Begins a graceful stop: no new connections, sessions drain.
  void RequestStop();

  /// True once RequestStop() was called (or a SHUTDOWN frame arrived).
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Blocks until stop is requested — by RequestStop() or a client's
  /// SHUTDOWN frame. The daemon main loop sits here.
  void WaitForStopRequest();

  /// Completes the stop: joins the accept thread and every session.
  /// Implies RequestStop(). Idempotent.
  void Join();

  /// Point-in-time copy of the server-wide counters.
  ServerStats StatsSnapshot() const;

  /// Prometheus text exposition: the process-wide registry (engine, WAL,
  /// VFS instruments) followed by this server's own registry. This is the
  /// METRICS response body.
  std::string MetricsText() const;

  /// The server's own instrument registry (session/frame/latency series).
  /// Benches snapshot it alongside the process-wide default registry.
  const obs::Registry& registry() const { return registry_; }

 private:
  Server(Store& store, ServerOptions options, net::Listener listener);

  void AcceptLoop();
  void RunSession(std::shared_ptr<net::Socket> socket);

  /// Per-session counters, owned by the session thread.
  struct SessionState {
    uint64_t queries = 0;
    uint64_t ingests = 0;
    uint64_t bytes_out = 0;
    bool hello_done = false;
    uint32_t version = 1;  ///< negotiated protocol version
  };

  /// Handles one decoded request frame. Returns false when the session
  /// must end (fatal protocol error or write failure).
  bool HandleFrame(const net::Socket& socket, const net::Frame& frame,
                   const net::FrameReader& reader, SessionState* session);

  bool HandleHello(const net::Socket& socket, const net::Frame& frame,
                   SessionState* session);
  bool HandleQuery(const net::Socket& socket, const net::Frame& frame,
                   SessionState* session);
  bool HandleIngest(const net::Socket& socket, const net::Frame& frame,
                    SessionState* session);
  bool HandleStats(const net::Socket& socket, const net::FrameReader& reader,
                   SessionState* session);
  bool HandleMetrics(const net::Socket& socket, SessionState* session);

  /// Best-effort structured error; returns false when the write failed.
  bool SendError(const net::Socket& socket, net::ErrorCode code,
                 const std::string& message, SessionState* session);

  /// Bumps both views of the protocol-error count (STATS and METRICS).
  void CountProtocolError() {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    protocol_errors_metric_->Increment();
  }

  Store& store_;
  const ServerOptions options_;
  net::Listener listener_;

  std::atomic<bool> stop_{false};
  std::unique_ptr<util::ThreadPool> sessions_pool_;
  std::thread accept_thread_;
  bool joined_ = false;

  mutable std::mutex mu_;               // guards cv waits
  std::condition_variable stop_cv_;     // signaled by RequestStop
  std::condition_variable drained_cv_;  // signaled as sessions end

  /// Per-server instruments. Each Server owns its registry (tests run
  /// several servers in one process; sharing the process-wide registry
  /// would fold their counts together), so METRICS concatenates the
  /// default registry with this one.
  obs::Registry registry_;
  obs::Histogram* query_latency_us_;  // owned by registry_
  obs::Counter* sessions_opened_metric_;
  obs::Counter* frames_total_;
  obs::Counter* rejected_busy_metric_;
  obs::Counter* protocol_errors_metric_;
  obs::Counter* slow_queries_metric_;

  struct Counters {
    std::atomic<uint64_t> sessions_opened{0};
    std::atomic<uint64_t> sessions_active{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> ingests{0};
    std::atomic<uint64_t> documents_ingested{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> rejected_busy{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> inflight_queries{0};
  };
  Counters counters_;
};

}  // namespace xarch::server

#endif  // XARCH_SERVER_SERVER_H_
