#ifndef XARCH_SERVER_PROTOCOL_H_
#define XARCH_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/version_set.h"

namespace xarch::net {

/// \brief The xarchd wire protocol: length-prefixed binary frames over a
/// byte stream (TCP), framed exactly like the persistence layer's ingest
/// log — the decode side is driven by untrusted network bytes, so it rides
/// the same bounds-checked persist::Cursor codecs and masked CRC32C.
///
/// Frame layout (all integers little-endian):
///
///   u32 body length | u32 CRC32C (masked) of the body | body
///   body = u8 message type | type-specific payload
///
/// A frame whose declared length exceeds kMaxFrameBytes, whose CRC does
/// not match, or whose payload does not decode cleanly is a protocol
/// error: the receiver reports a structured ERROR frame when it still can
/// and drops the connection — it never trusts the stream's framing again.
///
/// Version negotiation: the first frame on a connection must be HELLO,
/// carrying the protocol magic and the [min, max] version range the client
/// speaks. The server picks the highest version both sides support and
/// answers HELLO_OK, or ERROR (kVersionMismatch) when the ranges are
/// disjoint. Every later frame is interpreted at the negotiated version.

/// "XNP1"-style magic guarding against a non-xarch peer (first HELLO field).
inline constexpr uint32_t kProtocolMagic = 0x50524158u;  // "XARP" LE

/// Protocol versions this build can speak. Version 2 adds a flags octet in
/// front of the QUERY payload (bit 0 asks for a TRACE frame before DONE)
/// and the METRICS request; v1 sessions still send raw XAQL text.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 2;

/// QUERY flags octet (protocol version >= 2 only).
inline constexpr uint8_t kQueryFlagTrace = 0x01;  ///< send TRACE before DONE

/// Hard ceiling on one frame's body. Bounds server memory per session and
/// rejects absurd declared lengths before any allocation. Large query
/// results are not affected: they stream as many CHUNK frames.
inline constexpr uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Response chunks aim at this size; the last chunk may be smaller.
inline constexpr size_t kChunkBytes = 64 * 1024;

/// Message types. Requests have the high bit clear, responses set.
enum class MessageType : uint8_t {
  // ---- requests (client -> server)
  kHello = 0x01,     ///< magic, min/max version, client name
  kQuery = 0x02,     ///< XAQL text; answered by CHUNK* then DONE, or ERROR
  kIngest = 0x03,    ///< batch of XML documents to append
  kStats = 0x04,     ///< server + session counters
  kPing = 0x05,      ///< liveness probe
  kShutdown = 0x06,  ///< ask the daemon to stop (drain + checkpoint)
  kMetrics = 0x07,   ///< scrape the telemetry registry (v2+)

  // ---- responses (server -> client)
  kHelloOk = 0x81,     ///< negotiated version, server name, backend
  kChunk = 0x82,       ///< one piece of a streamed query result
  kDone = 0x83,        ///< end of a successful query stream
  kError = 0x84,       ///< structured error: code + message
  kIngestOk = 0x85,    ///< new version count after the batch landed
  kStatsOk = 0x86,     ///< encoded StatsReply
  kPong = 0x87,        ///< PING answer
  kShutdownOk = 0x88,  ///< shutdown acknowledged; server begins draining
  kTrace = 0x89,       ///< rendered span tree for a traced query (v2+)
  kMetricsOk = 0x8A,   ///< Prometheus text exposition of the registry (v2+)
};

/// Wire error codes carried by kError frames. Stable numbers: clients
/// switch on them, so new codes are appended, never renumbered.
enum class ErrorCode : uint32_t {
  kUnknown = 0,
  kVersionMismatch = 1,  ///< no protocol version in common
  kMalformedFrame = 2,   ///< bad CRC, oversized or truncated frame
  kUnknownMessage = 3,   ///< valid frame, unrecognized message type
  kBadRequest = 4,       ///< payload decoded but is semantically invalid
  kBusy = 5,             ///< admission control: max in-flight queries held
  kQueryFailed = 6,      ///< XAQL evaluation returned an error
  kIngestFailed = 7,     ///< Append/AppendBatch returned an error
  kShuttingDown = 8,     ///< server is draining; no new work accepted
  kInternal = 9,         ///< anything else
};

/// Human-readable name ("busy", "version-mismatch") for logs and CLIs.
std::string_view ErrorCodeName(ErrorCode code);

/// One decoded frame: the message type and its (owned) payload bytes.
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Serializes one frame (header + CRC + body) ready to write to a socket.
/// Payloads above kMaxFrameBytes are a caller bug and are rejected with
/// kInvalidArgument rather than producing an unreadable frame.
StatusOr<std::string> EncodeFrame(MessageType type, std::string_view payload);

/// Result of TryDecodeFrame on a receive buffer.
enum class DecodeResult {
  kFrame,       ///< one complete valid frame was consumed into *out
  kNeedMore,    ///< the buffer holds only a prefix; read more bytes
  kMalformed,   ///< framing is broken (bad CRC / oversized declared length)
};

/// Attempts to decode one frame from the front of `buffer`. On kFrame the
/// consumed bytes are erased from `buffer` and *out is filled. On
/// kMalformed `detail` (when non-null) says why; the buffer is left
/// untouched — the caller should drop the connection, not resynchronize.
DecodeResult TryDecodeFrame(std::string* buffer, Frame* out,
                            std::string* detail);

// --------------------------------------------------------------- payloads
// Each message payload has an Encode function producing the body bytes
// (sans type octet) and a Decode function driven by persist::Cursor; every
// Decode validates ExpectDone so trailing garbage is flagged.

struct HelloRequest {
  uint32_t magic = kProtocolMagic;
  uint32_t min_version = kProtocolVersionMin;
  uint32_t max_version = kProtocolVersionMax;
  std::string client_name;
};

struct HelloReply {
  uint32_t version = 0;  ///< the negotiated protocol version
  std::string server_name;
  std::string backend;  ///< the served store's name, e.g. "durable(archive)"
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

struct IngestRequest {
  std::vector<std::string> documents;  ///< XML texts, ingest order
};

struct IngestReply {
  Version version_count = 0;  ///< store version count after the batch
};

/// Server-wide and per-session counters returned by kStats.
struct StatsReply {
  // -- server-wide
  uint64_t sessions_opened = 0;
  uint64_t sessions_active = 0;
  uint64_t queries = 0;
  uint64_t ingests = 0;
  uint64_t documents_ingested = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t rejected_busy = 0;
  uint64_t protocol_errors = 0;
  uint64_t query_latency_p50_us = 0;
  uint64_t query_latency_p99_us = 0;
  Version store_versions = 0;
  // -- the session answering this request
  uint64_t session_queries = 0;
  uint64_t session_ingests = 0;
  uint64_t session_bytes_in = 0;
  uint64_t session_bytes_out = 0;
};

std::string EncodeHelloRequest(const HelloRequest& hello);
Status DecodeHelloRequest(std::string_view payload, HelloRequest* out);

std::string EncodeHelloReply(const HelloReply& reply);
Status DecodeHelloReply(std::string_view payload, HelloReply* out);

std::string EncodeErrorReply(const ErrorReply& error);
Status DecodeErrorReply(std::string_view payload, ErrorReply* out);

std::string EncodeIngestRequest(const IngestRequest& request);
Status DecodeIngestRequest(std::string_view payload, IngestRequest* out);

std::string EncodeIngestReply(const IngestReply& reply);
Status DecodeIngestReply(std::string_view payload, IngestReply* out);

std::string EncodeStatsReply(const StatsReply& stats);
Status DecodeStatsReply(std::string_view payload, StatsReply* out);

}  // namespace xarch::net

#endif  // XARCH_SERVER_PROTOCOL_H_
