// xarchd — the xarch archive daemon: opens a DurableStore and serves
// XAQL queries and ingest over the length-prefixed binary protocol
// (docs/PROTOCOL.md).
//
//   xarchd --dir /var/lib/xarch [--keys keys.txt] [--backend archive]
//          [--shards N] [--host 127.0.0.1] [--port 0] [--port-file path]
//          [--threads 8] [--max-inflight 4] [--snapshot-every N]
//          [--fsync every|never] [--slow-query-us N]
//          [--metrics-dump-every N]
//
// --shards N (default 1) opens the directory in the sharded durable
// layout (docs/SHARDING.md): N key-range shards, each with its own lock,
// archive, and WAL, under one store-level version manifest. The shard
// count is fixed when the directory is created. Results are
// byte-identical to --shards 1 over the same ingest.
//
// --slow-query-us N logs a structured span tree for any query at least
// N microseconds slow (0 = every query); --metrics-dump-every N writes
// the Prometheus metrics text to stderr every N seconds. All daemon
// status goes to stderr as single-line key=value records (obs::Logger).
//
// --keys is required the first time a directory is created with an
// archive-family backend (the Appendix-B key specification text); a
// reopened directory carries its spec inside the snapshot. --port 0
// binds an ephemeral port; --port-file writes the bound port so scripts
// (CI smoke, tests) can find the daemon without racing its stdout.
//
// Shutdown is graceful on SIGINT/SIGTERM or a client SHUTDOWN frame:
// stop accepting, drain in-flight sessions, checkpoint the WAL into a
// fresh snapshot (CheckpointIfDirty), exit 0. A clean stop therefore
// never relies on crash recovery; kill -9 still recovers via the WAL.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "obs/log.h"
#include "server/server.h"
#include "vfs/stats_vfs.h"
#include "vfs/vfs.h"
#include "xarch/durable.h"
#include "xarch/shard.h"

namespace {

using namespace xarch;

std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: xarchd --dir <path> [--keys keys.txt] [--backend archive]\n"
      "              [--shards N] [--host 127.0.0.1] [--port 0]\n"
      "              [--port-file path]\n"
      "              [--threads 8] [--max-inflight 4]\n"
      "              [--snapshot-every N] [--fsync every|never]\n"
      "              [--slow-query-us N] [--metrics-dump-every N]\n");
  return 2;
}

int Fail(const Status& status) {
  obs::Logger::Default().Log("fatal", {{"error", status.ToString()}});
  return 1;
}

std::string TakeFlag(std::vector<std::string>* args, const std::string& flag) {
  for (size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == flag) {
      std::string value = (*args)[i + 1];
      args->erase(args->begin() + i, args->begin() + i + 2);
      return value;
    }
  }
  return "";
}

long NumberOr(const std::string& text, long fallback) {
  return text.empty() ? fallback : std::strtol(text.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string dir = TakeFlag(&args, "--dir");
  const std::string keys_path = TakeFlag(&args, "--keys");
  std::string backend = TakeFlag(&args, "--backend");
  if (backend.empty()) backend = "archive";
  const std::string host_flag = TakeFlag(&args, "--host");
  const long port = NumberOr(TakeFlag(&args, "--port"), 0);
  const std::string port_file = TakeFlag(&args, "--port-file");
  const long threads = NumberOr(TakeFlag(&args, "--threads"), 8);
  const long max_inflight = NumberOr(TakeFlag(&args, "--max-inflight"), 4);
  const long snapshot_every = NumberOr(TakeFlag(&args, "--snapshot-every"), 0);
  const long shards = NumberOr(TakeFlag(&args, "--shards"), 1);
  const std::string fsync = TakeFlag(&args, "--fsync");
  const long slow_query_us = NumberOr(TakeFlag(&args, "--slow-query-us"), -1);
  const long metrics_dump_every =
      NumberOr(TakeFlag(&args, "--metrics-dump-every"), 0);
  if (dir.empty() || !args.empty() || port < 0 || port > 65535 ||
      threads < 1 || max_inflight < 1 || snapshot_every < 0 ||
      metrics_dump_every < 0 || shards < 1 ||
      shards > static_cast<long>(ShardRouter::kMaxShards) ||
      (!fsync.empty() && fsync != "every" && fsync != "never")) {
    return Usage();
  }

  // Every byte the persistence layer moves is counted per backend and op:
  // the METRICS scrape reports disk traffic alongside the query engine.
  vfs::StatsVfs stats_vfs(vfs::Vfs::Posix());

  DurableOptions durable;
  durable.backend = backend;
  durable.vfs = &stats_vfs;
  durable.snapshot_every_records = static_cast<uint64_t>(snapshot_every);
  durable.shards = static_cast<size_t>(shards);
  if (fsync == "never") durable.fsync = persist::FsyncPolicy::kNever;
  if (!keys_path.empty()) {
    auto spec_text = vfs::Vfs::Posix()->ReadFile(keys_path);
    if (!spec_text.ok()) {
      return Fail(Status::IoError("cannot read key spec " + keys_path + ": " +
                                  spec_text.status().message()));
    }
    auto spec = keys::ParseKeySpecSet(*spec_text);
    if (!spec.ok()) return Fail(spec.status());
    durable.store.spec = std::move(*spec);
    durable.store.use_index = true;
  }

  auto store = OpenDurable(dir, std::move(durable));
  if (!store.ok()) return Fail(store.status());

  server::ServerOptions options;
  if (!host_flag.empty()) options.host = host_flag;
  options.port = static_cast<uint16_t>(port);
  options.session_threads = static_cast<size_t>(threads);
  options.max_inflight_queries = static_cast<size_t>(max_inflight);
  options.slow_query_us = slow_query_us;
  auto served = server::Server::Start(**store, options);
  if (!served.ok()) return Fail(served.status());

  if (!port_file.empty()) {
    // tmp + rename, so a reader never sees a half-written port number; no
    // fsync — the port file is scratch coordination, not durable state.
    Status wrote = vfs::AtomicWriteFile(
        *vfs::Vfs::Posix(), port_file,
        std::to_string((*served)->port()) + "\n", /*sync=*/false);
    if (!wrote.ok()) {
      return Fail(Status::IoError("cannot write port file " + port_file +
                                  ": " + wrote.message()));
    }
  }
  obs::Logger& log = obs::Logger::Default();
  log.Log("serving",
          {{"backend", (*store)->name()},
           {"versions", static_cast<uint64_t>((*store)->version_count())},
           {"host", options.host},
           {"port", static_cast<unsigned>((*served)->port())},
           {"threads", threads},
           {"max_inflight", max_inflight},
           {"slow_query_us", slow_query_us},
           {"metrics_dump_every_s", metrics_dump_every}});

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Wait for a stop: a signal (polled — a handler cannot safely touch the
  // server) or a client SHUTDOWN frame (observed via stop_requested()).
  const long dump_every_ticks = metrics_dump_every * 20;  // 50 ms ticks
  long ticks = 0;
  while (g_signal == 0 && !(*served)->stop_requested()) {
    timespec nap{0, 50 * 1000 * 1000};  // 50 ms
    nanosleep(&nap, nullptr);
    if (dump_every_ticks > 0 && ++ticks >= dump_every_ticks) {
      ticks = 0;
      const std::string text = (*served)->MetricsText();
      log.Log("metrics_dump", {{"bytes", static_cast<uint64_t>(text.size())}});
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
  }
  if (g_signal != 0) {
    log.Log("draining", {{"reason", "signal"},
                         {"signal", static_cast<int>(g_signal)}});
  } else {
    log.Log("draining", {{"reason", "client_shutdown"}});
  }

  (*served)->Join();  // stop accepting + drain in-flight sessions
  if (Status st = CheckpointDurableIfDirty(**store); !st.ok()) {
    // The data is still safe (WAL replay covers it); exit nonzero so the
    // operator knows the clean-stop checkpoint did not land.
    return Fail(st);
  }
  log.Log("clean_shutdown", {{"snapshot", "current"}, {"log", "empty"}});
  return 0;
}
