#include "server/server.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/trace.h"
#include "xarch/sink.h"

namespace xarch::server {

namespace {

/// Collapses a rendered span tree to one logger field value: the logger
/// emits single lines, so newlines become " | " separators.
std::string OneLineTrace(const std::string& rendered) {
  std::string out;
  out.reserve(rendered.size());
  for (char c : rendered) {
    if (c == '\n') {
      if (!out.empty() && out.back() != ' ') out += " | ";
    } else {
      out += c;
    }
  }
  while (!out.empty() && (out.back() == ' ' || out.back() == '|')) {
    out.pop_back();
  }
  return out;
}

/// Streams query output to the session socket as CHUNK frames of roughly
/// net::kChunkBytes each, so a result larger than memory never buffers
/// whole on the server.
class ChunkSink : public Sink {
 public:
  ChunkSink(const net::Socket& socket, uint64_t* bytes_out)
      : socket_(socket), bytes_out_(bytes_out) {}

  Status Append(std::string_view chunk) override {
    buffer_.append(chunk);
    while (buffer_.size() >= net::kChunkBytes) {
      XARCH_RETURN_NOT_OK(FlushPrefix(net::kChunkBytes));
    }
    return Status::OK();
  }

  /// Sends any buffered tail. Called only on query success; on failure
  /// the buffered bytes are abandoned with the stream.
  Status FlushRemainder() {
    if (buffer_.empty()) return Status::OK();
    return FlushPrefix(buffer_.size());
  }

  bool sent_any() const { return sent_any_; }

 private:
  Status FlushPrefix(size_t n) {
    XARCH_RETURN_NOT_OK(net::WriteFrame(
        socket_, net::MessageType::kChunk,
        std::string_view(buffer_.data(), n), bytes_out_));
    sent_any_ = true;
    buffer_.erase(0, n);
    return Status::OK();
  }

  const net::Socket& socket_;
  uint64_t* bytes_out_;
  std::string buffer_;
  bool sent_any_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(Store& store,
                                                ServerOptions options) {
  options.session_threads = std::max<size_t>(1, options.session_threads);
  options.max_inflight_queries =
      std::max<size_t>(1, options.max_inflight_queries);
  XARCH_ASSIGN_OR_RETURN(net::Listener listener,
                         net::Listener::Bind(options.host, options.port));
  auto server = std::unique_ptr<Server>(
      new Server(store, std::move(options), std::move(listener)));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::Server(Store& store, ServerOptions options, net::Listener listener)
    : store_(store),
      options_(std::move(options)),
      listener_(std::move(listener)),
      sessions_pool_(
          std::make_unique<util::ThreadPool>(options_.session_threads)) {
  query_latency_us_ = registry_.GetHistogram(
      "xarch_server_query_latency_us", "",
      "End-to-end QUERY latency as the server saw it (microseconds)");
  sessions_opened_metric_ = registry_.GetCounter(
      "xarch_server_sessions_opened_total", "", "Sessions accepted");
  frames_total_ = registry_.GetCounter("xarch_server_frames_total", "",
                                       "Request frames handled");
  rejected_busy_metric_ =
      registry_.GetCounter("xarch_server_rejected_busy_total", "",
                           "Queries bounced by admission control");
  protocol_errors_metric_ = registry_.GetCounter(
      "xarch_server_protocol_errors_total", "", "Protocol errors seen");
  slow_queries_metric_ =
      registry_.GetCounter("xarch_server_slow_queries_total", "",
                           "Queries at or over --slow-query-us");
}

Server::~Server() { Join(); }

void Server::AcceptLoop() {
  while (!stop_requested()) {
    StatusOr<net::Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Accept fails when RequestStop shut the listener down, or on a
      // transient kernel error; either way re-check the flag and move on.
      continue;
    }
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    sessions_pool_->Submit(
        [this, socket = std::move(socket)] { RunSession(socket); });
  }
}

void Server::RequestStop() {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true,
                                    std::memory_order_acq_rel)) {
    listener_.ShutdownNow();
    std::lock_guard<std::mutex> lock(mu_);
    stop_cv_.notify_all();
  }
}

void Server::WaitForStopRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested(); });
}

void Server::Join() {
  RequestStop();
  if (joined_) return;
  joined_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Sessions poll the stop flag between requests and finish their
    // in-flight request first: this wait is the drain.
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] {
      return counters_.sessions_active.load(std::memory_order_acquire) == 0;
    });
  }
  // Destroying the pool runs any still-queued (never-started) session
  // tasks — each sees the stop flag and closes immediately — then joins.
  sessions_pool_.reset();
}

void Server::RunSession(std::shared_ptr<net::Socket> socket) {
  counters_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  sessions_opened_metric_->Increment();
  counters_.sessions_active.fetch_add(1, std::memory_order_acq_rel);
  SessionState session;
  net::FrameReader reader(*socket);
  uint64_t bytes_in_seen = 0;
  uint64_t bytes_out_seen = 0;
  while (!stop_requested()) {
    net::Frame frame;
    Status status =
        reader.ReadFrame(&frame, options_.idle_poll_ms,
                         options_.stall_timeout_ms);
    const uint64_t bytes_in_now = reader.bytes_read();
    counters_.bytes_in.fetch_add(bytes_in_now - bytes_in_seen,
                                 std::memory_order_relaxed);
    bytes_in_seen = bytes_in_now;
    if (status.code() == StatusCode::kNotFound) continue;  // idle poll tick
    if (!status.ok()) {
      if (status.code() == StatusCode::kDataLoss) {
        // Broken framing: answer structurally while we still can, then
        // drop — past a bad length or CRC the stream cannot be re-synced.
        CountProtocolError();
        SendError(*socket, net::ErrorCode::kMalformedFrame, status.message(),
                  &session);
      }
      break;  // EOF, socket error, or the malformed frame above
    }
    const bool keep = HandleFrame(*socket, frame, reader, &session);
    counters_.bytes_out.fetch_add(session.bytes_out - bytes_out_seen,
                                  std::memory_order_relaxed);
    bytes_out_seen = session.bytes_out;
    if (!keep) break;
  }
  counters_.bytes_out.fetch_add(session.bytes_out - bytes_out_seen,
                                std::memory_order_relaxed);
  socket->Close();
  counters_.sessions_active.fetch_sub(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained_cv_.notify_all();
  }
}

bool Server::HandleFrame(const net::Socket& socket, const net::Frame& frame,
                         const net::FrameReader& reader,
                         SessionState* session) {
  frames_total_->Increment();
  if (!session->hello_done) {
    if (frame.type != net::MessageType::kHello) {
      CountProtocolError();
      SendError(socket, net::ErrorCode::kBadRequest,
                "the first frame on a connection must be HELLO", session);
      return false;
    }
    return HandleHello(socket, frame, session);
  }
  switch (frame.type) {
    case net::MessageType::kHello:
      CountProtocolError();
      return SendError(socket, net::ErrorCode::kBadRequest,
                       "HELLO already negotiated on this connection", session);
    case net::MessageType::kQuery:
      return HandleQuery(socket, frame, session);
    case net::MessageType::kIngest:
      return HandleIngest(socket, frame, session);
    case net::MessageType::kStats:
      return HandleStats(socket, reader, session);
    case net::MessageType::kMetrics:
      if (session->version < 2) {
        // v1 never negotiated METRICS; answer exactly as an unknown type
        // so old clients see consistent behavior.
        CountProtocolError();
        return SendError(socket, net::ErrorCode::kUnknownMessage,
                         "METRICS requires protocol version >= 2", session);
      }
      return HandleMetrics(socket, session);
    case net::MessageType::kPing:
      return net::WriteFrame(socket, net::MessageType::kPong, "",
                             &session->bytes_out)
          .ok();
    case net::MessageType::kShutdown: {
      const bool sent = net::WriteFrame(socket, net::MessageType::kShutdownOk,
                                        "", &session->bytes_out)
                            .ok();
      RequestStop();  // the session loop exits on the flag
      return sent;
    }
    default:
      // A checksummed frame of a type this version does not know: report
      // it and keep the session — framing is intact, so later requests
      // are still trustworthy (forward compatibility).
      CountProtocolError();
      return SendError(socket, net::ErrorCode::kUnknownMessage,
                       "unknown message type " +
                           std::to_string(static_cast<unsigned>(frame.type)),
                       session);
  }
}

bool Server::HandleHello(const net::Socket& socket, const net::Frame& frame,
                         SessionState* session) {
  net::HelloRequest hello;
  if (Status st = net::DecodeHelloRequest(frame.payload, &hello); !st.ok()) {
    CountProtocolError();
    SendError(socket, net::ErrorCode::kBadRequest,
              "HELLO does not decode: " + st.message(), session);
    return false;
  }
  if (hello.magic != net::kProtocolMagic) {
    CountProtocolError();
    SendError(socket, net::ErrorCode::kBadRequest,
              "bad protocol magic: this is not an xarch client", session);
    return false;
  }
  if (hello.min_version > hello.max_version ||
      hello.min_version > net::kProtocolVersionMax ||
      hello.max_version < net::kProtocolVersionMin) {
    SendError(socket, net::ErrorCode::kVersionMismatch,
              "no protocol version in common: client speaks [" +
                  std::to_string(hello.min_version) + ", " +
                  std::to_string(hello.max_version) + "], server [" +
                  std::to_string(net::kProtocolVersionMin) + ", " +
                  std::to_string(net::kProtocolVersionMax) + "]",
              session);
    return false;
  }
  net::HelloReply reply;
  reply.version = std::min(hello.max_version, net::kProtocolVersionMax);
  reply.server_name = options_.server_name;
  reply.backend = store_.name();
  session->hello_done = true;
  session->version = reply.version;
  return net::WriteFrame(socket, net::MessageType::kHelloOk,
                         net::EncodeHelloReply(reply), &session->bytes_out)
      .ok();
}

bool Server::HandleQuery(const net::Socket& socket, const net::Frame& frame,
                         SessionState* session) {
  if (stop_requested()) {
    return SendError(socket, net::ErrorCode::kShuttingDown,
                     "server is draining", session);
  }
  // Admission control: reserve a slot; over the gate means a clean BUSY
  // instead of another reader piling onto the store.
  const uint64_t inflight =
      counters_.inflight_queries.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (inflight > options_.max_inflight_queries) {
    counters_.inflight_queries.fetch_sub(1, std::memory_order_acq_rel);
    counters_.rejected_busy.fetch_add(1, std::memory_order_relaxed);
    rejected_busy_metric_->Increment();
    return SendError(socket, net::ErrorCode::kBusy,
                     std::to_string(options_.max_inflight_queries) +
                         " queries already in flight",
                     session);
  }
  if (options_.query_gate_hook) options_.query_gate_hook();
  // At protocol v2 the payload leads with a flags octet; v1 sessions still
  // send raw XAQL text.
  std::string_view query_text = frame.payload;
  bool wire_trace = false;
  if (session->version >= 2) {
    if (query_text.empty()) {
      counters_.inflight_queries.fetch_sub(1, std::memory_order_acq_rel);
      CountProtocolError();
      return SendError(socket, net::ErrorCode::kBadRequest,
                       "v2 QUERY payload is missing its flags octet",
                       session);
    }
    wire_trace = (static_cast<uint8_t>(query_text[0]) &
                  net::kQueryFlagTrace) != 0;
    query_text.remove_prefix(1);
  }
  const bool slow_log = options_.slow_query_us >= 0;
  obs::Trace trace;
  obs::Trace* trace_ptr = (wire_trace || slow_log) ? &trace : nullptr;
  const uint64_t t0_us = obs::MonotonicMicros();
  ChunkSink sink(socket, &session->bytes_out);
  Status status = store_.Query(query_text, sink, trace_ptr);
  if (status.ok()) status = sink.FlushRemainder();
  counters_.inflight_queries.fetch_sub(1, std::memory_order_acq_rel);
  if (!status.ok()) {
    // The client sees the ERROR frame and discards any chunks already
    // received: a stream not closed by DONE never counts as a result.
    return SendError(socket, net::ErrorCode::kQueryFailed, status.ToString(),
                     session);
  }
  if (wire_trace &&
      !net::WriteFrame(socket, net::MessageType::kTrace, trace.Render(),
                       &session->bytes_out)
           .ok()) {
    return false;
  }
  if (!net::WriteFrame(socket, net::MessageType::kDone, "",
                       &session->bytes_out)
           .ok()) {
    return false;
  }
  const uint64_t duration_us = obs::MonotonicMicros() - t0_us;
  query_latency_us_->Record(duration_us);
  if (slow_log && duration_us >= static_cast<uint64_t>(
                                     options_.slow_query_us)) {
    slow_queries_metric_->Increment();
    obs::Logger::Default().Log(
        "slow_query",
        {{"duration_us", duration_us},
         {"threshold_us", options_.slow_query_us},
         {"query_bytes", static_cast<uint64_t>(query_text.size())},
         {"spans", static_cast<uint64_t>(trace.span_count())},
         {"trace", OneLineTrace(trace.Render())}});
  }
  counters_.queries.fetch_add(1, std::memory_order_relaxed);
  session->queries++;
  return true;
}

bool Server::HandleIngest(const net::Socket& socket, const net::Frame& frame,
                          SessionState* session) {
  if (stop_requested()) {
    return SendError(socket, net::ErrorCode::kShuttingDown,
                     "server is draining", session);
  }
  net::IngestRequest request;
  if (Status st = net::DecodeIngestRequest(frame.payload, &request);
      !st.ok()) {
    CountProtocolError();
    SendError(socket, net::ErrorCode::kBadRequest,
              "INGEST does not decode: " + st.message(), session);
    return false;
  }
  if (request.documents.empty()) {
    return SendError(socket, net::ErrorCode::kBadRequest,
                     "INGEST carries no documents", session);
  }
  std::vector<std::string_view> views(request.documents.begin(),
                                      request.documents.end());
  Status status;
  if (store_.Has(kBatchIngest)) {
    status = store_.AppendBatch(views);
  } else {
    for (const std::string_view& doc : views) {
      status = store_.Append(doc);
      if (!status.ok()) break;
    }
  }
  if (!status.ok()) {
    return SendError(socket, net::ErrorCode::kIngestFailed, status.ToString(),
                     session);
  }
  counters_.ingests.fetch_add(1, std::memory_order_relaxed);
  counters_.documents_ingested.fetch_add(request.documents.size(),
                                         std::memory_order_relaxed);
  session->ingests++;
  net::IngestReply reply;
  reply.version_count = store_.version_count();
  return net::WriteFrame(socket, net::MessageType::kIngestOk,
                         net::EncodeIngestReply(reply), &session->bytes_out)
      .ok();
}

bool Server::HandleStats(const net::Socket& socket,
                         const net::FrameReader& reader,
                         SessionState* session) {
  const ServerStats global = StatsSnapshot();
  net::StatsReply reply;
  reply.sessions_opened = global.sessions_opened;
  reply.sessions_active = global.sessions_active;
  reply.queries = global.queries;
  reply.ingests = global.ingests;
  reply.documents_ingested = global.documents_ingested;
  reply.bytes_in = global.bytes_in;
  reply.bytes_out = global.bytes_out;
  reply.rejected_busy = global.rejected_busy;
  reply.protocol_errors = global.protocol_errors;
  reply.query_latency_p50_us = global.query_latency_p50_us;
  reply.query_latency_p99_us = global.query_latency_p99_us;
  reply.store_versions = store_.version_count();
  reply.session_queries = session->queries;
  reply.session_ingests = session->ingests;
  reply.session_bytes_in = reader.bytes_read();
  reply.session_bytes_out = session->bytes_out;
  return net::WriteFrame(socket, net::MessageType::kStatsOk,
                         net::EncodeStatsReply(reply), &session->bytes_out)
      .ok();
}

bool Server::SendError(const net::Socket& socket, net::ErrorCode code,
                       const std::string& message, SessionState* session) {
  net::ErrorReply error;
  error.code = code;
  error.message = message;
  return net::WriteFrame(socket, net::MessageType::kError,
                         net::EncodeErrorReply(error), &session->bytes_out)
      .ok();
}

bool Server::HandleMetrics(const net::Socket& socket, SessionState* session) {
  return net::WriteFrame(socket, net::MessageType::kMetricsOk, MetricsText(),
                         &session->bytes_out)
      .ok();
}

std::string Server::MetricsText() const {
  // Process-wide instruments first (query engine, ingest, WAL, VFS), then
  // this server's own families — two registries, one scrape.
  return obs::Registry::Default().EncodeText() + registry_.EncodeText();
}

ServerStats Server::StatsSnapshot() const {
  ServerStats out;
  out.sessions_opened =
      counters_.sessions_opened.load(std::memory_order_relaxed);
  out.sessions_active =
      counters_.sessions_active.load(std::memory_order_relaxed);
  out.queries = counters_.queries.load(std::memory_order_relaxed);
  out.ingests = counters_.ingests.load(std::memory_order_relaxed);
  out.documents_ingested =
      counters_.documents_ingested.load(std::memory_order_relaxed);
  out.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  out.rejected_busy = counters_.rejected_busy.load(std::memory_order_relaxed);
  out.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  // Histogram quantile *upper bounds*: within 6.25% of the true sample,
  // and windowless — every query since start contributes.
  out.query_latency_p50_us = query_latency_us_->QuantileUpperBound(0.50);
  out.query_latency_p99_us = query_latency_us_->QuantileUpperBound(0.99);
  return out;
}

}  // namespace xarch::server
