#ifndef XARCH_SERVER_NET_UTIL_H_
#define XARCH_SERVER_NET_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "util/status.h"

namespace xarch::net {

/// \brief Thin RAII + Status wrappers over POSIX TCP sockets, shared by
/// the server session loop and the blocking client. IPv4 only (the daemon
/// binds loopback by default); every call handles EINTR and short
/// reads/writes, and writes use MSG_NOSIGNAL so a peer that vanished
/// surfaces as kIoError instead of SIGPIPE.

/// Owns one file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent). A blocked peer sees EOF.
  void Close();

  /// Shuts down both directions without closing the descriptor — safe to
  /// call from another thread to unblock a pending accept/read.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// A listening socket bound to `host:port`; port 0 binds an ephemeral
/// port, reported by bound_port().
class Listener {
 public:
  static StatusOr<Listener> Bind(const std::string& host, uint16_t port,
                                 int backlog = 64);

  Listener() = default;

  bool valid() const { return socket_.valid(); }
  uint16_t bound_port() const { return bound_port_; }

  /// Blocks until a connection arrives or the listener is shut down
  /// (ShutdownNow from another thread), which yields kIoError.
  StatusOr<Socket> Accept();

  /// Unblocks any pending Accept and makes future ones fail.
  void ShutdownNow() { socket_.ShutdownBoth(); }

 private:
  Listener(Socket socket, uint16_t port)
      : socket_(std::move(socket)), bound_port_(port) {}

  Socket socket_;
  uint16_t bound_port_ = 0;
};

/// Connects to `host:port` (blocking).
StatusOr<Socket> Connect(const std::string& host, uint16_t port);

/// Writes all of `data`, looping over short writes. kIoError on failure.
Status WriteAll(const Socket& socket, std::string_view data);

/// Waits up to `timeout_ms` for the socket to become readable.
/// Returns true when readable, false on timeout. timeout_ms < 0 blocks.
StatusOr<bool> WaitReadable(const Socket& socket, int timeout_ms);

/// Reads whatever is available (up to a few KiB) and appends it to
/// `buffer`. Returns the byte count: 0 means orderly EOF.
StatusOr<size_t> ReadSome(const Socket& socket, std::string* buffer);

/// \brief Frame-granular I/O over a socket: buffers partial reads between
/// calls so one ReadFrame returns exactly one protocol frame.
class FrameReader {
 public:
  explicit FrameReader(const Socket& socket) : socket_(socket) {}

  /// Reads one frame. `idle_timeout_ms` bounds the wait for the FIRST
  /// byte (< 0 = forever); once a frame has started, a peer that stalls
  /// mid-frame for more than `stall_timeout_ms` is an error — a correct
  /// peer never pauses inside a frame for long.
  ///
  /// Outcomes: OK — *out holds a frame. kNotFound — idle timeout, no
  /// bytes consumed (caller may poll a stop flag and retry). kDataLoss —
  /// malformed framing (detail in the message). kIoError — EOF or socket
  /// failure.
  Status ReadFrame(Frame* out, int idle_timeout_ms, int stall_timeout_ms);

  /// Bytes consumed off the wire so far (frames + buffered prefix).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  const Socket& socket_;
  std::string buffer_;
  uint64_t bytes_read_ = 0;
};

/// Encodes and writes one frame.
Status WriteFrame(const Socket& socket, MessageType type,
                  std::string_view payload, uint64_t* bytes_written = nullptr);

}  // namespace xarch::net

#endif  // XARCH_SERVER_NET_UTIL_H_
