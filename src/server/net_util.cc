#include "server/net_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "util/posix_io.h"

namespace xarch::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "cannot parse \"" + host +
        "\" as an IPv4 address (DNS resolution is out of scope)");
  }
  return addr;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { Close(); }

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                  int backlog) {
  XARCH_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(socket.fd(), backlog) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  return Listener(std::move(socket), ntohs(bound.sin_port));
}

StatusOr<Socket> Listener::Accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<Socket> Connect(const std::string& host, uint16_t port) {
  XARCH_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  for (;;) {
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return socket;
    }
    if (errno == EINTR) continue;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
}

Status WriteAll(const Socket& socket, std::string_view data) {
  // The shared EINTR/short-write loop, driving send() instead of write():
  // sockets and files retry identically, so they share the one audited
  // implementation in util/posix_io.h.
  return util::WriteFull(
      data,
      [&](const char* p, size_t n) {
        return ::send(socket.fd(), p, n, MSG_NOSIGNAL);
      },
      "socket");
}

StatusOr<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

StatusOr<size_t> ReadSome(const Socket& socket, std::string* buffer) {
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return static_cast<size_t>(n);
    }
    if (n == 0) return size_t{0};
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status FrameReader::ReadFrame(Frame* out, int idle_timeout_ms,
                              int stall_timeout_ms) {
  bool mid_frame = !buffer_.empty();
  for (;;) {
    std::string detail;
    switch (TryDecodeFrame(&buffer_, out, &detail)) {
      case DecodeResult::kFrame:
        return Status::OK();
      case DecodeResult::kMalformed:
        return Status::DataLoss(detail);
      case DecodeResult::kNeedMore:
        break;
    }
    XARCH_ASSIGN_OR_RETURN(
        bool readable,
        WaitReadable(socket_, mid_frame ? stall_timeout_ms : idle_timeout_ms));
    if (!readable) {
      if (mid_frame) {
        return Status::IoError("peer stalled mid-frame for " +
                               std::to_string(stall_timeout_ms) + " ms");
      }
      return Status::NotFound("idle: no frame within the timeout");
    }
    XARCH_ASSIGN_OR_RETURN(size_t n, ReadSome(socket_, &buffer_));
    if (n == 0) {
      if (buffer_.empty()) return Status::IoError("connection closed by peer");
      return Status::IoError("connection closed mid-frame (" +
                             std::to_string(buffer_.size()) +
                             " buffered bytes)");
    }
    bytes_read_ += n;
    mid_frame = true;
  }
}

Status WriteFrame(const Socket& socket, MessageType type,
                  std::string_view payload, uint64_t* bytes_written) {
  XARCH_ASSIGN_OR_RETURN(std::string frame, EncodeFrame(type, payload));
  XARCH_RETURN_NOT_OK(WriteAll(socket, frame));
  if (bytes_written != nullptr) *bytes_written += frame.size();
  return Status::OK();
}

}  // namespace xarch::net
