#include "server/protocol.h"

#include "persist/crc32c.h"
#include "persist/wire.h"

namespace xarch::net {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 masked CRC

/// Reads a PutBytes string into an owned std::string.
Status ReadOwnedBytes(persist::Cursor* cursor, std::string* out) {
  std::string_view view;
  XARCH_RETURN_NOT_OK(cursor->ReadBytes(&view));
  out->assign(view);
  return Status::OK();
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnknownMessage: return "unknown-message";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kQueryFailed: return "query-failed";
    case ErrorCode::kIngestFailed: return "ingest-failed";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

StatusOr<std::string> EncodeFrame(MessageType type, std::string_view payload) {
  const size_t body_len = 1 + payload.size();
  if (body_len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the protocol limit of " +
        std::to_string(kMaxFrameBytes));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + body_len);
  persist::PutU32(0, &out);  // length, patched below
  persist::PutU32(0, &out);  // masked CRC, patched below
  persist::PutU8(static_cast<uint8_t>(type), &out);
  out.append(payload.data(), payload.size());
  const std::string_view body(out.data() + kFrameHeaderBytes, body_len);
  persist::PatchU32(static_cast<uint32_t>(body_len), 0, &out);
  persist::PatchU32(persist::MaskCrc(persist::Crc32c(body)), 4, &out);
  return out;
}

DecodeResult TryDecodeFrame(std::string* buffer, Frame* out,
                            std::string* detail) {
  if (buffer->size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  persist::Cursor header(*buffer);
  uint32_t body_len = 0;
  uint32_t masked_crc = 0;
  (void)header.ReadU32(&body_len);  // 8 bytes are present: cannot fail
  (void)header.ReadU32(&masked_crc);
  if (body_len == 0 || body_len > kMaxFrameBytes) {
    if (detail != nullptr) {
      *detail = "declared body length " + std::to_string(body_len) +
                (body_len == 0 ? " (a frame carries at least its type octet)"
                               : " exceeds the protocol limit");
    }
    return DecodeResult::kMalformed;
  }
  if (buffer->size() < kFrameHeaderBytes + body_len) {
    return DecodeResult::kNeedMore;
  }
  const std::string_view body(buffer->data() + kFrameHeaderBytes, body_len);
  const uint32_t actual = persist::Crc32c(body);
  if (persist::UnmaskCrc(masked_crc) != actual) {
    if (detail != nullptr) *detail = "frame body CRC mismatch";
    return DecodeResult::kMalformed;
  }
  out->type = static_cast<MessageType>(static_cast<uint8_t>(body[0]));
  out->payload.assign(body.substr(1));
  buffer->erase(0, kFrameHeaderBytes + body_len);
  return DecodeResult::kFrame;
}

// --------------------------------------------------------------- payloads

std::string EncodeHelloRequest(const HelloRequest& hello) {
  std::string out;
  persist::PutU32(hello.magic, &out);
  persist::PutU32(hello.min_version, &out);
  persist::PutU32(hello.max_version, &out);
  persist::PutBytes(hello.client_name, &out);
  return out;
}

Status DecodeHelloRequest(std::string_view payload, HelloRequest* out) {
  persist::Cursor cursor(payload);
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->magic));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->min_version));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->max_version));
  XARCH_RETURN_NOT_OK(ReadOwnedBytes(&cursor, &out->client_name));
  return cursor.ExpectDone();
}

std::string EncodeHelloReply(const HelloReply& reply) {
  std::string out;
  persist::PutU32(reply.version, &out);
  persist::PutBytes(reply.server_name, &out);
  persist::PutBytes(reply.backend, &out);
  return out;
}

Status DecodeHelloReply(std::string_view payload, HelloReply* out) {
  persist::Cursor cursor(payload);
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->version));
  XARCH_RETURN_NOT_OK(ReadOwnedBytes(&cursor, &out->server_name));
  XARCH_RETURN_NOT_OK(ReadOwnedBytes(&cursor, &out->backend));
  return cursor.ExpectDone();
}

std::string EncodeErrorReply(const ErrorReply& error) {
  std::string out;
  persist::PutU32(static_cast<uint32_t>(error.code), &out);
  persist::PutBytes(error.message, &out);
  return out;
}

Status DecodeErrorReply(std::string_view payload, ErrorReply* out) {
  persist::Cursor cursor(payload);
  uint32_t code = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&code));
  out->code = static_cast<ErrorCode>(code);
  XARCH_RETURN_NOT_OK(ReadOwnedBytes(&cursor, &out->message));
  return cursor.ExpectDone();
}

std::string EncodeIngestRequest(const IngestRequest& request) {
  std::string out;
  persist::PutU32(static_cast<uint32_t>(request.documents.size()), &out);
  for (const std::string& doc : request.documents) {
    persist::PutBytes(doc, &out);
  }
  return out;
}

Status DecodeIngestRequest(std::string_view payload, IngestRequest* out) {
  persist::Cursor cursor(payload);
  uint32_t count = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&count));
  // Each document costs at least its u64 length prefix, so an impossible
  // count is rejected before any reservation.
  if (count > cursor.remaining() / 8) {
    return Status::DataLoss("ingest batch declares " + std::to_string(count) +
                            " documents but only " +
                            std::to_string(cursor.remaining()) +
                            " payload bytes remain");
  }
  out->documents.clear();
  out->documents.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string doc;
    XARCH_RETURN_NOT_OK(ReadOwnedBytes(&cursor, &doc));
    out->documents.push_back(std::move(doc));
  }
  return cursor.ExpectDone();
}

std::string EncodeIngestReply(const IngestReply& reply) {
  std::string out;
  persist::PutU32(reply.version_count, &out);
  return out;
}

Status DecodeIngestReply(std::string_view payload, IngestReply* out) {
  persist::Cursor cursor(payload);
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->version_count));
  return cursor.ExpectDone();
}

std::string EncodeStatsReply(const StatsReply& stats) {
  std::string out;
  persist::PutU64(stats.sessions_opened, &out);
  persist::PutU64(stats.sessions_active, &out);
  persist::PutU64(stats.queries, &out);
  persist::PutU64(stats.ingests, &out);
  persist::PutU64(stats.documents_ingested, &out);
  persist::PutU64(stats.bytes_in, &out);
  persist::PutU64(stats.bytes_out, &out);
  persist::PutU64(stats.rejected_busy, &out);
  persist::PutU64(stats.protocol_errors, &out);
  persist::PutU64(stats.query_latency_p50_us, &out);
  persist::PutU64(stats.query_latency_p99_us, &out);
  persist::PutU32(stats.store_versions, &out);
  persist::PutU64(stats.session_queries, &out);
  persist::PutU64(stats.session_ingests, &out);
  persist::PutU64(stats.session_bytes_in, &out);
  persist::PutU64(stats.session_bytes_out, &out);
  return out;
}

Status DecodeStatsReply(std::string_view payload, StatsReply* out) {
  persist::Cursor cursor(payload);
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->sessions_opened));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->sessions_active));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->queries));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->ingests));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->documents_ingested));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->bytes_in));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->bytes_out));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->rejected_busy));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->protocol_errors));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->query_latency_p50_us));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->query_latency_p99_us));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&out->store_versions));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->session_queries));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->session_ingests));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->session_bytes_in));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&out->session_bytes_out));
  return cursor.ExpectDone();
}

}  // namespace xarch::net
