#include <algorithm>
#include <string>

#include "core/archive.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch::core {

namespace {

/// The timestamp element tag. "We may assume that the tag T is in a
/// separate namespace" (Sec. 2) — a plain T never collides with data tags
/// in the paper's datasets, and the loader treats it as reserved.
constexpr const char* kTimestampTag = "T";

std::string StampToString(const VersionSet& stamp, bool interval_encoding) {
  if (interval_encoding) return stamp.ToString();
  // E13 ablation: exhaustive version list.
  std::string out;
  for (const auto& [lo, hi] : stamp.intervals()) {
    for (Version v = lo; v <= hi; ++v) {
      if (!out.empty()) out += ',';
      out += std::to_string(v);
    }
  }
  return out;
}

xml::NodePtr WrapInT(xml::NodePtr inner, const VersionSet& stamp,
                     const ArchiveSerializeOptions& options) {
  xml::NodePtr t = xml::Node::Element(kTimestampTag);
  t->SetAttr("t", StampToString(stamp, options.interval_encoding));
  t->AddChild(std::move(inner));
  return t;
}

xml::NodePtr BuildXml(const ArchiveNode& node, const VersionSet& effective,
                      const ArchiveSerializeOptions& options) {
  xml::NodePtr elem = xml::Node::Element(node.label.tag);
  for (const auto& [name, value] : node.attrs) elem->SetAttr(name, value);
  if (node.is_frontier) {
    for (const auto& bucket : node.buckets) {
      if (bucket.stamp.has_value()) {
        xml::Node* t = elem->AddElement(kTimestampTag);
        t->SetAttr("t", StampToString(*bucket.stamp, options.interval_encoding));
        for (const auto& n : bucket.content) t->AddChild(n->Clone());
      } else {
        for (const auto& n : bucket.content) elem->AddChild(n->Clone());
      }
    }
  } else {
    for (const auto& child : node.children) {
      const VersionSet& child_eff = child->EffectiveStamp(effective);
      xml::NodePtr child_xml = BuildXml(*child, child_eff, options);
      if (child->stamp.has_value() || !options.inherit_timestamps) {
        child_xml = WrapInT(std::move(child_xml), child_eff, options);
      }
      elem->AddChild(std::move(child_xml));
    }
  }
  return elem;
}

}  // namespace

std::string Archive::ToXml(const ArchiveSerializeOptions& options) const {
  xml::NodePtr root_elem = BuildXml(*root_, *root_->stamp, options);
  xml::NodePtr top = WrapInT(std::move(root_elem), *root_->stamp, options);
  xml::SerializeOptions ser;
  ser.pretty = options.pretty;
  ser.indent_width = options.indent_width;
  return xml::Serialize(*top, ser);
}

namespace {

/// Rebuilds ArchiveNodes from the Fig. 5 XML form.
class Loader {
 public:
  Loader(const keys::KeySpecSet& spec, const ArchiveOptions& options)
      : spec_(spec), options_(options) {}

  StatusOr<std::unique_ptr<ArchiveNode>> LoadKeyed(
      const xml::Node& elem, std::optional<VersionSet> stamp,
      const VersionSet& parent_effective) {
    if (elem.is_text()) {
      return Status::Corruption("text where a keyed element was expected");
    }
    steps_.push_back(elem.tag());
    auto result = LoadKeyedImpl(elem, std::move(stamp), parent_effective);
    steps_.pop_back();
    return result;
  }

 private:
  StatusOr<std::unique_ptr<ArchiveNode>> LoadKeyedImpl(
      const xml::Node& elem, std::optional<VersionSet> stamp,
      const VersionSet& parent_effective) {
    const keys::Key* key = spec_.Lookup(steps_);
    if (key == nullptr) {
      return Status::Corruption("archive element <" + elem.tag() +
                                "> is not covered by any key");
    }
    auto node = std::make_unique<ArchiveNode>();
    XARCH_ASSIGN_OR_RETURN(node->label,
                           keys::ComputeLabel(elem, *key, options_.annotate));
    node->stamp = std::move(stamp);
    node->is_frontier = spec_.IsFrontier(steps_);
    node->attrs = elem.attrs();
    // The paper's archive invariant (Sec. 2): a node's timestamp is a
    // subset of every ancestor's. A document violating it is not an
    // archive any consistent merge could have produced — reject it here
    // with the offending path instead of letting retrieval misbehave.
    const VersionSet& effective = node->EffectiveStamp(parent_effective);
    if (node->stamp.has_value() &&
        !parent_effective.IsSupersetOf(*node->stamp)) {
      return Status::Corruption(
          "timestamp [" + node->stamp->ToString() + "] of <" + PathText() +
          "> is not a subset of its parent's [" +
          parent_effective.ToString() + "]");
    }
    if (node->is_frontier) {
      ArchiveNode::Bucket plain;
      for (const auto& child : elem.children()) {
        if (child->is_element() && child->tag() == kTimestampTag) {
          if (!plain.content.empty()) {
            node->buckets.push_back(std::move(plain));
            plain = ArchiveNode::Bucket{};
          }
          ArchiveNode::Bucket bucket;
          XARCH_ASSIGN_OR_RETURN(bucket.stamp, ParseStamp(*child));
          if (bucket.stamp.has_value() &&
              !effective.IsSupersetOf(*bucket.stamp)) {
            return Status::Corruption(
                "bucket timestamp [" + bucket.stamp->ToString() +
                "] under <" + PathText() +
                "> is not a subset of the node's [" + effective.ToString() +
                "]");
          }
          for (const auto& inner : child->children()) {
            bucket.content.push_back(inner->Clone());
          }
          node->buckets.push_back(std::move(bucket));
        } else {
          plain.content.push_back(child->Clone());
        }
      }
      if (!plain.content.empty() || node->buckets.empty()) {
        node->buckets.push_back(std::move(plain));
      }
    } else {
      XARCH_RETURN_NOT_OK(LoadChildren(elem, effective, &node->children));
    }
    return node;
  }

  Status LoadChildren(const xml::Node& elem, const VersionSet& effective,
                      std::vector<std::unique_ptr<ArchiveNode>>* out) {
    for (const auto& child : elem.children()) {
      if (child->is_text()) {
        return Status::Corruption("text under inner archive node <" +
                                  elem.tag() + ">");
      }
      if (child->tag() == kTimestampTag) {
        XARCH_ASSIGN_OR_RETURN(std::optional<VersionSet> stamp,
                               ParseStamp(*child));
        for (const auto& inner : child->children()) {
          XARCH_ASSIGN_OR_RETURN(auto loaded,
                                 LoadKeyed(*inner, stamp, effective));
          out->push_back(std::move(loaded));
        }
      } else {
        XARCH_ASSIGN_OR_RETURN(
            auto loaded, LoadKeyed(*child, std::nullopt, effective));
        out->push_back(std::move(loaded));
      }
    }
    std::sort(out->begin(), out->end(), [](const auto& a, const auto& b) {
      return a->label.OrderBefore(b->label);
    });
    // Equal labels among siblings mean the same keyed element was stored
    // twice — a key violation no merge produces. Detect it after the sort
    // (duplicates are adjacent) rather than letting lookups silently pick
    // one of the two.
    for (size_t i = 1; i < out->size(); ++i) {
      if ((*out)[i - 1]->label == (*out)[i]->label) {
        return Status::Corruption("duplicate keyed sibling " +
                                  (*out)[i]->label.ToString() + " under <" +
                                  elem.tag() + ">");
      }
    }
    return Status::OK();
  }

  static StatusOr<std::optional<VersionSet>> ParseStamp(const xml::Node& t) {
    const std::string* attr = t.FindAttr("t");
    if (attr == nullptr) {
      return Status::Corruption("timestamp element without t attribute");
    }
    XARCH_ASSIGN_OR_RETURN(VersionSet stamp, VersionSet::Parse(*attr));
    if (stamp.empty()) {
      return Status::Corruption("empty timestamp on <T> element");
    }
    if (stamp.Min() == 0) {
      return Status::Corruption("timestamp '" + *attr +
                                "' contains version 0 (versions are "
                                "numbered from 1)");
    }
    return std::optional<VersionSet>(std::move(stamp));
  }

  std::string PathText() const {
    std::string out;
    for (const auto& step : steps_) {
      out += '/';
      out += step;
    }
    return out;
  }

  friend class ::xarch::core::Archive;
  const keys::KeySpecSet& spec_;
  const ArchiveOptions& options_;
  std::vector<std::string> steps_;

 public:
  Status LoadRootChildren(const xml::Node& root_elem,
                          const VersionSet& root_stamp,
                          std::vector<std::unique_ptr<ArchiveNode>>* out) {
    return LoadChildren(root_elem, root_stamp, out);
  }
};

}  // namespace

StatusOr<Archive> Archive::FromXml(std::string_view xml_text,
                                   keys::KeySpecSet spec,
                                   ArchiveOptions options) {
  XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
  if (doc->tag() != kTimestampTag) {
    return Status::Corruption("archive document must start with <T t=...>");
  }
  const std::string* attr = doc->FindAttr("t");
  if (attr == nullptr) {
    return Status::Corruption("archive root timestamp missing");
  }
  XARCH_ASSIGN_OR_RETURN(VersionSet root_stamp, VersionSet::Parse(*attr));
  if (!root_stamp.empty() && root_stamp.Min() == 0) {
    return Status::Corruption(
        "archive root timestamp contains version 0 (versions are numbered "
        "from 1)");
  }
  if (doc->children().size() != 1 || !doc->children()[0]->is_element() ||
      doc->children()[0]->tag() != "root") {
    return Status::Corruption("archive must contain a single <root> element");
  }

  Archive archive(std::move(spec), options);
  Loader loader(archive.spec_, archive.options_);
  XARCH_RETURN_NOT_OK(loader.LoadRootChildren(*doc->children()[0], root_stamp,
                                              &archive.root_->children));
  archive.count_ = root_stamp.empty() ? 0 : root_stamp.Max();
  archive.root_->stamp = std::move(root_stamp);
  return archive;
}

}  // namespace xarch::core
