#include "core/tree_view.h"

namespace xarch::core {

ArchiveView::NodeId FindChildByKeyStep(const ArchiveView& view,
                                       ArchiveView::NodeId parent,
                                       const KeyStep& step) {
  const size_t child_count = view.ChildCount(parent);
  for (size_t c = 0; c < child_count; ++c) {
    const ArchiveView::NodeId child = view.Child(parent, c);
    if (view.Tag(child) != step.tag) continue;
    const size_t part_count = view.LabelPartCount(child);
    if (part_count != step.key.size()) continue;
    bool all_match = true;
    for (const auto& [path, text] : step.key) {
      bool found = false;
      for (size_t p = 0; p < part_count; ++p) {
        const auto [part_path, part_value] = view.LabelPart(child, p);
        if (part_path != path) continue;
        // Plain text matches the raw stored value or canonical "T<text>".
        if (part_value == text ||
            (part_value.size() == text.size() + 1 && part_value[0] == 'T' &&
             part_value.substr(1) == text)) {
          found = true;
          break;
        }
      }
      if (!found) {
        all_match = false;
        break;
      }
    }
    if (all_match) return child;
  }
  return ArchiveView::kNoNode;
}

StatusOr<VersionSet> HistoryOverView(const ArchiveView& view,
                                     const std::vector<KeyStep>& path) {
  ArchiveView::NodeId node = view.Root();
  VersionSet effective = view.StampValue(node);
  for (const auto& step : path) {
    if (view.IsFrontier(node)) {
      return Status::InvalidArgument(
          "history path descends below frontier node " +
          view.LabelString(node));
    }
    const ArchiveView::NodeId child = FindChildByKeyStep(view, node, step);
    if (child == ArchiveView::kNoNode) {
      return Status::NotFound("no element " + step.tag + " on the given path");
    }
    effective = view.EffectiveStamp(child, effective);
    node = child;
  }
  return effective;
}

}  // namespace xarch::core
