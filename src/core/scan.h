#ifndef XARCH_CORE_SCAN_H_
#define XARCH_CORE_SCAN_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/archive.h"
#include "core/tree_view.h"
#include "util/status.h"
#include "xml/serializer.h"

namespace xarch::core {

/// Probe counters of a (possibly pruned) archive scan. Mirrors the two
/// fields of index::ProbeStats a scan can observe; kept separate so core
/// does not depend on the index layer.
struct ScanStats {
  /// Nodes inspected by the pruning hook (timestamp-tree probes when the
  /// hook is backed by an ArchiveIndex). 0 for unpruned scans.
  size_t tree_probes = 0;
  /// Children a full scan inspects at the visited inner nodes — what the
  /// naive Sec. 7.1 scan pays, counted in the same pass for comparison.
  size_t naive_probes = 0;
};

/// Consumes the next chunk of serialized output.
using ScanEmit = std::function<Status(std::string_view chunk)>;

/// Optional pruning hook: fills `*relevant` with the indices of `node`'s
/// children active at version v (in child order) and returns true, or
/// returns false to make the cursor fall back to scanning all children
/// with per-child timestamp checks. `*probes` receives the number of nodes
/// the hook inspected. The node comes as the view's NodeId, so one hook
/// shape serves both heap and mapped scans.
using ChildSelector = std::function<bool(
    ArchiveView::NodeId node, Version v, std::vector<size_t>* relevant,
    size_t* probes)>;

/// \brief Streaming scan of archive subtrees at one version: the Sec. 7.1
/// version scan fused with xml::Serialize's formatting.
///
/// Serializes straight off the merged hierarchy into `emit`, chunk by
/// chunk — no xml::Node is ever constructed (pinned by tests through the
/// xml::Node::CreatedCount hook), and the byte output is identical to
/// serializing Archive::RetrieveVersion's tree. The cursor walks any
/// ArchiveView, so the same code path streams from heap nodes and from
/// mapped XAR2 bytes. With a ChildSelector the scan visits only the
/// relevant children at every inner node (timestamp-tree pruning); without
/// one it checks each child's timestamp.
///
/// Scan() may be called several times (a query streaming many matched
/// subtrees); Finish() flushes the buffered tail once at the end.
class ScanCursor {
 public:
  ScanCursor(xml::SerializeOptions options, ScanEmit emit)
      : options_(options), emit_(std::move(emit)) {}

  void set_selector(ChildSelector selector) {
    selector_ = std::move(selector);
  }
  void set_stats(ScanStats* stats) { stats_ = stats; }

  /// Serializes the subtree rooted at `node` as it existed at version v,
  /// indented as if at nesting level `depth`. The caller is responsible
  /// for checking that `node` itself is active at v.
  Status Scan(const ArchiveView& view, ArchiveView::NodeId node, Version v,
              int depth);

  /// Heap convenience overload over an ArchiveNode subtree.
  Status Scan(const ArchiveNode& node, Version v, int depth);

  /// Splices raw bytes into the stream (result wrappers, report lines).
  Status Emit(std::string_view text);

  /// Flushes the buffered tail into `emit`. Call once after the last
  /// Scan/Emit.
  Status Finish();

 private:
  static constexpr size_t kFlushThreshold = 64 * 1024;

  Status MaybeFlush();
  void Indent(int depth);
  void Newline();
  void OpenTag(const ArchiveView& view, ArchiveView::NodeId node);
  void CloseTag(const ArchiveView& view, ArchiveView::NodeId node);
  Status WriteInner(const ArchiveView& view, ArchiveView::NodeId node,
                    Version v, int depth);
  Status WriteFrontier(const ArchiveView& view, ArchiveView::NodeId node,
                       Version v, int depth);

  xml::SerializeOptions options_;
  ScanEmit emit_;
  ChildSelector selector_;
  ScanStats* stats_ = nullptr;
  std::string buffer_;
};

}  // namespace xarch::core

#endif  // XARCH_CORE_SCAN_H_
