#ifndef XARCH_CORE_ARCHIVE_H_
#define XARCH_CORE_ARCHIVE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "keys/label.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xml/node.h"

namespace xarch::core {

/// How content below frontier nodes is stored (Sec. 4.2).
enum class FrontierStrategy {
  /// The basic Nested Merge: each distinct content value becomes one
  /// timestamped alternative ("all children are timestamp nodes or none
  /// is").
  kBuckets,
  /// "Further compaction": an SCCS-style weave per frontier node — content
  /// shared across versions is stored once and only differing parts carry
  /// timestamps (Fig. 10).
  kWeave,
};

/// Options for building archives.
struct ArchiveOptions {
  keys::AnnotateOptions annotate;
  FrontierStrategy frontier = FrontierStrategy::kBuckets;
};

/// Options for serializing an archive to XML.
struct ArchiveSerializeOptions {
  bool pretty = true;
  /// Spaces per nesting level. Size comparisons against plain versions
  /// should use 0 on both sides: the archive nests two levels deeper
  /// (<T><root>), so nonzero indentation biases its byte count.
  int indent_width = 2;
  /// Timestamp inheritance (Sec. 1): emit a <T> wrapper only when a node's
  /// timestamp differs from its parent's. Turning this off (every node
  /// wrapped) is the E13 ablation.
  bool inherit_timestamps = true;
  /// Encode timestamps as intervals "1-9" rather than exhaustive lists
  /// "1,2,...,9". Turning this off is the E13 ablation.
  bool interval_encoding = true;
};

/// \brief One node of the merged hierarchy: a label (tag + key values), an
/// optional timestamp (absent = inherited from the parent, Sec. 2), and
/// either keyed children (inner nodes) or timestamped content buckets
/// (frontier nodes).
class ArchiveNode {
 public:
  keys::Label label;
  /// Timestamp; std::nullopt means the node inherits its parent's.
  std::optional<VersionSet> stamp;
  bool is_frontier = false;
  /// Attributes of the element (all folded into the label as well).
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Keyed children, sorted by (fingerprint, label); inner nodes only.
  std::vector<std::unique_ptr<ArchiveNode>> children;

  /// A run of XML content below a frontier node with one timestamp.
  /// With FrontierStrategy::kBuckets, buckets are alternatives (at most one
  /// active per version); with kWeave they are woven segments (all active
  /// ones concatenate). Retrieval is identical either way.
  struct Bucket {
    std::optional<VersionSet> stamp;  ///< absent = inherits the node's
    std::vector<xml::NodePtr> content;
  };
  std::vector<Bucket> buckets;  ///< frontier nodes only

  /// The timestamp in effect at this node given the parent's effective one.
  const VersionSet& EffectiveStamp(const VersionSet& parent_effective) const {
    return stamp.has_value() ? *stamp : parent_effective;
  }

  /// Total archive nodes in this subtree (labels, not XML nodes).
  size_t CountNodes() const;
};

/// One step of a temporal-history query (Sec. 7.2): a tag plus the key
/// values identifying the node among its siblings, with values given as
/// plain text, e.g. {"emp", {{"fn", "John"}, {"ln", "Doe"}}}.
struct KeyStep {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> key;
};

/// \brief The compacted archive of the paper: all versions merged into one
/// hierarchy, each element stored once with the timestamp of the versions
/// it appears in.
///
/// Usage:
///   auto spec = keys::ParseKeySpecSet(...);
///   Archive archive(std::move(*spec));
///   archive.AddVersion(*v1);           // Nested Merge, Sec. 4.2
///   archive.AddVersion(*v2);
///   auto v1_again = archive.RetrieveVersion(1);   // Sec. 7.1
///   auto when = archive.History({...});           // Sec. 7.2
///   std::string xml = archive.ToXml();            // Fig. 5
///
/// Thread safety: the const methods (RetrieveVersion, History, ToXml,
/// Check, CountNodes, root, the counters) touch no mutable state and are
/// safe to call from any number of threads, PROVIDED no mutation
/// (AddVersion/AddVersions/AddEmptyVersion/mutable_root) runs
/// concurrently. The Archive does no locking of its own; callers that
/// share one across threads synchronize externally — xarch::Store does so
/// with a writer-exclusive shared_mutex, and publishes derived structures
/// (index::ArchiveIndex) from the ingest path under that same lock.
class Archive {
 public:
  explicit Archive(keys::KeySpecSet spec, ArchiveOptions options = {});

  Archive(Archive&&) = default;
  Archive& operator=(Archive&&) = default;

  /// Merges the next version into the archive (algorithm Nested Merge).
  /// The document must satisfy the key specification; on error the archive
  /// is unchanged.
  Status AddVersion(const xml::Node& version_root);

  /// Merges a batch of consecutive versions in ONE traversal of the
  /// archive (a k-way generalization of Nested Merge): the result is
  /// byte-identical to calling AddVersion on each document in order, but
  /// the archive hierarchy is walked once instead of once per version.
  /// All documents are key-checked up front; on error the archive is
  /// unchanged.
  Status AddVersions(const std::vector<const xml::Node*>& version_roots);

  /// Archives an empty database state (the Sec. 2 footnote: the root node
  /// tracks versions where the database is empty).
  void AddEmptyVersion();

  /// Number of archived versions (version numbers are 1..version_count()).
  Version version_count() const { return count_; }

  /// Reconstructs version v by a single scan (Sec. 7.1). Returns nullptr
  /// for a version archived with AddEmptyVersion().
  StatusOr<xml::NodePtr> RetrieveVersion(Version v) const;

  /// The temporal history of the keyed element identified by `path`
  /// (Sec. 7.2): the set of versions in which it exists. Key values are
  /// plain text; they are matched against the canonical stored values.
  StatusOr<VersionSet> History(const std::vector<KeyStep>& path) const;

  /// Serializes the archive as the XML document of Fig. 5.
  std::string ToXml(const ArchiveSerializeOptions& options) const;
  std::string ToXml() const { return ToXml(ArchiveSerializeOptions()); }

  /// Reconstructs an archive from its XML form (the key specification is
  /// external metadata, exactly as for versions).
  static StatusOr<Archive> FromXml(std::string_view xml_text,
                                   keys::KeySpecSet spec,
                                   ArchiveOptions options = {});

  /// Verifies the structural invariants: timestamps of descendants are
  /// contained in their ancestors', children are strictly sorted, frontier
  /// buckets are well-formed, and (bucket mode) alternatives are disjoint.
  Status Check() const;

  /// The virtual root ("root" in Fig. 4); its timestamp is 1..count.
  const ArchiveNode& root() const { return *root_; }
  ArchiveNode& mutable_root() { return *root_; }

  const keys::KeySpecSet& spec() const { return spec_; }
  const ArchiveOptions& options() const { return options_; }

  /// Total archive nodes (cheap size proxy; ToXml().size() is the byte one).
  size_t CountNodes() const { return root_->CountNodes(); }

  /// Full traversals of the archive performed by merging so far: one per
  /// AddVersion call, one per AddVersions *batch*. A counter hook for
  /// verifying that batched ingest really is a single pass.
  uint64_t merge_pass_count() const { return merge_passes_; }

  /// Monotone counter bumped by every successful ingest (AddVersion,
  /// AddVersions, AddEmptyVersion). Derived structures built over the
  /// archive (index::ArchiveIndex) record the generation they were built
  /// at and rebuild lazily when it moves — the stale-index hazard of
  /// "constructed each time a new version arrives" (Sec. 7).
  uint64_t ingest_generation() const { return ingest_generation_; }

 private:
  friend class NestedMerger;
  friend class MultiNestedMerger;

  keys::KeySpecSet spec_;
  ArchiveOptions options_;
  Version count_ = 0;
  uint64_t merge_passes_ = 0;
  uint64_t ingest_generation_ = 0;
  std::unique_ptr<ArchiveNode> root_;
};

/// Resolves a KeyStep against archive children: finds the child whose label
/// matches tag and key values (plain text values match canonical "T<text>"
/// or raw stored forms). Returns nullptr if absent.
const ArchiveNode* FindChildByKeyStep(const ArchiveNode& parent,
                                      const KeyStep& step);

}  // namespace xarch::core

#endif  // XARCH_CORE_ARCHIVE_H_
