#include "core/flat_archive.h"

#include <cstring>

namespace xarch::core {

namespace {

uint32_t LoadU32(std::string_view bytes, size_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

uint64_t LoadU64(std::string_view bytes, size_t offset) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

void PutU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

Status Bad(const char* what) {
  return Status::DataLoss(std::string("snapshot flat archive ") + what);
}

// Splits a "u32 count | records" section into its record payload, checking
// the exact size. Record math is u64 so huge counts cannot wrap.
Status SplitRecords(std::string_view section, uint64_t record_bytes,
                    const char* what, uint32_t* count,
                    std::string_view* records) {
  if (section.size() < 4) return Bad(what);
  *count = LoadU32(section, 0);
  if (4 + record_bytes * *count != section.size()) return Bad(what);
  *records = section.substr(4);
  return Status::OK();
}

}  // namespace

Status FlatArchive::AttachStrings(std::string_view section) {
  if (section.size() < 4) return Bad("string table is corrupt");
  const uint32_t count = LoadU32(section, 0);
  const uint64_t offsets_bytes = 4ull * (uint64_t{count} + 1);
  if (4 + offsets_bytes > section.size()) {
    return Bad("string table is corrupt");
  }
  string_offsets_ = section.substr(4, offsets_bytes);
  string_blob_ = section.substr(4 + offsets_bytes);
  if (LoadU32(string_offsets_, 0) != 0) {
    return Bad("string table offsets are corrupt");
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (LoadU32(string_offsets_, 4ull * i) >
        LoadU32(string_offsets_, 4ull * i + 4)) {
      return Bad("string table offsets are corrupt");
    }
  }
  if (LoadU32(string_offsets_, 4ull * count) != string_blob_.size()) {
    return Bad("string table offsets are corrupt");
  }
  string_count_ = count;
  return Status::OK();
}

Status FlatArchive::AttachStamps(std::string_view section) {
  if (section.size() < 4) return Bad("timestamp pool is corrupt");
  const uint32_t count = LoadU32(section, 0);
  const uint64_t offsets_bytes = 4ull * (uint64_t{count} + 1);
  if (4 + offsets_bytes > section.size()) {
    return Bad("timestamp pool is corrupt");
  }
  stamp_offsets_ = section.substr(4, offsets_bytes);
  stamp_pairs_ = section.substr(4 + offsets_bytes);
  if (LoadU32(stamp_offsets_, 0) != 0) {
    return Bad("timestamp pool offsets are corrupt");
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (LoadU32(stamp_offsets_, 4ull * i) >
        LoadU32(stamp_offsets_, 4ull * i + 4)) {
      return Bad("timestamp pool offsets are corrupt");
    }
  }
  if (8ull * LoadU32(stamp_offsets_, 4ull * count) != stamp_pairs_.size()) {
    return Bad("timestamp pool offsets are corrupt");
  }
  // Each stamp must hold sorted disjoint intervals or the membership
  // binary search would answer wrongly on intact bytes.
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t lo = LoadU32(stamp_offsets_, 4ull * i);
    const uint32_t hi = LoadU32(stamp_offsets_, 4ull * i + 4);
    bool has_prev = false;
    uint32_t prev_hi = 0;
    for (uint32_t p = lo; p < hi; ++p) {
      const uint32_t a = LoadU32(stamp_pairs_, 8ull * p);
      const uint32_t b = LoadU32(stamp_pairs_, 8ull * p + 4);
      if (a > b || (has_prev && a <= prev_hi)) {
        return Bad("timestamp intervals are corrupt");
      }
      has_prev = true;
      prev_hi = b;
    }
  }
  stamp_count_ = count;
  return Status::OK();
}

StatusOr<FlatArchive> FlatArchive::Attach(const Sections& sections) {
  FlatArchive a;
  if (sections.meta.size() != 8) return Bad("meta section is corrupt");
  const uint64_t version_count = LoadU64(sections.meta, 0);
  if (version_count > 0xffffffffull) return Bad("meta section is corrupt");
  a.version_count_ = static_cast<Version>(version_count);

  XARCH_RETURN_NOT_OK(a.AttachStrings(sections.strings));
  XARCH_RETURN_NOT_OK(a.AttachStamps(sections.stamps));

  uint32_t node_count, part_count, attr_count, bucket_count, content_count;
  XARCH_RETURN_NOT_OK(SplitRecords(sections.nodes, 4ull * kNodeFields,
                                   "node records are corrupt", &node_count,
                                   &a.nodes_));
  XARCH_RETURN_NOT_OK(SplitRecords(sections.parts, 8,
                                   "key-part table is corrupt", &part_count,
                                   &a.parts_));
  XARCH_RETURN_NOT_OK(SplitRecords(sections.attrs, 8,
                                   "attribute table is corrupt", &attr_count,
                                   &a.attrs_));
  XARCH_RETURN_NOT_OK(SplitRecords(sections.buckets, 12,
                                   "bucket table is corrupt", &bucket_count,
                                   &a.buckets_));
  XARCH_RETURN_NOT_OK(SplitRecords(sections.content, 4ull * kContentFields,
                                   "content records are corrupt",
                                   &content_count, &a.content_));
  a.node_counts_[0] = node_count;
  a.node_counts_[1] = part_count;
  a.node_counts_[2] = attr_count;
  a.node_counts_[3] = bucket_count;
  a.node_counts_[4] = content_count;

  for (uint32_t i = 0; i < part_count; ++i) {
    if (a.PartPathSid(i) >= a.string_count_ ||
        a.PartValueSid(i) >= a.string_count_) {
      return Bad("key-part table is corrupt");
    }
  }
  for (uint32_t i = 0; i < attr_count; ++i) {
    if (a.AttrNameSid(i) >= a.string_count_ ||
        a.AttrValueSid(i) >= a.string_count_) {
      return Bad("attribute table is corrupt");
    }
  }
  for (uint32_t i = 0; i < content_count; ++i) {
    const uint32_t flags = a.ContentField(i, kContentFlags);
    if ((flags & ~kFlagText) != 0) return Bad("content records are corrupt");
    if (a.ContentField(i, kContentSid) >= a.string_count_) {
      return Bad("content records are corrupt");
    }
    const uint64_t ab = a.ContentField(i, kContentAttrBegin);
    const uint64_t ac = a.ContentField(i, kContentAttrCount);
    const uint64_t cb = a.ContentField(i, kContentChildBegin);
    const uint64_t cc = a.ContentField(i, kContentChildCount);
    if (ab + ac > attr_count || cb + cc > content_count) {
      return Bad("content records are corrupt");
    }
    if ((flags & kFlagText) != 0 && (ac != 0 || cc != 0)) {
      return Bad("content records are corrupt");
    }
    // Children strictly after the parent: navigation terminates.
    if (cc != 0 && cb <= i) return Bad("content records are corrupt");
  }
  for (uint32_t i = 0; i < bucket_count; ++i) {
    if (a.BucketStampIdPlus1(i) > a.stamp_count_) {
      return Bad("bucket table is corrupt");
    }
    const uint64_t cb = a.BucketContentBegin(i);
    const uint64_t cc = a.BucketContentCount(i);
    if (cb + cc > content_count) return Bad("bucket table is corrupt");
  }
  if (node_count == 0) return Bad("node records are corrupt");
  for (uint32_t i = 0; i < node_count; ++i) {
    if (a.NodeField(i, kNodeTagSid) >= a.string_count_ ||
        a.NodeField(i, kNodeStampIdPlus1) > a.stamp_count_) {
      return Bad("node records are corrupt");
    }
    const uint32_t flags = a.NodeField(i, kNodeFlags);
    if ((flags & ~kFlagFrontier) != 0) return Bad("node records are corrupt");
    const uint64_t pb = a.NodeField(i, kNodePartBegin);
    const uint64_t pc = a.NodeField(i, kNodePartCount);
    const uint64_t ab = a.NodeField(i, kNodeAttrBegin);
    const uint64_t ac = a.NodeField(i, kNodeAttrCount);
    const uint64_t cb = a.NodeField(i, kNodeChildBegin);
    const uint64_t cc = a.NodeField(i, kNodeChildCount);
    const uint64_t bb = a.NodeField(i, kNodeBucketBegin);
    const uint64_t bc = a.NodeField(i, kNodeBucketCount);
    if (pb + pc > part_count || ab + ac > attr_count ||
        cb + cc > node_count || bb + bc > bucket_count) {
      return Bad("node records are corrupt");
    }
    if (cc != 0 && cb <= i) return Bad("node records are corrupt");
    if ((flags & kFlagFrontier) != 0) {
      if (cc != 0) return Bad("node records are corrupt");
    } else if (bc != 0) {
      return Bad("node records are corrupt");
    }
  }
  // The virtual root always carries its own timestamp (1..version_count);
  // every inheritance chain must bottom out there.
  if (a.NodeField(0, kNodeStampIdPlus1) == 0) {
    return Bad("node records are corrupt");
  }
  return a;
}

std::string_view FlatArchive::StringAt(uint32_t sid) const {
  const uint32_t lo = LoadU32(string_offsets_, 4ull * sid);
  const uint32_t hi = LoadU32(string_offsets_, 4ull * sid + 4);
  return string_blob_.substr(lo, hi - lo);
}

uint32_t FlatArchive::NodeField(uint32_t node, int field) const {
  return LoadU32(nodes_, 4ull * (uint64_t{node} * kNodeFields + field));
}

uint32_t FlatArchive::ContentField(uint32_t record, int field) const {
  return LoadU32(content_, 4ull * (uint64_t{record} * kContentFields + field));
}

uint32_t FlatArchive::PartPathSid(uint32_t part) const {
  return LoadU32(parts_, 8ull * part);
}

uint32_t FlatArchive::PartValueSid(uint32_t part) const {
  return LoadU32(parts_, 8ull * part + 4);
}

uint32_t FlatArchive::AttrNameSid(uint32_t attr) const {
  return LoadU32(attrs_, 8ull * attr);
}

uint32_t FlatArchive::AttrValueSid(uint32_t attr) const {
  return LoadU32(attrs_, 8ull * attr + 4);
}

uint32_t FlatArchive::BucketStampIdPlus1(uint32_t bucket) const {
  return LoadU32(buckets_, 12ull * bucket);
}

uint32_t FlatArchive::BucketContentBegin(uint32_t bucket) const {
  return LoadU32(buckets_, 12ull * bucket + 4);
}

uint32_t FlatArchive::BucketContentCount(uint32_t bucket) const {
  return LoadU32(buckets_, 12ull * bucket + 8);
}

bool FlatArchive::StampContains(uint32_t stamp_id, Version v) const {
  uint32_t lo = LoadU32(stamp_offsets_, 4ull * stamp_id);
  uint32_t hi = LoadU32(stamp_offsets_, 4ull * stamp_id + 4);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const uint32_t a = LoadU32(stamp_pairs_, 8ull * mid);
    const uint32_t b = LoadU32(stamp_pairs_, 8ull * mid + 4);
    if (v < a) {
      hi = mid;
    } else if (v > b) {
      lo = mid + 1;
    } else {
      return true;
    }
  }
  return false;
}

VersionSet FlatArchive::StampAt(uint32_t stamp_id) const {
  const uint32_t lo = LoadU32(stamp_offsets_, 4ull * stamp_id);
  const uint32_t hi = LoadU32(stamp_offsets_, 4ull * stamp_id + 4);
  VersionSet out;
  for (uint32_t p = lo; p < hi; ++p) {
    out.UnionWith(VersionSet::Interval(LoadU32(stamp_pairs_, 8ull * p),
                                       LoadU32(stamp_pairs_, 8ull * p + 4)));
  }
  return out;
}

// ----------------------------------------------------------------- view

bool FlatArchiveView::IsFrontier(NodeId n) const {
  return (a_->NodeField(n, FlatArchive::kNodeFlags) &
          FlatArchive::kFlagFrontier) != 0;
}

std::string_view FlatArchiveView::Tag(NodeId n) const {
  return a_->StringAt(a_->NodeField(n, FlatArchive::kNodeTagSid));
}

size_t FlatArchiveView::AttrCount(NodeId n) const {
  return a_->NodeField(n, FlatArchive::kNodeAttrCount);
}

std::pair<std::string_view, std::string_view> FlatArchiveView::Attr(
    NodeId n, size_t i) const {
  const uint32_t attr = a_->NodeField(n, FlatArchive::kNodeAttrBegin) + i;
  return {a_->StringAt(a_->AttrNameSid(attr)),
          a_->StringAt(a_->AttrValueSid(attr))};
}

size_t FlatArchiveView::ChildCount(NodeId n) const {
  return a_->NodeField(n, FlatArchive::kNodeChildCount);
}

ArchiveView::NodeId FlatArchiveView::Child(NodeId n, size_t i) const {
  return a_->NodeField(n, FlatArchive::kNodeChildBegin) + i;
}

size_t FlatArchiveView::LabelPartCount(NodeId n) const {
  return a_->NodeField(n, FlatArchive::kNodePartCount);
}

std::pair<std::string_view, std::string_view> FlatArchiveView::LabelPart(
    NodeId n, size_t i) const {
  const uint32_t part = a_->NodeField(n, FlatArchive::kNodePartBegin) + i;
  return {a_->StringAt(a_->PartPathSid(part)),
          a_->StringAt(a_->PartValueSid(part))};
}

std::string FlatArchiveView::LabelString(NodeId n) const {
  // Mirrors keys::Label::ToString byte for byte (it renders user-facing
  // messages shared with the heap path).
  const size_t parts = LabelPartCount(n);
  std::string out(Tag(n));
  if (parts == 0) return out;
  out += '{';
  for (size_t i = 0; i < parts; ++i) {
    if (i > 0) out += ", ";
    const auto& [path, value] = LabelPart(n, i);
    out += path;
    out += '=';
    if (!value.empty() && value[0] == 'T' &&
        value.find('<') == std::string_view::npos) {
      out += value.substr(1);
    } else {
      out += value;
    }
  }
  out += '}';
  return out;
}

bool FlatArchiveView::HasStamp(NodeId n) const {
  return a_->NodeField(n, FlatArchive::kNodeStampIdPlus1) != 0;
}

bool FlatArchiveView::StampContains(NodeId n, Version v) const {
  return a_->StampContains(a_->NodeField(n, FlatArchive::kNodeStampIdPlus1) - 1,
                           v);
}

VersionSet FlatArchiveView::StampValue(NodeId n) const {
  return a_->StampAt(a_->NodeField(n, FlatArchive::kNodeStampIdPlus1) - 1);
}

uint32_t FlatArchiveView::GlobalBucket(NodeId n, size_t b) const {
  return a_->NodeField(n, FlatArchive::kNodeBucketBegin) + b;
}

uint32_t FlatArchiveView::GlobalContent(NodeId n, size_t b, size_t i) const {
  return a_->BucketContentBegin(GlobalBucket(n, b)) + i;
}

size_t FlatArchiveView::BucketCount(NodeId n) const {
  return a_->NodeField(n, FlatArchive::kNodeBucketCount);
}

bool FlatArchiveView::BucketHasStamp(NodeId n, size_t b) const {
  return a_->BucketStampIdPlus1(GlobalBucket(n, b)) != 0;
}

bool FlatArchiveView::BucketStampContains(NodeId n, size_t b,
                                          Version v) const {
  return a_->StampContains(a_->BucketStampIdPlus1(GlobalBucket(n, b)) - 1, v);
}

size_t FlatArchiveView::BucketContentCount(NodeId n, size_t b) const {
  return a_->BucketContentCount(GlobalBucket(n, b));
}

bool FlatArchiveView::BucketContentIsText(NodeId n, size_t b,
                                          size_t i) const {
  return (a_->ContentField(GlobalContent(n, b, i), FlatArchive::kContentFlags) &
          FlatArchive::kFlagText) != 0;
}

std::string_view FlatArchiveView::BucketContentText(NodeId n, size_t b,
                                                    size_t i) const {
  return a_->StringAt(
      a_->ContentField(GlobalContent(n, b, i), FlatArchive::kContentSid));
}

void FlatArchiveView::AppendBucketContent(NodeId n, size_t b, size_t i,
                                          const xml::SerializeOptions& options,
                                          int depth, std::string* out) const {
  FlatContentSource source(a_);
  xml::SerializeAppend(source, GlobalContent(n, b, i), options, depth, out);
}

// -------------------------------------------------------- content source

bool FlatContentSource::IsText(Id node) const {
  return (a_->ContentField(node, FlatArchive::kContentFlags) &
          FlatArchive::kFlagText) != 0;
}

std::string_view FlatContentSource::Text(Id node) const {
  return a_->StringAt(a_->ContentField(node, FlatArchive::kContentSid));
}

std::string_view FlatContentSource::Tag(Id node) const {
  return a_->StringAt(a_->ContentField(node, FlatArchive::kContentSid));
}

size_t FlatContentSource::AttrCount(Id node) const {
  return a_->ContentField(node, FlatArchive::kContentAttrCount);
}

std::pair<std::string_view, std::string_view> FlatContentSource::Attr(
    Id node, size_t i) const {
  const uint32_t attr =
      a_->ContentField(node, FlatArchive::kContentAttrBegin) + i;
  return {a_->StringAt(a_->AttrNameSid(attr)),
          a_->StringAt(a_->AttrValueSid(attr))};
}

size_t FlatContentSource::ChildCount(Id node) const {
  return a_->ContentField(node, FlatArchive::kContentChildCount);
}

xml::NodeSource::Id FlatContentSource::Child(Id node, size_t i) const {
  return a_->ContentField(node, FlatArchive::kContentChildBegin) + i;
}

// --------------------------------------------------------------- encoder

uint32_t FlatArchiveEncoder::InternStamp(const VersionSet& stamp) {
  std::string encoded;
  for (const auto& [lo, hi] : stamp.intervals()) {
    PutU32(&encoded, lo);
    PutU32(&encoded, hi);
  }
  auto it = stamp_ids_.find(encoded);
  if (it != stamp_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(stamp_pool_.size());
  stamp_pool_.push_back(std::move(encoded));
  stamp_ids_.emplace(std::string_view(stamp_pool_.back()), id);
  return id;
}

uint32_t FlatArchiveEncoder::EncodeContentForest(
    const std::vector<xml::NodePtr>& roots, uint32_t* out_begin) {
  const uint32_t base =
      static_cast<uint32_t>(content_.size() / FlatArchive::kContentFields);
  std::vector<const xml::Node*> corder;
  corder.reserve(roots.size());
  for (const auto& root : roots) corder.push_back(root.get());
  for (size_t j = 0; j < corder.size(); ++j) {
    const xml::Node& node = *corder[j];
    uint32_t rec[FlatArchive::kContentFields] = {0, 0, 0, 0, 0, 0};
    if (node.is_text()) {
      rec[FlatArchive::kContentFlags] = FlatArchive::kFlagText;
      rec[FlatArchive::kContentSid] = interner_.Intern(node.text());
    } else {
      rec[FlatArchive::kContentSid] = interner_.Intern(node.tag());
      rec[FlatArchive::kContentAttrBegin] =
          static_cast<uint32_t>(attrs_.size() / 2);
      rec[FlatArchive::kContentAttrCount] =
          static_cast<uint32_t>(node.attrs().size());
      for (const auto& [name, value] : node.attrs()) {
        attrs_.push_back(interner_.Intern(name));
        attrs_.push_back(interner_.Intern(value));
      }
      if (!node.children().empty()) {
        // Children at the forest's tail: still contiguous globally, since
        // only this loop appends content records until the forest is done.
        rec[FlatArchive::kContentChildBegin] =
            base + static_cast<uint32_t>(corder.size());
        rec[FlatArchive::kContentChildCount] =
            static_cast<uint32_t>(node.children().size());
        for (const auto& child : node.children()) {
          corder.push_back(child.get());
        }
      }
    }
    content_.insert(content_.end(), rec, rec + FlatArchive::kContentFields);
  }
  *out_begin = base;
  return static_cast<uint32_t>(roots.size());
}

void FlatArchiveEncoder::EncodeStructure() {
  order_.push_back(&archive_.root());
  node_ids_.emplace(&archive_.root(), 0);
  // Breadth-first so every node's children form one contiguous id run
  // starting past the node itself.
  for (size_t i = 0; i < order_.size(); ++i) {
    const ArchiveNode& node = *order_[i];
    uint32_t rec[FlatArchive::kNodeFields] = {0};
    rec[FlatArchive::kNodeTagSid] = interner_.Intern(node.label.tag);
    rec[FlatArchive::kNodeStampIdPlus1] =
        node.stamp.has_value() ? InternStamp(*node.stamp) + 1 : 0;
    rec[FlatArchive::kNodePartBegin] =
        static_cast<uint32_t>(parts_.size() / 2);
    rec[FlatArchive::kNodePartCount] =
        static_cast<uint32_t>(node.label.parts.size());
    for (const auto& part : node.label.parts) {
      parts_.push_back(interner_.Intern(part.path));
      parts_.push_back(interner_.Intern(part.value));
    }
    rec[FlatArchive::kNodeAttrBegin] =
        static_cast<uint32_t>(attrs_.size() / 2);
    rec[FlatArchive::kNodeAttrCount] =
        static_cast<uint32_t>(node.attrs.size());
    for (const auto& [name, value] : node.attrs) {
      attrs_.push_back(interner_.Intern(name));
      attrs_.push_back(interner_.Intern(value));
    }
    rec[FlatArchive::kNodeChildBegin] = static_cast<uint32_t>(order_.size());
    rec[FlatArchive::kNodeChildCount] =
        static_cast<uint32_t>(node.children.size());
    for (const auto& child : node.children) {
      node_ids_.emplace(child.get(), static_cast<uint32_t>(order_.size()));
      order_.push_back(child.get());
    }
    rec[FlatArchive::kNodeBucketBegin] =
        static_cast<uint32_t>(buckets_.size() / 3);
    rec[FlatArchive::kNodeBucketCount] =
        static_cast<uint32_t>(node.buckets.size());
    for (const auto& bucket : node.buckets) {
      uint32_t content_begin = 0;
      const uint32_t content_count =
          EncodeContentForest(bucket.content, &content_begin);
      buckets_.push_back(
          bucket.stamp.has_value() ? InternStamp(*bucket.stamp) + 1 : 0);
      buckets_.push_back(content_begin);
      buckets_.push_back(content_count);
    }
    rec[FlatArchive::kNodeFlags] =
        node.is_frontier ? FlatArchive::kFlagFrontier : 0;
    nodes_.insert(nodes_.end(), rec, rec + FlatArchive::kNodeFields);
  }
}

namespace {

std::string RecordSection(const std::vector<uint32_t>& words,
                          size_t words_per_record) {
  std::string out;
  out.reserve(4 + 4 * words.size());
  PutU32(&out, static_cast<uint32_t>(words.size() / words_per_record));
  for (uint32_t w : words) PutU32(&out, w);
  return out;
}

}  // namespace

FlatArchiveEncoder::Sections FlatArchiveEncoder::Finish() {
  Sections out;
  PutU64(&out.meta, archive_.version_count());
  interner_.EncodeTo(&out.strings);
  PutU32(&out.stamps, static_cast<uint32_t>(stamp_pool_.size()));
  uint32_t interval_offset = 0;
  PutU32(&out.stamps, interval_offset);
  for (const std::string& encoded : stamp_pool_) {
    interval_offset += static_cast<uint32_t>(encoded.size() / 8);
    PutU32(&out.stamps, interval_offset);
  }
  for (const std::string& encoded : stamp_pool_) out.stamps += encoded;
  out.nodes = RecordSection(nodes_, FlatArchive::kNodeFields);
  out.parts = RecordSection(parts_, 2);
  out.attrs = RecordSection(attrs_, 2);
  out.buckets = RecordSection(buckets_, 3);
  out.content = RecordSection(content_, FlatArchive::kContentFields);
  return out;
}

}  // namespace xarch::core
