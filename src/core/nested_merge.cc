#include <algorithm>

#include "core/archive.h"
#include "diff/myers.h"
#include "xml/canonical.h"
#include "xml/value.h"

namespace xarch::core {

namespace {

int CompareOrder(const keys::Label& a, const keys::Label& b) {
  if (a.fingerprint != b.fingerprint) {
    return a.fingerprint < b.fingerprint ? -1 : 1;
  }
  // Equal fingerprints: verify with the actual key values (Sec. 4.3 —
  // "every successful match between two fingerprints incurs the extra time
  // to compare their actual key values").
  return a.Compare(b);
}

bool ContentValueEqual(const std::vector<xml::NodePtr>& a,
                       const std::vector<xml::NodePtr>& b) {
  return xml::ValueEqualChildren(a, b);
}

std::vector<xml::NodePtr> CloneContent(const std::vector<xml::NodePtr>& in) {
  std::vector<xml::NodePtr> out;
  out.reserve(in.size());
  for (const auto& n : in) out.push_back(n->Clone());
  return out;
}

/// One version step of the basic frontier handling: whole-content
/// alternatives. `T` is the node's effective timestamp with `v` included.
/// Shared by the single-version and the batched merger.
void FrontierBucketsStep(ArchiveNode* x,
                         const std::vector<xml::NodePtr>& ycontent,
                         const VersionSet& T, Version v) {
  if (x->buckets.empty()) {
    // Loaded archives may omit an empty plain bucket.
    x->buckets.push_back(ArchiveNode::Bucket{});
  }
  bool plain = x->buckets.size() == 1 && !x->buckets[0].stamp.has_value();
  if (plain) {
    if (ContentValueEqual(x->buckets[0].content, ycontent)) return;
    // Transition to timestamped alternatives (the sal example, Fig. 4/5).
    x->buckets[0].stamp = T.Minus(VersionSet::Single(v));
    ArchiveNode::Bucket fresh;
    fresh.stamp = VersionSet::Single(v);
    fresh.content = CloneContent(ycontent);
    x->buckets.push_back(std::move(fresh));
    return;
  }
  for (auto& bucket : x->buckets) {
    if (bucket.stamp.has_value() &&
        ContentValueEqual(bucket.content, ycontent)) {
      bucket.stamp->Add(v);
      return;
    }
  }
  ArchiveNode::Bucket fresh;
  fresh.stamp = VersionSet::Single(v);
  fresh.content = CloneContent(ycontent);
  x->buckets.push_back(std::move(fresh));
}

/// One version step of the further-compaction frontier handling (Sec. 4.2,
/// Fig. 10): SCCS-style per-item weave. Diffing against all woven items
/// (dead ones included) revives identical content instead of storing it
/// twice.
void FrontierWeaveStep(ArchiveNode* x,
                       const std::vector<xml::NodePtr>& ycontent,
                       const VersionSet& T, Version v) {
  // Flatten to one item per bucket.
  std::vector<ArchiveNode::Bucket> items;
  for (auto& bucket : x->buckets) {
    if (bucket.content.size() <= 1) {
      if (!bucket.content.empty()) items.push_back(std::move(bucket));
    } else {
      for (auto& n : bucket.content) {
        ArchiveNode::Bucket item;
        item.stamp = bucket.stamp;
        item.content.push_back(std::move(n));
        items.push_back(std::move(item));
      }
    }
  }
  std::vector<std::string> a_canon;
  a_canon.reserve(items.size());
  for (const auto& item : items) {
    a_canon.push_back(xml::Canonicalize(*item.content[0]));
  }
  std::vector<std::string> b_canon;
  b_canon.reserve(ycontent.size());
  for (const auto& n : ycontent) b_canon.push_back(xml::Canonicalize(*n));

  auto hunks = diff::MyersDiff(
      a_canon.size(), b_canon.size(),
      [&](size_t i, size_t j) { return a_canon[i] == b_canon[j]; });

  std::vector<ArchiveNode::Bucket> result;
  result.reserve(items.size() + ycontent.size());
  for (const auto& h : hunks) {
    if (h.equal) {
      for (size_t k = 0; k < h.a_len; ++k) {
        ArchiveNode::Bucket item = std::move(items[h.a_pos + k]);
        if (item.stamp.has_value()) item.stamp->Add(v);
        result.push_back(std::move(item));
      }
    } else {
      for (size_t k = 0; k < h.a_len; ++k) {
        ArchiveNode::Bucket item = std::move(items[h.a_pos + k]);
        if (!item.stamp.has_value()) {
          item.stamp = T.Minus(VersionSet::Single(v));
        }
        result.push_back(std::move(item));
      }
      for (size_t k = 0; k < h.b_len; ++k) {
        ArchiveNode::Bucket fresh;
        fresh.stamp = VersionSet::Single(v);
        fresh.content.push_back(ycontent[h.b_pos + k]->Clone());
        result.push_back(std::move(fresh));
      }
    }
  }
  x->buckets = std::move(result);
}

}  // namespace

/// Implements algorithm Nested Merge (Sec. 4.2) against an Archive.
class NestedMerger {
 public:
  NestedMerger(Archive* archive, Version v)
      : archive_(*archive), v_(v) {}

  void Run(const keys::KeyedNode& keyed_root) {
    ArchiveNode& root = *archive_.root_;
    root.stamp->Add(v_);
    const VersionSet T = *root.stamp;
    std::vector<const keys::KeyedNode*> tops = {&keyed_root};
    MergeChildren(&root, tops, T);
  }

 private:
  /// The sorted-list merge of children(x) with children(y) (the paper's
  /// XY / X' / Y' partition, computed merge-sort style as described in the
  /// Sec. 4.2 analysis).
  void MergeChildren(ArchiveNode* x,
                     const std::vector<const keys::KeyedNode*>& ys,
                     const VersionSet& T) {
    std::vector<std::unique_ptr<ArchiveNode>> merged;
    merged.reserve(std::max(x->children.size(), ys.size()));
    size_t i = 0, j = 0;
    while (i < x->children.size() && j < ys.size()) {
      int cmp = CompareOrder(x->children[i]->label, ys[j]->label);
      if (cmp == 0) {
        // (a) corresponding nodes: recursively merge.
        Merge(x->children[i].get(), *ys[j], T);
        merged.push_back(std::move(x->children[i]));
        ++i;
        ++j;
      } else if (cmp < 0) {
        // (b) only in the archive: terminate an inherited timestamp.
        Terminate(x->children[i].get(), T);
        merged.push_back(std::move(x->children[i]));
        ++i;
      } else {
        // (c) only in the version: attach with timestamp {i}.
        merged.push_back(Build(*ys[j], /*top=*/true));
        ++j;
      }
    }
    for (; i < x->children.size(); ++i) {
      Terminate(x->children[i].get(), T);
      merged.push_back(std::move(x->children[i]));
    }
    for (; j < ys.size(); ++j) {
      merged.push_back(Build(*ys[j], /*top=*/true));
    }
    x->children = std::move(merged);
  }

  void Merge(ArchiveNode* x, const keys::KeyedNode& y, VersionSet T) {
    if (x->stamp.has_value()) {
      x->stamp->Add(v_);
      T = *x->stamp;
    }
    if (y.is_frontier) {
      if (archive_.options_.frontier == FrontierStrategy::kWeave) {
        FrontierWeaveStep(x, y.node->children(), T, v_);
      } else {
        FrontierBucketsStep(x, y.node->children(), T, v_);
      }
      return;
    }
    std::vector<const keys::KeyedNode*> ys;
    ys.reserve(y.children.size());
    for (const auto& c : y.children) ys.push_back(&c);
    MergeChildren(x, ys, T);
  }

  /// Action (b): a node in the archive that is absent from the incoming
  /// version. Its timestamp must not include v; if it was inheriting, the
  /// (already updated) parent timestamp minus {v} is materialized.
  void Terminate(ArchiveNode* x, const VersionSet& T) {
    if (!x->stamp.has_value()) {
      x->stamp = T.Minus(VersionSet::Single(v_));
    }
  }

  /// Action (c): build a fresh archive subtree for a node that first exists
  /// at version v. Only the top carries the {v} timestamp; descendants
  /// inherit it.
  std::unique_ptr<ArchiveNode> Build(const keys::KeyedNode& y, bool top) {
    auto node = std::make_unique<ArchiveNode>();
    node->label = y.label;
    if (top) node->stamp = VersionSet::Single(v_);
    node->is_frontier = y.is_frontier;
    node->attrs = y.node->attrs();
    if (y.is_frontier) {
      ArchiveNode::Bucket bucket;
      bucket.content = CloneContent(y.node->children());
      node->buckets.push_back(std::move(bucket));
    } else {
      node->children.reserve(y.children.size());
      for (const auto& child : y.children) {
        node->children.push_back(Build(child, /*top=*/false));
      }
    }
    return node;
  }

  Archive& archive_;
  Version v_;
};

/// \brief The k-way generalization of Nested Merge behind
/// Archive::AddVersions: merges a batch of consecutive versions into the
/// archive in ONE traversal of the hierarchy.
///
/// Sequential AddVersion calls walk the whole archive once per version.
/// For a batch v1..vk the effect of those k walks factors through three
/// per-node quantities: P, the subset of batch versions in which the
/// node's parent exists; S ⊆ P, the subset in which the node itself
/// exists; and eff_old, the node's effective timestamp before the batch.
/// Replaying the sequential algorithm symbolically gives closed forms:
///
///  - a materialized timestamp becomes  stamp_old ∪ S;
///  - an inherited timestamp stays inherited iff S == P, and otherwise
///    materializes as  eff_old ∪ S  (eff_old is the parent's pre-batch
///    effective stamp);
///  - a node first seen in the batch carries  S  — unless its parent is
///    also new and S == P, in which case it inherits (mirroring Build);
///  - frontier content evolves by the per-version step with the node's
///    effective stamp at version v, which is  eff_old ∪ {v' ∈ S : v' ≤ v}.
///
/// These rules let one k-way sorted merge of the archive children with all
/// k versions' children produce an archive byte-identical to the k
/// sequential merges.
class MultiNestedMerger {
 public:
  explicit MultiNestedMerger(Archive* archive) : archive_(*archive) {}

  /// `versions`: (version number, annotated root) in ascending order.
  void Run(
      const std::vector<std::pair<Version, const keys::KeyedNode*>>& versions) {
    ArchiveNode& root = *archive_.root_;
    VersionSet eff_old = *root.stamp;
    VersionSet P;
    std::vector<ChildList> lists;
    lists.reserve(versions.size());
    for (const auto& [v, y] : versions) {
      root.stamp->Add(v);
      P.Add(v);
      lists.push_back(ChildList{v, {y}});
    }
    MergeChildrenMulti(&root, lists, P, eff_old, /*x_is_new=*/false);
  }

 private:
  /// The keyed children a node has in one batch version.
  struct ChildList {
    Version v;
    std::vector<const keys::KeyedNode*> children;
  };
  /// One node's occurrences across the batch, ascending by version.
  using Group = std::vector<std::pair<Version, const keys::KeyedNode*>>;

  /// K-way sorted merge of children(x) with children(y) for every batch
  /// version y in which x exists. `P` is that set of versions, `x_eff_old`
  /// x's effective timestamp before the batch.
  void MergeChildrenMulti(ArchiveNode* x, const std::vector<ChildList>& lists,
                          const VersionSet& P, const VersionSet& x_eff_old,
                          bool x_is_new) {
    std::vector<std::unique_ptr<ArchiveNode>> merged;
    merged.reserve(x->children.size());
    size_t i = 0;
    std::vector<size_t> js(lists.size(), 0);
    for (;;) {
      // Minimum label among the archive cursor and all version heads.
      const keys::Label* min =
          i < x->children.size() ? &x->children[i]->label : nullptr;
      for (size_t s = 0; s < lists.size(); ++s) {
        if (js[s] >= lists[s].children.size()) continue;
        const keys::Label& l = lists[s].children[js[s]]->label;
        if (min == nullptr || CompareOrder(l, *min) < 0) min = &l;
      }
      if (min == nullptr) break;

      Group group;  // versions carrying a node with the minimum label
      for (size_t s = 0; s < lists.size(); ++s) {
        if (js[s] >= lists[s].children.size()) continue;
        const keys::KeyedNode* head = lists[s].children[js[s]];
        if (CompareOrder(head->label, *min) == 0) {
          group.emplace_back(lists[s].v, head);
          ++js[s];
        }
      }
      bool in_archive = i < x->children.size() &&
                        CompareOrder(x->children[i]->label, *min) == 0;
      VersionSet S;
      for (const auto& [v, y] : group) S.Add(v);

      if (in_archive) {
        ArchiveNode* child = x->children[i].get();
        VersionSet child_eff_old;
        if (child->stamp.has_value()) {
          child_eff_old = *child->stamp;
          child->stamp->UnionWith(S);
        } else {
          child_eff_old = x_eff_old;
          if (S != P) {
            VersionSet stamped = x_eff_old;
            stamped.UnionWith(S);
            child->stamp = std::move(stamped);
          }
        }
        if (!group.empty()) {
          Descend(child, group, S, child_eff_old, /*is_new=*/false);
        }
        merged.push_back(std::move(x->children[i]));
        ++i;
      } else {
        merged.push_back(BuildMulti(group, S, P, x_is_new));
      }
    }
    x->children = std::move(merged);
  }

  /// Recurses into a node present in the `group` versions.
  void Descend(ArchiveNode* x, const Group& group, const VersionSet& S,
               const VersionSet& eff_old, bool is_new) {
    if (x->is_frontier) {
      VersionSet T = eff_old;  // becomes eff_old ∪ {v' ∈ S : v' ≤ v}
      for (const auto& [v, y] : group) {
        T.Add(v);
        if (archive_.options_.frontier == FrontierStrategy::kWeave) {
          FrontierWeaveStep(x, y->node->children(), T, v);
        } else {
          FrontierBucketsStep(x, y->node->children(), T, v);
        }
      }
      return;
    }
    std::vector<ChildList> lists;
    lists.reserve(group.size());
    for (const auto& [v, y] : group) {
      ChildList list;
      list.v = v;
      list.children.reserve(y->children.size());
      for (const auto& c : y->children) list.children.push_back(&c);
      lists.push_back(std::move(list));
    }
    MergeChildrenMulti(x, lists, S, eff_old, is_new);
  }

  /// A node absent from the archive: build it from its first occurrence and
  /// fold the later occurrences in (the batched form of action (c)).
  std::unique_ptr<ArchiveNode> BuildMulti(const Group& group,
                                          const VersionSet& S,
                                          const VersionSet& P,
                                          bool parent_is_new) {
    const keys::KeyedNode& first = *group.front().second;
    auto node = std::make_unique<ArchiveNode>();
    node->label = first.label;
    node->is_frontier = first.is_frontier;
    node->attrs = first.node->attrs();
    // A fresh subtree's descendants inherit the top timestamp exactly when
    // they exist alongside it in every batch version.
    bool inherit = parent_is_new && S == P;
    if (!inherit) node->stamp = S;
    if (node->is_frontier) {
      ArchiveNode::Bucket bucket;
      bucket.content = CloneContent(first.node->children());
      node->buckets.push_back(std::move(bucket));
      VersionSet T = VersionSet::Single(group.front().first);
      for (size_t g = 1; g < group.size(); ++g) {
        const auto& [v, y] = group[g];
        T.Add(v);
        if (archive_.options_.frontier == FrontierStrategy::kWeave) {
          FrontierWeaveStep(node.get(), y->node->children(), T, v);
        } else {
          FrontierBucketsStep(node.get(), y->node->children(), T, v);
        }
      }
    } else {
      Descend(node.get(), group, S, /*eff_old=*/VersionSet(), /*is_new=*/true);
    }
    return node;
  }

  Archive& archive_;
};

Status Archive::AddVersion(const xml::Node& version_root) {
  XARCH_ASSIGN_OR_RETURN(keys::KeyedNode keyed,
                         keys::AnnotateKeys(version_root, spec_,
                                            options_.annotate));
  Version v = ++count_;
  ++merge_passes_;
  ++ingest_generation_;
  NestedMerger merger(this, v);
  merger.Run(keyed);
  return Status::OK();
}

Status Archive::AddVersions(const std::vector<const xml::Node*>& version_roots) {
  if (version_roots.empty()) return Status::OK();
  // Annotate (and thereby key-check) every document before touching the
  // archive, so a bad document in the middle leaves it unchanged.
  std::vector<keys::KeyedNode> keyed;
  keyed.reserve(version_roots.size());
  for (const xml::Node* root : version_roots) {
    if (root == nullptr) {
      return Status::InvalidArgument("null document in version batch");
    }
    XARCH_ASSIGN_OR_RETURN(keys::KeyedNode k,
                           keys::AnnotateKeys(*root, spec_, options_.annotate));
    keyed.push_back(std::move(k));
  }
  std::vector<std::pair<Version, const keys::KeyedNode*>> versions;
  versions.reserve(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    versions.emplace_back(static_cast<Version>(count_ + 1 + i), &keyed[i]);
  }
  ++merge_passes_;
  ++ingest_generation_;
  MultiNestedMerger merger(this);
  merger.Run(versions);
  count_ += static_cast<Version>(keyed.size());
  return Status::OK();
}

}  // namespace xarch::core
