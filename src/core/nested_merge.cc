#include <algorithm>

#include "core/archive.h"
#include "diff/myers.h"
#include "xml/canonical.h"
#include "xml/value.h"

namespace xarch::core {

namespace {

int CompareOrder(const keys::Label& a, const keys::Label& b) {
  if (a.fingerprint != b.fingerprint) {
    return a.fingerprint < b.fingerprint ? -1 : 1;
  }
  // Equal fingerprints: verify with the actual key values (Sec. 4.3 —
  // "every successful match between two fingerprints incurs the extra time
  // to compare their actual key values").
  return a.Compare(b);
}

bool ContentValueEqual(const std::vector<xml::NodePtr>& a,
                       const std::vector<xml::NodePtr>& b) {
  return xml::ValueEqualChildren(a, b);
}

std::vector<xml::NodePtr> CloneContent(const std::vector<xml::NodePtr>& in) {
  std::vector<xml::NodePtr> out;
  out.reserve(in.size());
  for (const auto& n : in) out.push_back(n->Clone());
  return out;
}

}  // namespace

/// Implements algorithm Nested Merge (Sec. 4.2) against an Archive.
class NestedMerger {
 public:
  NestedMerger(Archive* archive, Version v)
      : archive_(*archive), v_(v) {}

  void Run(const keys::KeyedNode& keyed_root) {
    ArchiveNode& root = *archive_.root_;
    root.stamp->Add(v_);
    const VersionSet T = *root.stamp;
    std::vector<const keys::KeyedNode*> tops = {&keyed_root};
    MergeChildren(&root, tops, T);
  }

 private:
  /// The sorted-list merge of children(x) with children(y) (the paper's
  /// XY / X' / Y' partition, computed merge-sort style as described in the
  /// Sec. 4.2 analysis).
  void MergeChildren(ArchiveNode* x,
                     const std::vector<const keys::KeyedNode*>& ys,
                     const VersionSet& T) {
    std::vector<std::unique_ptr<ArchiveNode>> merged;
    merged.reserve(std::max(x->children.size(), ys.size()));
    size_t i = 0, j = 0;
    while (i < x->children.size() && j < ys.size()) {
      int cmp = CompareOrder(x->children[i]->label, ys[j]->label);
      if (cmp == 0) {
        // (a) corresponding nodes: recursively merge.
        Merge(x->children[i].get(), *ys[j], T);
        merged.push_back(std::move(x->children[i]));
        ++i;
        ++j;
      } else if (cmp < 0) {
        // (b) only in the archive: terminate an inherited timestamp.
        Terminate(x->children[i].get(), T);
        merged.push_back(std::move(x->children[i]));
        ++i;
      } else {
        // (c) only in the version: attach with timestamp {i}.
        merged.push_back(Build(*ys[j], /*top=*/true));
        ++j;
      }
    }
    for (; i < x->children.size(); ++i) {
      Terminate(x->children[i].get(), T);
      merged.push_back(std::move(x->children[i]));
    }
    for (; j < ys.size(); ++j) {
      merged.push_back(Build(*ys[j], /*top=*/true));
    }
    x->children = std::move(merged);
  }

  void Merge(ArchiveNode* x, const keys::KeyedNode& y, VersionSet T) {
    if (x->stamp.has_value()) {
      x->stamp->Add(v_);
      T = *x->stamp;
    }
    if (y.is_frontier) {
      if (archive_.options_.frontier == FrontierStrategy::kWeave) {
        MergeFrontierWeave(x, y, T);
      } else {
        MergeFrontierBuckets(x, y, T);
      }
      return;
    }
    std::vector<const keys::KeyedNode*> ys;
    ys.reserve(y.children.size());
    for (const auto& c : y.children) ys.push_back(&c);
    MergeChildren(x, ys, T);
  }

  /// Action (b): a node in the archive that is absent from the incoming
  /// version. Its timestamp must not include v; if it was inheriting, the
  /// (already updated) parent timestamp minus {v} is materialized.
  void Terminate(ArchiveNode* x, const VersionSet& T) {
    if (!x->stamp.has_value()) {
      x->stamp = T.Minus(VersionSet::Single(v_));
    }
  }

  /// Frontier handling of the basic algorithm: whole-content alternatives.
  void MergeFrontierBuckets(ArchiveNode* x, const keys::KeyedNode& y,
                            const VersionSet& T) {
    const auto& ycontent = y.node->children();
    if (x->buckets.empty()) {
      // Loaded archives may omit an empty plain bucket.
      x->buckets.push_back(ArchiveNode::Bucket{});
    }
    bool plain = x->buckets.size() == 1 && !x->buckets[0].stamp.has_value();
    if (plain) {
      if (ContentValueEqual(x->buckets[0].content, ycontent)) return;
      // Transition to timestamped alternatives (the sal example, Fig. 4/5).
      x->buckets[0].stamp = T.Minus(VersionSet::Single(v_));
      ArchiveNode::Bucket fresh;
      fresh.stamp = VersionSet::Single(v_);
      fresh.content = CloneContent(ycontent);
      x->buckets.push_back(std::move(fresh));
      return;
    }
    for (auto& bucket : x->buckets) {
      if (bucket.stamp.has_value() &&
          ContentValueEqual(bucket.content, ycontent)) {
        bucket.stamp->Add(v_);
        return;
      }
    }
    ArchiveNode::Bucket fresh;
    fresh.stamp = VersionSet::Single(v_);
    fresh.content = CloneContent(ycontent);
    x->buckets.push_back(std::move(fresh));
  }

  /// Frontier handling under further compaction (Sec. 4.2, Fig. 10):
  /// SCCS-style per-item weave. Diffing against all woven items (dead ones
  /// included) revives identical content instead of storing it twice.
  void MergeFrontierWeave(ArchiveNode* x, const keys::KeyedNode& y,
                          const VersionSet& T) {
    // Flatten to one item per bucket.
    std::vector<ArchiveNode::Bucket> items;
    for (auto& bucket : x->buckets) {
      if (bucket.content.size() <= 1) {
        if (!bucket.content.empty()) items.push_back(std::move(bucket));
      } else {
        for (auto& n : bucket.content) {
          ArchiveNode::Bucket item;
          item.stamp = bucket.stamp;
          item.content.push_back(std::move(n));
          items.push_back(std::move(item));
        }
      }
    }
    std::vector<std::string> a_canon;
    a_canon.reserve(items.size());
    for (const auto& item : items) {
      a_canon.push_back(xml::Canonicalize(*item.content[0]));
    }
    const auto& ycontent = y.node->children();
    std::vector<std::string> b_canon;
    b_canon.reserve(ycontent.size());
    for (const auto& n : ycontent) b_canon.push_back(xml::Canonicalize(*n));

    auto hunks = diff::MyersDiff(
        a_canon.size(), b_canon.size(),
        [&](size_t i, size_t j) { return a_canon[i] == b_canon[j]; });

    std::vector<ArchiveNode::Bucket> result;
    result.reserve(items.size() + ycontent.size());
    for (const auto& h : hunks) {
      if (h.equal) {
        for (size_t k = 0; k < h.a_len; ++k) {
          ArchiveNode::Bucket item = std::move(items[h.a_pos + k]);
          if (item.stamp.has_value()) item.stamp->Add(v_);
          result.push_back(std::move(item));
        }
      } else {
        for (size_t k = 0; k < h.a_len; ++k) {
          ArchiveNode::Bucket item = std::move(items[h.a_pos + k]);
          if (!item.stamp.has_value()) {
            item.stamp = T.Minus(VersionSet::Single(v_));
          }
          result.push_back(std::move(item));
        }
        for (size_t k = 0; k < h.b_len; ++k) {
          ArchiveNode::Bucket fresh;
          fresh.stamp = VersionSet::Single(v_);
          fresh.content.push_back(ycontent[h.b_pos + k]->Clone());
          result.push_back(std::move(fresh));
        }
      }
    }
    x->buckets = std::move(result);
  }

  /// Action (c): build a fresh archive subtree for a node that first exists
  /// at version v. Only the top carries the {v} timestamp; descendants
  /// inherit it.
  std::unique_ptr<ArchiveNode> Build(const keys::KeyedNode& y, bool top) {
    auto node = std::make_unique<ArchiveNode>();
    node->label = y.label;
    if (top) node->stamp = VersionSet::Single(v_);
    node->is_frontier = y.is_frontier;
    node->attrs = y.node->attrs();
    if (y.is_frontier) {
      ArchiveNode::Bucket bucket;
      bucket.content = CloneContent(y.node->children());
      node->buckets.push_back(std::move(bucket));
    } else {
      node->children.reserve(y.children.size());
      for (const auto& child : y.children) {
        node->children.push_back(Build(child, /*top=*/false));
      }
    }
    return node;
  }

  Archive& archive_;
  Version v_;
};

Status Archive::AddVersion(const xml::Node& version_root) {
  XARCH_ASSIGN_OR_RETURN(keys::KeyedNode keyed,
                         keys::AnnotateKeys(version_root, spec_,
                                            options_.annotate));
  Version v = ++count_;
  NestedMerger merger(this, v);
  merger.Run(keyed);
  return Status::OK();
}

}  // namespace xarch::core
