#ifndef XARCH_CORE_TREE_VIEW_H_
#define XARCH_CORE_TREE_VIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/archive.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xml/serializer.h"

namespace xarch::core {

/// \brief Read-only navigation interface over an archive hierarchy.
///
/// Two storages implement it: the heap `core::Archive` (pointer-backed
/// nodes) and the flat XAR2 record arena (offset-backed nodes navigated
/// straight off a file mapping). ScanCursor, the XAQL evaluator, and the
/// history walk are written against this interface, so retrieval from a
/// mapped snapshot produces byte-identical output to the heap path without
/// materializing a single xml::Node.
///
/// NodeIds are opaque to callers — a pointer for the heap view, a record
/// index for the flat one. The hot predicates (StampContains,
/// BucketStampContains) are separate from the VersionSet-materializing
/// accessors so the scan's inner loop never allocates.
class ArchiveView {
 public:
  using NodeId = uint64_t;
  static constexpr NodeId kNoNode = ~0ull;

  virtual ~ArchiveView() = default;

  /// The virtual root ("root" in Fig. 4).
  virtual NodeId Root() const = 0;
  virtual Version version_count() const = 0;
  /// True when nodes are navigated from mapped snapshot bytes (surfaced by
  /// EXPLAIN as `mapped=true`).
  virtual bool mapped() const = 0;

  // ----------------------------------------------------------- structure
  virtual bool IsFrontier(NodeId n) const = 0;
  /// The label's tag name.
  virtual std::string_view Tag(NodeId n) const = 0;
  virtual size_t AttrCount(NodeId n) const = 0;
  virtual std::pair<std::string_view, std::string_view> Attr(
      NodeId n, size_t i) const = 0;
  virtual size_t ChildCount(NodeId n) const = 0;
  virtual NodeId Child(NodeId n, size_t i) const = 0;

  // --------------------------------------------------------------- label
  virtual size_t LabelPartCount(NodeId n) const = 0;
  /// The i-th (path, canonical value) key part, in stored (path-sorted)
  /// order.
  virtual std::pair<std::string_view, std::string_view> LabelPart(
      NodeId n, size_t i) const = 0;
  /// keys::Label::ToString rendering ("emp{fn=John, ln=Doe}").
  virtual std::string LabelString(NodeId n) const = 0;

  // -------------------------------------------------------------- stamps
  /// False when the node inherits its parent's timestamp.
  virtual bool HasStamp(NodeId n) const = 0;
  /// Requires HasStamp(n). Allocation-free membership test.
  virtual bool StampContains(NodeId n, Version v) const = 0;
  /// Requires HasStamp(n). Materializes the timestamp.
  virtual VersionSet StampValue(NodeId n) const = 0;

  // ----------------------------------------------------- frontier content
  virtual size_t BucketCount(NodeId n) const = 0;
  virtual bool BucketHasStamp(NodeId n, size_t b) const = 0;
  /// Requires BucketHasStamp(n, b).
  virtual bool BucketStampContains(NodeId n, size_t b, Version v) const = 0;
  virtual size_t BucketContentCount(NodeId n, size_t b) const = 0;
  virtual bool BucketContentIsText(NodeId n, size_t b, size_t i) const = 0;
  /// Character data of a text content node.
  virtual std::string_view BucketContentText(NodeId n, size_t b,
                                             size_t i) const = 0;
  /// Appends the XML serialization of the i-th content node of bucket b,
  /// indented at `depth`, matching xml::SerializeAppend byte for byte.
  virtual void AppendBucketContent(NodeId n, size_t b, size_t i,
                                   const xml::SerializeOptions& options,
                                   int depth, std::string* out) const = 0;

  /// The node's timestamp in effect given the parent's: its own when
  /// present, the parent's otherwise.
  VersionSet EffectiveStamp(NodeId n, const VersionSet& parent_effective) const {
    return HasStamp(n) ? StampValue(n) : parent_effective;
  }

  /// True when bucket b contributes content at version v.
  bool BucketActiveAt(NodeId n, size_t b, Version v) const {
    return !BucketHasStamp(n, b) || BucketStampContains(n, b, v);
  }
};

/// ArchiveView over heap ArchiveNodes; NodeIds are node pointers. The
/// node accessors never touch the archive, so a default-constructed
/// (archive-less) instance serves anywhere only subtree navigation is
/// needed — e.g. the legacy ScanCursor entry point.
class HeapArchiveView : public ArchiveView {
 public:
  HeapArchiveView() = default;
  explicit HeapArchiveView(const Archive* archive) : archive_(archive) {}

  static NodeId Id(const ArchiveNode& node) {
    return static_cast<NodeId>(reinterpret_cast<uintptr_t>(&node));
  }
  static const ArchiveNode& Node(NodeId id) {
    return *reinterpret_cast<const ArchiveNode*>(static_cast<uintptr_t>(id));
  }

  NodeId Root() const override { return Id(archive_->root()); }
  Version version_count() const override { return archive_->version_count(); }
  bool mapped() const override { return false; }

  bool IsFrontier(NodeId n) const override { return Node(n).is_frontier; }
  std::string_view Tag(NodeId n) const override { return Node(n).label.tag; }
  size_t AttrCount(NodeId n) const override { return Node(n).attrs.size(); }
  std::pair<std::string_view, std::string_view> Attr(
      NodeId n, size_t i) const override {
    const auto& [name, value] = Node(n).attrs[i];
    return {name, value};
  }
  size_t ChildCount(NodeId n) const override {
    return Node(n).children.size();
  }
  NodeId Child(NodeId n, size_t i) const override {
    return Id(*Node(n).children[i]);
  }

  size_t LabelPartCount(NodeId n) const override {
    return Node(n).label.parts.size();
  }
  std::pair<std::string_view, std::string_view> LabelPart(
      NodeId n, size_t i) const override {
    const keys::LabelPart& part = Node(n).label.parts[i];
    return {part.path, part.value};
  }
  std::string LabelString(NodeId n) const override {
    return Node(n).label.ToString();
  }

  bool HasStamp(NodeId n) const override {
    return Node(n).stamp.has_value();
  }
  bool StampContains(NodeId n, Version v) const override {
    return Node(n).stamp->Contains(v);
  }
  VersionSet StampValue(NodeId n) const override { return *Node(n).stamp; }

  size_t BucketCount(NodeId n) const override {
    return Node(n).buckets.size();
  }
  bool BucketHasStamp(NodeId n, size_t b) const override {
    return Node(n).buckets[b].stamp.has_value();
  }
  bool BucketStampContains(NodeId n, size_t b, Version v) const override {
    return Node(n).buckets[b].stamp->Contains(v);
  }
  size_t BucketContentCount(NodeId n, size_t b) const override {
    return Node(n).buckets[b].content.size();
  }
  bool BucketContentIsText(NodeId n, size_t b, size_t i) const override {
    return Node(n).buckets[b].content[i]->is_text();
  }
  std::string_view BucketContentText(NodeId n, size_t b,
                                     size_t i) const override {
    return Node(n).buckets[b].content[i]->text();
  }
  void AppendBucketContent(NodeId n, size_t b, size_t i,
                           const xml::SerializeOptions& options, int depth,
                           std::string* out) const override {
    xml::SerializeAppend(*Node(n).buckets[b].content[i], options, depth, out);
  }

 private:
  const Archive* archive_ = nullptr;
};

/// View-based KeyStep resolution: same matching rules as the ArchiveNode
/// overload in archive.h (plain text values match canonical "T<text>" or
/// raw stored forms). Returns kNoNode if absent.
ArchiveView::NodeId FindChildByKeyStep(const ArchiveView& view,
                                       ArchiveView::NodeId parent,
                                       const KeyStep& step);

/// View-based Archive::History: the set of versions in which the keyed
/// element identified by `path` exists. Same results and error messages as
/// Archive::History.
StatusOr<VersionSet> HistoryOverView(const ArchiveView& view,
                                     const std::vector<KeyStep>& path);

}  // namespace xarch::core

#endif  // XARCH_CORE_TREE_VIEW_H_
