#include "core/scan.h"

namespace xarch::core {

namespace {

/// Node-only heap view for the ArchiveNode entry point (never asked for
/// Root/version_count, so it needs no archive).
const HeapArchiveView& NodeOnlyHeapView() {
  static const HeapArchiveView view;
  return view;
}

}  // namespace

Status ScanCursor::Emit(std::string_view text) {
  buffer_.append(text);
  return MaybeFlush();
}

Status ScanCursor::Finish() {
  if (!buffer_.empty()) {
    XARCH_RETURN_NOT_OK(emit_(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

Status ScanCursor::MaybeFlush() {
  if (buffer_.size() < kFlushThreshold) return Status::OK();
  XARCH_RETURN_NOT_OK(emit_(buffer_));
  buffer_.clear();
  return Status::OK();
}

void ScanCursor::Indent(int depth) {
  if (options_.pretty) {
    buffer_.append(static_cast<size_t>(depth) *
                       static_cast<size_t>(options_.indent_width),
                   ' ');
  }
}

void ScanCursor::Newline() {
  if (options_.pretty) buffer_ += '\n';
}

void ScanCursor::OpenTag(const ArchiveView& view, ArchiveView::NodeId node) {
  buffer_ += '<';
  buffer_ += view.Tag(node);
  const size_t attr_count = view.AttrCount(node);
  for (size_t i = 0; i < attr_count; ++i) {
    const auto [name, value] = view.Attr(node, i);
    buffer_ += ' ';
    buffer_ += name;
    buffer_ += "=\"";
    buffer_ += xml::EscapeAttr(value);
    buffer_ += '"';
  }
}

void ScanCursor::CloseTag(const ArchiveView& view, ArchiveView::NodeId node) {
  buffer_ += "</";
  buffer_ += view.Tag(node);
  buffer_ += '>';
}

Status ScanCursor::Scan(const ArchiveView& view, ArchiveView::NodeId node,
                        Version v, int depth) {
  Indent(depth);
  OpenTag(view, node);
  if (view.IsFrontier(node)) return WriteFrontier(view, node, v, depth);
  return WriteInner(view, node, v, depth);
}

Status ScanCursor::Scan(const ArchiveNode& node, Version v, int depth) {
  return Scan(NodeOnlyHeapView(), HeapArchiveView::Id(node), v, depth);
}

Status ScanCursor::WriteInner(const ArchiveView& view,
                              ArchiveView::NodeId node, Version v, int depth) {
  const size_t child_count = view.ChildCount(node);
  if (stats_ != nullptr) stats_->naive_probes += child_count;
  // The relevant children: timestamp-tree pruned when a selector is
  // installed, per-child timestamp checks otherwise.
  std::vector<size_t> relevant;
  bool pruned = false;
  if (selector_) {
    size_t probes = 0;
    pruned = selector_(node, v, &relevant, &probes);
    if (stats_ != nullptr) stats_->tree_probes += probes;
  }
  bool any = false;
  auto write_child = [&](ArchiveView::NodeId child) -> Status {
    if (!any) {
      buffer_ += '>';
      Newline();
      any = true;
    }
    XARCH_RETURN_NOT_OK(Scan(view, child, v, depth + 1));
    return MaybeFlush();
  };
  if (pruned) {
    for (size_t child_index : relevant) {
      XARCH_RETURN_NOT_OK(write_child(view.Child(node, child_index)));
    }
  } else {
    for (size_t i = 0; i < child_count; ++i) {
      const ArchiveView::NodeId child = view.Child(node, i);
      if (view.HasStamp(child) && !view.StampContains(child, v)) continue;
      XARCH_RETURN_NOT_OK(write_child(child));
    }
  }
  if (!any) {
    buffer_ += "/>";
    Newline();
    return Status::OK();
  }
  Indent(depth);
  CloseTag(view, node);
  Newline();
  return Status::OK();
}

Status ScanCursor::WriteFrontier(const ArchiveView& view,
                                 ArchiveView::NodeId node, Version v,
                                 int depth) {
  // The version's content: all active buckets concatenated (one
  // alternative in bucket mode, the active woven segments in weave mode).
  const size_t bucket_count = view.BucketCount(node);
  bool empty = true, text_only = true;
  for (size_t b = 0; b < bucket_count; ++b) {
    if (!view.BucketActiveAt(node, b, v)) continue;
    const size_t content_count = view.BucketContentCount(node, b);
    for (size_t i = 0; i < content_count; ++i) {
      empty = false;
      if (!view.BucketContentIsText(node, b, i)) text_only = false;
    }
  }
  if (empty) {
    buffer_ += "/>";
    Newline();
    return Status::OK();
  }
  buffer_ += '>';
  if (options_.pretty && text_only) {
    // Text-only elements stay on one line (element-aligned diffs, Sec. 5).
    for (size_t b = 0; b < bucket_count; ++b) {
      if (!view.BucketActiveAt(node, b, v)) continue;
      const size_t content_count = view.BucketContentCount(node, b);
      for (size_t i = 0; i < content_count; ++i) {
        buffer_ += xml::EscapeText(view.BucketContentText(node, b, i));
      }
    }
    CloseTag(view, node);
    Newline();
    return Status::OK();
  }
  Newline();
  for (size_t b = 0; b < bucket_count; ++b) {
    if (!view.BucketActiveAt(node, b, v)) continue;
    const size_t content_count = view.BucketContentCount(node, b);
    for (size_t i = 0; i < content_count; ++i) {
      view.AppendBucketContent(node, b, i, options_, depth + 1, &buffer_);
      XARCH_RETURN_NOT_OK(MaybeFlush());
    }
  }
  Indent(depth);
  CloseTag(view, node);
  Newline();
  return Status::OK();
}

}  // namespace xarch::core
