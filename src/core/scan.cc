#include "core/scan.h"

namespace xarch::core {

namespace {

bool BucketActiveAt(const ArchiveNode::Bucket& bucket, Version v) {
  return !bucket.stamp.has_value() || bucket.stamp->Contains(v);
}

}  // namespace

Status ScanCursor::Emit(std::string_view text) {
  buffer_.append(text);
  return MaybeFlush();
}

Status ScanCursor::Finish() {
  if (!buffer_.empty()) {
    XARCH_RETURN_NOT_OK(emit_(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

Status ScanCursor::MaybeFlush() {
  if (buffer_.size() < kFlushThreshold) return Status::OK();
  XARCH_RETURN_NOT_OK(emit_(buffer_));
  buffer_.clear();
  return Status::OK();
}

void ScanCursor::Indent(int depth) {
  if (options_.pretty) {
    buffer_.append(static_cast<size_t>(depth) *
                       static_cast<size_t>(options_.indent_width),
                   ' ');
  }
}

void ScanCursor::Newline() {
  if (options_.pretty) buffer_ += '\n';
}

void ScanCursor::OpenTag(const ArchiveNode& node) {
  buffer_ += '<';
  buffer_ += node.label.tag;
  for (const auto& [name, value] : node.attrs) {
    buffer_ += ' ';
    buffer_ += name;
    buffer_ += "=\"";
    buffer_ += xml::EscapeAttr(value);
    buffer_ += '"';
  }
}

void ScanCursor::CloseTag(const ArchiveNode& node) {
  buffer_ += "</";
  buffer_ += node.label.tag;
  buffer_ += '>';
}

Status ScanCursor::Scan(const ArchiveNode& node, Version v, int depth) {
  Indent(depth);
  OpenTag(node);
  if (node.is_frontier) return WriteFrontier(node, v, depth);
  return WriteInner(node, v, depth);
}

Status ScanCursor::WriteInner(const ArchiveNode& node, Version v, int depth) {
  if (stats_ != nullptr) stats_->naive_probes += node.children.size();
  // The relevant children: timestamp-tree pruned when a selector is
  // installed, per-child timestamp checks otherwise.
  std::vector<size_t> relevant;
  bool pruned = false;
  if (selector_) {
    size_t probes = 0;
    pruned = selector_(node, v, &relevant, &probes);
    if (stats_ != nullptr) stats_->tree_probes += probes;
  }
  bool any = false;
  auto write_child = [&](const ArchiveNode& child) -> Status {
    if (!any) {
      buffer_ += '>';
      Newline();
      any = true;
    }
    XARCH_RETURN_NOT_OK(Scan(child, v, depth + 1));
    return MaybeFlush();
  };
  if (pruned) {
    for (size_t child_index : relevant) {
      XARCH_RETURN_NOT_OK(write_child(*node.children[child_index]));
    }
  } else {
    for (const auto& child : node.children) {
      if (child->stamp.has_value() && !child->stamp->Contains(v)) continue;
      XARCH_RETURN_NOT_OK(write_child(*child));
    }
  }
  if (!any) {
    buffer_ += "/>";
    Newline();
    return Status::OK();
  }
  Indent(depth);
  CloseTag(node);
  Newline();
  return Status::OK();
}

Status ScanCursor::WriteFrontier(const ArchiveNode& node, Version v,
                                 int depth) {
  // The version's content: all active buckets concatenated (one
  // alternative in bucket mode, the active woven segments in weave mode).
  bool empty = true, text_only = true;
  for (const auto& bucket : node.buckets) {
    if (!BucketActiveAt(bucket, v)) continue;
    for (const auto& n : bucket.content) {
      empty = false;
      if (!n->is_text()) text_only = false;
    }
  }
  if (empty) {
    buffer_ += "/>";
    Newline();
    return Status::OK();
  }
  buffer_ += '>';
  if (options_.pretty && text_only) {
    // Text-only elements stay on one line (element-aligned diffs, Sec. 5).
    for (const auto& bucket : node.buckets) {
      if (!BucketActiveAt(bucket, v)) continue;
      for (const auto& n : bucket.content) {
        buffer_ += xml::EscapeText(n->text());
      }
    }
    CloseTag(node);
    Newline();
    return Status::OK();
  }
  Newline();
  for (const auto& bucket : node.buckets) {
    if (!BucketActiveAt(bucket, v)) continue;
    for (const auto& n : bucket.content) {
      xml::SerializeAppend(*n, options_, depth + 1, &buffer_);
      XARCH_RETURN_NOT_OK(MaybeFlush());
    }
  }
  Indent(depth);
  CloseTag(node);
  Newline();
  return Status::OK();
}

}  // namespace xarch::core
