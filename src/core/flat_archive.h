#ifndef XARCH_CORE_FLAT_ARCHIVE_H_
#define XARCH_CORE_FLAT_ARCHIVE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/archive.h"
#include "core/tree_view.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xml/serializer.h"

namespace xarch::core {

/// \brief The XAR2 flat archive layout: the merged hierarchy as arenas of
/// fixed-width little-endian records, navigable straight off a file
/// mapping with zero per-node allocations.
///
/// Eight sections (see docs/FORMAT.md):
///
///   meta     u64 version count
///   strings  interned string table (util/hash StringInterner layout)
///   stamps   deduplicated timestamp pool: u32 count |
///            u32 interval_offsets[count+1] (cumulative, in interval
///            units) | u32 (lo, hi) pairs
///   nodes    u32 count | 48-byte records (12 u32 fields, see field
///            constants below); breadth-first, children contiguous
///   parts    u32 count | {u32 path_sid, u32 value_sid} label key parts
///   attrs    u32 count | {u32 name_sid, u32 value_sid} attributes
///   buckets  u32 count | {u32 stamp_id_plus1, u32 content_begin,
///            u32 content_count} frontier buckets
///   content  u32 count | 24-byte records (6 u32 fields) — the XML
///            forests below frontier nodes, breadth-first per bucket
///
/// Node record 0 is the virtual root and always carries its own stamp.
/// stamp ids are stored +1 so 0 can mean "inherits the parent's stamp".
/// Child records always sit after their parent (child_begin > own index),
/// which makes any navigation of validated records terminate.
class FlatArchive {
 public:
  // Node record fields (u32 each, 12 per record).
  static constexpr int kNodeTagSid = 0;
  static constexpr int kNodeStampIdPlus1 = 1;
  static constexpr int kNodePartBegin = 2;
  static constexpr int kNodePartCount = 3;
  static constexpr int kNodeAttrBegin = 4;
  static constexpr int kNodeAttrCount = 5;
  static constexpr int kNodeChildBegin = 6;
  static constexpr int kNodeChildCount = 7;
  static constexpr int kNodeBucketBegin = 8;
  static constexpr int kNodeBucketCount = 9;
  static constexpr int kNodeFlags = 10;
  static constexpr int kNodeReserved = 11;
  static constexpr int kNodeFields = 12;

  // Content record fields (u32 each, 6 per record).
  static constexpr int kContentFlags = 0;
  static constexpr int kContentSid = 1;  // tag sid (element) or text sid
  static constexpr int kContentAttrBegin = 2;
  static constexpr int kContentAttrCount = 3;
  static constexpr int kContentChildBegin = 4;
  static constexpr int kContentChildCount = 5;
  static constexpr int kContentFields = 6;

  static constexpr uint32_t kFlagFrontier = 1u << 0;
  static constexpr uint32_t kFlagText = 1u << 0;

  /// The eight flat sections, borrowed (typically views into a mapped
  /// snapshot the caller keeps alive).
  struct Sections {
    std::string_view meta, strings, stamps, nodes, parts, attrs, buckets,
        content;
  };

  /// Validates every structural invariant once — O(records), allocation-
  /// free — and attaches. After an OK Attach all accessors are in-bounds
  /// by construction; any inconsistency is kDataLoss here, never an OOB
  /// read later.
  static StatusOr<FlatArchive> Attach(const Sections& sections);

  Version version_count() const { return version_count_; }
  uint32_t node_count() const { return node_counts_[0]; }
  uint32_t part_count() const { return node_counts_[1]; }
  uint32_t attr_count() const { return node_counts_[2]; }
  uint32_t bucket_count() const { return node_counts_[3]; }
  uint32_t content_count() const { return node_counts_[4]; }
  uint32_t string_count() const { return string_count_; }
  uint32_t stamp_count() const { return stamp_count_; }

  std::string_view StringAt(uint32_t sid) const;

  uint32_t NodeField(uint32_t node, int field) const;
  uint32_t ContentField(uint32_t record, int field) const;
  uint32_t PartPathSid(uint32_t part) const;
  uint32_t PartValueSid(uint32_t part) const;
  uint32_t AttrNameSid(uint32_t attr) const;
  uint32_t AttrValueSid(uint32_t attr) const;
  uint32_t BucketStampIdPlus1(uint32_t bucket) const;
  uint32_t BucketContentBegin(uint32_t bucket) const;
  uint32_t BucketContentCount(uint32_t bucket) const;

  /// Allocation-free membership test on a pooled timestamp.
  bool StampContains(uint32_t stamp_id, Version v) const;
  /// Materializes a pooled timestamp.
  VersionSet StampAt(uint32_t stamp_id) const;

 private:
  Status AttachStrings(std::string_view section);
  Status AttachStamps(std::string_view section);

  Version version_count_ = 0;
  // nodes, parts, attrs, buckets, content record counts.
  uint32_t node_counts_[5] = {0, 0, 0, 0, 0};
  uint32_t string_count_ = 0;
  uint32_t stamp_count_ = 0;
  // Section payloads past their u32 count headers (records / offset
  // tables), borrowed from the caller's mapping.
  std::string_view nodes_, parts_, attrs_, buckets_, content_;
  std::string_view string_offsets_, string_blob_;
  std::string_view stamp_offsets_, stamp_pairs_;
};

/// ArchiveView navigating FlatArchive records; NodeIds are record indices.
class FlatArchiveView : public ArchiveView {
 public:
  explicit FlatArchiveView(const FlatArchive* archive) : a_(archive) {}

  NodeId Root() const override { return 0; }
  Version version_count() const override { return a_->version_count(); }
  bool mapped() const override { return true; }

  bool IsFrontier(NodeId n) const override;
  std::string_view Tag(NodeId n) const override;
  size_t AttrCount(NodeId n) const override;
  std::pair<std::string_view, std::string_view> Attr(
      NodeId n, size_t i) const override;
  size_t ChildCount(NodeId n) const override;
  NodeId Child(NodeId n, size_t i) const override;

  size_t LabelPartCount(NodeId n) const override;
  std::pair<std::string_view, std::string_view> LabelPart(
      NodeId n, size_t i) const override;
  std::string LabelString(NodeId n) const override;

  bool HasStamp(NodeId n) const override;
  bool StampContains(NodeId n, Version v) const override;
  VersionSet StampValue(NodeId n) const override;

  size_t BucketCount(NodeId n) const override;
  bool BucketHasStamp(NodeId n, size_t b) const override;
  bool BucketStampContains(NodeId n, size_t b, Version v) const override;
  size_t BucketContentCount(NodeId n, size_t b) const override;
  bool BucketContentIsText(NodeId n, size_t b, size_t i) const override;
  std::string_view BucketContentText(NodeId n, size_t b,
                                     size_t i) const override;
  void AppendBucketContent(NodeId n, size_t b, size_t i,
                           const xml::SerializeOptions& options, int depth,
                           std::string* out) const override;

  const FlatArchive& archive() const { return *a_; }

 private:
  uint32_t GlobalBucket(NodeId n, size_t b) const;
  uint32_t GlobalContent(NodeId n, size_t b, size_t i) const;

  const FlatArchive* a_;
};

/// xml::NodeSource over FlatArchive content records, so frontier content
/// serializes through the one generic XML writer.
class FlatContentSource : public xml::NodeSource {
 public:
  explicit FlatContentSource(const FlatArchive* archive) : a_(archive) {}

  bool IsText(Id node) const override;
  std::string_view Text(Id node) const override;
  std::string_view Tag(Id node) const override;
  size_t AttrCount(Id node) const override;
  std::pair<std::string_view, std::string_view> Attr(
      Id node, size_t i) const override;
  size_t ChildCount(Id node) const override;
  Id Child(Id node, size_t i) const override;

 private:
  const FlatArchive* a_;
};

/// \brief Builds the flat sections from a heap Archive: one breadth-first
/// walk interning strings and timestamps as it lays out the record arenas.
///
/// Index-page serialization (index/view_index.h) runs between
/// EncodeStructure() and Finish(): it maps ArchiveNode pointers to flat
/// ids via NodeIdOf and interns the timestamp-tree stamps into the shared
/// pool, so the string/stamp sections serialize once, at Finish().
class FlatArchiveEncoder {
 public:
  explicit FlatArchiveEncoder(const Archive& archive) : archive_(archive) {}

  /// Lays out nodes/parts/attrs/buckets/content. Call exactly once.
  void EncodeStructure();

  /// Dedups `stamp` into the pool, returning its id.
  uint32_t InternStamp(const VersionSet& stamp);

  /// Flat id assigned to `node` by EncodeStructure (node must belong to
  /// the encoded archive).
  uint32_t NodeIdOf(const ArchiveNode& node) const {
    return node_ids_.at(&node);
  }

  /// Nodes in flat id order.
  const std::vector<const ArchiveNode*>& node_order() const { return order_; }

  struct Sections {
    std::string meta, strings, stamps, nodes, parts, attrs, buckets, content;
  };

  /// Serializes the pools and record arenas. Call exactly once, last.
  Sections Finish();

 private:
  uint32_t EncodeContentForest(const std::vector<xml::NodePtr>& roots,
                               uint32_t* out_begin);

  const Archive& archive_;
  StringInterner interner_;
  // deque: growth must not move elements, the map holds views into them.
  std::deque<std::string> stamp_pool_;  // encoded (lo, hi) pair bytes
  std::unordered_map<std::string_view, uint32_t> stamp_ids_;
  std::vector<const ArchiveNode*> order_;
  std::unordered_map<const ArchiveNode*, uint32_t> node_ids_;
  std::vector<uint32_t> nodes_, parts_, attrs_, buckets_, content_;
};

}  // namespace xarch::core

#endif  // XARCH_CORE_FLAT_ARCHIVE_H_
