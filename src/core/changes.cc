#include "core/changes.h"

namespace xarch::core {

namespace {

class ChangeCollector {
 public:
  ChangeCollector(Version from, Version to) : from_(from), to_(to) {}

  void Walk(const ArchiveNode& node, const VersionSet& parent_effective,
            const std::string& parent_path) {
    const VersionSet& effective = node.EffectiveStamp(parent_effective);
    bool at_from = effective.Contains(from_);
    bool at_to = effective.Contains(to_);
    if (!at_from && !at_to) return;
    std::string path = parent_path + "/" + node.label.ToString();
    if (at_from != at_to) {
      // Appeared or disappeared: report the element once, outermost.
      changes_.push_back(
          Change{at_to ? Change::Kind::kInserted : Change::Kind::kDeleted,
                 path});
      return;
    }
    // Present in both versions: look for content changes below.
    if (node.is_frontier) {
      if (FrontierContentDiffers(node)) {
        changes_.push_back(Change{Change::Kind::kContentChanged, path});
      }
      return;
    }
    for (const auto& child : node.children) {
      Walk(*child, effective, path);
    }
  }

  std::vector<Change> Take() { return std::move(changes_); }

 private:
  bool FrontierContentDiffers(const ArchiveNode& node) const {
    // Content differs iff some bucket is active at exactly one of the two
    // versions. (Unstamped buckets are active whenever the node is, hence
    // active at both here.)
    for (const auto& bucket : node.buckets) {
      if (!bucket.stamp.has_value()) continue;
      if (bucket.stamp->Contains(from_) != bucket.stamp->Contains(to_)) {
        return true;
      }
    }
    return false;
  }

  Version from_, to_;
  std::vector<Change> changes_;
};

}  // namespace

StatusOr<std::vector<Change>> DescribeChanges(const Archive& archive,
                                              Version from, Version to) {
  if (from == 0 || to == 0 || from > archive.version_count() ||
      to > archive.version_count()) {
    return Status::InvalidArgument(
        "versions must be in 1-" + std::to_string(archive.version_count()));
  }
  ChangeCollector collector(from, to);
  for (const auto& child : archive.root().children) {
    collector.Walk(*child, *archive.root().stamp, "");
  }
  return collector.Take();
}

std::string FormatChanges(const std::vector<Change>& changes) {
  std::string out;
  for (const auto& change : changes) {
    switch (change.kind) {
      case Change::Kind::kInserted:
        out += "+ ";
        break;
      case Change::Kind::kDeleted:
        out += "- ";
        break;
      case Change::Kind::kContentChanged:
        out += "~ ";
        break;
    }
    out += change.path;
    out += '\n';
  }
  return out;
}

}  // namespace xarch::core
