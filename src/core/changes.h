#ifndef XARCH_CORE_CHANGES_H_
#define XARCH_CORE_CHANGES_H_

#include <string>
#include <vector>

#include "core/archive.h"

namespace xarch::core {

/// \brief Meaningful change descriptions (Sec. 1).
///
/// The paper's motivating example (Fig. 1): when two gene records swap
/// their contents, minimum-edit-distance diff "explains" the change as the
/// genes mutating their ids and names. Because the archive identifies
/// elements by key, it can instead report the semantically correct story:
/// which keyed elements appeared, disappeared, or changed content between
/// two versions.
struct Change {
  enum class Kind {
    kInserted,        ///< element exists at `to` but not at `from`
    kDeleted,         ///< element exists at `from` but not at `to`
    kContentChanged,  ///< frontier element present in both, content differs
  };
  Kind kind;
  /// Human-readable key path, e.g.
  /// "/db/dept{name=finance}/emp{fn=John, ln=Doe}/sal".
  std::string path;
};

/// Describes the difference between two archived versions as key-based
/// changes, grouped by element (not by line). Reported paths are the
/// outermost changed elements: an inserted subtree is one insertion, not
/// one per descendant.
StatusOr<std::vector<Change>> DescribeChanges(const Archive& archive,
                                              Version from, Version to);

/// Renders a change list as text, one change per line
/// ("+ /db/dept{...}", "- ...", "~ ...").
std::string FormatChanges(const std::vector<Change>& changes);

}  // namespace xarch::core

#endif  // XARCH_CORE_CHANGES_H_
