#include "core/archive.h"

namespace xarch::core {

size_t ArchiveNode::CountNodes() const {
  size_t n = 1;
  for (const auto& c : children) n += c->CountNodes();
  return n;
}

Archive::Archive(keys::KeySpecSet spec, ArchiveOptions options)
    : spec_(std::move(spec)), options_(options) {
  root_ = std::make_unique<ArchiveNode>();
  root_->label.tag = "root";
  root_->label.ComputeFingerprint(options_.annotate.fingerprint_bits);
  root_->stamp = VersionSet();
}

void Archive::AddEmptyVersion() {
  Version v = ++count_;
  ++ingest_generation_;
  VersionSet before = *root_->stamp;
  root_->stamp->Add(v);
  // Children must not inherit the new version: materialize inherited stamps.
  for (auto& child : root_->children) {
    if (!child->stamp.has_value()) child->stamp = before;
  }
}

const ArchiveNode* FindChildByKeyStep(const ArchiveNode& parent,
                                      const KeyStep& step) {
  for (const auto& child : parent.children) {
    if (child->label.tag != step.tag) continue;
    if (child->label.parts.size() != step.key.size()) continue;
    bool all_match = true;
    for (const auto& [path, text] : step.key) {
      bool found = false;
      for (const auto& part : child->label.parts) {
        if (part.path == path &&
            (part.value == text || part.value == "T" + text)) {
          found = true;
          break;
        }
      }
      if (!found) {
        all_match = false;
        break;
      }
    }
    if (all_match) return child.get();
  }
  return nullptr;
}

namespace {

bool BucketActiveAt(const ArchiveNode::Bucket& bucket, Version v) {
  return !bucket.stamp.has_value() || bucket.stamp->Contains(v);
}

xml::NodePtr Reconstruct(const ArchiveNode& node, Version v) {
  xml::NodePtr elem = xml::Node::Element(node.label.tag);
  for (const auto& [name, value] : node.attrs) elem->SetAttr(name, value);
  if (node.is_frontier) {
    for (const auto& bucket : node.buckets) {
      if (!BucketActiveAt(bucket, v)) continue;
      for (const auto& n : bucket.content) elem->AddChild(n->Clone());
    }
  } else {
    for (const auto& child : node.children) {
      if (child->stamp.has_value() && !child->stamp->Contains(v)) continue;
      elem->AddChild(Reconstruct(*child, v));
    }
  }
  return elem;
}

}  // namespace

StatusOr<xml::NodePtr> Archive::RetrieveVersion(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " is not archived (have 1-" +
                            std::to_string(count_) + ")");
  }
  for (const auto& child : root_->children) {
    if (child->stamp.has_value() && !child->stamp->Contains(v)) continue;
    return Reconstruct(*child, v);
  }
  return xml::NodePtr(nullptr);  // the database was empty at version v
}

StatusOr<VersionSet> Archive::History(const std::vector<KeyStep>& path) const {
  const ArchiveNode* node = root_.get();
  VersionSet effective = *root_->stamp;
  for (const auto& step : path) {
    if (node->is_frontier) {
      return Status::InvalidArgument(
          "history path descends below frontier node " +
          node->label.ToString());
    }
    const ArchiveNode* child = FindChildByKeyStep(*node, step);
    if (child == nullptr) {
      return Status::NotFound("no element " + step.tag + " on the given path");
    }
    effective = child->EffectiveStamp(effective);
    node = child;
  }
  return effective;
}

namespace {

Status CheckNode(const ArchiveNode& node, const VersionSet& parent_effective,
                 FrontierStrategy strategy) {
  const VersionSet& effective = node.EffectiveStamp(parent_effective);
  if (node.stamp.has_value()) {
    if (!parent_effective.IsSupersetOf(*node.stamp)) {
      return Status::Corruption(
          "timestamp of " + node.label.ToString() + " (" +
          node.stamp->ToString() + ") is not contained in its parent's (" +
          parent_effective.ToString() + ")");
    }
    if (node.stamp->empty()) {
      return Status::Corruption("empty timestamp on " + node.label.ToString());
    }
  }
  if (node.is_frontier) {
    if (!node.children.empty()) {
      return Status::Corruption("frontier node " + node.label.ToString() +
                                " has keyed children");
    }
    bool any_stamped = false, any_plain = false;
    for (const auto& bucket : node.buckets) {
      if (bucket.stamp.has_value()) {
        any_stamped = true;
        if (!effective.IsSupersetOf(*bucket.stamp)) {
          return Status::Corruption("bucket timestamp escapes node " +
                                    node.label.ToString());
        }
      } else {
        any_plain = true;
      }
    }
    if (strategy == FrontierStrategy::kBuckets) {
      // "Either they are all timestamp nodes or none of them is" (Sec. 4.2).
      if (any_stamped && any_plain) {
        return Status::Corruption("mixed stamped/plain buckets under " +
                                  node.label.ToString());
      }
      // Alternatives must be disjoint.
      for (size_t i = 0; i < node.buckets.size(); ++i) {
        for (size_t j = i + 1; j < node.buckets.size(); ++j) {
          if (node.buckets[i].stamp.has_value() &&
              node.buckets[j].stamp.has_value() &&
              !node.buckets[i]
                   .stamp->IntersectWith(*node.buckets[j].stamp)
                   .empty()) {
            return Status::Corruption("overlapping buckets under " +
                                      node.label.ToString());
          }
        }
      }
    }
  } else {
    if (!node.buckets.empty()) {
      return Status::Corruption("inner node " + node.label.ToString() +
                                " has content buckets");
    }
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) {
        const auto& prev = node.children[i - 1]->label;
        const auto& cur = node.children[i]->label;
        if (!prev.OrderBefore(cur)) {
          return Status::Corruption("children of " + node.label.ToString() +
                                    " are not strictly sorted");
        }
      }
      XARCH_RETURN_NOT_OK(CheckNode(*node.children[i], effective, strategy));
    }
  }
  return Status::OK();
}

}  // namespace

Status Archive::Check() const {
  if (!root_->stamp.has_value()) {
    return Status::Corruption("archive root has no timestamp");
  }
  if (count_ > 0 &&
      (*root_->stamp != VersionSet::Interval(1, count_))) {
    return Status::Corruption("root timestamp " + root_->stamp->ToString() +
                              " does not cover versions 1-" +
                              std::to_string(count_));
  }
  for (const auto& child : root_->children) {
    XARCH_RETURN_NOT_OK(CheckNode(*child, *root_->stamp, options_.frontier));
  }
  return Status::OK();
}

}  // namespace xarch::core
