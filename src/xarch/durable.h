#ifndef XARCH_XARCH_DURABLE_H_
#define XARCH_XARCH_DURABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "persist/log.h"
#include "util/status.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"

namespace xarch {

/// Options for OpenDurable.
struct DurableOptions {
  /// Backend to create when the directory has no snapshot yet, and whose
  /// restorer reopens an existing one.
  std::string backend = "archive";
  /// File system the snapshot and log live on; nullptr means the real disk
  /// (vfs::Vfs::Posix()). Tests point this at MemVfs or FaultVfs to run
  /// the whole recovery path in memory or under injected faults.
  vfs::Vfs* vfs = nullptr;
  /// Construction options for the fresh-create path; on reopen only the
  /// tuning knobs (extmem work dir / budgets) are consulted.
  StoreOptions store;
  /// When appended log records reach the disk. kEveryRecord (default)
  /// makes every acknowledged Append durable against OS crashes;
  /// kNever still survives process crashes (the page cache persists).
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kEveryRecord;
  /// Automatically write a snapshot and truncate the log after this many
  /// logged records (0 = only on Checkpoint()/CompactNow()). Bounds
  /// recovery replay time at the cost of periodic snapshot writes. For a
  /// sharded open this is the per-shard threshold, checked at the commit
  /// point (snapshots stay manifest-consistent).
  uint64_t snapshot_every_records = 0;
  /// Open the directory as a key-space-sharded store: K per-shard
  /// WAL+snapshot subdirectories (shard-000/..) coordinated by a
  /// store-level version MANIFEST that makes ingest atomic across shards
  /// (docs/SHARDING.md). 1 = the classic single-WAL layout; the two
  /// layouts are distinct on disk and refuse to open as each other.
  size_t shards = 1;
  /// Recovery bound, enforced when `bound_replay` is true: drop (and
  /// physically truncate) log records that would take the store past this
  /// many versions. The sharded open path sets it to the manifest's
  /// commit point so a crash between shard commits never exposes a
  /// half-applied version — a limit of 0 is a real bound there (crash
  /// during the very first batch drops everything).
  Version replay_limit = 0;
  /// Enforce `replay_limit`; false = replay the whole intact log.
  bool bound_replay = false;
};

/// \brief A Store wrapper that makes any snapshot-capable backend durable:
/// WAL-plus-snapshot in the ARIES tradition, scaled to the archiver.
///
/// The directory holds two files:
///   snapshot.xar — the last full snapshot (Store::SaveToFile container)
///   ingest.log   — checksummed records of every ingest since
///
/// Each Append/AppendBatch first applies to the wrapped in-memory store
/// and then appends one record to the log (fsync per policy) — a record is
/// logged only if it was applied, so replay cannot fail on intact records.
/// Open() restores the snapshot (when present), replays the log over it,
/// and truncates any torn tail record a crash left behind; records the
/// snapshot already covers are skipped by version number, so a crash
/// between snapshot write and log truncate never double-applies.
///
/// Checkpoint() (and CompactNow()) writes a fresh snapshot atomically and
/// resets the log, then forwards to the inner backend when it checkpoints
/// itself. SaveToFile() on a durable store snapshots the INNER backend:
/// the file reopens as a plain (non-durable) store.
class DurableStore final : public Store {
 public:
  /// Opens (creating on first use) a durable store rooted at `dir`.
  static StatusOr<std::unique_ptr<DurableStore>> Open(const std::string& dir,
                                                      DurableOptions options);

  std::string name() const override;
  Capabilities capabilities() const override;

  /// Alias for Checkpoint(): writes a fresh snapshot and truncates the
  /// ingest log (forwarding the boundary to checkpointing inner backends).
  Status CompactNow();

  /// The clean-shutdown hook: Checkpoint(), but only when the log holds
  /// records a snapshot has not absorbed — a store that is already
  /// compact is left untouched (no pointless snapshot rewrite). After an
  /// OK return the directory reopens without any WAL replay: xarchd calls
  /// this between draining its sessions and exiting 0, so a clean stop
  /// never leans on crash recovery.
  Status CheckpointIfDirty();

  /// Log records appended since the last snapshot (replay cost proxy).
  uint64_t log_records() const;

  /// The wrapped store's registry name.
  const std::string& backend() const { return backend_; }

 protected:
  Status AppendImpl(std::string_view xml_text) override;
  Status AppendBatchImpl(const std::vector<std::string_view>& texts) override;
  Status CheckpointImpl() override;
  StatusOr<std::string> RetrieveImpl(Version v) override;
  Status RetrieveToImpl(Version v, Sink& sink) override;
  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override;
  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override;
  Status QueryImpl(std::string_view query_text, Sink& sink,
                   obs::Trace* trace) override;
  Version VersionCountImpl() const override;
  StoreStats BackendStats() const override;
  std::string StoredBytesImpl() const override;
  StatusOr<std::string> SnapshotBytesImpl() const override;

 private:
  DurableStore(std::unique_ptr<Store> inner, std::string backend,
               vfs::Vfs* vfs, std::string snapshot_path,
               persist::IngestLogWriter log,
               uint64_t snapshot_every_records);

  /// Snapshot + log reset; caller holds the exclusive lock (or is Open).
  Status WriteSnapshotLocked();

  /// Shared ingest tail: append the record, bump the counter, and write
  /// an auto-snapshot when the policy threshold is reached.
  Status LogAndMaybeSnapshotLocked(const persist::LogRecord& record);

  std::unique_ptr<Store> inner_;
  std::string backend_;
  vfs::Vfs* vfs_;
  std::string snapshot_path_;
  persist::IngestLogWriter log_;
  uint64_t snapshot_every_records_;
  /// Log records not yet folded into a snapshot (replay cost). Atomic so
  /// log_records() may be read without the store lock.
  std::atomic<uint64_t> records_since_snapshot_{0};
};

/// Opens a durable store rooted at directory `dir` (created when absent).
/// With DurableOptions::shards == 1, a `Store`-typed convenience over
/// DurableStore::Open; with shards > 1, the sharded layout — a version
/// MANIFEST plus one DurableStore per shard directory, wired into a
/// ShardedStore whose commit hook writes the manifest before any batch
/// becomes visible or any shard snapshot can absorb it.
StatusOr<std::unique_ptr<Store>> OpenDurable(const std::string& dir,
                                             DurableOptions options = {});

/// Checkpoints `store` if (and only if) it has WAL records no snapshot has
/// absorbed: DurableStore::CheckpointIfDirty through either layout —
/// sharded stores checkpoint every dirty shard at a manifest-consistent
/// point. A no-op for stores the durable layer does not manage.
Status CheckpointDurableIfDirty(Store& store);

}  // namespace xarch

#endif  // XARCH_XARCH_DURABLE_H_
