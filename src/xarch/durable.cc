#include "xarch/durable.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "keys/key_spec.h"
#include "obs/metrics.h"
#include "persist/container.h"
#include "persist/crc32c.h"
#include "persist/wire.h"
#include "vfs/vfs.h"
#include "xarch/sharded_store.h"

namespace xarch {

namespace {

constexpr const char* kSnapshotFile = "snapshot.xar";
constexpr const char* kLogFile = "ingest.log";
constexpr const char* kManifestFile = "MANIFEST";

Status ApplyRecord(Store& store, const persist::LogRecord& record) {
  switch (record.type) {
    case persist::LogRecord::kAppend:
      if (record.texts.size() != 1) {
        return Status::DataLoss("append log record carries " +
                                std::to_string(record.texts.size()) +
                                " documents");
      }
      return store.Append(record.texts[0]);
    case persist::LogRecord::kBatch: {
      if (store.Has(kBatchIngest)) {
        std::vector<std::string_view> views(record.texts.begin(),
                                            record.texts.end());
        return store.AppendBatch(views);
      }
      for (const std::string& text : record.texts) {
        XARCH_RETURN_NOT_OK(store.Append(text));
      }
      return Status::OK();
    }
    case persist::LogRecord::kCheckpoint:
      // Re-forcing a boundary that is already pending is a no-op, which
      // is what makes checkpoint replay idempotent.
      return store.Has(kCheckpoint) ? store.Checkpoint() : Status::OK();
  }
  return Status::DataLoss("unknown log record type");
}

// ------------------------------------------------- sharded layout support

/// The store-level version manifest of a sharded durable directory: the
/// single commit point that makes an ingest atomic across shards, plus
/// everything needed to rebuild the router before any shard is opened.
/// Replaced atomically (temp + fsync + rename) on every commit.
struct ShardManifest {
  uint32_t shards = 0;
  Version committed = 0;
  std::string backend;
  int fingerprint_bits = 64;
  bool sort_children = true;
  std::string spec_text;
};

constexpr char kManifestMagic[4] = {'X', 'S', 'M', 'F'};
constexpr uint32_t kManifestFormatVersion = 1;

std::string EncodeManifest(const ShardManifest& manifest) {
  std::string body;
  persist::PutU32(kManifestFormatVersion, &body);
  persist::PutU32(manifest.shards, &body);
  persist::PutU64(manifest.committed, &body);
  persist::PutBytes(manifest.backend, &body);
  persist::PutU32(static_cast<uint32_t>(manifest.fingerprint_bits), &body);
  persist::PutU8(manifest.sort_children ? 1 : 0, &body);
  persist::PutBytes(manifest.spec_text, &body);
  std::string out(kManifestMagic, 4);
  persist::PutU32(persist::MaskCrc(persist::Crc32c(body)), &out);
  out += body;
  return out;
}

StatusOr<ShardManifest> DecodeManifest(std::string_view bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kManifestMagic, 4) != 0) {
    return Status::DataLoss("not a shard manifest (bad magic)");
  }
  persist::Cursor frame(bytes.substr(4));
  uint32_t masked = 0;
  XARCH_RETURN_NOT_OK(frame.ReadU32(&masked));
  std::string_view body = bytes.substr(8);
  if (persist::Crc32c(body) != persist::UnmaskCrc(masked)) {
    return Status::DataLoss("shard manifest checksum mismatch");
  }
  persist::Cursor cursor(body);
  uint32_t format = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&format));
  if (format != kManifestFormatVersion) {
    return Status::DataLoss("unsupported shard manifest format " +
                            std::to_string(format));
  }
  ShardManifest manifest;
  uint64_t committed = 0;
  uint32_t fingerprint_bits = 0;
  uint8_t sort_children = 0;
  std::string_view backend, spec_text;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&manifest.shards));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&committed));
  XARCH_RETURN_NOT_OK(cursor.ReadBytes(&backend));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&fingerprint_bits));
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&sort_children));
  XARCH_RETURN_NOT_OK(cursor.ReadBytes(&spec_text));
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  manifest.committed = static_cast<Version>(committed);
  manifest.backend = std::string(backend);
  manifest.fingerprint_bits = static_cast<int>(fingerprint_bits);
  manifest.sort_children = sort_children != 0;
  manifest.spec_text = std::string(spec_text);
  if (manifest.shards < 1 || manifest.shards > ShardRouter::kMaxShards ||
      manifest.fingerprint_bits < 1 || manifest.fingerprint_bits > 64) {
    return Status::DataLoss("shard manifest fields out of range");
  }
  return manifest;
}

std::string ShardDirName(size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03zu", shard);
  return buf;
}

std::string SpecToTextLines(const keys::KeySpecSet& spec) {
  std::string out;
  for (const auto& key : spec.keys()) {
    out += key.ToString();
    out += '\n';
  }
  return out;
}

/// Construction/tuning options for one shard's inner store, derived from
/// the caller's options and the manifest (which is authoritative for the
/// spec and fingerprint parameters).
StatusOr<StoreOptions> ShardStoreTuning(const DurableOptions& options,
                                        const ShardManifest& manifest,
                                        size_t shard) {
  StoreOptions out;
  auto spec = keys::ParseKeySpecSet(manifest.spec_text);
  if (!spec.ok()) {
    return Status::DataLoss("shard manifest key specification does not "
                            "parse: " + spec.status().message());
  }
  out.spec = std::move(*spec);
  out.archive = options.store.archive;
  out.archive.annotate.fingerprint_bits = manifest.fingerprint_bits;
  out.archive.annotate.sort_children = manifest.sort_children;
  out.checkpoint_every = options.store.checkpoint_every;
  out.extmem = options.store.extmem;
  if (options.store.extmem.work_dir !=
      extmem::ExternalArchiver::Options{}.work_dir) {
    out.extmem.work_dir =
        options.store.extmem.work_dir + "-shard" + std::to_string(shard);
  }
  out.inner = options.store.inner;
  out.use_index = options.store.use_index;
  out.shards = 1;
  out.snapshot_format = options.store.snapshot_format;
  return out;
}

/// The sharded durable layout: dir/MANIFEST plus one complete DurableStore
/// per shard directory, wired into a ShardedStore whose commit hook writes
/// the manifest — ingest order per shard is apply → WAL record → (all
/// shards done) manifest → visible, so the manifest never names a version
/// any shard lacks a durable record for, and reopen clamps every shard's
/// replay to the manifest.
StatusOr<std::unique_ptr<Store>> OpenShardedDurable(const std::string& dir,
                                                    DurableOptions options) {
  vfs::Vfs* vfs = options.vfs != nullptr ? options.vfs : vfs::Vfs::Posix();
  XARCH_RETURN_NOT_OK(vfs->CreateDirs(dir));
  if (options.backend == "sharded") {
    return Status::InvalidArgument(
        "DurableOptions::backend must be the per-shard backend, not "
        "\"sharded\" (sharding comes from DurableOptions::shards)");
  }
  const std::string manifest_path = vfs::Join(dir, kManifestFile);
  XARCH_ASSIGN_OR_RETURN(bool legacy,
                         vfs->Exists(vfs::Join(dir, kSnapshotFile)));
  if (legacy) {
    return Status::InvalidArgument(
        dir + " holds an unsharded durable store (snapshot.xar); open it "
        "with shards=1");
  }

  ShardManifest manifest;
  XARCH_ASSIGN_OR_RETURN(bool have_manifest, vfs->Exists(manifest_path));
  if (have_manifest) {
    XARCH_ASSIGN_OR_RETURN(std::string bytes, vfs->ReadFile(manifest_path));
    XARCH_ASSIGN_OR_RETURN(manifest, DecodeManifest(bytes));
    if (manifest.shards != options.shards) {
      return Status::InvalidArgument(
          dir + " is sharded " + std::to_string(manifest.shards) +
          " ways, not " + std::to_string(options.shards) +
          " (the shard count is fixed at creation)");
    }
    if (manifest.backend != options.backend) {
      return Status::InvalidArgument(
          "sharded durable store at " + dir +
          " was created with backend \"" + manifest.backend + "\", not \"" +
          options.backend + "\"");
    }
  } else {
    if (options.store.spec.size() == 0) {
      return Status::InvalidArgument(
          "first open of a sharded durable store needs StoreOptions::spec "
          "(top-level keys are the partitioning domain)");
    }
    manifest.shards = static_cast<uint32_t>(options.shards);
    manifest.committed = 0;
    manifest.backend = options.backend;
    manifest.fingerprint_bits = options.store.archive.annotate.fingerprint_bits;
    manifest.sort_children = options.store.archive.annotate.sort_children;
    manifest.spec_text = SpecToTextLines(options.store.spec);
    XARCH_RETURN_NOT_OK(vfs::AtomicWriteFile(
        *vfs, manifest_path, EncodeManifest(manifest), /*sync=*/true));
  }

  auto router_spec = keys::ParseKeySpecSet(manifest.spec_text);
  if (!router_spec.ok()) {
    return Status::DataLoss("shard manifest key specification does not "
                            "parse: " + router_spec.status().message());
  }
  keys::AnnotateOptions annotate;
  annotate.fingerprint_bits = manifest.fingerprint_bits;
  annotate.sort_children = manifest.sort_children;
  XARCH_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Make(std::move(*router_spec), manifest.shards, annotate));

  std::vector<std::unique_ptr<Store>> shards;
  std::vector<DurableStore*> shard_durables;
  shards.reserve(manifest.shards);
  shard_durables.reserve(manifest.shards);
  for (uint32_t s = 0; s < manifest.shards; ++s) {
    DurableOptions shard_options;
    shard_options.backend = options.backend;
    shard_options.vfs = options.vfs;
    XARCH_ASSIGN_OR_RETURN(shard_options.store,
                           ShardStoreTuning(options, manifest, s));
    shard_options.fsync = options.fsync;
    // Shard snapshots are coordinated by the commit hook below, never by
    // the per-shard record counter: an autonomous snapshot could capture
    // a version the manifest has not committed, which recovery could not
    // then roll back.
    shard_options.snapshot_every_records = 0;
    shard_options.replay_limit = manifest.committed;
    shard_options.bound_replay = true;
    XARCH_ASSIGN_OR_RETURN(
        std::unique_ptr<DurableStore> shard,
        DurableStore::Open(vfs::Join(dir, ShardDirName(s)),
                           std::move(shard_options)));
    shard_durables.push_back(shard.get());
    shards.push_back(std::move(shard));
  }

  ShardedStoreOptions sharded;
  const uint64_t snapshot_every = options.snapshot_every_records;
  sharded.commit = [vfs, manifest_path, manifest, shard_durables,
                    snapshot_every](Version committed) mutable -> Status {
    manifest.committed = committed;
    XARCH_RETURN_NOT_OK(vfs::AtomicWriteFile(
        *vfs, manifest_path, EncodeManifest(manifest), /*sync=*/true));
    // With the manifest on disk every shard's WAL tail is committed, so
    // shard snapshots taken now are manifest-consistent.
    if (snapshot_every > 0) {
      for (DurableStore* shard : shard_durables) {
        if (shard->log_records() >= snapshot_every) {
          XARCH_RETURN_NOT_OK(shard->CheckpointIfDirty());
        }
      }
    }
    return Status::OK();
  };
  XARCH_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStore> store,
      ShardedStore::Make(std::move(router), std::move(shards),
                         manifest.committed, std::move(sharded)));
  return std::unique_ptr<Store>(std::move(store));
}

}  // namespace

DurableStore::DurableStore(std::unique_ptr<Store> inner, std::string backend,
                           vfs::Vfs* vfs, std::string snapshot_path,
                           persist::IngestLogWriter log,
                           uint64_t snapshot_every_records)
    : inner_(std::move(inner)),
      backend_(std::move(backend)),
      vfs_(vfs),
      snapshot_path_(std::move(snapshot_path)),
      log_(std::move(log)),
      snapshot_every_records_(snapshot_every_records) {}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, DurableOptions options) {
  vfs::Vfs* vfs = options.vfs != nullptr ? options.vfs : vfs::Vfs::Posix();
  XARCH_RETURN_NOT_OK(vfs->CreateDirs(dir));
  const std::string snapshot_path = vfs::Join(dir, kSnapshotFile);
  const std::string log_path = vfs::Join(dir, kLogFile);

  // 1. The base store: the last snapshot when one exists, else fresh.
  std::unique_ptr<Store> inner;
  XARCH_ASSIGN_OR_RETURN(bool have_snapshot, vfs->Exists(snapshot_path));
  if (have_snapshot) {
    XARCH_ASSIGN_OR_RETURN(std::string bytes, vfs->ReadFile(snapshot_path));
    // Format-agnostic probe: the snapshot may be XAR1 or XAR2 depending on
    // the inner backend's snapshot_format at the last checkpoint.
    XARCH_ASSIGN_OR_RETURN(std::string saved_backend,
                           persist::ReadSnapshotBackend(bytes));
    if (saved_backend != options.backend) {
      return Status::InvalidArgument(
          "durable store at " + dir + " was created with backend \"" +
          std::string(saved_backend) + "\", not \"" + options.backend + "\"");
    }
    XARCH_ASSIGN_OR_RETURN(
        inner, StoreRegistry::Global().OpenFromBytes(
                   bytes, std::move(options.store)));
  } else {
    XARCH_ASSIGN_OR_RETURN(
        inner,
        StoreRegistry::Create(options.backend, std::move(options.store)));
  }

  // 2. Replay the ingest log over it, dropping any torn tail and (when a
  // replay limit is set) the record suffix past the commit point.
  XARCH_ASSIGN_OR_RETURN(persist::LogReplay replay,
                         persist::ReadIngestLog(vfs, log_path));
  size_t kept_records = 0;
  uint64_t kept_bytes = persist::kIngestLogHeaderBytes;
  bool clamped = false;
  for (const persist::LogRecord& record : replay.records) {
    if (options.bound_replay) {
      // A checkpoint marker carries the version the NEXT ingest would
      // produce, so the marker sealing the limit itself is kept.
      const Version past = record.type == persist::LogRecord::kCheckpoint
                               ? options.replay_limit + 1
                               : options.replay_limit;
      if (record.first_version > past) {
        // Applied to this shard but never committed store-wide (a crash
        // between shard commits): not acknowledged, so drop it — and the
        // rest of the log with it, which cannot skip version numbers.
        clamped = true;
        break;
      }
    }
    ++kept_records;
    kept_bytes = record.end_offset;
    if (record.first_version <= inner->version_count()) {
      // Already inside the snapshot (crash before log truncate). This
      // covers checkpoint markers too: a marker at first_version <= count
      // forced a boundary the snapshot has since captured — re-applying
      // it would start a spurious segment.
      continue;
    }
    if (record.first_version != inner->version_count() + 1) {
      // A gap means a version was applied but never reached the log
      // (e.g. a transient log-write failure): replaying the later
      // records would silently renumber them. Refuse instead.
      return Status::DataLoss(
          "ingest log gap: next record is for version " +
          std::to_string(record.first_version) + " but the store holds " +
          std::to_string(inner->version_count()) + " versions");
    }
    Status applied = ApplyRecord(*inner, record);
    if (!applied.ok()) {
      return Status::DataLoss(
          "ingest log record for version " +
          std::to_string(record.first_version) +
          " does not re-apply: " + applied.ToString());
    }
  }
  if (clamped) {
    XARCH_RETURN_NOT_OK(vfs->Truncate(log_path, kept_bytes));
  } else if (replay.torn_tail) {
    XARCH_RETURN_NOT_OK(vfs->Truncate(log_path, replay.valid_bytes));
  }

  // 3. Reattach the log for new ingest.
  XARCH_ASSIGN_OR_RETURN(persist::IngestLogWriter log,
                         persist::IngestLogWriter::Open(vfs, log_path,
                                                        options.fsync));
  auto store = std::unique_ptr<DurableStore>(new DurableStore(
      std::move(inner), options.backend, vfs, snapshot_path, std::move(log),
      options.snapshot_every_records));
  store->records_since_snapshot_.store(kept_records,
                                       std::memory_order_relaxed);
  return store;
}

std::string DurableStore::name() const {
  return "durable(" + inner_->name() + ")";
}

Capabilities DurableStore::capabilities() const {
  // Checkpoint() is always meaningful here: it compacts the log into a
  // fresh snapshot (and forwards when the inner backend checkpoints too).
  return inner_->capabilities() | kCheckpoint;
}

uint64_t DurableStore::log_records() const {
  return records_since_snapshot_.load(std::memory_order_relaxed);
}

Status DurableStore::WriteSnapshotLocked() {
  static obs::Counter* checkpoints = obs::Registry::Default().GetCounter(
      "xarch_checkpoint_total", "",
      "Durable-store snapshot+log-reset checkpoints");
  static obs::Counter* checkpoint_bytes = obs::Registry::Default().GetCounter(
      "xarch_checkpoint_bytes_total", "",
      "Snapshot bytes written by durable-store checkpoints");
  static obs::Histogram* checkpoint_us = obs::Registry::Default().GetHistogram(
      "xarch_checkpoint_duration_us", "",
      "Durable-store checkpoint latency (microseconds)");
  const uint64_t start_us = obs::MonotonicMicros();
  XARCH_ASSIGN_OR_RETURN(std::string bytes, inner_->SaveToBytes());
  XARCH_RETURN_NOT_OK(
      vfs::AtomicWriteFile(*vfs_, snapshot_path_, bytes, /*sync=*/true));
  XARCH_RETURN_NOT_OK(log_.Reset());
  records_since_snapshot_.store(0, std::memory_order_relaxed);
  checkpoints->Increment();
  checkpoint_bytes->Add(bytes.size());
  checkpoint_us->Record(obs::MonotonicMicros() - start_us);
  return Status::OK();
}

Status DurableStore::LogAndMaybeSnapshotLocked(
    const persist::LogRecord& record) {
  XARCH_RETURN_NOT_OK(log_.Append(record));
  records_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
  if (snapshot_every_records_ > 0 &&
      records_since_snapshot_.load(std::memory_order_relaxed) >=
          snapshot_every_records_) {
    XARCH_RETURN_NOT_OK(WriteSnapshotLocked());
  }
  return Status::OK();
}

Status DurableStore::AppendImpl(std::string_view xml_text) {
  // Apply first, log second: only ingests the backend accepted are made
  // durable, so recovery replay cannot fail on an intact record.
  XARCH_RETURN_NOT_OK(inner_->Append(xml_text));
  persist::LogRecord record;
  record.type = persist::LogRecord::kAppend;
  record.first_version = inner_->version_count();
  record.texts.emplace_back(xml_text);
  return LogAndMaybeSnapshotLocked(record);
}

Status DurableStore::AppendBatchImpl(
    const std::vector<std::string_view>& texts) {
  if (texts.empty()) return Status::OK();
  XARCH_RETURN_NOT_OK(inner_->AppendBatch(texts));
  persist::LogRecord record;
  record.type = persist::LogRecord::kBatch;
  record.first_version =
      inner_->version_count() - static_cast<Version>(texts.size()) + 1;
  record.texts.assign(texts.begin(), texts.end());
  return LogAndMaybeSnapshotLocked(record);
}

Status DurableStore::CheckpointImpl() {
  if (inner_->Has(kCheckpoint)) {
    XARCH_RETURN_NOT_OK(inner_->Checkpoint());
    // Make the forced boundary durable even if the snapshot below fails.
    persist::LogRecord record;
    record.type = persist::LogRecord::kCheckpoint;
    record.first_version = inner_->version_count() + 1;
    XARCH_RETURN_NOT_OK(log_.Append(record));
  }
  return WriteSnapshotLocked();
}

Status DurableStore::CompactNow() { return Checkpoint(); }

Status DurableStore::CheckpointIfDirty() {
  // Racing ingests may land between the check and the checkpoint; the
  // checkpoint itself runs under the exclusive lock, so the worst case is
  // a snapshot that was not strictly necessary — never a lost record.
  if (log_records() == 0) return Status::OK();
  return Checkpoint();
}

StatusOr<std::string> DurableStore::RetrieveImpl(Version v) {
  return inner_->Retrieve(v);
}

Status DurableStore::RetrieveToImpl(Version v, Sink& sink) {
  return inner_->RetrieveTo(v, sink);
}

StatusOr<VersionSet> DurableStore::HistoryImpl(
    const std::vector<core::KeyStep>& path) {
  return inner_->History(path);
}

StatusOr<std::vector<core::Change>> DurableStore::DiffVersionsImpl(
    Version from, Version to) {
  return inner_->DiffVersions(from, to);
}

Status DurableStore::QueryImpl(std::string_view query_text, Sink& sink,
                               obs::Trace* trace) {
  return inner_->Query(query_text, sink, trace);
}

Version DurableStore::VersionCountImpl() const {
  return inner_->version_count();
}

StoreStats DurableStore::BackendStats() const { return inner_->Stats(); }

std::string DurableStore::StoredBytesImpl() const {
  return inner_->StoredBytes();
}

StatusOr<std::string> DurableStore::SnapshotBytesImpl() const {
  // A durable store's snapshot IS its inner store's: SaveToFile output
  // reopens as a plain (non-durable) backend.
  return inner_->SaveToBytes();
}

StatusOr<std::unique_ptr<Store>> OpenDurable(const std::string& dir,
                                             DurableOptions options) {
  if (options.shards == 0 || options.shards > ShardRouter::kMaxShards) {
    return Status::InvalidArgument(
        "DurableOptions::shards must be in 1-" +
        std::to_string(ShardRouter::kMaxShards) + ", got " +
        std::to_string(options.shards));
  }
  if (options.shards > 1) return OpenShardedDurable(dir, std::move(options));
  vfs::Vfs* vfs = options.vfs != nullptr ? options.vfs : vfs::Vfs::Posix();
  XARCH_ASSIGN_OR_RETURN(bool sharded,
                         vfs->Exists(vfs::Join(dir, kManifestFile)));
  if (sharded) {
    return Status::InvalidArgument(
        dir + " holds a sharded durable store (MANIFEST); open it with its "
        "shard count");
  }
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                         DurableStore::Open(dir, std::move(options)));
  return std::unique_ptr<Store>(std::move(store));
}

Status CheckpointDurableIfDirty(Store& store) {
  if (auto* durable = dynamic_cast<DurableStore*>(&store)) {
    return durable->CheckpointIfDirty();
  }
  if (auto* sharded = dynamic_cast<ShardedStore*>(&store)) {
    return sharded->WithShardsExclusive([](Store& shard) {
      auto* durable = dynamic_cast<DurableStore*>(&shard);
      return durable != nullptr ? durable->CheckpointIfDirty() : Status::OK();
    });
  }
  return Status::OK();
}

}  // namespace xarch
