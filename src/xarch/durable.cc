#include "xarch/durable.h"

#include <utility>

#include "obs/metrics.h"
#include "persist/container.h"
#include "vfs/vfs.h"

namespace xarch {

namespace {

constexpr const char* kSnapshotFile = "snapshot.xar";
constexpr const char* kLogFile = "ingest.log";

Status ApplyRecord(Store& store, const persist::LogRecord& record) {
  switch (record.type) {
    case persist::LogRecord::kAppend:
      if (record.texts.size() != 1) {
        return Status::DataLoss("append log record carries " +
                                std::to_string(record.texts.size()) +
                                " documents");
      }
      return store.Append(record.texts[0]);
    case persist::LogRecord::kBatch: {
      if (store.Has(kBatchIngest)) {
        std::vector<std::string_view> views(record.texts.begin(),
                                            record.texts.end());
        return store.AppendBatch(views);
      }
      for (const std::string& text : record.texts) {
        XARCH_RETURN_NOT_OK(store.Append(text));
      }
      return Status::OK();
    }
    case persist::LogRecord::kCheckpoint:
      // Re-forcing a boundary that is already pending is a no-op, which
      // is what makes checkpoint replay idempotent.
      return store.Has(kCheckpoint) ? store.Checkpoint() : Status::OK();
  }
  return Status::DataLoss("unknown log record type");
}

}  // namespace

DurableStore::DurableStore(std::unique_ptr<Store> inner, std::string backend,
                           vfs::Vfs* vfs, std::string snapshot_path,
                           persist::IngestLogWriter log,
                           uint64_t snapshot_every_records)
    : inner_(std::move(inner)),
      backend_(std::move(backend)),
      vfs_(vfs),
      snapshot_path_(std::move(snapshot_path)),
      log_(std::move(log)),
      snapshot_every_records_(snapshot_every_records) {}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, DurableOptions options) {
  vfs::Vfs* vfs = options.vfs != nullptr ? options.vfs : vfs::Vfs::Posix();
  XARCH_RETURN_NOT_OK(vfs->CreateDirs(dir));
  const std::string snapshot_path = vfs::Join(dir, kSnapshotFile);
  const std::string log_path = vfs::Join(dir, kLogFile);

  // 1. The base store: the last snapshot when one exists, else fresh.
  std::unique_ptr<Store> inner;
  XARCH_ASSIGN_OR_RETURN(bool have_snapshot, vfs->Exists(snapshot_path));
  if (have_snapshot) {
    XARCH_ASSIGN_OR_RETURN(std::string bytes, vfs->ReadFile(snapshot_path));
    XARCH_ASSIGN_OR_RETURN(persist::SnapshotReader probe,
                           persist::SnapshotReader::Parse(bytes));
    XARCH_ASSIGN_OR_RETURN(std::string_view saved_backend,
                           probe.Section("backend"));
    if (saved_backend != options.backend) {
      return Status::InvalidArgument(
          "durable store at " + dir + " was created with backend \"" +
          std::string(saved_backend) + "\", not \"" + options.backend + "\"");
    }
    XARCH_ASSIGN_OR_RETURN(
        inner, StoreRegistry::Global().OpenFromBytes(
                   bytes, std::move(options.store)));
  } else {
    XARCH_ASSIGN_OR_RETURN(
        inner,
        StoreRegistry::Create(options.backend, std::move(options.store)));
  }

  // 2. Replay the ingest log over it, dropping any torn tail.
  XARCH_ASSIGN_OR_RETURN(persist::LogReplay replay,
                         persist::ReadIngestLog(vfs, log_path));
  for (const persist::LogRecord& record : replay.records) {
    if (record.first_version <= inner->version_count()) {
      // Already inside the snapshot (crash before log truncate). This
      // covers checkpoint markers too: a marker at first_version <= count
      // forced a boundary the snapshot has since captured — re-applying
      // it would start a spurious segment.
      continue;
    }
    if (record.first_version != inner->version_count() + 1) {
      // A gap means a version was applied but never reached the log
      // (e.g. a transient log-write failure): replaying the later
      // records would silently renumber them. Refuse instead.
      return Status::DataLoss(
          "ingest log gap: next record is for version " +
          std::to_string(record.first_version) + " but the store holds " +
          std::to_string(inner->version_count()) + " versions");
    }
    Status applied = ApplyRecord(*inner, record);
    if (!applied.ok()) {
      return Status::DataLoss(
          "ingest log record for version " +
          std::to_string(record.first_version) +
          " does not re-apply: " + applied.ToString());
    }
  }
  if (replay.torn_tail) {
    XARCH_RETURN_NOT_OK(vfs->Truncate(log_path, replay.valid_bytes));
  }

  // 3. Reattach the log for new ingest.
  XARCH_ASSIGN_OR_RETURN(persist::IngestLogWriter log,
                         persist::IngestLogWriter::Open(vfs, log_path,
                                                        options.fsync));
  auto store = std::unique_ptr<DurableStore>(new DurableStore(
      std::move(inner), options.backend, vfs, snapshot_path, std::move(log),
      options.snapshot_every_records));
  store->records_since_snapshot_.store(replay.records.size(),
                                       std::memory_order_relaxed);
  return store;
}

std::string DurableStore::name() const {
  return "durable(" + inner_->name() + ")";
}

Capabilities DurableStore::capabilities() const {
  // Checkpoint() is always meaningful here: it compacts the log into a
  // fresh snapshot (and forwards when the inner backend checkpoints too).
  return inner_->capabilities() | kCheckpoint;
}

uint64_t DurableStore::log_records() const {
  return records_since_snapshot_.load(std::memory_order_relaxed);
}

Status DurableStore::WriteSnapshotLocked() {
  static obs::Counter* checkpoints = obs::Registry::Default().GetCounter(
      "xarch_checkpoint_total", "",
      "Durable-store snapshot+log-reset checkpoints");
  static obs::Counter* checkpoint_bytes = obs::Registry::Default().GetCounter(
      "xarch_checkpoint_bytes_total", "",
      "Snapshot bytes written by durable-store checkpoints");
  static obs::Histogram* checkpoint_us = obs::Registry::Default().GetHistogram(
      "xarch_checkpoint_duration_us", "",
      "Durable-store checkpoint latency (microseconds)");
  const uint64_t start_us = obs::MonotonicMicros();
  XARCH_ASSIGN_OR_RETURN(std::string bytes, inner_->SaveToBytes());
  XARCH_RETURN_NOT_OK(
      vfs::AtomicWriteFile(*vfs_, snapshot_path_, bytes, /*sync=*/true));
  XARCH_RETURN_NOT_OK(log_.Reset());
  records_since_snapshot_.store(0, std::memory_order_relaxed);
  checkpoints->Increment();
  checkpoint_bytes->Add(bytes.size());
  checkpoint_us->Record(obs::MonotonicMicros() - start_us);
  return Status::OK();
}

Status DurableStore::LogAndMaybeSnapshotLocked(
    const persist::LogRecord& record) {
  XARCH_RETURN_NOT_OK(log_.Append(record));
  records_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
  if (snapshot_every_records_ > 0 &&
      records_since_snapshot_.load(std::memory_order_relaxed) >=
          snapshot_every_records_) {
    XARCH_RETURN_NOT_OK(WriteSnapshotLocked());
  }
  return Status::OK();
}

Status DurableStore::AppendImpl(std::string_view xml_text) {
  // Apply first, log second: only ingests the backend accepted are made
  // durable, so recovery replay cannot fail on an intact record.
  XARCH_RETURN_NOT_OK(inner_->Append(xml_text));
  persist::LogRecord record;
  record.type = persist::LogRecord::kAppend;
  record.first_version = inner_->version_count();
  record.texts.emplace_back(xml_text);
  return LogAndMaybeSnapshotLocked(record);
}

Status DurableStore::AppendBatchImpl(
    const std::vector<std::string_view>& texts) {
  if (texts.empty()) return Status::OK();
  XARCH_RETURN_NOT_OK(inner_->AppendBatch(texts));
  persist::LogRecord record;
  record.type = persist::LogRecord::kBatch;
  record.first_version =
      inner_->version_count() - static_cast<Version>(texts.size()) + 1;
  record.texts.assign(texts.begin(), texts.end());
  return LogAndMaybeSnapshotLocked(record);
}

Status DurableStore::CheckpointImpl() {
  if (inner_->Has(kCheckpoint)) {
    XARCH_RETURN_NOT_OK(inner_->Checkpoint());
    // Make the forced boundary durable even if the snapshot below fails.
    persist::LogRecord record;
    record.type = persist::LogRecord::kCheckpoint;
    record.first_version = inner_->version_count() + 1;
    XARCH_RETURN_NOT_OK(log_.Append(record));
  }
  return WriteSnapshotLocked();
}

Status DurableStore::CompactNow() { return Checkpoint(); }

Status DurableStore::CheckpointIfDirty() {
  // Racing ingests may land between the check and the checkpoint; the
  // checkpoint itself runs under the exclusive lock, so the worst case is
  // a snapshot that was not strictly necessary — never a lost record.
  if (log_records() == 0) return Status::OK();
  return Checkpoint();
}

StatusOr<std::string> DurableStore::RetrieveImpl(Version v) {
  return inner_->Retrieve(v);
}

Status DurableStore::RetrieveToImpl(Version v, Sink& sink) {
  return inner_->RetrieveTo(v, sink);
}

StatusOr<VersionSet> DurableStore::HistoryImpl(
    const std::vector<core::KeyStep>& path) {
  return inner_->History(path);
}

StatusOr<std::vector<core::Change>> DurableStore::DiffVersionsImpl(
    Version from, Version to) {
  return inner_->DiffVersions(from, to);
}

Status DurableStore::QueryImpl(std::string_view query_text, Sink& sink,
                               obs::Trace* trace) {
  return inner_->Query(query_text, sink, trace);
}

Version DurableStore::VersionCountImpl() const {
  return inner_->version_count();
}

StoreStats DurableStore::BackendStats() const { return inner_->Stats(); }

std::string DurableStore::StoredBytesImpl() const {
  return inner_->StoredBytes();
}

StatusOr<std::string> DurableStore::SnapshotBytesImpl() const {
  // A durable store's snapshot IS its inner store's: SaveToFile output
  // reopens as a plain (non-durable) backend.
  return inner_->SaveToBytes();
}

StatusOr<std::unique_ptr<Store>> OpenDurable(const std::string& dir,
                                             DurableOptions options) {
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                         DurableStore::Open(dir, std::move(options)));
  return std::unique_ptr<Store>(std::move(store));
}

}  // namespace xarch
