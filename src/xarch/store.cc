#include "xarch/store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <filesystem>
#include <mutex>
#include <utility>

#include "compress/container.h"
#include "compress/lzss.h"
#include "core/flat_archive.h"
#include "core/scan.h"
#include "core/tree_view.h"
#include "index/view_index.h"
#include "persist/container.h"
#include "persist/wire.h"
#include "diff/repository.h"
#include "index/archive_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/planner.h"
#include "util/thread_pool.h"
#include "vfs/vfs.h"
#include "xarch/checkpoint.h"
#include "xarch/sharded_store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {

std::string CapabilitiesToString(Capabilities caps) {
  static constexpr std::pair<Capability, const char*> kNames[] = {
      {kTemporalQueries, "temporal-queries"},
      {kStreamingRetrieve, "streaming-retrieve"},
      {kBatchIngest, "batch-ingest"},
      {kCheckpoint, "checkpoint"},
      {kQuery, "query"},
      {kPersistence, "persist"},
  };
  std::string out;
  for (const auto& [flag, name] : kNames) {
    if ((caps & flag) == 0) continue;
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

// ------------------------------------------------------ StorePrimitives

std::string StorePrimitives::name() const { return store_.name(); }

bool StorePrimitives::Has(Capabilities mask) const {
  return store_.Has(mask);
}

Version StorePrimitives::version_count() const {
  return store_.VersionCountImpl();
}

StatusOr<std::string> StorePrimitives::Retrieve(Version v) {
  return store_.RetrieveImpl(v);
}

StatusOr<VersionSet> StorePrimitives::History(
    const std::vector<core::KeyStep>& path) {
  return store_.HistoryImpl(path);
}

StatusOr<std::vector<core::Change>> StorePrimitives::DiffVersions(
    Version from, Version to) {
  return store_.DiffVersionsImpl(from, to);
}

bool StorePrimitives::concurrent_reads() const {
  return store_.read_safety() == Store::ReadSafety::kConcurrent;
}

// ---------------------------------------------- Store public API (locked)

Status Store::Append(std::string_view xml_text) {
  IngestLock lock(*this);
  return AppendImpl(xml_text);
}

Status Store::AppendBatch(const std::vector<std::string_view>& xml_texts) {
  if (!Has(kBatchIngest)) return UnimplementedCall("AppendBatch", kBatchIngest);
  IngestLock lock(*this);
  return AppendBatchImpl(xml_texts);
}

Status Store::Checkpoint() {
  if (!Has(kCheckpoint)) return UnimplementedCall("Checkpoint", kCheckpoint);
  IngestLock lock(*this);
  return CheckpointImpl();
}

StatusOr<std::string> Store::Retrieve(Version v) {
  ReadLock lock(*this);
  return RetrieveImpl(v);
}

Status Store::RetrieveTo(Version v, Sink& sink) {
  if (!Has(kStreamingRetrieve)) {
    return UnimplementedCall("RetrieveTo", kStreamingRetrieve);
  }
  ReadLock lock(*this);
  return RetrieveToImpl(v, sink);
}

StatusOr<VersionSet> Store::History(const std::vector<core::KeyStep>& path) {
  if (!Has(kTemporalQueries)) {
    return UnimplementedCall("History", kTemporalQueries);
  }
  ReadLock lock(*this);
  return HistoryImpl(path);
}

StatusOr<std::vector<core::Change>> Store::DiffVersions(Version from,
                                                        Version to) {
  if (!Has(kTemporalQueries)) {
    return UnimplementedCall("DiffVersions", kTemporalQueries);
  }
  ReadLock lock(*this);
  return DiffVersionsImpl(from, to);
}

Status Store::Query(std::string_view query_text, Sink& sink,
                    obs::Trace* trace) {
  if (!Has(kQuery)) return UnimplementedCall("Query", kQuery);
  ReadLock lock(*this);
  return QueryImpl(query_text, sink, trace);
}

Version Store::version_count() const {
  ReadLock lock(*this);
  return VersionCountImpl();
}

StoreStats Store::Stats() const {
  ReadLock lock(*this);
  StoreStats stats = BackendStats();
  stats.queries += query_counters_.queries.load(std::memory_order_relaxed);
  stats.query_tree_probes +=
      query_counters_.tree_probes.load(std::memory_order_relaxed);
  stats.query_naive_probes +=
      query_counters_.naive_probes.load(std::memory_order_relaxed);
  stats.query_comparisons +=
      query_counters_.comparisons.load(std::memory_order_relaxed);
  return stats;
}

std::string Store::StoredBytes() const {
  ReadLock lock(*this);
  return StoredBytesImpl();
}

Status Store::SaveToFile(const std::string& path, vfs::Vfs* vfs) const {
  if (!Has(kPersistence)) {
    return UnimplementedCall("SaveToFile", kPersistence);
  }
  std::string bytes;
  {
    ReadLock lock(*this);
    XARCH_ASSIGN_OR_RETURN(bytes, SnapshotBytesImpl());
  }
  // File I/O runs outside the lock: the snapshot string is already a
  // consistent point-in-time image.
  if (vfs == nullptr) vfs = vfs::Vfs::Posix();
  return vfs::AtomicWriteFile(*vfs, path, bytes, /*sync=*/true);
}

StatusOr<std::string> Store::SaveToBytes() const {
  if (!Has(kPersistence)) {
    return UnimplementedCall("SaveToBytes", kPersistence);
  }
  ReadLock lock(*this);
  return SnapshotBytesImpl();
}

// ------------------------------------------------- Store defaults (hooks)

Status Store::AppendBatchByLoop(const std::vector<std::string_view>& texts) {
  for (std::string_view text : texts) {
    XARCH_RETURN_NOT_OK(AppendImpl(text));
  }
  return Status::OK();
}

Status Store::UnimplementedCall(const char* call, Capability needed) const {
  return Status::Unimplemented(
      std::string(call) + " requires capability " +
      CapabilitiesToString(needed) + ", which store \"" + name() +
      "\" does not advertise");
}

Status Store::AppendBatchImpl(const std::vector<std::string_view>& xml_texts) {
  return AppendBatchByLoop(xml_texts);
}

Status Store::RetrieveToImpl(Version, Sink&) {
  return UnimplementedCall("RetrieveTo", kStreamingRetrieve);
}

StatusOr<VersionSet> Store::HistoryImpl(const std::vector<core::KeyStep>&) {
  return UnimplementedCall("History", kTemporalQueries);
}

StatusOr<std::vector<core::Change>> Store::DiffVersionsImpl(Version, Version) {
  return UnimplementedCall("DiffVersions", kTemporalQueries);
}

Status Store::CheckpointImpl() {
  return UnimplementedCall("Checkpoint", kCheckpoint);
}

Status Store::SnapshotImpl(persist::SnapshotWriter&) const {
  return UnimplementedCall("SaveToFile", kPersistence);
}

StatusOr<std::string> Store::SnapshotBytesImpl() const {
  persist::SnapshotWriter writer;
  XARCH_RETURN_NOT_OK(SnapshotImpl(writer));
  return writer.Serialize();
}

void Store::CountQuery(const query::EvalResult& result) {
  query_counters_.queries.fetch_add(1, std::memory_order_relaxed);
  query_counters_.tree_probes.fetch_add(result.probes.tree_probes,
                                        std::memory_order_relaxed);
  query_counters_.naive_probes.fetch_add(result.probes.naive_probes,
                                         std::memory_order_relaxed);
  query_counters_.comparisons.fetch_add(result.probes.comparisons,
                                        std::memory_order_relaxed);
}

namespace {

/// Parse + plan, timed into the trace when one is attached. An
/// `explain analyze` query with no caller-supplied trace promotes
/// `analyze_trace` to the active trace — parse ran before the flag was
/// known, so its span is recorded from the measured interval.
/// `choose_access` maps the parsed AST to the access strategy (and may
/// capture side decisions, like the archive backend's index selection).
template <typename ChooseAccess>
StatusOr<query::Plan> ParseAndPlanTraced(std::string_view query_text,
                                         obs::Trace* analyze_trace,
                                         obs::Trace** trace,
                                         ChooseAccess&& choose_access) {
  const uint64_t parse_start = obs::MonotonicMicros();
  XARCH_ASSIGN_OR_RETURN(query::Query ast, query::Parse(query_text));
  const uint64_t parse_end = obs::MonotonicMicros();
  if (ast.analyze && *trace == nullptr) *trace = analyze_trace;
  if (*trace != nullptr) {
    (*trace)->AddCompleted("parse", obs::Trace::kNoSpan, parse_start,
                           parse_end);
  }
  const uint64_t plan_start = obs::MonotonicMicros();
  const query::Access access = choose_access(ast);
  query::Plan plan = query::MakePlan(std::move(ast), access);
  if (*trace != nullptr) {
    (*trace)->AddCompleted("plan", obs::Trace::kNoSpan, plan_start,
                           obs::MonotonicMicros());
  }
  return plan;
}

}  // namespace

Status Store::QueryImpl(std::string_view query_text, Sink& sink,
                        obs::Trace* trace) {
  obs::Trace analyze_trace;
  XARCH_ASSIGN_OR_RETURN(
      query::Plan plan,
      ParseAndPlanTraced(query_text, &analyze_trace, &trace,
                         [](const query::Query&) {
                           return query::Access::kGeneric;
                         }));
  StorePrimitives primitives = Primitives();
  query::EvalOptions eval_options;
  // Range fan-out is safe only for backends whose reads are const: the
  // public Query call above holds the shared lock, so pool workers may
  // drive the read hooks in parallel. (EvaluateOverStore re-checks
  // concurrent_reads() before fanning out.)
  eval_options.pool = &util::ThreadPool::Shared();
  eval_options.trace = trace;
  query::EvalResult result;
  Status status =
      plan.ast.explain
          ? query::ExplainOverStore(plan, primitives, sink, &result,
                                    eval_options)
          : query::EvaluateOverStore(plan, primitives, sink, &result,
                                     eval_options);
  CountQuery(result);
  return status;
}

namespace {

// ------------------------------------------------------ snapshot helpers

/// The key specification in the Appendix B text format, the same external
/// metadata a live archive is configured with — snapshots embed it so a
/// reopened store needs no side channel.
std::string SpecToText(const keys::KeySpecSet& spec) {
  std::string out;
  for (const auto& key : spec.keys()) {
    out += key.ToString();
    out += '\n';
  }
  return out;
}

StatusOr<keys::KeySpecSet> SpecFromSnapshot(
    const persist::SnapshotReader& snapshot) {
  XARCH_ASSIGN_OR_RETURN(std::string_view text, snapshot.Section("spec"));
  auto spec = keys::ParseKeySpecSet(text);
  if (!spec.ok()) {
    return Status::DataLoss("snapshot key specification does not parse: " +
                            spec.status().message());
  }
  return spec;
}

void EncodeArchiveOptions(const core::ArchiveOptions& options,
                          std::string* out) {
  persist::PutU8(
      options.frontier == core::FrontierStrategy::kWeave ? 1 : 0, out);
  persist::PutU32(static_cast<uint32_t>(options.annotate.fingerprint_bits),
                  out);
  persist::PutU8(options.annotate.sort_children ? 1 : 0, out);
}

Status DecodeArchiveOptions(persist::Cursor& cursor,
                            core::ArchiveOptions* options) {
  uint8_t frontier = 0, sort_children = 0;
  uint32_t fingerprint_bits = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&frontier));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&fingerprint_bits));
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&sort_children));
  if (frontier > 1 || fingerprint_bits == 0 || fingerprint_bits > 64) {
    return Status::DataLoss("snapshot archive options are out of range");
  }
  options->frontier = frontier != 0 ? core::FrontierStrategy::kWeave
                                    : core::FrontierStrategy::kBuckets;
  options->annotate.fingerprint_bits = static_cast<int>(fingerprint_bits);
  options->annotate.sort_children = sort_children != 0;
  return Status::OK();
}

/// Compact serialization used for archive snapshot sections (whitespace
/// would only cost container bytes; the LZSS pass runs either way).
std::string ArchiveXmlCompact(const core::Archive& archive) {
  core::ArchiveSerializeOptions options;
  options.pretty = false;
  options.indent_width = 0;
  return archive.ToXml(options);
}

/// Loads one archive snapshot section, running the full structural Check
/// so a snapshot that passed its CRCs but violates archive invariants is
/// still rejected at open time.
StatusOr<core::Archive> ArchiveFromSnapshotXml(std::string_view xml,
                                               keys::KeySpecSet spec,
                                               core::ArchiveOptions options) {
  auto archive = core::Archive::FromXml(xml, std::move(spec), options);
  if (!archive.ok()) return archive;
  XARCH_RETURN_NOT_OK(archive->Check());
  return archive;
}

// ------------------------------------------------------- ingest metrics

/// Per-backend ingest instruments in the process registry. Stores of the
/// same backend name share the instruments (the registry dedups on
/// name+labels), so totals aggregate across instances.
struct IngestMetrics {
  obs::Counter* batches;
  obs::Counter* documents;
  obs::Counter* merge_passes;
  obs::Histogram* batch_size;

  void Record(size_t documents_in_batch) const {
    batches->Increment();
    documents->Add(documents_in_batch);
    merge_passes->Increment();
    batch_size->Record(documents_in_batch);
  }
};

IngestMetrics MakeIngestMetrics(const std::string& backend) {
  obs::Registry& reg = obs::Registry::Default();
  const std::string labels = "backend=\"" + backend + "\"";
  IngestMetrics m;
  m.batches =
      reg.GetCounter("xarch_ingest_batches_total", labels,
                     "Ingest calls (Append or AppendBatch) by backend");
  m.documents = reg.GetCounter("xarch_ingest_documents_total", labels,
                               "Documents ingested by backend");
  m.merge_passes = reg.GetCounter("xarch_merge_passes_total", labels,
                                  "Nested-merge traversals by backend");
  m.batch_size = reg.GetHistogram("xarch_ingest_batch_size", labels,
                                  "Documents per ingest call");
  return m;
}

// --------------------------------------------------------------- archive

/// The paper's key-based archive (bucket or weave frontier) behind Store.
class ArchiveStore final : public Store {
 public:
  ArchiveStore(std::string name, keys::KeySpecSet spec,
               core::ArchiveOptions options, bool use_index,
               int snapshot_format)
      : name_(std::move(name)),
        archive_(std::move(spec), options),
        use_index_(use_index),
        snapshot_format_(snapshot_format),
        ingest_metrics_(MakeIngestMetrics(name_)) {
    // The index over the empty archive, so readers never see a null index
    // while use_index_ is set; every ingest republishes it.
    PublishIndex();
  }

  /// Restore path: adopts an archive loaded from a snapshot. The heap
  /// index is rebuilt from scratch here — XAR2 snapshots do persist index
  /// pages, but those serve the mapped read path; the heap store's index
  /// is derived state and rebuild-on-open keeps it consistent with
  /// whatever ingest follows.
  ArchiveStore(std::string name, core::Archive archive, bool use_index,
               int snapshot_format)
      : name_(std::move(name)),
        archive_(std::move(archive)),
        use_index_(use_index),
        snapshot_format_(snapshot_format),
        ingest_metrics_(MakeIngestMetrics(name_)) {
    PublishIndex();
  }

  std::string name() const override { return name_; }
  Capabilities capabilities() const override {
    return kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
           kPersistence;
  }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
    XARCH_RETURN_NOT_OK(archive_.AddVersion(*doc));
    PublishIndex();
    ingest_metrics_.Record(1);
    return Status::OK();
  }

  Status AppendBatchImpl(
      const std::vector<std::string_view>& xml_texts) override {
    std::vector<xml::NodePtr> docs;
    docs.reserve(xml_texts.size());
    std::vector<const xml::Node*> roots;
    roots.reserve(xml_texts.size());
    for (std::string_view text : xml_texts) {
      XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(text));
      roots.push_back(doc.get());
      docs.push_back(std::move(doc));
    }
    XARCH_RETURN_NOT_OK(archive_.AddVersions(roots));  // one merge pass
    PublishIndex();
    ingest_metrics_.Record(xml_texts.size());
    return Status::OK();
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    StringSink sink;
    XARCH_RETURN_NOT_OK(RetrieveToImpl(v, sink));
    return std::move(sink).Take();
  }

  Status RetrieveToImpl(Version v, Sink& sink) override {
    if (v == 0 || v > archive_.version_count()) {
      return Status::NotFound("version " + std::to_string(v) +
                              " is not archived (have 1-" +
                              std::to_string(archive_.version_count()) + ")");
    }
    // The Sec. 7.1 scan fused with serialization: straight off the merged
    // hierarchy, no xml::Node is ever constructed.
    core::ScanCursor cursor(
        xml::SerializeOptions{},
        [&sink](std::string_view chunk) { return sink.Append(chunk); });
    for (const auto& child : archive_.root().children) {
      if (child->stamp.has_value() && !child->stamp->Contains(v)) continue;
      XARCH_RETURN_NOT_OK(cursor.Scan(*child, v, 0));
      break;  // exactly one top element is active per version
    }
    XARCH_RETURN_NOT_OK(cursor.Finish());
    return sink.Flush();
  }

  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override {
    if (index_ != nullptr) return index_->History(path, nullptr);
    return archive_.History(path);
  }

  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override {
    return core::DescribeChanges(archive_, from, to);
  }

  Status QueryImpl(std::string_view query_text, Sink& sink,
                   obs::Trace* trace) override {
    // Diff queries run the change walk and never touch the index. The
    // index itself was published by the last ingest, under the writer
    // lock — the read path only ever dereferences it (the Sec. 7 stale-
    // index hazard is handled at ingest, where it belongs).
    const index::ArchiveIndex* index = nullptr;
    obs::Trace analyze_trace;
    XARCH_ASSIGN_OR_RETURN(
        query::Plan plan,
        ParseAndPlanTraced(query_text, &analyze_trace, &trace,
                           [&](const query::Query& ast) {
                             if (ast.temporal.kind !=
                                 query::TemporalKind::kDiff) {
                               index = index_.get();
                             }
                             return index != nullptr
                                        ? query::Access::kArchiveIndexed
                                        : query::Access::kArchiveScan;
                           }));
    assert(index == nullptr ||
           index->built_at_generation() == archive_.ingest_generation());
    query::EvalOptions eval_options;
    eval_options.pool = &util::ThreadPool::Shared();
    eval_options.trace = trace;
    query::EvalResult result;
    Status status =
        plan.ast.explain
            ? query::ExplainArchive(plan, archive_, index, sink, &result,
                                    eval_options)
            : query::Evaluate(plan, archive_, index, sink, &result,
                              eval_options);
    CountQuery(result);
    return status;
  }

  Version VersionCountImpl() const override {
    return archive_.version_count();
  }

  StoreStats BackendStats() const override {
    StoreStats stats;
    stats.versions = archive_.version_count();
    stats.stored_bytes = StoredBytesImpl().size();
    stats.node_count = archive_.CountNodes();
    stats.merge_passes = archive_.merge_pass_count();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    // Indentation-free form: the archive nests two levels deeper than a
    // version, so indentation would bias size comparisons against it.
    core::ArchiveSerializeOptions options;
    options.indent_width = 0;
    return archive_.ToXml(options);
  }

  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    std::string opts;
    EncodeArchiveOptions(archive_.options(), &opts);
    persist::PutU8(use_index_ ? 1 : 0, &opts);
    if (snapshot_format_ != 2) {
      writer.Add("backend", name_);
      writer.Add("spec", SpecToText(archive_.spec()));
      writer.Add("opts", std::move(opts));
      writer.Add("archive", ArchiveXmlCompact(archive_));
      return Status::OK();
    }
    // XAR2: the metadata and flat sections are stored raw so a mapped
    // reader navigates them in place; only the archive XML (kept for heap
    // materialization and the v1-style restore of derived state) is worth
    // compressing.
    writer.AddRaw("backend", name_);
    writer.AddRaw("spec", SpecToText(archive_.spec()));
    writer.AddRaw("opts", std::move(opts));
    writer.Add("archive", ArchiveXmlCompact(archive_));
    core::FlatArchiveEncoder encoder(archive_);
    encoder.EncodeStructure();
    std::string index_pages;
    if (index_ != nullptr) {
      // Between EncodeStructure and Finish so tree stamps intern into the
      // shared pool.
      index_pages = index::EncodeIndexPages(*index_, &encoder);
    }
    core::FlatArchiveEncoder::Sections flat = encoder.Finish();
    writer.AddRaw("meta", std::move(flat.meta));
    writer.AddRaw("strings", std::move(flat.strings));
    writer.AddRaw("stamps", std::move(flat.stamps));
    writer.AddRaw("nodes", std::move(flat.nodes));
    writer.AddRaw("parts", std::move(flat.parts));
    writer.AddRaw("attrs", std::move(flat.attrs));
    writer.AddRaw("buckets", std::move(flat.buckets));
    writer.AddRaw("content", std::move(flat.content));
    if (index_ != nullptr) writer.AddRaw("index", std::move(index_pages));
    return Status::OK();
  }

  StatusOr<std::string> SnapshotBytesImpl() const override {
    persist::SnapshotWriter::Options options;
    options.format = snapshot_format_ == 2 ? persist::kContainerFormatVersion2
                                           : persist::kContainerFormatVersion;
    persist::SnapshotWriter writer(options);
    XARCH_RETURN_NOT_OK(SnapshotImpl(writer));
    return writer.Serialize();
  }

 public:
  static StatusOr<std::unique_ptr<Store>> Restore(
      const persist::SnapshotReader& snapshot, const char* name,
      core::FrontierStrategy expected_frontier, int snapshot_format) {
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, SpecFromSnapshot(snapshot));
    XARCH_ASSIGN_OR_RETURN(std::string_view opts, snapshot.Section("opts"));
    persist::Cursor cursor(opts);
    core::ArchiveOptions options;
    uint8_t use_index = 0;
    XARCH_RETURN_NOT_OK(DecodeArchiveOptions(cursor, &options));
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&use_index));
    XARCH_RETURN_NOT_OK(cursor.ExpectDone());
    if (options.frontier != expected_frontier) {
      return Status::DataLoss(
          std::string("snapshot frontier strategy does not match backend \"") +
          name + "\"");
    }
    XARCH_ASSIGN_OR_RETURN(std::string_view xml, snapshot.Section("archive"));
    XARCH_ASSIGN_OR_RETURN(
        core::Archive archive,
        ArchiveFromSnapshotXml(xml, std::move(spec), options));
    return std::unique_ptr<Store>(std::make_unique<ArchiveStore>(
        name, std::move(archive), use_index != 0, snapshot_format));
  }

 private:
  /// The synchronized publish step: (re)builds the index from the ingest
  /// path, under the exclusive lock every ingest already holds — readers
  /// can never observe the swap, and the read path never mutates.
  void PublishIndex() {
    if (!use_index_) return;
    index_ = std::make_unique<index::ArchiveIndex>(archive_);
  }

  std::string name_;
  core::Archive archive_;
  bool use_index_;
  int snapshot_format_;
  IngestMetrics ingest_metrics_;
  std::unique_ptr<index::ArchiveIndex> index_;  // published by ingest
};

// ------------------------------------------------------- mapped archive

/// An archive store open directly over a mapped XAR2 snapshot. Retrieval,
/// history, and queries navigate the flat record arenas in place — open is
/// O(mmap + checksum verify) and the scan allocates no xml::Node (nor any
/// heap ArchiveNode). The heap archive is materialized lazily, only for
/// the operations that genuinely need it (diff walks, stored-bytes
/// serialization); the first ingest promotes the whole store to a heap
/// ArchiveStore and forwards to it from then on.
class MappedArchiveStore final : public Store {
 public:
  MappedArchiveStore(std::string name, persist::SnapshotView snapshot,
                     std::unique_ptr<core::FlatArchive> flat,
                     std::unique_ptr<index::FlatViewIndex> flat_index,
                     keys::KeySpecSet spec, core::ArchiveOptions options,
                     bool use_index, int snapshot_format)
      : name_(std::move(name)),
        snapshot_(std::move(snapshot)),
        flat_(std::move(flat)),
        flat_index_(std::move(flat_index)),
        view_(flat_.get()),
        spec_(std::move(spec)),
        options_(options),
        use_index_(use_index),
        snapshot_format_(snapshot_format) {}

  std::string name() const override { return name_; }
  Capabilities capabilities() const override {
    return kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
           kPersistence;
  }

  /// Mapped restore path: attaches the flat sections (and index pages when
  /// present) of an already-verified XAR2 snapshot view.
  static StatusOr<std::unique_ptr<Store>> Restore(
      const persist::SnapshotView& snapshot, const char* name,
      core::FrontierStrategy expected_frontier, int snapshot_format) {
    XARCH_ASSIGN_OR_RETURN(std::string spec_text,
                           snapshot.SectionString("spec"));
    auto spec = keys::ParseKeySpecSet(spec_text);
    if (!spec.ok()) {
      return Status::DataLoss("snapshot key specification does not parse: " +
                              spec.status().message());
    }
    XARCH_ASSIGN_OR_RETURN(std::string opts, snapshot.SectionString("opts"));
    persist::Cursor cursor(opts);
    core::ArchiveOptions options;
    uint8_t use_index = 0;
    XARCH_RETURN_NOT_OK(DecodeArchiveOptions(cursor, &options));
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&use_index));
    XARCH_RETURN_NOT_OK(cursor.ExpectDone());
    if (options.frontier != expected_frontier) {
      return Status::DataLoss(
          std::string("snapshot frontier strategy does not match backend \"") +
          name + "\"");
    }
    core::FlatArchive::Sections sections;
    XARCH_ASSIGN_OR_RETURN(sections.meta, snapshot.RawSection("meta"));
    XARCH_ASSIGN_OR_RETURN(sections.strings, snapshot.RawSection("strings"));
    XARCH_ASSIGN_OR_RETURN(sections.stamps, snapshot.RawSection("stamps"));
    XARCH_ASSIGN_OR_RETURN(sections.nodes, snapshot.RawSection("nodes"));
    XARCH_ASSIGN_OR_RETURN(sections.parts, snapshot.RawSection("parts"));
    XARCH_ASSIGN_OR_RETURN(sections.attrs, snapshot.RawSection("attrs"));
    XARCH_ASSIGN_OR_RETURN(sections.buckets, snapshot.RawSection("buckets"));
    XARCH_ASSIGN_OR_RETURN(sections.content, snapshot.RawSection("content"));
    XARCH_ASSIGN_OR_RETURN(core::FlatArchive flat,
                           core::FlatArchive::Attach(sections));
    auto flat_owned = std::make_unique<core::FlatArchive>(std::move(flat));
    std::unique_ptr<index::FlatViewIndex> flat_index;
    if (snapshot.HasSection("index")) {
      XARCH_ASSIGN_OR_RETURN(std::string_view pages,
                             snapshot.RawSection("index"));
      XARCH_ASSIGN_OR_RETURN(
          index::FlatViewIndex attached,
          index::FlatViewIndex::Attach(flat_owned.get(), pages));
      flat_index = std::make_unique<index::FlatViewIndex>(std::move(attached));
    }
    return std::unique_ptr<Store>(std::make_unique<MappedArchiveStore>(
        name, snapshot, std::move(flat_owned), std::move(flat_index),
        std::move(*spec), options, use_index != 0, snapshot_format));
  }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    XARCH_RETURN_NOT_OK(Promote());
    return promoted_->Append(xml_text);
  }

  Status AppendBatchImpl(
      const std::vector<std::string_view>& xml_texts) override {
    XARCH_RETURN_NOT_OK(Promote());
    return promoted_->AppendBatch(xml_texts);
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    if (promoted_ != nullptr) return promoted_->Retrieve(v);
    StringSink sink;
    XARCH_RETURN_NOT_OK(RetrieveToImpl(v, sink));
    return std::move(sink).Take();
  }

  Status RetrieveToImpl(Version v, Sink& sink) override {
    if (promoted_ != nullptr) return promoted_->RetrieveTo(v, sink);
    if (v == 0 || v > flat_->version_count()) {
      return Status::NotFound("version " + std::to_string(v) +
                              " is not archived (have 1-" +
                              std::to_string(flat_->version_count()) + ")");
    }
    // The same fused scan as the heap store, driven by record offsets
    // instead of node pointers.
    core::ScanCursor cursor(
        xml::SerializeOptions{},
        [&sink](std::string_view chunk) { return sink.Append(chunk); });
    const core::ArchiveView::NodeId root = view_.Root();
    for (size_t i = 0; i < view_.ChildCount(root); ++i) {
      const core::ArchiveView::NodeId child = view_.Child(root, i);
      if (view_.HasStamp(child) && !view_.StampContains(child, v)) continue;
      XARCH_RETURN_NOT_OK(cursor.Scan(view_, child, v, 0));
      break;  // exactly one top element is active per version
    }
    XARCH_RETURN_NOT_OK(cursor.Finish());
    return sink.Flush();
  }

  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override {
    if (promoted_ != nullptr) return promoted_->History(path);
    if (flat_index_ != nullptr) return flat_index_->History(path, nullptr);
    return core::HistoryOverView(view_, path);
  }

  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override {
    if (promoted_ != nullptr) return promoted_->DiffVersions(from, to);
    XARCH_ASSIGN_OR_RETURN(const core::Archive* heap, HeapArchive());
    return core::DescribeChanges(*heap, from, to);
  }

  Status QueryImpl(std::string_view query_text, Sink& sink,
                   obs::Trace* trace) override {
    if (promoted_ != nullptr) return promoted_->Query(query_text, sink, trace);
    const index::ViewIndex* index = nullptr;
    obs::Trace analyze_trace;
    XARCH_ASSIGN_OR_RETURN(
        query::Plan plan,
        ParseAndPlanTraced(query_text, &analyze_trace, &trace,
                           [&](const query::Query& ast) {
                             if (ast.temporal.kind !=
                                 query::TemporalKind::kDiff) {
                               index = flat_index_.get();
                             }
                             return index != nullptr
                                        ? query::Access::kArchiveIndexed
                                        : query::Access::kArchiveScan;
                           }));
    query::ArchiveDiffFn diff =
        [this](Version from, Version to) -> StatusOr<std::vector<core::Change>> {
      XARCH_ASSIGN_OR_RETURN(const core::Archive* heap, HeapArchive());
      return core::DescribeChanges(*heap, from, to);
    };
    query::EvalOptions eval_options;
    eval_options.pool = &util::ThreadPool::Shared();
    eval_options.trace = trace;
    query::EvalResult result;
    Status status = plan.ast.explain
                        ? query::ExplainView(plan, view_, index, diff, sink,
                                             &result, eval_options)
                        : query::EvaluateView(plan, view_, index, diff, sink,
                                              &result, eval_options);
    CountQuery(result);
    return status;
  }

  Version VersionCountImpl() const override {
    return promoted_ != nullptr ? promoted_->version_count()
                                : flat_->version_count();
  }

  StoreStats BackendStats() const override {
    if (promoted_ != nullptr) return promoted_->Stats();
    StoreStats stats;
    stats.versions = flat_->version_count();
    stats.stored_bytes = StoredBytesImpl().size();
    auto heap = HeapArchive();
    if (heap.ok()) stats.node_count = (*heap)->CountNodes();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    if (promoted_ != nullptr) return promoted_->StoredBytes();
    auto heap = HeapArchive();
    if (!heap.ok()) return std::string();
    core::ArchiveSerializeOptions options;
    options.indent_width = 0;
    return (*heap)->ToXml(options);
  }

  StatusOr<std::string> SnapshotBytesImpl() const override {
    // Unmodified, the snapshot is the mapped file itself, byte for byte;
    // after promotion the heap store serializes fresh sections.
    if (promoted_ != nullptr) return promoted_->SaveToBytes();
    if (snapshot_format_ != 2) {
      // Asked to downgrade: re-emit the legacy container from the
      // snapshot's own backend/spec/opts/archive sections — the same
      // bytes a heap ArchiveStore with snapshot_format=1 would write.
      persist::SnapshotWriter writer;
      for (const char* section : {"backend", "spec", "opts", "archive"}) {
        XARCH_ASSIGN_OR_RETURN(std::string text,
                               snapshot_.SectionString(section));
        writer.Add(section, text);
      }
      return writer.Serialize();
    }
    return std::string(snapshot_.bytes());
  }

 private:
  /// The lazily-materialized heap archive (parsed from the snapshot's
  /// archive XML). Read hooks run under the SHARED store lock, so the
  /// cache has its own mutex; the result pointer is stable until Promote,
  /// which runs under the exclusive lock with no readers in flight.
  StatusOr<const core::Archive*> HeapArchive() const {
    std::lock_guard<std::mutex> lock(heap_mu_);
    if (heap_ == nullptr) {
      XARCH_ASSIGN_OR_RETURN(std::string xml,
                             snapshot_.SectionString("archive"));
      XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, spec_.Clone());
      XARCH_ASSIGN_OR_RETURN(
          core::Archive archive,
          ArchiveFromSnapshotXml(xml, std::move(spec), options_));
      heap_ = std::make_unique<core::Archive>(std::move(archive));
    }
    return heap_.get();
  }

  /// Writes stay heap: the first ingest materializes the archive once and
  /// swaps in a full ArchiveStore (under the exclusive lock every ingest
  /// holds). The next SaveToBytes then re-emits fresh XAR2 sections.
  Status Promote() {
    if (promoted_ != nullptr) return Status::OK();
    std::unique_ptr<core::Archive> heap;
    {
      std::lock_guard<std::mutex> lock(heap_mu_);
      heap = std::move(heap_);
    }
    if (heap == nullptr) {
      XARCH_ASSIGN_OR_RETURN(std::string xml,
                             snapshot_.SectionString("archive"));
      XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, spec_.Clone());
      XARCH_ASSIGN_OR_RETURN(
          core::Archive archive,
          ArchiveFromSnapshotXml(xml, std::move(spec), options_));
      heap = std::make_unique<core::Archive>(std::move(archive));
    }
    promoted_ = std::make_unique<ArchiveStore>(name_, std::move(*heap),
                                               use_index_, snapshot_format_);
    return Status::OK();
  }

  std::string name_;
  persist::SnapshotView snapshot_;
  std::unique_ptr<core::FlatArchive> flat_;   // views into snapshot_ bytes
  std::unique_ptr<index::FlatViewIndex> flat_index_;  // null when unindexed
  core::FlatArchiveView view_;                // over *flat_
  keys::KeySpecSet spec_;
  core::ArchiveOptions options_;
  bool use_index_;
  int snapshot_format_;
  mutable std::mutex heap_mu_;
  mutable std::unique_ptr<core::Archive> heap_;
  std::unique_ptr<Store> promoted_;  // set by the first ingest
};

// -------------------------------------------------- diff / copy baselines

/// Shared behaviour of the Sec. 5 baseline repositories.
template <typename Repo>
class RepoStore : public Store {
 public:
  explicit RepoStore(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Capabilities capabilities() const override {
    return kBatchIngest | kQuery | kPersistence;
  }

  /// Restore path: adopts a repository decoded from a snapshot.
  void AdoptRepo(Repo repo) { repo_ = std::move(repo); }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    repo_.AddVersion(std::string(xml_text));
    return Status::OK();
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    return repo_.Retrieve(v);
  }

  Version VersionCountImpl() const override {
    return static_cast<Version>(repo_.version_count());
  }

  StoreStats BackendStats() const override {
    StoreStats stats;
    stats.versions = static_cast<Version>(repo_.version_count());
    stats.stored_bytes = repo_.ByteSize();
    stats.max_retrieval_applications = MaxApplications();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    return repo_.ConcatenatedBytes();
  }

  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    writer.Add("backend", this->name());
    std::string bytes;
    repo_.EncodeState(&bytes);
    writer.Add("repo", std::move(bytes));
    return Status::OK();
  }

  virtual size_t MaxApplications() const { return 0; }

  Repo repo_;

 private:
  std::string name_;
};

class IncrDiffStore final : public RepoStore<diff::IncrementalDiffRepo> {
 public:
  IncrDiffStore() : RepoStore("incr-diff") {}

 protected:
  size_t MaxApplications() const override {
    return repo_.ApplicationsFor(static_cast<Version>(repo_.version_count()));
  }
};

class CumDiffStore final : public RepoStore<diff::CumulativeDiffRepo> {
 public:
  CumDiffStore() : RepoStore("cum-diff") {}

 protected:
  size_t MaxApplications() const override {
    return repo_.version_count() > 1 ? 1 : 0;
  }
};

class FullCopyStore final : public RepoStore<diff::FullCopyRepo> {
 public:
  FullCopyStore() : RepoStore("full-copy") {}

  Capabilities capabilities() const override {
    return kBatchIngest | kStreamingRetrieve | kQuery | kPersistence;
  }

 protected:
  /// Versions are stored verbatim, so streaming is a straight copy of the
  /// stored bytes — nothing is reconstructed.
  Status RetrieveToImpl(Version v, Sink& sink) override {
    XARCH_ASSIGN_OR_RETURN(std::string text, repo_.Retrieve(v));
    XARCH_RETURN_NOT_OK(sink.Append(text));
    return sink.Flush();
  }
};

/// Shared restorer of the repository-backed baselines.
template <typename StoreT, typename RepoT>
StatusOr<std::unique_ptr<Store>> RestoreRepoBackend(
    const persist::SnapshotReader& snapshot) {
  XARCH_ASSIGN_OR_RETURN(std::string_view bytes, snapshot.Section("repo"));
  XARCH_ASSIGN_OR_RETURN(RepoT repo, RepoT::DecodeState(bytes));
  auto store = std::make_unique<StoreT>();
  store->AdoptRepo(std::move(repo));
  return std::unique_ptr<Store>(std::move(store));
}

// ---------------------------------------------------------------- extmem

/// The Sec. 6 external-memory archiver behind Store.
class ExtmemStore final : public Store {
 public:
  ExtmemStore(keys::KeySpecSet spec, extmem::ExternalArchiver::Options options,
              bool owns_work_dir)
      : ext_(std::move(spec), options),
        work_dir_(options.work_dir),
        owns_work_dir_(owns_work_dir) {}

  ~ExtmemStore() override {
    if (owns_work_dir_) {
      (void)ext_.vfs()->RemoveTree(work_dir_);
    }
  }

  std::string name() const override { return "extmem"; }
  Capabilities capabilities() const override {
    return kBatchIngest | kQuery | kPersistence;
  }

  /// Restore path: adopts snapshot row bytes into this (fresh) archiver.
  Status AdoptSnapshot(std::string_view rows, Version count) {
    return ext_.RestoreSnapshot(rows, count);
  }

 protected:
  /// Retrieval streams from disk and counts I/O into mutable state, so
  /// every operation — including reads — takes the exclusive lock.
  ReadSafety read_safety() const override { return ReadSafety::kExclusive; }

  Status AppendImpl(std::string_view xml_text) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
    return ext_.AddVersion(*doc);
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, ext_.RetrieveVersion(v));
    if (doc == nullptr) return std::string();
    return xml::Serialize(*doc);
  }

  Version VersionCountImpl() const override { return ext_.version_count(); }

  StoreStats BackendStats() const override {
    StoreStats stats;
    stats.versions = ext_.version_count();
    // Snapshot the counters first: StoredBytes() itself reads the whole
    // on-disk archive and would inflate the reported I/O.
    stats.io = ext_.stats();
    stats.stored_bytes = StoredBytesImpl().size();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    auto xml = ext_.ToXml();
    return xml.ok() ? std::move(xml).value() : std::string();
  }

  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    writer.Add("backend", "extmem");
    writer.Add("spec", SpecToText(ext_.spec()));
    std::string opts;
    persist::PutU32(ext_.version_count(), &opts);
    persist::PutU32(
        static_cast<uint32_t>(ext_.options().annotate.fingerprint_bits),
        &opts);
    persist::PutU8(ext_.options().annotate.sort_children ? 1 : 0, &opts);
    writer.Add("opts", std::move(opts));
    XARCH_ASSIGN_OR_RETURN(std::string rows, ext_.ArchiveFileBytes());
    writer.Add("rows", std::move(rows));
    return Status::OK();
  }

 private:
  // ToXml/RetrieveVersion stream from disk and count I/O, so they are
  // non-const; introspection stays logically const. The exclusive
  // read_safety above is what makes this sound under concurrency.
  mutable extmem::ExternalArchiver ext_;
  std::string work_dir_;
  bool owns_work_dir_;
};

// ------------------------------------------------------------ compressed

/// Wraps any inner store, reporting (and exposing) compressed bytes: the
/// container compressor for XML-shaped storage, LZSS otherwise — the
/// Sec. 5.4 "xmill(...)" / "gzip(...)" columns as a backend.
///
/// Every hook forwards to the INNER store's public API, which takes the
/// inner store's own lock — so the wrapper's reads stay kConcurrent even
/// around an exclusive-read inner backend (the inner lock serializes).
class CompressedStore final : public Store {
 public:
  explicit CompressedStore(std::unique_ptr<Store> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override {
    return "compressed(" + inner_->name() + ")";
  }
  Capabilities capabilities() const override {
    return inner_->capabilities();
  }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    return inner_->Append(xml_text);
  }
  Status AppendBatchImpl(
      const std::vector<std::string_view>& texts) override {
    return inner_->AppendBatch(texts);
  }
  StatusOr<std::string> RetrieveImpl(Version v) override {
    return inner_->Retrieve(v);
  }
  Status RetrieveToImpl(Version v, Sink& sink) override {
    return inner_->RetrieveTo(v, sink);
  }
  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override {
    return inner_->History(path);
  }
  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override {
    return inner_->DiffVersions(from, to);
  }
  Status QueryImpl(std::string_view query_text, Sink& sink,
                   obs::Trace* trace) override {
    return inner_->Query(query_text, sink, trace);
  }
  Status CheckpointImpl() override { return inner_->Checkpoint(); }
  Version VersionCountImpl() const override {
    return inner_->version_count();
  }

  /// The wrapper's snapshot is the inner store's container, nested whole
  /// (it carries its own checksums) plus our backend marker.
  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    writer.Add("backend", "compressed");
    XARCH_ASSIGN_OR_RETURN(std::string inner_bytes, inner_->SaveToBytes());
    writer.Add("inner", std::move(inner_bytes));
    return Status::OK();
  }

  StoreStats BackendStats() const override {
    StoreStats stats = inner_->Stats();
    stats.stored_bytes = StoredBytesImpl().size();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    std::string raw = inner_->StoredBytes();
    auto xml = compress::XmlContainerCompressor::CompressText(raw);
    if (xml.ok()) return std::move(xml).value();
    // Bounds-checked LZSS; inputs beyond its 2 GiB limit are reported
    // uncompressed rather than risking the compressor's index width.
    auto lzss = compress::LzssTryCompress(raw);
    return lzss.ok() ? std::move(lzss).value() : raw;
  }

 private:
  std::unique_ptr<Store> inner_;
};

// ---------------------------------------------------------- checkpointed

/// Sec. 9 checkpointing: a fresh archive every k versions.
class CheckpointArchiveStore final : public Store {
 public:
  CheckpointArchiveStore(keys::KeySpecSet spec, keys::KeySpecSet scratch_spec,
                         size_t k, core::ArchiveOptions options)
      : archive_(std::move(spec), k, options),
        scratch_spec_(std::move(scratch_spec)) {}

  /// Restore path: adopts a checkpointed archive rebuilt from a snapshot.
  CheckpointArchiveStore(CheckpointedArchive archive,
                         keys::KeySpecSet scratch_spec)
      : archive_(std::move(archive)), scratch_spec_(std::move(scratch_spec)) {}

  std::string name() const override { return "checkpoint-archive"; }
  Capabilities capabilities() const override {
    return kTemporalQueries | kBatchIngest | kCheckpoint | kQuery |
           kPersistence;
  }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
    return archive_.AddVersion(*doc);
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, archive_.RetrieveVersion(v));
    if (doc == nullptr) return std::string();
    return xml::Serialize(*doc);
  }

  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override {
    return archive_.History(path);
  }

  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override {
    // Versions may live in different segment archives, so the diff runs
    // over a scratch two-version archive.
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc_from,
                           archive_.RetrieveVersion(from));
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc_to, archive_.RetrieveVersion(to));
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, scratch_spec_.Clone());
    core::Archive scratch(std::move(spec));
    if (doc_from == nullptr) {
      scratch.AddEmptyVersion();
    } else {
      XARCH_RETURN_NOT_OK(scratch.AddVersion(*doc_from));
    }
    if (doc_to == nullptr) {
      scratch.AddEmptyVersion();
    } else {
      XARCH_RETURN_NOT_OK(scratch.AddVersion(*doc_to));
    }
    return core::DescribeChanges(scratch, 1, 2);
  }

  Status CheckpointImpl() override {
    archive_.StartNewSegment();
    return Status::OK();
  }

  Version VersionCountImpl() const override {
    return archive_.version_count();
  }

  StoreStats BackendStats() const override {
    StoreStats stats;
    stats.versions = archive_.version_count();
    stats.stored_bytes = archive_.ByteSize();
    stats.checkpoint_segments = archive_.segment_count();
    return stats;
  }

  std::string StoredBytesImpl() const override {
    return archive_.StoredBytes();
  }

  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    writer.Add("backend", "checkpoint-archive");
    writer.Add("spec", SpecToText(scratch_spec_));
    std::string opts;
    persist::PutU64(archive_.checkpoint_every(), &opts);
    persist::PutU8(archive_.pending_checkpoint() ? 1 : 0, &opts);
    persist::PutU32(static_cast<uint32_t>(archive_.segments().size()), &opts);
    EncodeArchiveOptions(archive_.options(), &opts);
    writer.Add("opts", std::move(opts));
    for (size_t i = 0; i < archive_.segments().size(); ++i) {
      writer.Add("seg" + std::to_string(i),
                 ArchiveXmlCompact(archive_.segments()[i]));
    }
    return Status::OK();
  }

 public:
  static StatusOr<std::unique_ptr<Store>> Restore(
      const persist::SnapshotReader& snapshot) {
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, SpecFromSnapshot(snapshot));
    XARCH_ASSIGN_OR_RETURN(std::string_view opts, snapshot.Section("opts"));
    persist::Cursor cursor(opts);
    uint64_t k = 0;
    uint8_t pending = 0;
    uint32_t nsegments = 0;
    core::ArchiveOptions options;
    XARCH_RETURN_NOT_OK(cursor.ReadU64(&k));
    XARCH_RETURN_NOT_OK(cursor.ReadU8(&pending));
    XARCH_RETURN_NOT_OK(cursor.ReadU32(&nsegments));
    XARCH_RETURN_NOT_OK(DecodeArchiveOptions(cursor, &options));
    XARCH_RETURN_NOT_OK(cursor.ExpectDone());
    if (k == 0) {
      return Status::DataLoss("checkpoint-archive snapshot declares k=0");
    }
    std::vector<core::Archive> segments;
    // nsegments is untrusted; the per-segment Section() reads bound it.
    segments.reserve(std::min<uint32_t>(nsegments, 4096));
    for (uint32_t i = 0; i < nsegments; ++i) {
      XARCH_ASSIGN_OR_RETURN(std::string_view xml,
                             snapshot.Section("seg" + std::to_string(i)));
      XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet segment_spec, spec.Clone());
      XARCH_ASSIGN_OR_RETURN(
          core::Archive segment,
          ArchiveFromSnapshotXml(xml, std::move(segment_spec), options));
      segments.push_back(std::move(segment));
    }
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet scratch, spec.Clone());
    XARCH_ASSIGN_OR_RETURN(
        CheckpointedArchive archive,
        CheckpointedArchive::Restore(std::move(spec), static_cast<size_t>(k),
                                     options, std::move(segments),
                                     pending != 0));
    return std::unique_ptr<Store>(std::make_unique<CheckpointArchiveStore>(
        std::move(archive), std::move(scratch)));
  }

 private:
  CheckpointedArchive archive_;
  keys::KeySpecSet scratch_spec_;
};

/// Sec. 9 checkpointing: a full copy every k versions, deltas between.
class CheckpointDiffStore final : public Store {
 public:
  explicit CheckpointDiffStore(size_t k) : repo_(k) {}

  /// Restore path: adopts a repository decoded from a snapshot.
  explicit CheckpointDiffStore(CheckpointedDiffRepo repo)
      : repo_(std::move(repo)) {}

  std::string name() const override { return "checkpoint-diff"; }
  Capabilities capabilities() const override {
    return kBatchIngest | kCheckpoint | kQuery | kPersistence;
  }

 protected:
  Status AppendImpl(std::string_view xml_text) override {
    repo_.AddVersion(std::string(xml_text));
    return Status::OK();
  }

  StatusOr<std::string> RetrieveImpl(Version v) override {
    return repo_.Retrieve(v);
  }

  Status CheckpointImpl() override {
    repo_.StartNewSegment();
    return Status::OK();
  }

  Version VersionCountImpl() const override {
    return static_cast<Version>(repo_.version_count());
  }

  StoreStats BackendStats() const override {
    StoreStats stats;
    stats.versions = static_cast<Version>(repo_.version_count());
    stats.stored_bytes = repo_.ByteSize();
    stats.checkpoint_segments = repo_.segment_count();
    size_t max_apps = 0;
    for (Version v = 1; v <= repo_.version_count(); ++v) {
      max_apps = std::max(max_apps, repo_.ApplicationsFor(v));
    }
    stats.max_retrieval_applications = max_apps;
    return stats;
  }

  std::string StoredBytesImpl() const override { return repo_.StoredBytes(); }

  Status SnapshotImpl(persist::SnapshotWriter& writer) const override {
    writer.Add("backend", "checkpoint-diff");
    std::string bytes;
    repo_.EncodeState(&bytes);
    writer.Add("repo", std::move(bytes));
    return Status::OK();
  }

 public:
  static StatusOr<std::unique_ptr<Store>> Restore(
      const persist::SnapshotReader& snapshot) {
    XARCH_ASSIGN_OR_RETURN(std::string_view bytes, snapshot.Section("repo"));
    XARCH_ASSIGN_OR_RETURN(CheckpointedDiffRepo repo,
                           CheckpointedDiffRepo::DecodeState(bytes));
    return std::unique_ptr<Store>(
        std::make_unique<CheckpointDiffStore>(std::move(repo)));
  }

 private:
  CheckpointedDiffRepo repo_;
};

// ------------------------------------------------------------- factories

Status RequireSpec(const StoreOptions& options, const char* backend) {
  if (options.spec.size() == 0) {
    return Status::InvalidArgument(
        std::string(backend) +
        " requires StoreOptions::spec (a non-empty key specification)");
  }
  return Status::OK();
}

Status RequireSnapshotFormat(const StoreOptions& options) {
  if (options.snapshot_format != 1 && options.snapshot_format != 2) {
    return Status::InvalidArgument(
        "StoreOptions::snapshot_format must be 1 (XAR1) or 2 (XAR2), got " +
        std::to_string(options.snapshot_format));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Store>> MakeArchiveBackend(StoreOptions options,
                                                    const char* name,
                                                    core::FrontierStrategy
                                                        frontier) {
  XARCH_RETURN_NOT_OK(RequireSpec(options, name));
  XARCH_RETURN_NOT_OK(RequireSnapshotFormat(options));
  core::ArchiveOptions archive_options = options.archive;
  archive_options.frontier = frontier;
  return std::unique_ptr<Store>(std::make_unique<ArchiveStore>(
      name, std::move(options.spec), archive_options, options.use_index,
      options.snapshot_format));
}

/// Fills in a fresh private working directory when the caller left the
/// default; shared by the extmem factory and its snapshot restorer.
bool ResolveExtmemWorkDir(extmem::ExternalArchiver::Options* options) {
  if (options->work_dir != extmem::ExternalArchiver::Options{}.work_dir) {
    return false;
  }
  static std::atomic<uint64_t> counter{0};
  options->work_dir =
      (std::filesystem::temp_directory_path() /
       ("xarch_store_extmem_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter.fetch_add(1))))
          .string();
  return true;
}

StatusOr<std::unique_ptr<Store>> RestoreExtmemBackend(
    const persist::SnapshotReader& snapshot, StoreOptions tuning) {
  XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, SpecFromSnapshot(snapshot));
  XARCH_ASSIGN_OR_RETURN(std::string_view opts, snapshot.Section("opts"));
  persist::Cursor cursor(opts);
  uint32_t count = 0, fingerprint_bits = 0;
  uint8_t sort_children = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&count));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&fingerprint_bits));
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&sort_children));
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  if (fingerprint_bits == 0 || fingerprint_bits > 64) {
    return Status::DataLoss("extmem snapshot fingerprint bits out of range");
  }
  // Tuning knobs (work dir, memory budget, fan-in) come from the caller;
  // the correctness-bearing annotate options come from the snapshot.
  extmem::ExternalArchiver::Options options = tuning.extmem;
  options.annotate.fingerprint_bits = static_cast<int>(fingerprint_bits);
  options.annotate.sort_children = sort_children != 0;
  bool owns_work_dir = ResolveExtmemWorkDir(&options);
  XARCH_ASSIGN_OR_RETURN(std::string_view rows, snapshot.Section("rows"));
  auto store = std::make_unique<ExtmemStore>(std::move(spec), options,
                                             owns_work_dir);
  XARCH_RETURN_NOT_OK(store->AdoptSnapshot(rows, count));
  return std::unique_ptr<Store>(std::move(store));
}

}  // namespace

namespace detail {

void RegisterBuiltinStores(StoreRegistry& registry) {
  auto must = [](Status status) {
    (void)status;
    assert(status.ok());
  };
  must(registry.Register({
      "archive",
      "key-based archive, Nested Merge with bucket frontiers (the paper's)",
      kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
          kPersistence,
      [](StoreOptions options) {
        return MakeArchiveBackend(std::move(options), "archive",
                                  core::FrontierStrategy::kBuckets);
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions tuning)
          -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSnapshotFormat(tuning));
        return ArchiveStore::Restore(snapshot, "archive",
                                     core::FrontierStrategy::kBuckets,
                                     tuning.snapshot_format);
      },
      [](const persist::SnapshotView& snapshot, StoreOptions tuning)
          -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSnapshotFormat(tuning));
        return MappedArchiveStore::Restore(snapshot, "archive",
                                           core::FrontierStrategy::kBuckets,
                                           tuning.snapshot_format);
      },
  }));
  must(registry.Register({
      "archive-weave",
      "key-based archive with SCCS-weave frontiers (further compaction)",
      kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
          kPersistence,
      [](StoreOptions options) {
        return MakeArchiveBackend(std::move(options), "archive-weave",
                                  core::FrontierStrategy::kWeave);
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions tuning)
          -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSnapshotFormat(tuning));
        return ArchiveStore::Restore(snapshot, "archive-weave",
                                     core::FrontierStrategy::kWeave,
                                     tuning.snapshot_format);
      },
      [](const persist::SnapshotView& snapshot, StoreOptions tuning)
          -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSnapshotFormat(tuning));
        return MappedArchiveStore::Restore(snapshot, "archive-weave",
                                           core::FrontierStrategy::kWeave,
                                           tuning.snapshot_format);
      },
  }));
  must(registry.Register({
      "incr-diff",
      "V1 + incremental line diffs (Sec. 5 baseline)",
      kBatchIngest | kQuery | kPersistence,
      [](StoreOptions) -> StatusOr<std::unique_ptr<Store>> {
        return std::unique_ptr<Store>(std::make_unique<IncrDiffStore>());
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions) {
        return RestoreRepoBackend<IncrDiffStore, diff::IncrementalDiffRepo>(
            snapshot);
      },
  }));
  must(registry.Register({
      "cum-diff",
      "V1 + cumulative line diffs (Sec. 5 baseline)",
      kBatchIngest | kQuery | kPersistence,
      [](StoreOptions) -> StatusOr<std::unique_ptr<Store>> {
        return std::unique_ptr<Store>(std::make_unique<CumDiffStore>());
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions) {
        return RestoreRepoBackend<CumDiffStore, diff::CumulativeDiffRepo>(
            snapshot);
      },
  }));
  must(registry.Register({
      "full-copy",
      "every version stored verbatim",
      kBatchIngest | kStreamingRetrieve | kQuery | kPersistence,
      [](StoreOptions) -> StatusOr<std::unique_ptr<Store>> {
        return std::unique_ptr<Store>(std::make_unique<FullCopyStore>());
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions) {
        return RestoreRepoBackend<FullCopyStore, diff::FullCopyRepo>(snapshot);
      },
  }));
  must(registry.Register({
      "extmem",
      "external-memory archiver (Sec. 6), on-disk sorted rows",
      kBatchIngest | kQuery | kPersistence,
      [](StoreOptions options) -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSpec(options, "extmem"));
        bool owns_work_dir = ResolveExtmemWorkDir(&options.extmem);
        return std::unique_ptr<Store>(std::make_unique<ExtmemStore>(
            std::move(options.spec), options.extmem, owns_work_dir));
      },
      RestoreExtmemBackend,
  }));
  must(registry.Register({
      "compressed",
      "compression wrapper over StoreOptions::inner (capabilities follow "
      "the wrapped store)",
      kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
          kPersistence,
      [](StoreOptions options) -> StatusOr<std::unique_ptr<Store>> {
        std::string inner_name = options.inner;
        if (inner_name == "compressed") {
          return Status::InvalidArgument(
              "\"compressed\" cannot wrap itself");
        }
        XARCH_ASSIGN_OR_RETURN(
            std::unique_ptr<Store> inner,
            StoreRegistry::Create(inner_name, std::move(options)));
        return std::unique_ptr<Store>(
            std::make_unique<CompressedStore>(std::move(inner)));
      },
      [](const persist::SnapshotReader& snapshot,
         StoreOptions tuning) -> StatusOr<std::unique_ptr<Store>> {
        XARCH_ASSIGN_OR_RETURN(std::string_view inner_bytes,
                               snapshot.Section("inner"));
        XARCH_ASSIGN_OR_RETURN(std::unique_ptr<Store> inner,
                               StoreRegistry::Global().OpenFromBytes(
                                   inner_bytes, std::move(tuning)));
        return std::unique_ptr<Store>(
            std::make_unique<CompressedStore>(std::move(inner)));
      },
  }));
  must(registry.Register({
      "checkpoint-archive",
      "a fresh archive every k versions (Sec. 9 checkpointing)",
      kTemporalQueries | kBatchIngest | kCheckpoint | kQuery | kPersistence,
      [](StoreOptions options) -> StatusOr<std::unique_ptr<Store>> {
        XARCH_RETURN_NOT_OK(RequireSpec(options, "checkpoint-archive"));
        XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet scratch,
                               options.spec.Clone());
        return std::unique_ptr<Store>(std::make_unique<CheckpointArchiveStore>(
            std::move(options.spec), std::move(scratch),
            options.checkpoint_every, options.archive));
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions) {
        return CheckpointArchiveStore::Restore(snapshot);
      },
  }));
  must(registry.Register({
      "checkpoint-diff",
      "a full copy every k versions, deltas between (Sec. 9 checkpointing)",
      kBatchIngest | kCheckpoint | kQuery | kPersistence,
      [](StoreOptions options) -> StatusOr<std::unique_ptr<Store>> {
        return std::unique_ptr<Store>(
            std::make_unique<CheckpointDiffStore>(options.checkpoint_every));
      },
      [](const persist::SnapshotReader& snapshot, StoreOptions) {
        return CheckpointDiffStore::Restore(snapshot);
      },
  }));
  RegisterShardedStore(registry);
}

}  // namespace detail

}  // namespace xarch
