#include "xarch/shard.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "keys/label.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {

StatusOr<ShardRouter> ShardRouter::Make(keys::KeySpecSet spec, size_t shards,
                                        keys::AnnotateOptions annotate) {
  if (shards < 1 || shards > kMaxShards) {
    return Status::InvalidArgument(
        "shard count must be in 1-" + std::to_string(kMaxShards) + ", got " +
        std::to_string(shards));
  }
  if (spec.size() == 0) {
    return Status::InvalidArgument(
        "sharding requires a non-empty key specification (top-level keys "
        "are the partitioning domain)");
  }
  if (annotate.fingerprint_bits < 1 || annotate.fingerprint_bits > 64) {
    return Status::InvalidArgument("fingerprint bits out of range");
  }
  return ShardRouter(std::move(spec), shards, annotate);
}

size_t ShardRouter::ShardOfFingerprint(uint64_t fingerprint) const {
  const int bits = annotate_.fingerprint_bits;
  // fp * K / 2^bits without overflow; monotone in fp, so shard ranges are
  // contiguous fingerprint intervals.
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(fingerprint) * shards_;
  return static_cast<size_t>(scaled >> bits);
}

StatusOr<std::vector<std::string>> ShardRouter::SplitDocument(
    std::string_view xml_text) const {
  XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
  // Full-document validation up front: a version that violates the key
  // spec is rejected here, before any shard sees any part of it.
  XARCH_ASSIGN_OR_RETURN(keys::KeyedNode annotated,
                         keys::AnnotateKeys(*doc, spec_, annotate_));

  std::vector<std::string> out(shards_);
  if (annotated.is_frontier || annotated.children.empty()) {
    // Nothing keyed to route (a frontier root, or a childless one): the
    // whole document is shard 0's sub-document. Serializing the parse
    // keeps the bytes canonical regardless of input formatting.
    out[0] = xml::Serialize(*doc);
    for (size_t s = 1; s < shards_; ++s) {
      xml::NodePtr root = xml::Node::Element(doc->tag());
      for (const auto& [name, value] : doc->attrs()) {
        root->SetAttr(name, value);
      }
      out[s] = xml::Serialize(*root);
    }
    return out;
  }

  // Route every top-level keyed child. The annotated children are in
  // (fingerprint, label) order (AnnotateOptions::sort_children), and the
  // range partition is monotone in fingerprint, so appending in that
  // order gives each shard its children pre-sorted and the shards
  // themselves ordered: shard-order concatenation is the global order.
  std::unordered_map<const xml::Node*, xml::NodePtr> owned;
  owned.reserve(doc->children().size());
  for (xml::NodePtr& child : doc->mutable_children()) {
    const xml::Node* ptr = child.get();
    owned.emplace(ptr, std::move(child));
  }
  std::vector<xml::NodePtr> roots;
  roots.reserve(shards_);
  for (size_t s = 0; s < shards_; ++s) {
    xml::NodePtr root = xml::Node::Element(doc->tag());
    for (const auto& [name, value] : doc->attrs()) {
      root->SetAttr(name, value);
    }
    roots.push_back(std::move(root));
  }
  for (const keys::KeyedNode& child : annotated.children) {
    auto it = owned.find(child.node);
    if (it == owned.end() || it->second == nullptr) {
      return Status::Corruption("annotated child is not a document child");
    }
    const size_t s = ShardOfFingerprint(child.label.fingerprint);
    roots[s]->AddChild(std::move(it->second));
  }
  for (size_t s = 0; s < shards_; ++s) {
    out[s] = xml::Serialize(*roots[s]);
  }
  return out;
}

std::vector<size_t> ShardRouter::CandidateShards(
    const core::KeyStep& step) const {
  // Stored label parts are in canonical form: attribute paths ("@id")
  // keep the raw attribute text, element/content paths store the
  // canonical list form, which for plain text is "T" + text. A query
  // value is matched against both (FindChildByKeyStep), so each
  // non-attribute part doubles the candidate labels.
  std::vector<keys::Label> candidates(1);
  candidates[0].tag = step.tag;
  for (const auto& [path, value] : step.key) {
    const bool attribute = !path.empty() && path[0] == '@';
    const size_t n = candidates.size();
    if (!attribute) {
      if (n * 2 > 8) return {};  // combinatorial blow-up: scatter instead
      candidates.reserve(n * 2);
      for (size_t i = 0; i < n; ++i) {
        keys::Label doubled = candidates[i];
        doubled.parts.push_back({path, "T" + value});
        candidates.push_back(std::move(doubled));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      candidates[i].parts.push_back({path, value});
    }
  }
  std::vector<size_t> shards;
  for (keys::Label& label : candidates) {
    std::sort(label.parts.begin(), label.parts.end(),
              [](const keys::LabelPart& a, const keys::LabelPart& b) {
                return a.path < b.path;
              });
    label.ComputeFingerprint(annotate_.fingerprint_bits);
    const size_t s = ShardOfFingerprint(label.fingerprint);
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

}  // namespace xarch
