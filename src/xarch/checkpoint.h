#ifndef XARCH_XARCH_CHECKPOINT_H_
#define XARCH_XARCH_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/archive.h"
#include "diff/repository.h"
#include "keys/key_spec.h"
#include "util/status.h"

namespace xarch {

/// \brief Checkpointed storage, the Sec. 9 open issue: "in the case of our
/// archive, a fresh archive may be created at every kth addition and in
/// the case of a delta-based repository, an entire version of data is
/// stored as a whole for every kth version".
///
/// Checkpointing trades storage for bounded retrieval cost: any version is
/// reachable from the nearest checkpoint with at most k-1 delta
/// applications (diff variant) or one scan of a k-version archive.
///
/// Besides the automatic every-k boundaries, StartNewSegment() forces a
/// checkpoint before the next addition (Store v2's Checkpoint() call).
class CheckpointedDiffRepo {
 public:
  explicit CheckpointedDiffRepo(size_t checkpoint_every)
      : k_(checkpoint_every == 0 ? 1 : checkpoint_every) {}

  void AddVersion(const std::string& text);
  size_t version_count() const { return count_; }

  /// Forces the next AddVersion to open a fresh segment (i.e. store the
  /// version in full), regardless of k.
  void StartNewSegment() { pending_checkpoint_ = true; }

  /// Reconstructs version v from its checkpoint segment.
  StatusOr<std::string> Retrieve(Version v) const;

  /// Delta applications Retrieve(v) performs (bounded by k-1).
  size_t ApplicationsFor(Version v) const;

  size_t ByteSize() const;

  /// Concatenated repository bytes of all segments (compression input).
  std::string StoredBytes() const;

  size_t segment_count() const { return segments_.size(); }
  size_t checkpoint_every() const { return k_; }

  /// Appends the full state (k, pending flag, per-segment repositories) in
  /// the persistence wire format; DecodeState rebuilds it byte-identically
  /// (segment starts are re-derived from segment sizes) and rejects
  /// inconsistent input with kDataLoss.
  void EncodeState(std::string* out) const;
  static StatusOr<CheckpointedDiffRepo> DecodeState(std::string_view data);

 private:
  /// Index of the segment holding version v (v must be in 1..count_).
  size_t SegmentFor(Version v) const;

  size_t k_;
  size_t count_ = 0;
  bool pending_checkpoint_ = false;
  std::vector<diff::IncrementalDiffRepo> segments_;
  std::vector<Version> segment_start_;  ///< first version of each segment
};

/// \brief A sequence of archives, each covering k consecutive versions.
/// Bounds how far any archive diverges from the versions it stores (useful
/// when the key-mutation worst case of Fig. 14 would otherwise make one
/// archive grow without bound).
class CheckpointedArchive {
 public:
  CheckpointedArchive(keys::KeySpecSet spec, size_t checkpoint_every,
                      core::ArchiveOptions options = {});

  Status AddVersion(const xml::Node& version_root);
  Version version_count() const { return count_; }

  /// Forces the next AddVersion to open a fresh segment archive.
  void StartNewSegment() { pending_checkpoint_ = true; }

  /// Retrieves version v from the segment archive holding it.
  StatusOr<xml::NodePtr> RetrieveVersion(Version v) const;

  /// History of an element: the union of its per-segment histories,
  /// shifted to global version numbers.
  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path) const;

  size_t ByteSize() const;

  /// Concatenated (indentation-free) XML of all segment archives.
  std::string StoredBytes() const;

  size_t segment_count() const { return segments_.size(); }
  size_t checkpoint_every() const { return k_; }

  /// The per-segment archives, oldest first (persistence reads them out).
  const std::vector<core::Archive>& segments() const { return segments_; }
  bool pending_checkpoint() const { return pending_checkpoint_; }
  const core::ArchiveOptions& options() const { return options_; }

  /// Rebuilds a checkpointed archive from restored segment archives.
  /// Segment starts and the version count are re-derived from the segment
  /// sizes; an empty segment anywhere is rejected (no ingest produces one).
  static StatusOr<CheckpointedArchive> Restore(
      keys::KeySpecSet spec, size_t checkpoint_every,
      core::ArchiveOptions options, std::vector<core::Archive> segments,
      bool pending_checkpoint);

 private:
  size_t SegmentFor(Version v) const;

  keys::KeySpecSet spec_;
  size_t k_;
  core::ArchiveOptions options_;
  Version count_ = 0;
  bool pending_checkpoint_ = false;
  std::vector<core::Archive> segments_;
  std::vector<Version> segment_start_;  ///< first version of each segment
};

}  // namespace xarch

#endif  // XARCH_XARCH_CHECKPOINT_H_
