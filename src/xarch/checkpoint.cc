#include "xarch/checkpoint.h"

#include <algorithm>
#include <utility>

#include "persist/wire.h"

namespace xarch {

namespace {

/// Index of the segment covering v given each segment's first version.
size_t SegmentIndex(const std::vector<Version>& starts, Version v) {
  auto it = std::upper_bound(starts.begin(), starts.end(), v);
  return static_cast<size_t>(it - starts.begin()) - 1;
}

}  // namespace

void CheckpointedDiffRepo::AddVersion(const std::string& text) {
  if (segments_.empty() || pending_checkpoint_ ||
      segments_.back().version_count() >= k_) {
    segments_.emplace_back();  // fresh segment: version stored in full
    segment_start_.push_back(static_cast<Version>(count_ + 1));
    pending_checkpoint_ = false;
  }
  segments_.back().AddVersion(text);
  ++count_;
}

size_t CheckpointedDiffRepo::SegmentFor(Version v) const {
  return SegmentIndex(segment_start_, v);
}

StatusOr<std::string> CheckpointedDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  size_t segment = SegmentFor(v);
  return segments_[segment].Retrieve(v - segment_start_[segment] + 1);
}

size_t CheckpointedDiffRepo::ApplicationsFor(Version v) const {
  if (v == 0 || v > count_) return 0;
  return v - segment_start_[SegmentFor(v)];
}

size_t CheckpointedDiffRepo::ByteSize() const {
  size_t total = 0;
  for (const auto& segment : segments_) total += segment.ByteSize();
  return total;
}

std::string CheckpointedDiffRepo::StoredBytes() const {
  std::string out;
  for (const auto& segment : segments_) out += segment.ConcatenatedBytes();
  return out;
}

void CheckpointedDiffRepo::EncodeState(std::string* out) const {
  persist::PutU64(k_, out);
  persist::PutU8(pending_checkpoint_ ? 1 : 0, out);
  persist::PutU32(static_cast<uint32_t>(segments_.size()), out);
  for (const auto& segment : segments_) {
    std::string bytes;
    segment.EncodeState(&bytes);
    persist::PutBytes(bytes, out);
  }
}

StatusOr<CheckpointedDiffRepo> CheckpointedDiffRepo::DecodeState(
    std::string_view data) {
  persist::Cursor cursor(data);
  uint64_t k = 0;
  uint8_t pending = 0;
  uint32_t nsegments = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&k));
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&pending));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&nsegments));
  if (k == 0) {
    return Status::DataLoss("checkpointed repository snapshot declares k=0");
  }
  CheckpointedDiffRepo repo(static_cast<size_t>(k));
  repo.pending_checkpoint_ = pending != 0;
  for (uint32_t i = 0; i < nsegments; ++i) {
    std::string_view bytes;
    XARCH_RETURN_NOT_OK(cursor.ReadBytes(&bytes));
    XARCH_ASSIGN_OR_RETURN(diff::IncrementalDiffRepo segment,
                           diff::IncrementalDiffRepo::DecodeState(bytes));
    if (segment.version_count() == 0) {
      return Status::DataLoss("checkpoint segment " + std::to_string(i) +
                              " is empty");
    }
    repo.segment_start_.push_back(static_cast<Version>(repo.count_ + 1));
    repo.count_ += segment.version_count();
    repo.segments_.push_back(std::move(segment));
  }
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  return repo;
}

CheckpointedArchive::CheckpointedArchive(keys::KeySpecSet spec,
                                         size_t checkpoint_every,
                                         core::ArchiveOptions options)
    : spec_(std::move(spec)),
      k_(checkpoint_every == 0 ? 1 : checkpoint_every),
      options_(options) {}

Status CheckpointedArchive::AddVersion(const xml::Node& version_root) {
  if (segments_.empty() || pending_checkpoint_ ||
      segments_.back().version_count() >= k_) {
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, spec_.Clone());
    segments_.emplace_back(std::move(spec), options_);
    segment_start_.push_back(static_cast<Version>(count_ + 1));
    pending_checkpoint_ = false;
  }
  XARCH_RETURN_NOT_OK(segments_.back().AddVersion(version_root));
  ++count_;
  return Status::OK();
}

size_t CheckpointedArchive::SegmentFor(Version v) const {
  return SegmentIndex(segment_start_, v);
}

StatusOr<xml::NodePtr> CheckpointedArchive::RetrieveVersion(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) + " not archived");
  }
  size_t segment = SegmentFor(v);
  return segments_[segment].RetrieveVersion(v - segment_start_[segment] + 1);
}

StatusOr<VersionSet> CheckpointedArchive::History(
    const std::vector<core::KeyStep>& path) const {
  VersionSet out;
  bool found = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    auto local = segments_[i].History(path);
    if (!local.ok()) {
      if (local.status().code() == StatusCode::kNotFound) continue;
      return local.status();
    }
    found = true;
    Version base = segment_start_[i] - 1;
    for (const auto& [lo, hi] : local->intervals()) {
      out.UnionWith(VersionSet::Interval(lo + base, hi + base));
    }
  }
  if (!found) {
    return Status::NotFound("element does not exist in any segment");
  }
  return out;
}

size_t CheckpointedArchive::ByteSize() const {
  core::ArchiveSerializeOptions options;
  options.indent_width = 0;
  size_t total = 0;
  for (const auto& segment : segments_) {
    total += segment.ToXml(options).size();
  }
  return total;
}

std::string CheckpointedArchive::StoredBytes() const {
  core::ArchiveSerializeOptions options;
  options.indent_width = 0;
  std::string out;
  for (const auto& segment : segments_) out += segment.ToXml(options);
  return out;
}

StatusOr<CheckpointedArchive> CheckpointedArchive::Restore(
    keys::KeySpecSet spec, size_t checkpoint_every,
    core::ArchiveOptions options, std::vector<core::Archive> segments,
    bool pending_checkpoint) {
  CheckpointedArchive out(std::move(spec), checkpoint_every, options);
  out.pending_checkpoint_ = pending_checkpoint;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].version_count() == 0) {
      return Status::DataLoss("checkpoint segment " + std::to_string(i) +
                              " is empty");
    }
    out.segment_start_.push_back(static_cast<Version>(out.count_ + 1));
    out.count_ += segments[i].version_count();
    out.segments_.push_back(std::move(segments[i]));
  }
  return out;
}

}  // namespace xarch
