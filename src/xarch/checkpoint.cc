#include "xarch/checkpoint.h"

namespace xarch {

void CheckpointedDiffRepo::AddVersion(const std::string& text) {
  if (count_ % k_ == 0) {
    segments_.emplace_back();  // fresh segment: version stored in full
  }
  segments_.back().AddVersion(text);
  ++count_;
}

StatusOr<std::string> CheckpointedDiffRepo::Retrieve(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) +
                            " not in repository");
  }
  size_t segment = (v - 1) / k_;
  return segments_[segment].Retrieve(static_cast<Version>((v - 1) % k_ + 1));
}

size_t CheckpointedDiffRepo::ByteSize() const {
  size_t total = 0;
  for (const auto& segment : segments_) total += segment.ByteSize();
  return total;
}

CheckpointedArchive::CheckpointedArchive(keys::KeySpecSet spec,
                                         size_t checkpoint_every,
                                         core::ArchiveOptions options)
    : spec_(std::move(spec)),
      k_(checkpoint_every == 0 ? 1 : checkpoint_every),
      options_(options) {}

Status CheckpointedArchive::AddVersion(const xml::Node& version_root) {
  if (count_ % k_ == 0) {
    XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet spec, spec_.Clone());
    segments_.emplace_back(std::move(spec), options_);
  }
  XARCH_RETURN_NOT_OK(segments_.back().AddVersion(version_root));
  ++count_;
  return Status::OK();
}

StatusOr<xml::NodePtr> CheckpointedArchive::RetrieveVersion(Version v) const {
  if (v == 0 || v > count_) {
    return Status::NotFound("version " + std::to_string(v) + " not archived");
  }
  size_t segment = (v - 1) / k_;
  return segments_[segment].RetrieveVersion(
      static_cast<Version>((v - 1) % k_ + 1));
}

StatusOr<VersionSet> CheckpointedArchive::History(
    const std::vector<core::KeyStep>& path) const {
  VersionSet out;
  bool found = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    auto local = segments_[i].History(path);
    if (!local.ok()) {
      if (local.status().code() == StatusCode::kNotFound) continue;
      return local.status();
    }
    found = true;
    Version base = static_cast<Version>(i * k_);
    for (const auto& [lo, hi] : local->intervals()) {
      out.UnionWith(VersionSet::Interval(lo + base, hi + base));
    }
  }
  if (!found) {
    return Status::NotFound("element does not exist in any segment");
  }
  return out;
}

size_t CheckpointedArchive::ByteSize() const {
  core::ArchiveSerializeOptions options;
  options.indent_width = 0;
  size_t total = 0;
  for (const auto& segment : segments_) {
    total += segment.ToXml(options).size();
  }
  return total;
}

}  // namespace xarch
