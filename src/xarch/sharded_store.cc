#include "xarch/sharded_store.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/container.h"
#include "persist/wire.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/planner.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {

namespace {

std::string ShardSpecText(const keys::KeySpecSet& spec) {
  std::string out;
  for (const auto& key : spec.keys()) {
    out += key.ToString();
    out += '\n';
  }
  return out;
}

/// Parse + plan for the scatter/gather access strategy, mirroring the
/// trace behaviour of the base Store::QueryImpl (parse and plan spans,
/// `explain analyze` promoting the local trace).
StatusOr<query::Plan> ParseAndPlanScatter(std::string_view query_text,
                                          obs::Trace* analyze_trace,
                                          obs::Trace** trace) {
  const uint64_t parse_start = obs::MonotonicMicros();
  XARCH_ASSIGN_OR_RETURN(query::Query ast, query::Parse(query_text));
  const uint64_t parse_end = obs::MonotonicMicros();
  if (ast.analyze && *trace == nullptr) *trace = analyze_trace;
  if (*trace != nullptr) {
    (*trace)->AddCompleted("parse", obs::Trace::kNoSpan, parse_start,
                           parse_end);
  }
  const uint64_t plan_start = obs::MonotonicMicros();
  query::Plan plan =
      query::MakePlan(std::move(ast), query::Access::kShardScatter);
  if (*trace != nullptr) {
    (*trace)->AddCompleted("plan", obs::Trace::kNoSpan, plan_start,
                           obs::MonotonicMicros());
  }
  return plan;
}

}  // namespace

// ------------------------------------------------------------ ShardedStore

ShardedStore::ShardedStore(ShardRouter router,
                           std::vector<std::unique_ptr<Store>> shards,
                           Version committed, ShardedStoreOptions options)
    : router_(std::move(router)),
      shards_(std::move(shards)),
      options_(std::move(options)),
      committed_(committed),
      counters_(new ShardCounters[shards_.size()]) {
  // Register the per-shard families eagerly so their label cardinality
  // equals the shard count from the moment the store exists (the metrics
  // gate checks cardinality, not traffic).
  obs::Registry& reg = obs::Registry::Default();
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::string labels = "shard=\"" + std::to_string(s) + "\"";
    counters_[s].ingest_documents =
        reg.GetCounter("xarch_shard_ingest_documents_total", labels,
                       "Sub-documents ingested per shard");
    counters_[s].scatter_reads_total =
        reg.GetCounter("xarch_shard_scatter_reads_total", labels,
                       "Scatter read probes (Retrieve/History/Diff) per shard");
    counters_[s].routed_total =
        reg.GetCounter("xarch_shard_routed_queries_total", labels,
                       "Whole queries routed to a single shard by key");
  }
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Make(
    ShardRouter router, std::vector<std::unique_ptr<Store>> shards,
    Version committed, ShardedStoreOptions options) {
  if (shards.size() != router.shard_count()) {
    return Status::InvalidArgument(
        "sharded store needs exactly " +
        std::to_string(router.shard_count()) + " shards, got " +
        std::to_string(shards.size()));
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s] == nullptr) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " is null");
    }
    if (!shards[s]->Has(kBatchIngest)) {
      return Status::InvalidArgument(
          "sharded ingest fans AppendBatch across shards; inner backend \"" +
          shards[s]->name() + "\" does not advertise batch-ingest");
    }
    const Version held = shards[s]->version_count();
    if (held != committed) {
      return Status::DataLoss(
          "shard " + std::to_string(s) + " holds " + std::to_string(held) +
          " versions but the store-level commit point is " +
          std::to_string(committed) +
          " — reopen through the durable layer to realign");
    }
  }
  return std::unique_ptr<ShardedStore>(new ShardedStore(
      std::move(router), std::move(shards), committed, std::move(options)));
}

std::string ShardedStore::name() const {
  return "sharded(" + shards_[0]->name() + ")x" +
         std::to_string(shards_.size());
}

Capabilities ShardedStore::capabilities() const {
  // Scatter reads need only Retrieve(); History/Diff, checkpointing, and
  // snapshots follow the inner backend.
  Capabilities caps = kBatchIngest | kStreamingRetrieve | kQuery;
  caps |= shards_[0]->capabilities() &
          (kTemporalQueries | kCheckpoint | kPersistence);
  return caps;
}

util::ThreadPool& ShardedStore::pool() const {
  return options_.pool != nullptr ? *options_.pool
                                  : util::ThreadPool::Shared();
}

uint64_t ShardedStore::scatter_reads(size_t i) const {
  return counters_[i].scatter_reads.load(std::memory_order_relaxed);
}

void ShardedStore::CountScatterRead(size_t shard) const {
  counters_[shard].scatter_reads.fetch_add(1, std::memory_order_relaxed);
  counters_[shard].scatter_reads_total->Increment();
}

void ShardedStore::CountRouted(size_t shard) const {
  counters_[shard].routed.fetch_add(1, std::memory_order_relaxed);
  counters_[shard].routed_total->Increment();
}

Status ShardedStore::WithShardsExclusive(
    const std::function<Status(Store&)>& fn) {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  for (const auto& shard : shards_) {
    XARCH_RETURN_NOT_OK(fn(*shard));
  }
  return Status::OK();
}

// ------------------------------------------------------------------ ingest

Status ShardedStore::AppendImpl(std::string_view xml_text) {
  return AppendBatchImpl({xml_text});
}

Status ShardedStore::AppendBatchImpl(
    const std::vector<std::string_view>& texts) {
  if (texts.empty()) return Status::OK();
  // The outer lock is shared (delegated ingest): serialize writers here so
  // readers of other shards keep running while this batch is applied.
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kIoError,
                  "sharded store is poisoned by an earlier partial ingest; "
                  "reopen to realign the shards");
  }

  // Split (and thereby fully validate) every document before any shard is
  // touched: a bad document rejects the whole batch with the store
  // unchanged, preserving the archive backend's batch atomicity.
  std::vector<std::vector<std::string>> split;
  split.reserve(texts.size());
  for (std::string_view text : texts) {
    XARCH_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                           router_.SplitDocument(text));
    split.push_back(std::move(parts));
  }

  // Fan the per-shard batches across the pool: one nested-merge pass per
  // shard, each under its own shard's exclusive lock.
  const size_t n_shards = shards_.size();
  std::vector<Status> applied(n_shards);
  auto apply = [&](size_t s) {
    std::vector<std::string_view> views;
    views.reserve(split.size());
    for (const std::vector<std::string>& parts : split) {
      views.push_back(parts[s]);
    }
    applied[s] = shards_[s]->AppendBatch(views);
  };
  if (n_shards > 1 && pool().size() > 0) {
    pool().ParallelFor(n_shards, apply);
  } else {
    for (size_t s = 0; s < n_shards; ++s) apply(s);
  }

  bool any_ok = false, any_failed = false;
  Status first_failure;
  for (size_t s = 0; s < n_shards; ++s) {
    if (applied[s].ok()) {
      any_ok = true;
    } else {
      any_failed = true;
      if (first_failure.ok()) first_failure = applied[s];
    }
  }
  if (any_failed) {
    if (any_ok) {
      // Shards diverged after validation passed — should not happen for
      // well-formed sub-documents. Refuse further ingest; readers stay at
      // the committed count, which no shard has retracted.
      poisoned_.store(true, std::memory_order_release);
    }
    return first_failure;
  }

  // Commit: make the batch atomic across shards (the durable layer writes
  // the version manifest here), then publish the new count to readers.
  const Version next =
      committed_.load(std::memory_order_relaxed) +
      static_cast<Version>(texts.size());
  if (options_.commit) {
    Status committed_status = options_.commit(next);
    if (!committed_status.ok()) {
      // Applied but not committed: the ingest is NOT acknowledged and a
      // reopen rolls every shard back to the previous manifest.
      poisoned_.store(true, std::memory_order_release);
      return committed_status;
    }
  }
  committed_.store(next, std::memory_order_release);

  static obs::Counter* batches = obs::Registry::Default().GetCounter(
      "xarch_ingest_batches_total", "backend=\"sharded\"",
      "Ingest calls (Append or AppendBatch) by backend");
  static obs::Counter* documents = obs::Registry::Default().GetCounter(
      "xarch_ingest_documents_total", "backend=\"sharded\"",
      "Documents ingested by backend");
  batches->Increment();
  documents->Add(texts.size());
  for (size_t s = 0; s < n_shards; ++s) {
    counters_[s].ingest_documents->Add(texts.size());
  }
  return Status::OK();
}

Status ShardedStore::CheckpointImpl() {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  for (const auto& shard : shards_) {
    if (shard->Has(kCheckpoint)) {
      XARCH_RETURN_NOT_OK(shard->Checkpoint());
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------------- reads

StatusOr<std::string> ShardedStore::MergedRetrieve(Version v) {
  const Version limit = committed();
  if (v == 0 || v > limit) {
    return Status::NotFound("version " + std::to_string(v) +
                            " is not archived (have 1-" +
                            std::to_string(limit) + ")");
  }
  const size_t n_shards = shards_.size();
  std::vector<std::string> parts(n_shards);
  std::vector<Status> fetched(n_shards);
  auto fetch = [&](size_t s) {
    CountScatterRead(s);
    auto part = shards_[s]->Retrieve(v);
    if (part.ok()) {
      parts[s] = std::move(*part);
    } else {
      fetched[s] = part.status();
    }
  };
  if (n_shards > 1 && pool().size() > 0) {
    pool().ParallelFor(n_shards, fetch);
  } else {
    for (size_t s = 0; s < n_shards; ++s) fetch(s);
  }
  for (const Status& status : fetched) {
    XARCH_RETURN_NOT_OK(status);
  }

  // Gather: move every shard's children under one root. Shard order IS
  // global (fingerprint, label) order — the router's range partition is
  // monotone — so plain concatenation reproduces the unsharded archive's
  // child order byte-for-byte.
  xml::NodePtr merged;
  for (size_t s = 0; s < n_shards; ++s) {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(parts[s]));
    if (merged == nullptr) {
      merged = xml::Node::Element(doc->tag());
      for (const auto& [name, value] : doc->attrs()) {
        merged->SetAttr(name, value);
      }
    }
    for (xml::NodePtr& child : doc->mutable_children()) {
      merged->AddChild(std::move(child));
    }
  }
  return xml::Serialize(*merged);
}

StatusOr<std::string> ShardedStore::RetrieveImpl(Version v) {
  return MergedRetrieve(v);
}

Status ShardedStore::RetrieveToImpl(Version v, Sink& sink) {
  XARCH_ASSIGN_OR_RETURN(std::string text, MergedRetrieve(v));
  XARCH_RETURN_NOT_OK(sink.Append(text));
  return sink.Flush();
}

StatusOr<VersionSet> ShardedStore::HistoryImpl(
    const std::vector<core::KeyStep>& path) {
  const Version limit = committed();
  // The second step names a top-level keyed element, which the router maps
  // to at most two candidate shards (stored-form ambiguity); anything
  // shallower lives identically in every shard, so shard 0 is canonical.
  std::vector<size_t> probe;
  if (path.size() >= 2) {
    probe = router_.CandidateShards(path[1]);
  } else {
    probe.assign(1, 0);
  }
  if (probe.empty()) {  // combinatorial blow-up in the router: scatter
    probe.resize(shards_.size());
    std::iota(probe.begin(), probe.end(), size_t{0});
  }

  VersionSet united;
  bool any_ok = false;
  Status first_miss;
  for (size_t s : probe) {
    CountScatterRead(s);
    auto history = shards_[s]->History(path);
    if (history.ok()) {
      united.UnionWith(*history);
      any_ok = true;
    } else if (history.status().code() == StatusCode::kNotFound) {
      if (first_miss.ok()) first_miss = history.status();
    } else {
      return history.status();
    }
  }
  if (!any_ok) return first_miss;
  // Clamp to the commit point: a shard mid-ingest may already hold a
  // version the manifest has not published.
  if (limit == 0) {
    return Status::NotFound("no element " + path.back().tag +
                            " on the given path");
  }
  VersionSet clamped = united.IntersectWith(VersionSet::Interval(1, limit));
  if (clamped.empty()) {
    return Status::NotFound("no element " + path.back().tag +
                            " on the given path");
  }
  return clamped;
}

StatusOr<std::vector<core::Change>> ShardedStore::DiffVersionsImpl(
    Version from, Version to) {
  const Version limit = committed();
  if (from == 0 || to == 0 || from > limit || to > limit) {
    // Byte-identical to core::DescribeChanges' own range error.
    return Status::InvalidArgument("versions must be in 1-" +
                                   std::to_string(limit));
  }
  const size_t n_shards = shards_.size();
  std::vector<std::vector<core::Change>> per_shard(n_shards);
  std::vector<Status> ran(n_shards);
  auto diff = [&](size_t s) {
    CountScatterRead(s);
    auto changes = shards_[s]->DiffVersions(from, to);
    if (changes.ok()) {
      per_shard[s] = std::move(*changes);
    } else {
      ran[s] = changes.status();
    }
  };
  if (n_shards > 1 && pool().size() > 0) {
    pool().ParallelFor(n_shards, diff);
  } else {
    for (size_t s = 0; s < n_shards; ++s) diff(s);
  }
  for (const Status& status : ran) {
    XARCH_RETURN_NOT_OK(status);
  }
  // Per-shard change lists concatenate in shard order = the unsharded
  // walk's top-level (fingerprint, label) order.
  std::vector<core::Change> merged;
  size_t total = 0;
  for (const auto& changes : per_shard) total += changes.size();
  merged.reserve(total);
  for (auto& changes : per_shard) {
    std::move(changes.begin(), changes.end(), std::back_inserter(merged));
  }
  return merged;
}

// ------------------------------------------------------------------ queries

Status ShardedStore::QueryImpl(std::string_view query_text, Sink& sink,
                               obs::Trace* trace) {
  obs::Trace analyze_trace;
  XARCH_ASSIGN_OR_RETURN(
      query::Plan plan,
      ParseAndPlanScatter(query_text, &analyze_trace, &trace));

  // Routed fast path: a query whose first keyed step pins one shard is
  // answered wholly by that shard's own (possibly indexed, streaming)
  // plan — byte-identical because the matched subtree lives there whole
  // and shard version numbering is global. History is excluded (its
  // result must be clamped to the commit point, which the inner store
  // cannot do), as is EXPLAIN (the report must show the scatter plan).
  const Version limit = committed();
  const query::Temporal& temporal = plan.ast.temporal;
  const bool bounded =
      (temporal.kind == query::TemporalKind::kVersion &&
       temporal.from >= 1 && temporal.from <= limit) ||
      ((temporal.kind == query::TemporalKind::kRange ||
        temporal.kind == query::TemporalKind::kDiff) &&
       temporal.from >= 1 && temporal.from <= limit && temporal.to >= 1 &&
       temporal.to <= limit);
  if (!plan.ast.explain && bounded && plan.ast.steps.size() >= 2 &&
      plan.ast.steps[1].keyed()) {
    std::vector<size_t> candidates =
        router_.CandidateShards(plan.ast.steps[1].ToKeyStep());
    if (candidates.size() == 1) {
      const size_t s = candidates[0];
      CountRouted(s);
      // The inner store counts this evaluation in its own stats, which
      // BackendStats() sums — no CountQuery here, or it would be double.
      return shards_[s]->Query(query_text, sink, trace);
    }
  }

  // Scatter path: the interface-level plan over this store's primitives —
  // every Retrieve/History/DiffVersions inside it scatters to (or routes
  // within) the shards via the Impl hooks above.
  StorePrimitives primitives = Primitives();
  query::EvalOptions eval_options;
  eval_options.pool = &pool();
  eval_options.trace = trace;
  std::vector<uint64_t> before(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    before[s] = counters_[s].scatter_reads.load(std::memory_order_relaxed);
  }
  query::EvalResult result;
  Status status;
  if (plan.ast.explain) {
    CountingSink discard;
    Status eval_status = query::EvaluateOverStore(plan, primitives, discard,
                                                  &result, eval_options);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const uint64_t probes =
          counters_[s].scatter_reads.load(std::memory_order_relaxed) -
          before[s];
      result.shards.push_back({s, probes});
    }
    CountQuery(result);
    XARCH_RETURN_NOT_OK(sink.Append(
        query::FormatExplain(plan, result, eval_status, eval_options.trace)));
    return sink.Flush();
  }
  status = query::EvaluateOverStore(plan, primitives, sink, &result,
                                    eval_options);
  CountQuery(result);
  return status;
}

// ------------------------------------------------------------ introspection

Version ShardedStore::VersionCountImpl() const { return committed(); }

StoreStats ShardedStore::BackendStats() const {
  StoreStats stats;
  stats.versions = committed();
  for (const auto& shard : shards_) {
    StoreStats inner = shard->Stats();
    stats.stored_bytes += inner.stored_bytes;
    stats.node_count += inner.node_count;
    stats.merge_passes += inner.merge_passes;
    // Shards checkpoint at the same boundaries, so these are parallel
    // copies of one logical value — report the worst shard, not the sum.
    stats.checkpoint_segments =
        std::max(stats.checkpoint_segments, inner.checkpoint_segments);
    stats.max_retrieval_applications =
        std::max(stats.max_retrieval_applications,
                 inner.max_retrieval_applications);
    stats.queries += inner.queries;
    stats.query_tree_probes += inner.query_tree_probes;
    stats.query_naive_probes += inner.query_naive_probes;
    stats.query_comparisons += inner.query_comparisons;
  }
  return stats;
}

std::string ShardedStore::StoredBytesImpl() const {
  std::string out;
  for (const auto& shard : shards_) {
    out += shard->StoredBytes();
  }
  return out;
}

Status ShardedStore::SnapshotImpl(persist::SnapshotWriter& writer) const {
  // Exclude a concurrent commit so every shard section captures the same
  // committed version count (the outer lock is only shared for us).
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  writer.Add("backend", "sharded");
  writer.Add("spec", ShardSpecText(router_.spec()));
  std::string opts;
  persist::PutU32(static_cast<uint32_t>(shards_.size()), &opts);
  persist::PutU64(committed(), &opts);
  persist::PutU32(
      static_cast<uint32_t>(router_.annotate_options().fingerprint_bits),
      &opts);
  persist::PutU8(router_.annotate_options().sort_children ? 1 : 0, &opts);
  writer.Add("opts", std::move(opts));
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Each shard section is the shard's own snapshot container, nested
    // whole (it is self-describing and carries its own checksums).
    XARCH_ASSIGN_OR_RETURN(std::string bytes, shards_[s]->SaveToBytes());
    writer.Add("shard" + std::to_string(s), std::move(bytes));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- registry

namespace {

/// Per-shard construction/tuning options derived from the sharded store's
/// own: everything copies through except the spec (cloned — it is
/// move-only) and the extmem work dir (suffixed so shards do not collide).
StatusOr<StoreOptions> ShardStoreOptions(const StoreOptions& base, size_t s) {
  StoreOptions out;
  if (base.spec.size() != 0) {
    XARCH_ASSIGN_OR_RETURN(out.spec, base.spec.Clone());
  }
  out.archive = base.archive;
  out.checkpoint_every = base.checkpoint_every;
  out.extmem = base.extmem;
  if (base.extmem.work_dir !=
      extmem::ExternalArchiver::Options{}.work_dir) {
    out.extmem.work_dir = base.extmem.work_dir + "-shard" + std::to_string(s);
  }
  out.inner = "archive";
  out.use_index = base.use_index;
  out.shards = 1;
  out.snapshot_format = base.snapshot_format;
  return out;
}

StatusOr<std::unique_ptr<Store>> MakeShardedBackend(StoreOptions options) {
  if (options.spec.size() == 0) {
    return Status::InvalidArgument(
        "sharded requires StoreOptions::spec (a non-empty key "
        "specification): top-level keys are the partitioning domain");
  }
  const std::string inner = options.inner.empty() ? "archive" : options.inner;
  if (inner == "sharded") {
    return Status::InvalidArgument("\"sharded\" cannot wrap itself");
  }
  XARCH_ASSIGN_OR_RETURN(keys::KeySpecSet router_spec, options.spec.Clone());
  XARCH_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Make(std::move(router_spec), options.shards,
                        options.archive.annotate));
  std::vector<std::unique_ptr<Store>> shards;
  shards.reserve(router.shard_count());
  for (size_t s = 0; s < router.shard_count(); ++s) {
    XARCH_ASSIGN_OR_RETURN(StoreOptions shard_options,
                           ShardStoreOptions(options, s));
    XARCH_ASSIGN_OR_RETURN(
        std::unique_ptr<Store> shard,
        StoreRegistry::Create(inner, std::move(shard_options)));
    shards.push_back(std::move(shard));
  }
  XARCH_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStore> store,
      ShardedStore::Make(std::move(router), std::move(shards), 0, {}));
  return std::unique_ptr<Store>(std::move(store));
}

StatusOr<std::unique_ptr<Store>> RestoreShardedBackend(
    const persist::SnapshotReader& snapshot, StoreOptions tuning) {
  XARCH_ASSIGN_OR_RETURN(std::string_view spec_text,
                         snapshot.Section("spec"));
  auto spec = keys::ParseKeySpecSet(spec_text);
  if (!spec.ok()) {
    return Status::DataLoss("snapshot key specification does not parse: " +
                            spec.status().message());
  }
  XARCH_ASSIGN_OR_RETURN(std::string_view opts, snapshot.Section("opts"));
  persist::Cursor cursor(opts);
  uint32_t n_shards = 0, fingerprint_bits = 0;
  uint64_t committed = 0;
  uint8_t sort_children = 0;
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&n_shards));
  XARCH_RETURN_NOT_OK(cursor.ReadU64(&committed));
  XARCH_RETURN_NOT_OK(cursor.ReadU32(&fingerprint_bits));
  XARCH_RETURN_NOT_OK(cursor.ReadU8(&sort_children));
  XARCH_RETURN_NOT_OK(cursor.ExpectDone());
  if (n_shards < 1 || n_shards > ShardRouter::kMaxShards ||
      fingerprint_bits == 0 || fingerprint_bits > 64) {
    return Status::DataLoss("sharded snapshot options are out of range");
  }
  keys::AnnotateOptions annotate;
  annotate.fingerprint_bits = static_cast<int>(fingerprint_bits);
  annotate.sort_children = sort_children != 0;
  XARCH_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Make(std::move(*spec), n_shards, annotate));
  std::vector<std::unique_ptr<Store>> shards;
  shards.reserve(n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    XARCH_ASSIGN_OR_RETURN(std::string_view bytes,
                           snapshot.Section("shard" + std::to_string(s)));
    XARCH_ASSIGN_OR_RETURN(StoreOptions shard_tuning,
                           ShardStoreOptions(tuning, s));
    XARCH_ASSIGN_OR_RETURN(std::unique_ptr<Store> shard,
                           StoreRegistry::Global().OpenFromBytes(
                               bytes, std::move(shard_tuning)));
    shards.push_back(std::move(shard));
  }
  XARCH_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStore> store,
      ShardedStore::Make(std::move(router), std::move(shards),
                         static_cast<Version>(committed), {}));
  return std::unique_ptr<Store>(std::move(store));
}

}  // namespace

namespace detail {

void RegisterShardedStore(StoreRegistry& registry) {
  Status status = registry.Register({
      "sharded",
      "K independent key-range shards of StoreOptions::inner, parallel "
      "ingest and scatter/gather queries (StoreOptions::shards)",
      kTemporalQueries | kStreamingRetrieve | kBatchIngest | kQuery |
          kPersistence,
      MakeShardedBackend,
      RestoreShardedBackend,
  });
  (void)status;
  assert(status.ok());
}

}  // namespace detail

}  // namespace xarch
