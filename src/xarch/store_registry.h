#ifndef XARCH_XARCH_STORE_REGISTRY_H_
#define XARCH_XARCH_STORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xarch/store.h"

namespace xarch {

namespace persist {
class SnapshotReader;
class SnapshotView;
}  // namespace persist

/// \brief String-keyed factory registry of Store backends.
///
/// Built-in backends self-register on first use of Global(). Every
/// backend answers XAQL queries (Store::Query); archive backends evaluate
/// them with the streaming archive plan, the rest with the interface-level
/// fallback:
///
///   name                 capabilities
///   "archive"            temporal-queries | streaming-retrieve |
///                        batch-ingest | query
///   "archive-weave"      temporal-queries | streaming-retrieve |
///                        batch-ingest | query
///   "incr-diff"          batch-ingest | query
///   "cum-diff"           batch-ingest | query
///   "full-copy"          batch-ingest | streaming-retrieve | query
///   "extmem"             batch-ingest | query
///   "compressed"         (follows the wrapped backend, StoreOptions::inner)
///   "checkpoint-archive" temporal-queries | batch-ingest | checkpoint |
///                        query
///   "checkpoint-diff"    batch-ingest | checkpoint | query
///
/// Every built-in additionally advertises `persist`: SaveToFile snapshots
/// round-trip through OpenFromFile with byte-identical retrieval.
///
/// Out-of-tree backends register through Global().Register().
class StoreRegistry {
 public:
  using Factory =
      std::function<StatusOr<std::unique_ptr<Store>>(StoreOptions options)>;

  /// Rebuilds a store from a parsed snapshot container (Store::SaveToFile
  /// output). `tuning` supplies only the knobs a snapshot deliberately
  /// does not pin — the extmem working directory and memory budget — and
  /// is ignored by backends whose state is self-contained.
  using Restorer = std::function<StatusOr<std::unique_ptr<Store>>(
      const persist::SnapshotReader& snapshot, StoreOptions tuning)>;

  /// Rebuilds a store over a verified XAR2 snapshot view without copying
  /// its payloads: the restorer keeps (a copy of) the view, whose shared
  /// storage is the mapped file itself on the OpenFromFile path.
  using ViewRestorer = std::function<StatusOr<std::unique_ptr<Store>>(
      const persist::SnapshotView& snapshot, StoreOptions tuning)>;

  /// One registered backend.
  struct Entry {
    std::string name;
    std::string description;
    /// Capabilities instances will advertise ("compressed" follows its
    /// wrapped backend; this field then reflects the default inner).
    Capabilities capabilities = 0;
    Factory factory;
    /// Optional: absent means snapshots of this backend cannot be opened
    /// (OpenFromFile fails with kUnimplemented).
    Restorer restorer;
    /// Optional: opens XAR2 snapshots mapped-read-only. Absent means XAR2
    /// snapshots naming this backend cannot be opened (the built-in
    /// archive backends are the only XAR2 writers and both register one).
    ViewRestorer view_restorer;
  };

  /// The process-wide registry with all built-in backends registered.
  static StoreRegistry& Global();

  /// Registers a backend; fails with kInvalidArgument on a duplicate name.
  Status Register(Entry entry);

  /// Instantiates a registered backend; kNotFound for unknown names.
  StatusOr<std::unique_ptr<Store>> CreateStore(const std::string& name,
                                               StoreOptions options) const;

  /// Convenience: Global().CreateStore(...).
  static StatusOr<std::unique_ptr<Store>> Create(const std::string& name,
                                                 StoreOptions options = {});

  /// Reopens a Store::SaveToFile snapshot: reads the container, verifies
  /// its checksums (corruption → kDataLoss), and dispatches to the
  /// restorer registered under the snapshot's "backend" section. The
  /// result retrieves byte-identically to the store that was saved.
  /// `vfs` selects the file system the snapshot is read from — nullptr
  /// means the real disk; Vfs::Mmap() parses straight out of a mapping
  /// (zero-copy open for large snapshots).
  StatusOr<std::unique_ptr<Store>> OpenFromFile(const std::string& path,
                                                StoreOptions tuning = {},
                                                vfs::Vfs* vfs = nullptr) const;

  /// OpenFromFile over in-memory container bytes.
  StatusOr<std::unique_ptr<Store>> OpenFromBytes(std::string_view bytes,
                                                 StoreOptions tuning = {}) const;

  /// Convenience: Global().OpenFromFile(...).
  static StatusOr<std::unique_ptr<Store>> Open(const std::string& path,
                                               StoreOptions tuning = {},
                                               vfs::Vfs* vfs = nullptr);

  /// Registered backend metadata, sorted by name.
  std::vector<const Entry*> List() const;

  /// Metadata for one backend, or nullptr.
  const Entry* Find(const std::string& name) const;

 private:
  StatusOr<std::unique_ptr<Store>> OpenView(persist::SnapshotView snapshot,
                                            StoreOptions tuning) const;

  std::map<std::string, Entry> entries_;
};

namespace detail {
/// Defined in store.cc; called once by StoreRegistry::Global().
void RegisterBuiltinStores(StoreRegistry& registry);
}  // namespace detail

}  // namespace xarch

#endif  // XARCH_XARCH_STORE_REGISTRY_H_
