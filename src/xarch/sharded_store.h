#ifndef XARCH_XARCH_SHARDED_STORE_H_
#define XARCH_XARCH_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"
#include "xarch/shard.h"
#include "xarch/store.h"

namespace xarch {

namespace obs {
class Counter;
}  // namespace obs

class StoreRegistry;

/// Construction hooks for ShardedStore::Make.
struct ShardedStoreOptions {
  /// Commit hook, invoked after every shard applied a version batch and
  /// before the batch becomes visible to readers. The durable open path
  /// writes the store-level version manifest here; when it fails the
  /// batch is NOT acknowledged and reopening rolls every shard back to
  /// the previous manifest. May be null (in-memory stores).
  std::function<Status(Version committed)> commit;
  /// Pool that ingest fan-out and scatter reads run on; nullptr uses
  /// util::ThreadPool::Shared(). On a single-CPU machine the shared pool
  /// has no workers and every fan-out degrades to a serial loop.
  util::ThreadPool* pool = nullptr;
};

/// \brief K independent shards behind one Store: the key-space sharding
/// layer (docs/SHARDING.md).
///
/// Each shard is a complete Store of the same inner backend holding the
/// sub-documents the ShardRouter assigns it — its own lock, archive,
/// index, and (in the durable layout) WAL. Ingest splits each version
/// into per-shard sub-documents and fans them across the shards on a
/// thread pool (one nested-merge pass per shard); reads scatter to the
/// shards and concatenate the per-shard results in shard order, which the
/// router's monotone fingerprint-range partition makes byte-identical to
/// the unsharded store. Queries and History whose first keyed step pins a
/// single shard are routed to just that shard.
///
/// ## Locking
///
/// The sharded store declares delegated ingest (Store::delegated_ingest):
/// its ingest hooks take the *shared* outer lock and serialize writers on
/// an internal mutex, so real exclusion lives in the per-shard locks. A
/// writer parked inside one shard therefore blocks only readers that
/// touch that shard — single-shard routed reads of other shards proceed,
/// which is the reader-liveness property the glibc reader-preference
/// caveat used to deny the unsharded store.
///
/// ## Commit and visibility
///
/// `committed()` is the store-level version count readers see. Ingest
/// applies to every shard, runs the commit hook (manifest), and only then
/// publishes the new count; reads validate versions against it, so a
/// half-applied batch (crash or per-shard failure) is never visible. A
/// per-shard failure after the batch passed validation poisons the store:
/// further ingest is refused until reopen, which realigns the shards to
/// the manifest.
class ShardedStore final : public Store {
 public:
  /// Wires a router and K pre-built shards (one per router shard, each
  /// holding exactly `committed` versions) into one store.
  static StatusOr<std::unique_ptr<ShardedStore>> Make(
      ShardRouter router, std::vector<std::unique_ptr<Store>> shards,
      Version committed, ShardedStoreOptions options = {});

  std::string name() const override;
  Capabilities capabilities() const override;

  size_t shard_count() const { return shards_.size(); }
  Version committed() const {
    return committed_.load(std::memory_order_acquire);
  }
  const ShardRouter& router() const { return router_; }

  /// True once a per-shard ingest failure left the shards unaligned;
  /// reads keep working at the committed count, ingest is refused.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Direct access to one shard (tests and benches).
  Store& shard(size_t i) { return *shards_[i]; }

  /// Scatter read probes sent to shard `i` so far (tests, EXPLAIN).
  uint64_t scatter_reads(size_t i) const;

  /// Runs `fn` over every shard with sharded ingest held exclusively (no
  /// writer can be mid-commit). The durable clean-shutdown path uses this
  /// to checkpoint per-shard WALs at a manifest-consistent point.
  Status WithShardsExclusive(const std::function<Status(Store&)>& fn);

 protected:
  bool delegated_ingest() const override { return true; }

  Status AppendImpl(std::string_view xml_text) override;
  Status AppendBatchImpl(const std::vector<std::string_view>& texts) override;
  Status CheckpointImpl() override;
  StatusOr<std::string> RetrieveImpl(Version v) override;
  Status RetrieveToImpl(Version v, Sink& sink) override;
  StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path) override;
  StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                       Version to) override;
  Status QueryImpl(std::string_view query_text, Sink& sink,
                   obs::Trace* trace) override;
  Version VersionCountImpl() const override;
  StoreStats BackendStats() const override;
  std::string StoredBytesImpl() const override;
  Status SnapshotImpl(persist::SnapshotWriter& writer) const override;

 private:
  /// Per-shard instruments: process-registry counters labeled
  /// shard="i" plus the raw atomics EXPLAIN snapshots.
  struct ShardCounters {
    std::atomic<uint64_t> scatter_reads{0};
    std::atomic<uint64_t> routed{0};
    obs::Counter* ingest_documents = nullptr;
    obs::Counter* scatter_reads_total = nullptr;
    obs::Counter* routed_total = nullptr;
  };

  ShardedStore(ShardRouter router, std::vector<std::unique_ptr<Store>> shards,
               Version committed, ShardedStoreOptions options);

  util::ThreadPool& pool() const;

  /// Scatters Retrieve(v) and merges the shard documents in shard order.
  StatusOr<std::string> MergedRetrieve(Version v);

  void CountScatterRead(size_t shard) const;
  void CountRouted(size_t shard) const;

  ShardRouter router_;
  std::vector<std::unique_ptr<Store>> shards_;
  ShardedStoreOptions options_;
  std::atomic<Version> committed_;
  std::atomic<bool> poisoned_{false};
  /// Serializes writers (the outer lock is shared for delegated ingest)
  /// and guards snapshot consistency; mutable because SnapshotImpl is
  /// const and must exclude a concurrent commit.
  mutable std::mutex ingest_mu_;
  std::unique_ptr<ShardCounters[]> counters_;
};

namespace detail {
/// Registers the "sharded" backend (called by RegisterBuiltinStores).
void RegisterShardedStore(StoreRegistry& registry);
}  // namespace detail

}  // namespace xarch

#endif  // XARCH_XARCH_SHARDED_STORE_H_
