#ifndef XARCH_XARCH_H_
#define XARCH_XARCH_H_

/// \file
/// \brief Umbrella header for the xarch library — a C++ implementation of
/// "Archiving Scientific Data" (Buneman, Khanna, Tajima, Tan; SIGMOD 2002 /
/// TODS 2004).
///
/// Quickstart:
/// \code
///   auto spec = xarch::keys::ParseKeySpecSet(R"(
///     (/, (db, {}))
///     (/db, (dept, {name}))
///     (/db/dept, (emp, {fn, ln}))
///   )");
///   xarch::core::Archive archive(std::move(*spec));
///   auto v1 = xarch::xml::Parse("<db>...</db>");
///   archive.AddVersion(**v1);                       // Nested Merge
///   auto old = archive.RetrieveVersion(1);          // any past version
///   auto when = archive.History({{"db", {}}, ...}); // element history
///   std::string xml = archive.ToXml();              // archive is XML too
/// \endcode

#include "client/client.h"
#include "compress/container.h"
#include "compress/lzss.h"
#include "core/archive.h"
#include "core/changes.h"
#include "core/scan.h"
#include "diff/edit_script.h"
#include "diff/repository.h"
#include "diff/sccs.h"
#include "extmem/external_archiver.h"
#include "extmem/internal_rep.h"
#include "extmem/io_stats.h"
#include "index/archive_index.h"
#include "index/timestamp_tree.h"
#include "keys/annotate.h"
#include "keys/infer.h"
#include "keys/key_spec.h"
#include "keys/label.h"
#include "persist/container.h"
#include "persist/crc32c.h"
#include "persist/log.h"
#include "persist/wire.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "query/explain.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/net_util.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xarch/checkpoint.h"
#include "xarch/durable.h"
#include "xarch/sink.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xarch/version_store.h"
#include "xml/canonical.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/serializer.h"
#include "xml/value.h"

#endif  // XARCH_XARCH_H_
