#ifndef XARCH_XARCH_SINK_H_
#define XARCH_XARCH_SINK_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/status.h"

namespace xarch {

/// \brief A byte sink for streaming retrieval (Store::RetrieveTo).
///
/// Backends that advertise Capability::kStreamingRetrieve serialize a
/// version directly into a Sink chunk by chunk, so a multi-gigabyte
/// version never has to exist in memory at once.
class Sink {
 public:
  virtual ~Sink() = default;

  /// Consumes the next chunk of output.
  virtual Status Append(std::string_view chunk) = 0;

  /// Called once after the last chunk.
  virtual Status Flush() { return Status::OK(); }
};

/// Collects the stream into an owned string.
class StringSink : public Sink {
 public:
  Status Append(std::string_view chunk) override {
    data_.append(chunk);
    return Status::OK();
  }

  const std::string& data() const { return data_; }
  std::string Take() && { return std::move(data_); }

 private:
  std::string data_;
};

/// Discards the stream, counting bytes — for size probes and benchmarks
/// that want retrieval cost without retrieval output.
class CountingSink : public Sink {
 public:
  Status Append(std::string_view chunk) override {
    bytes_ += chunk.size();
    return Status::OK();
  }

  size_t bytes() const { return bytes_; }

 private:
  size_t bytes_ = 0;
};

/// Writes the stream to an open stdio file. Does not own the handle.
class FileSink : public Sink {
 public:
  explicit FileSink(std::FILE* file) : file_(file) {}

  Status Append(std::string_view chunk) override {
    if (std::fwrite(chunk.data(), 1, chunk.size(), file_) != chunk.size()) {
      return Status::IoError("short write to sink file");
    }
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) return Status::IoError("flush failed");
    return Status::OK();
  }

 private:
  std::FILE* file_;
};

}  // namespace xarch

#endif  // XARCH_XARCH_SINK_H_
