#ifndef XARCH_XARCH_STORE_H_
#define XARCH_XARCH_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/archive.h"
#include "core/changes.h"
#include "extmem/external_archiver.h"
#include "extmem/io_stats.h"
#include "keys/key_spec.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xarch/sink.h"

namespace xarch {

namespace query {
struct EvalResult;
}  // namespace query

/// \brief Optional abilities a Store backend may advertise. The contract is
/// honest flags: an advertised capability's calls must work; an
/// unadvertised capability's calls return StatusCode::kUnimplemented —
/// never crash, never silently degrade.
enum Capability : uint32_t {
  /// History() and DiffVersions() answer key-based temporal queries.
  kTemporalQueries = 1u << 0,
  /// RetrieveTo() serializes a version straight into a Sink without
  /// materializing an intermediate document tree.
  kStreamingRetrieve = 1u << 1,
  /// AppendBatch() ingests many versions in one call (the archive backend
  /// runs one multi-version nested-merge pass instead of N traversals).
  kBatchIngest = 1u << 2,
  /// The backend maintains checkpoints / segments; Checkpoint() forces a
  /// boundary and Stats().checkpoint_segments reports the count.
  kCheckpoint = 1u << 3,
  /// Query() parses and answers XAQL temporal queries (src/query): keyed
  /// path expressions with `@ version N`, `@ versions A..B`, `history`,
  /// and `diff A B` qualifiers, streamed into a Sink. Archive backends
  /// evaluate them with one streaming pass of the merged hierarchy
  /// (timestamp-tree pruned when indexed); every other backend uses the
  /// interface-level fallback plan over Retrieve/History/DiffVersions.
  kQuery = 1u << 4,
};

/// Bitmask of Capability values.
using Capabilities = uint32_t;

/// Renders a capability mask as "temporal-queries|batch-ingest" (empty
/// string for no capabilities).
std::string CapabilitiesToString(Capabilities caps);

/// \brief Introspection counters every backend reports uniformly, folding
/// the per-layer side channels (extmem/io_stats.h, archive node counts,
/// checkpoint segment counts) into one struct.
struct StoreStats {
  /// Versions ingested so far.
  Version versions = 0;
  /// Raw storage footprint in bytes (what StoredBytes() would return).
  size_t stored_bytes = 0;
  /// Archive nodes in the merged hierarchy (archive backends; 0 otherwise).
  size_t node_count = 0;
  /// Full merge traversals performed (archive backends; one per Append,
  /// one per AppendBatch).
  uint64_t merge_passes = 0;
  /// Checkpoint segments (checkpointing backends; 0 otherwise).
  size_t checkpoint_segments = 0;
  /// Worst-case delta applications any Retrieve() may perform
  /// (delta-based backends; 0 means retrieval is delta-free).
  size_t max_retrieval_applications = 0;
  /// External-memory I/O counters (extmem backend; zeros otherwise).
  extmem::IoStats io;
  /// XAQL queries answered so far (kQuery), and the probe counters of
  /// their evaluations, accumulated across Query() calls: timestamp-tree
  /// probes actually paid, children a naive scan would have inspected at
  /// the same nodes, and key comparisons of sorted-child lookups.
  uint64_t queries = 0;
  uint64_t query_tree_probes = 0;
  uint64_t query_naive_probes = 0;
  uint64_t query_comparisons = 0;
};

/// \brief Construction parameters for registry-created stores. Backends
/// take what they need and ignore the rest; archive-family backends fail
/// with kInvalidArgument when `spec` is empty.
///
/// Move-only (KeySpecSet owns derived lookup structures).
struct StoreOptions {
  /// Key specification (required by "archive", "archive-weave", "extmem",
  /// "checkpoint-archive", and by "compressed" wrapping any of those).
  keys::KeySpecSet spec;
  /// Archive tuning (frontier strategy is overridden by "archive-weave").
  core::ArchiveOptions archive;
  /// Segment length k for the checkpointing backends.
  size_t checkpoint_every = 8;
  /// External-memory archiver tuning. If `extmem.work_dir` is left at its
  /// default, each store instance gets a fresh private directory that is
  /// removed when the store is destroyed.
  extmem::ExternalArchiver::Options extmem;
  /// Backend wrapped by "compressed".
  std::string inner = "archive";
  /// Maintain an index::ArchiveIndex over the archive backend and answer
  /// History() through it (rebuilt lazily after ingest).
  bool use_index = false;
};

/// \brief The uniform service interface over every versioned-storage
/// strategy (Store API v2).
///
/// All strategies the paper compares — the key-based archive (bucket and
/// weave frontiers), incremental/cumulative diffs, full copies — plus the
/// external-memory archiver, the compression wrapper, and the Sec. 9
/// checkpointed variants implement this interface and register themselves
/// in StoreRegistry under stable names, so examples, benches, and tests
/// swap backends by string.
///
///   auto store = StoreRegistry::Create("archive", std::move(options));
///   (*store)->AppendBatch(texts);             // one merge pass
///   StringSink sink;
///   (*store)->RetrieveTo(2, sink);            // no intermediate tree
///   auto when = (*store)->History(path);      // Sec. 7.2
///   StoreStats stats = (*store)->Stats();
class Store {
 public:
  virtual ~Store() = default;

  /// Stable backend name (the registry key it was created under).
  virtual std::string name() const = 0;

  /// Advertised capability flags.
  virtual Capabilities capabilities() const = 0;

  /// True if every capability in `mask` is advertised.
  bool Has(Capabilities mask) const {
    return (capabilities() & mask) == mask;
  }

  // ----------------------------------------------------------- ingest

  /// Archives the next version, given as serialized XML.
  virtual Status Append(std::string_view xml_text) = 0;

  /// Archives a batch of versions in one call (kBatchIngest). The archive
  /// backend merges the whole batch in a single traversal; other backends
  /// ingest sequentially. Atomic for the archive backend: a bad document
  /// leaves the store unchanged.
  virtual Status AppendBatch(const std::vector<std::string_view>& xml_texts);

  // -------------------------------------------------------- retrieval

  /// Reconstructs version v as serialized XML.
  virtual StatusOr<std::string> Retrieve(Version v) = 0;

  /// Streams version v into `sink` (kStreamingRetrieve) without building
  /// an intermediate document tree.
  virtual Status RetrieveTo(Version v, Sink& sink);

  // -------------------------------------------- temporal queries (Sec. 7)

  /// The set of versions in which the keyed element at `path` exists.
  virtual StatusOr<VersionSet> History(
      const std::vector<core::KeyStep>& path);

  /// Key-based change description between two archived versions (Sec. 1):
  /// which keyed elements appeared, disappeared, or changed content.
  virtual StatusOr<std::vector<core::Change>> DiffVersions(Version from,
                                                           Version to);

  // ------------------------------------------------------ queries (XAQL)

  /// Answers an XAQL temporal query (kQuery), streaming results into
  /// `sink`:
  ///
  ///   /db/entry[id="2"] @ version 17      — the element at one version
  ///   /site/people/person[*] @ versions 3..9  — snapshots over a range
  ///   /db/dept[name="x"]/emp[fn="J", ln="D"] history — its version set
  ///   /db diff 3 9                        — key-based changes under a path
  ///   explain <query>                     — the plan + probe counters
  ///
  /// The base implementation is the interface-level plan (Retrieve /
  /// History / DiffVersions), which any backend answers; archive backends
  /// override it with the streaming evaluator over the merged hierarchy,
  /// pruned by the timestamp-tree index when enabled. Per-query probe
  /// counters accumulate into Stats().
  virtual Status Query(std::string_view query_text, Sink& sink);

  // ------------------------------------------------------ maintenance

  /// Forces a checkpoint boundary (kCheckpoint): the next Append starts a
  /// fresh segment.
  virtual Status Checkpoint();

  // ---------------------------------------------------- introspection

  /// Number of archived versions (numbered 1..version_count()).
  virtual Version version_count() const = 0;

  /// Uniform counters (see StoreStats): the backend's own counters with
  /// the per-query probe counters folded in.
  StoreStats Stats() const {
    StoreStats stats = BackendStats();
    stats.queries += query_counters_.queries;
    stats.query_tree_probes += query_counters_.tree_probes;
    stats.query_naive_probes += query_counters_.naive_probes;
    stats.query_comparisons += query_counters_.comparisons;
    return stats;
  }

  /// Raw stored bytes (what a byte compressor would be run over).
  virtual std::string StoredBytes() const = 0;

  /// Storage footprint in bytes (== Stats().stored_bytes).
  size_t ByteSize() const { return Stats().stored_bytes; }

 protected:
  /// Sequential fallback for backends whose AppendBatch has no batched
  /// fast path.
  Status AppendBatchByLoop(const std::vector<std::string_view>& xml_texts);

  /// Status returned by every call whose capability is not advertised.
  Status UnimplementedCall(const char* call, Capability needed) const;

  /// The backend's own counters; Stats() folds the query counters in.
  virtual StoreStats BackendStats() const = 0;

  /// Accumulates one query evaluation into the counters Stats() reports.
  /// Query() overrides call this after every evaluation.
  void CountQuery(const query::EvalResult& result);

 private:
  struct QueryCounters {
    uint64_t queries = 0;
    uint64_t tree_probes = 0;
    uint64_t naive_probes = 0;
    uint64_t comparisons = 0;
  };
  QueryCounters query_counters_;
};

}  // namespace xarch

#endif  // XARCH_XARCH_STORE_H_
