#ifndef XARCH_XARCH_STORE_H_
#define XARCH_XARCH_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/archive.h"
#include "core/changes.h"
#include "extmem/external_archiver.h"
#include "extmem/io_stats.h"
#include "keys/key_spec.h"
#include "util/status.h"
#include "util/version_set.h"
#include "xarch/sink.h"

namespace xarch {

namespace vfs {
class Vfs;
}  // namespace vfs

namespace obs {
class Trace;
}  // namespace obs

namespace persist {
class SnapshotWriter;
}  // namespace persist

namespace query {
struct EvalResult;
}  // namespace query

/// \brief Optional abilities a Store backend may advertise. The contract is
/// honest flags: an advertised capability's calls must work; an
/// unadvertised capability's calls return StatusCode::kUnimplemented —
/// never crash, never silently degrade.
enum Capability : uint32_t {
  /// History() and DiffVersions() answer key-based temporal queries.
  kTemporalQueries = 1u << 0,
  /// RetrieveTo() serializes a version straight into a Sink without
  /// materializing an intermediate document tree.
  kStreamingRetrieve = 1u << 1,
  /// AppendBatch() ingests many versions in one call (the archive backend
  /// runs one multi-version nested-merge pass instead of N traversals).
  kBatchIngest = 1u << 2,
  /// The backend maintains checkpoints / segments; Checkpoint() forces a
  /// boundary and Stats().checkpoint_segments reports the count.
  kCheckpoint = 1u << 3,
  /// Query() parses and answers XAQL temporal queries (src/query): keyed
  /// path expressions with `@ version N`, `@ versions A..B`, `history`,
  /// and `diff A B` qualifiers, streamed into a Sink. Archive backends
  /// evaluate them with one streaming pass of the merged hierarchy
  /// (timestamp-tree pruned when indexed); every other backend uses the
  /// interface-level fallback plan over Retrieve/History/DiffVersions.
  kQuery = 1u << 4,
  /// SaveToFile()/SaveToBytes() snapshot the full store state into the
  /// versioned binary container (src/persist), and the registry restores
  /// it with StoreRegistry::OpenFromFile() — byte-identical retrieval
  /// after the round trip. All built-in backends advertise this.
  kPersistence = 1u << 5,
};

/// Bitmask of Capability values.
using Capabilities = uint32_t;

/// Renders a capability mask as "temporal-queries|batch-ingest" (empty
/// string for no capabilities).
std::string CapabilitiesToString(Capabilities caps);

/// \brief Introspection counters every backend reports uniformly, folding
/// the per-layer side channels (extmem/io_stats.h, archive node counts,
/// checkpoint segment counts) into one struct.
struct StoreStats {
  /// Versions ingested so far.
  Version versions = 0;
  /// Raw storage footprint in bytes (what StoredBytes() would return).
  size_t stored_bytes = 0;
  /// Archive nodes in the merged hierarchy (archive backends; 0 otherwise).
  size_t node_count = 0;
  /// Full merge traversals performed (archive backends; one per Append,
  /// one per AppendBatch).
  uint64_t merge_passes = 0;
  /// Checkpoint segments (checkpointing backends; 0 otherwise).
  size_t checkpoint_segments = 0;
  /// Worst-case delta applications any Retrieve() may perform
  /// (delta-based backends; 0 means retrieval is delta-free).
  size_t max_retrieval_applications = 0;
  /// External-memory I/O counters (extmem backend; zeros otherwise).
  extmem::IoStats io;
  /// XAQL queries answered so far (kQuery), and the probe counters of
  /// their evaluations, accumulated across Query() calls: timestamp-tree
  /// probes actually paid, children a naive scan would have inspected at
  /// the same nodes, and key comparisons of sorted-child lookups.
  uint64_t queries = 0;
  uint64_t query_tree_probes = 0;
  uint64_t query_naive_probes = 0;
  uint64_t query_comparisons = 0;
};

/// \brief Construction parameters for registry-created stores. Backends
/// take what they need and ignore the rest; archive-family backends fail
/// with kInvalidArgument when `spec` is empty.
///
/// Move-only (KeySpecSet owns derived lookup structures).
struct StoreOptions {
  /// Key specification (required by "archive", "archive-weave", "extmem",
  /// "checkpoint-archive", and by "compressed" wrapping any of those).
  keys::KeySpecSet spec;
  /// Archive tuning (frontier strategy is overridden by "archive-weave").
  core::ArchiveOptions archive;
  /// Segment length k for the checkpointing backends.
  size_t checkpoint_every = 8;
  /// External-memory archiver tuning. If `extmem.work_dir` is left at its
  /// default, each store instance gets a fresh private directory that is
  /// removed when the store is destroyed.
  extmem::ExternalArchiver::Options extmem;
  /// Backend wrapped by "compressed".
  std::string inner = "archive";
  /// Maintain an index::ArchiveIndex over the archive backend and answer
  /// History() through it. The index is rebuilt and published at ingest
  /// time, under the writer lock — never on the read path (the paper's
  /// "constructed each time a new version arrives"). Cost model: one full
  /// index build per Append but only one per AppendBatch, so bulk-load
  /// indexed stores through AppendBatch.
  bool use_index = false;
  /// Shard count for the "sharded" backend (ignored by every other
  /// backend): the key space is range-partitioned into this many
  /// independent inner stores (xarch/shard.h).
  size_t shards = 4;
  /// Snapshot container format the archive backends emit from
  /// SaveToFile/SaveToBytes: 2 (XAR2 — flat mmap-navigable sections, the
  /// default) or 1 (legacy XAR1). Both formats reopen through the
  /// registry; saving a store opened from an XAR1 snapshot migrates it to
  /// XAR2 unless this is set back to 1. Non-archive backends ignore it.
  int snapshot_format = 2;
};

class Store;

/// \brief Unlocked access to a Store's primitives, for query evaluators
/// that run INSIDE a public Store call: the store lock is already held by
/// that call, so re-entering the public API would re-acquire a
/// non-recursive shared_mutex (deadlock under writer contention).
/// Constructed only by Store; never outlives the public call that made it.
class StorePrimitives {
 public:
  std::string name() const;
  bool Has(Capabilities mask) const;
  Version version_count() const;
  StatusOr<std::string> Retrieve(Version v);
  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path);
  StatusOr<std::vector<core::Change>> DiffVersions(Version from, Version to);

  /// True when the primitives may be called from several threads at once
  /// (the backend's reads are const and the lock held by the enclosing
  /// public call is shared). The parallel range executor fans out only
  /// when this holds.
  bool concurrent_reads() const;

 private:
  friend class Store;
  explicit StorePrimitives(Store& store) : store_(store) {}
  Store& store_;
};

/// \brief The uniform service interface over every versioned-storage
/// strategy (Store API v2).
///
/// All strategies the paper compares — the key-based archive (bucket and
/// weave frontiers), incremental/cumulative diffs, full copies — plus the
/// external-memory archiver, the compression wrapper, and the Sec. 9
/// checkpointed variants implement this interface and register themselves
/// in StoreRegistry under stable names, so examples, benches, and tests
/// swap backends by string.
///
///   auto store = StoreRegistry::Create("archive", std::move(options));
///   (*store)->AppendBatch(texts);             // one merge pass
///   StringSink sink;
///   (*store)->RetrieveTo(2, sink);            // no intermediate tree
///   auto when = (*store)->History(path);      // Sec. 7.2
///   StoreStats stats = (*store)->Stats();
///
/// ## Thread safety (Store v2.1)
///
/// A Store is safe to share between threads. The public methods are
/// non-virtual and take a per-store std::shared_mutex: ingest
/// (Append/AppendBatch/Checkpoint) runs under the exclusive lock, reads
/// (Retrieve/RetrieveTo/History/DiffVersions/Query/Stats/StoredBytes/
/// version_count) under the shared lock, so any number of readers run in
/// parallel and every read observes a fully-ingested archive — snapshot
/// isolation at version granularity: a query holds the shared lock for its
/// whole evaluation and can never see a half-merged version. Backends
/// whose read path mutates internal state (extmem's I/O accounting)
/// declare ReadSafety::kExclusive and serialize everything.
///
/// Backends implement the protected *Impl hooks, which are always invoked
/// under the appropriate lock and must not call back into the public API
/// of the SAME store (use the Impl hooks or a StorePrimitives view;
/// calling a DIFFERENT store's public API — a wrapped inner store — is
/// fine and locks that store).
class Store {
 public:
  virtual ~Store() = default;

  /// Stable backend name (the registry key it was created under).
  /// Immutable after construction; callable without the store lock.
  virtual std::string name() const = 0;

  /// Advertised capability flags. Immutable after construction.
  virtual Capabilities capabilities() const = 0;

  /// True if every capability in `mask` is advertised.
  bool Has(Capabilities mask) const {
    return (capabilities() & mask) == mask;
  }

  // ----------------------------------------------------------- ingest
  // Writers: exclusive lock.

  /// Archives the next version, given as serialized XML.
  Status Append(std::string_view xml_text);

  /// Archives a batch of versions in one call (kBatchIngest). The archive
  /// backend merges the whole batch in a single traversal; other backends
  /// ingest sequentially. Atomic for the archive backend: a bad document
  /// leaves the store unchanged.
  Status AppendBatch(const std::vector<std::string_view>& xml_texts);

  /// Forces a checkpoint boundary (kCheckpoint): the next Append starts a
  /// fresh segment.
  Status Checkpoint();

  // -------------------------------------------------------- retrieval
  // Readers: shared lock (exclusive for ReadSafety::kExclusive backends).

  /// Reconstructs version v as serialized XML.
  StatusOr<std::string> Retrieve(Version v);

  /// Streams version v into `sink` (kStreamingRetrieve) without building
  /// an intermediate document tree.
  Status RetrieveTo(Version v, Sink& sink);

  // -------------------------------------------- temporal queries (Sec. 7)

  /// The set of versions in which the keyed element at `path` exists.
  StatusOr<VersionSet> History(const std::vector<core::KeyStep>& path);

  /// Key-based change description between two archived versions (Sec. 1):
  /// which keyed elements appeared, disappeared, or changed content.
  StatusOr<std::vector<core::Change>> DiffVersions(Version from, Version to);

  // ------------------------------------------------------ queries (XAQL)

  /// Answers an XAQL temporal query (kQuery), streaming results into
  /// `sink`:
  ///
  ///   /db/entry[id="2"] @ version 17      — the element at one version
  ///   /site/people/person[*] @ versions 3..9  — snapshots over a range
  ///   /db/dept[name="x"]/emp[fn="J", ln="D"] history — its version set
  ///   /db diff 3 9                        — key-based changes under a path
  ///   explain <query>                     — the plan + probe counters
  ///
  /// The base implementation is the interface-level plan (Retrieve /
  /// History / DiffVersions), which any backend answers; archive backends
  /// override it with the streaming evaluator over the merged hierarchy,
  /// pruned by the timestamp-tree index when enabled. Range workloads fan
  /// versions across util::ThreadPool::Shared() and merge the per-version
  /// output in version order, so the bytes are identical to a serial run.
  /// Per-query probe counters accumulate into Stats(). Safe to call from
  /// many threads at once.
  ///
  /// With a non-null `trace`, the evaluation records nested spans (parse →
  /// plan → eval → per-version scans) into it and runs serially so the
  /// span order is deterministic; `explain analyze <query>` does the same
  /// internally and appends the rendered tree to the report.
  Status Query(std::string_view query_text, Sink& sink,
               obs::Trace* trace = nullptr);

  // ------------------------------------------------- persistence (durable)

  /// Snapshots the whole store into the versioned binary container format
  /// (kPersistence) and writes it atomically (temp file + fsync + rename)
  /// to `path`. The snapshot embeds everything needed to reopen — key
  /// specification, backend options, and backend state — so
  /// StoreRegistry::OpenFromFile(path) returns an equivalent store whose
  /// retrievals are byte-identical. Runs under the read lock: concurrent
  /// queries keep running (exclusive-read backends serialize as usual).
  /// `vfs` selects the file system the snapshot lands on; nullptr means
  /// the real disk (vfs::Vfs::Posix()).
  Status SaveToFile(const std::string& path, vfs::Vfs* vfs = nullptr) const;

  /// SaveToFile without the file: the serialized snapshot container.
  StatusOr<std::string> SaveToBytes() const;

  // ---------------------------------------------------- introspection

  /// Number of archived versions (numbered 1..version_count()).
  Version version_count() const;

  /// Uniform counters (see StoreStats): the backend's own counters with
  /// the per-query probe counters folded in. The query counters are
  /// atomics, so totals are exact even while queries run concurrently.
  StoreStats Stats() const;

  /// Raw stored bytes (what a byte compressor would be run over).
  std::string StoredBytes() const;

  /// Storage footprint in bytes (== Stats().stored_bytes).
  size_t ByteSize() const { return Stats().stored_bytes; }

 protected:
  /// How the backend's read path may be driven.
  enum class ReadSafety {
    /// Read hooks are const-correct and thread-safe: readers share the
    /// lock and run in parallel.
    kConcurrent,
    /// Read hooks mutate internal state (I/O counters, on-disk cursors):
    /// every public call takes the exclusive lock.
    kExclusive,
  };

  /// Declared once per backend; kConcurrent unless reads mutate state.
  virtual ReadSafety read_safety() const { return ReadSafety::kConcurrent; }

  /// Backends that delegate writer exclusion to inner stores (the sharded
  /// store: each shard has its own lock) return true, and their ingest
  /// hooks run under the SHARED outer lock — so readers of other shards
  /// stay live while one shard ingests. Such a backend must serialize its
  /// own writers and publish version counts atomically.
  virtual bool delegated_ingest() const { return false; }

  // ------------------------------------------ implementation hooks
  // Invoked under the store lock (exclusive for ingest and for
  // kExclusive backends, shared otherwise). Must not re-enter this
  // store's public API.

  virtual Status AppendImpl(std::string_view xml_text) = 0;
  virtual Status AppendBatchImpl(const std::vector<std::string_view>& texts);
  virtual Status CheckpointImpl();
  virtual StatusOr<std::string> RetrieveImpl(Version v) = 0;
  virtual Status RetrieveToImpl(Version v, Sink& sink);
  virtual StatusOr<VersionSet> HistoryImpl(
      const std::vector<core::KeyStep>& path);
  virtual StatusOr<std::vector<core::Change>> DiffVersionsImpl(Version from,
                                                               Version to);
  virtual Status QueryImpl(std::string_view query_text, Sink& sink,
                           obs::Trace* trace);
  virtual Version VersionCountImpl() const = 0;
  virtual std::string StoredBytesImpl() const = 0;

  /// Fills the snapshot container with this backend's sections, including
  /// a "backend" section naming the registry key a restorer is registered
  /// under. Backends that advertise kPersistence must override it.
  virtual Status SnapshotImpl(persist::SnapshotWriter& writer) const;

  /// Serializes the snapshot; wrapper backends whose snapshot IS another
  /// store's container (DurableStore) override this instead of
  /// SnapshotImpl.
  virtual StatusOr<std::string> SnapshotBytesImpl() const;

  /// The backend's own counters; Stats() folds the query counters in.
  virtual StoreStats BackendStats() const = 0;

  /// Sequential fallback for backends whose AppendBatch has no batched
  /// fast path.
  Status AppendBatchByLoop(const std::vector<std::string_view>& xml_texts);

  /// Status returned by every call whose capability is not advertised.
  Status UnimplementedCall(const char* call, Capability needed) const;

  /// Accumulates one query evaluation into the counters Stats() reports.
  /// QueryImpl overrides call this after every evaluation; the fields are
  /// atomics, so concurrent queries never lose counts.
  void CountQuery(const query::EvalResult& result);

  /// An unlocked view over this store's primitives for evaluators running
  /// inside the current public call.
  StorePrimitives Primitives() { return StorePrimitives(*this); }

 private:
  friend class StorePrimitives;

  /// RAII read lock: shared for kConcurrent backends, exclusive for
  /// kExclusive ones. (Writes always use a plain unique_lock.)
  class ReadLock {
   public:
    explicit ReadLock(const Store& store) {
      if (store.read_safety() == ReadSafety::kConcurrent) {
        shared_ = std::shared_lock<std::shared_mutex>(store.mu_);
      } else {
        exclusive_ = std::unique_lock<std::shared_mutex>(store.mu_);
      }
    }

   private:
    std::shared_lock<std::shared_mutex> shared_;
    std::unique_lock<std::shared_mutex> exclusive_;
  };

  /// RAII ingest lock: exclusive normally, shared for delegated-ingest
  /// backends (whose writer exclusion lives in their inner stores).
  class IngestLock {
   public:
    explicit IngestLock(const Store& store) {
      if (store.delegated_ingest()) {
        shared_ = std::shared_lock<std::shared_mutex>(store.mu_);
      } else {
        exclusive_ = std::unique_lock<std::shared_mutex>(store.mu_);
      }
    }

   private:
    std::shared_lock<std::shared_mutex> shared_;
    std::unique_lock<std::shared_mutex> exclusive_;
  };

  struct QueryCounters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> tree_probes{0};
    std::atomic<uint64_t> naive_probes{0};
    std::atomic<uint64_t> comparisons{0};
  };

  mutable std::shared_mutex mu_;
  QueryCounters query_counters_;
};

}  // namespace xarch

#endif  // XARCH_XARCH_STORE_H_
