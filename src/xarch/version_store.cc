#include "xarch/version_store.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {

namespace {

class ArchiveStore : public VersionStore {
 public:
  ArchiveStore(keys::KeySpecSet spec, core::ArchiveOptions options)
      : archive_(std::move(spec), options) {}

  Status AddVersion(const std::string& xml_text) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::Parse(xml_text));
    return archive_.AddVersion(*doc);
  }

  StatusOr<std::string> Retrieve(Version v) override {
    XARCH_ASSIGN_OR_RETURN(xml::NodePtr doc, archive_.RetrieveVersion(v));
    if (doc == nullptr) return std::string();
    return xml::Serialize(*doc);
  }

  size_t ByteSize() const override { return StoredBytes().size(); }
  std::string StoredBytes() const override {
    // Indentation-free form: the archive nests two levels deeper than a
    // version, so indentation would bias size comparisons against it.
    core::ArchiveSerializeOptions options;
    options.indent_width = 0;
    return archive_.ToXml(options);
  }
  std::string name() const override { return "archive"; }

  core::Archive& archive() { return archive_; }

 private:
  core::Archive archive_;
};

class IncStore : public VersionStore {
 public:
  Status AddVersion(const std::string& xml_text) override {
    repo_.AddVersion(xml_text);
    return Status::OK();
  }
  StatusOr<std::string> Retrieve(Version v) override {
    return repo_.Retrieve(v);
  }
  size_t ByteSize() const override { return repo_.ByteSize(); }
  std::string StoredBytes() const override { return repo_.ConcatenatedBytes(); }
  std::string name() const override { return "V1+inc diffs"; }

 private:
  diff::IncrementalDiffRepo repo_;
};

class CumuStore : public VersionStore {
 public:
  Status AddVersion(const std::string& xml_text) override {
    repo_.AddVersion(xml_text);
    return Status::OK();
  }
  StatusOr<std::string> Retrieve(Version v) override {
    return repo_.Retrieve(v);
  }
  size_t ByteSize() const override { return repo_.ByteSize(); }
  std::string StoredBytes() const override { return repo_.ConcatenatedBytes(); }
  std::string name() const override { return "V1+cumu diffs"; }

 private:
  diff::CumulativeDiffRepo repo_;
};

class FullStore : public VersionStore {
 public:
  Status AddVersion(const std::string& xml_text) override {
    repo_.AddVersion(xml_text);
    return Status::OK();
  }
  StatusOr<std::string> Retrieve(Version v) override {
    return repo_.Retrieve(v);
  }
  size_t ByteSize() const override { return repo_.ByteSize(); }
  std::string StoredBytes() const override { return repo_.ConcatenatedBytes(); }
  std::string name() const override { return "all versions"; }

 private:
  diff::FullCopyRepo repo_;
};

}  // namespace

std::unique_ptr<VersionStore> MakeArchiveStore(keys::KeySpecSet spec,
                                               core::ArchiveOptions options) {
  return std::make_unique<ArchiveStore>(std::move(spec), options);
}
std::unique_ptr<VersionStore> MakeIncrementalDiffStore() {
  return std::make_unique<IncStore>();
}
std::unique_ptr<VersionStore> MakeCumulativeDiffStore() {
  return std::make_unique<CumuStore>();
}
std::unique_ptr<VersionStore> MakeFullCopyStore() {
  return std::make_unique<FullStore>();
}

}  // namespace xarch
