#include "xarch/version_store.h"

#include <utility>

#include "xarch/store.h"
#include "xarch/store_registry.h"

namespace xarch {

namespace {

/// The v1 interface implemented by forwarding to a v2 Store.
class StoreAdapter final : public VersionStore {
 public:
  explicit StoreAdapter(std::unique_ptr<Store> store)
      : store_(std::move(store)) {}

  Status AddVersion(const std::string& xml_text) override {
    return store_->Append(xml_text);
  }
  StatusOr<std::string> Retrieve(Version v) override {
    return store_->Retrieve(v);
  }
  size_t ByteSize() const override { return store_->ByteSize(); }
  std::string StoredBytes() const override { return store_->StoredBytes(); }
  std::string name() const override { return store_->name(); }

 private:
  std::unique_ptr<Store> store_;
};

/// Surfaces a backend-construction error through the v1 interface, whose
/// factories cannot report one (e.g. MakeArchiveStore with an empty key
/// specification): every fallible call returns the construction error.
class ErrorStore final : public VersionStore {
 public:
  explicit ErrorStore(Status status) : status_(std::move(status)) {}

  Status AddVersion(const std::string&) override { return status_; }
  StatusOr<std::string> Retrieve(Version) override { return status_; }
  size_t ByteSize() const override { return 0; }
  std::string StoredBytes() const override { return std::string(); }
  std::string name() const override { return "error"; }

 private:
  Status status_;
};

std::unique_ptr<VersionStore> Adapt(const char* backend,
                                    StoreOptions options = {}) {
  auto store = StoreRegistry::Create(backend, std::move(options));
  if (!store.ok()) {
    return std::make_unique<ErrorStore>(store.status());
  }
  return std::make_unique<StoreAdapter>(std::move(store).value());
}

}  // namespace

std::unique_ptr<VersionStore> MakeArchiveStore(keys::KeySpecSet spec,
                                               core::ArchiveOptions options) {
  StoreOptions store_options;
  store_options.spec = std::move(spec);
  store_options.archive = options;
  const char* backend = options.frontier == core::FrontierStrategy::kWeave
                            ? "archive-weave"
                            : "archive";
  return Adapt(backend, std::move(store_options));
}

std::unique_ptr<VersionStore> MakeIncrementalDiffStore() {
  return Adapt("incr-diff");
}
std::unique_ptr<VersionStore> MakeCumulativeDiffStore() {
  return Adapt("cum-diff");
}
std::unique_ptr<VersionStore> MakeFullCopyStore() {
  return Adapt("full-copy");
}

}  // namespace xarch
