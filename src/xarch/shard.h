#ifndef XARCH_XARCH_SHARD_H_
#define XARCH_XARCH_SHARD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/archive.h"
#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "util/status.h"

namespace xarch {

/// \brief The key-space partitioning function for sharded stores: maps
/// every top-level keyed element to one of K shards by the range its label
/// fingerprint falls in.
///
/// The partition is a *range* partition over the fingerprint space
/// (shard = fp * K / 2^bits). Fingerprints are MD5-derived (keys/label.h),
/// so the ranges are uniformly loaded like a hash partition — but unlike a
/// plain modulo, the mapping is monotone in the fingerprint. Archives sort
/// keyed siblings by (fingerprint, label), so concatenating per-shard
/// children in shard order 0..K-1 reproduces the global sorted child order
/// byte-for-byte: scatter/gather reads merge in key order by construction.
/// Labels whose truncated fingerprints collide land in the same shard, so
/// the within-shard (fingerprint, label) tie-break is also the global one.
class ShardRouter {
 public:
  /// Builds a router over `shards` shards for documents keyed by `spec`.
  /// Requires 1 <= shards <= kMaxShards and a non-empty spec (routing
  /// needs labels, so even backends that normally take no key spec need
  /// one to be sharded).
  static StatusOr<ShardRouter> Make(keys::KeySpecSet spec, size_t shards,
                                    keys::AnnotateOptions annotate);

  /// Shards beyond this are rejected (a shard costs a backend instance, a
  /// lock, a WAL, and metric series; 64 is far past any plausible core
  /// count this serves).
  static constexpr size_t kMaxShards = 64;

  ShardRouter(ShardRouter&&) noexcept = default;
  ShardRouter& operator=(ShardRouter&&) noexcept = default;

  size_t shard_count() const { return shards_; }
  const keys::KeySpecSet& spec() const { return spec_; }
  const keys::AnnotateOptions& annotate_options() const { return annotate_; }

  /// The shard owning a top-level label fingerprint: fp * K / 2^bits,
  /// computed in 128-bit so the full 64-bit fingerprint range divides
  /// without overflow.
  size_t ShardOfFingerprint(uint64_t fingerprint) const;

  /// Splits one version into K per-shard sub-documents: parses and
  /// annotates the full document (so the whole version is validated
  /// against the key spec before any shard is touched), routes each
  /// top-level keyed child by its label fingerprint, and serializes each
  /// shard's subset under a copy of the root element (tag + attributes).
  /// Shards that receive no children get a childless root — every shard
  /// stores every version, which keeps shard version numbers aligned.
  /// Within a shard, children appear in (fingerprint, label) order.
  ///
  /// A document whose root is a frontier (no keyed children to route)
  /// goes wholly to shard 0.
  StatusOr<std::vector<std::string>> SplitDocument(
      std::string_view xml_text) const;

  /// The shards that could hold the top-level element a query's first
  /// keyed step names. Key values are matched against the stored
  /// *canonical* form exactly as core::FindChildByKeyStep does — a stored
  /// part value equals either the query text or "T" + text — so each
  /// non-attribute part contributes up to two candidate labels. Returns
  /// the (deduplicated) shard of every candidate fingerprint; empty when
  /// the combination count is unreasonable (callers then scatter).
  std::vector<size_t> CandidateShards(const core::KeyStep& step) const;

 private:
  ShardRouter(keys::KeySpecSet spec, size_t shards,
              keys::AnnotateOptions annotate)
      : spec_(std::move(spec)), shards_(shards), annotate_(annotate) {}

  keys::KeySpecSet spec_;
  size_t shards_ = 1;
  keys::AnnotateOptions annotate_;
};

}  // namespace xarch

#endif  // XARCH_XARCH_SHARD_H_
