#include "xarch/store_registry.h"

#include <utility>

#include "persist/container.h"
#include "vfs/vfs.h"

namespace xarch {

StoreRegistry& StoreRegistry::Global() {
  static StoreRegistry* registry = [] {
    auto* r = new StoreRegistry();
    detail::RegisterBuiltinStores(*r);
    return r;
  }();
  return *registry;
}

Status StoreRegistry::Register(Entry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("backend name must be non-empty");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("backend \"" + entry.name +
                                   "\" has no factory");
  }
  auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  if (!inserted) {
    return Status::InvalidArgument("backend \"" + it->first +
                                   "\" is already registered");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::CreateStore(
    const std::string& name, StoreOptions options) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [key, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    return Status::NotFound("no store backend \"" + name +
                            "\" (registered: " + known + ")");
  }
  return it->second.factory(std::move(options));
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::Create(const std::string& name,
                                                       StoreOptions options) {
  return Global().CreateStore(name, std::move(options));
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::OpenFromFile(
    const std::string& path, StoreOptions tuning, vfs::Vfs* vfs) const {
  if (vfs == nullptr) vfs = vfs::Vfs::Posix();
  // Map() is the zero-copy seam: on the mmap backend the container is
  // parsed straight out of the page cache; elsewhere it buffers.
  XARCH_ASSIGN_OR_RETURN(std::unique_ptr<vfs::MappedFile> mapping,
                         vfs->Map(path));
  if (persist::IsXar2Snapshot(mapping->data())) {
    // XAR2 opens over the mapping itself: the view (and the store built on
    // it) navigates the file's bytes in place, so the mapping is adopted
    // rather than parsed-and-dropped.
    XARCH_ASSIGN_OR_RETURN(persist::SnapshotView snapshot,
                           persist::SnapshotView::Adopt(std::move(mapping)));
    return OpenView(std::move(snapshot), std::move(tuning));
  }
  return OpenFromBytes(mapping->data(), std::move(tuning));
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::OpenFromBytes(
    std::string_view bytes, StoreOptions tuning) const {
  if (persist::IsXar2Snapshot(bytes)) {
    XARCH_ASSIGN_OR_RETURN(persist::SnapshotView snapshot,
                           persist::SnapshotView::OpenFromBytes(bytes));
    return OpenView(std::move(snapshot), std::move(tuning));
  }
  XARCH_ASSIGN_OR_RETURN(persist::SnapshotReader snapshot,
                         persist::SnapshotReader::Parse(bytes));
  XARCH_ASSIGN_OR_RETURN(std::string_view backend,
                         snapshot.Section("backend"));
  auto it = entries_.find(std::string(backend));
  if (it == entries_.end()) {
    return Status::NotFound("snapshot was written by backend \"" +
                            std::string(backend) +
                            "\", which is not registered");
  }
  if (!it->second.restorer) {
    return Status::Unimplemented("backend \"" + it->first +
                                 "\" has no snapshot restorer");
  }
  return it->second.restorer(snapshot, std::move(tuning));
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::OpenView(
    persist::SnapshotView snapshot, StoreOptions tuning) const {
  XARCH_ASSIGN_OR_RETURN(std::string backend,
                         snapshot.SectionString("backend"));
  auto it = entries_.find(backend);
  if (it == entries_.end()) {
    return Status::NotFound("snapshot was written by backend \"" + backend +
                            "\", which is not registered");
  }
  if (!it->second.view_restorer) {
    return Status::Unimplemented("backend \"" + it->first +
                                 "\" cannot open XAR2 snapshots");
  }
  return it->second.view_restorer(snapshot, std::move(tuning));
}

StatusOr<std::unique_ptr<Store>> StoreRegistry::Open(const std::string& path,
                                                     StoreOptions tuning,
                                                     vfs::Vfs* vfs) {
  return Global().OpenFromFile(path, std::move(tuning), vfs);
}

std::vector<const StoreRegistry::Entry*> StoreRegistry::List() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(&entry);
  return out;  // std::map iterates in name order
}

const StoreRegistry::Entry* StoreRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace xarch
