#ifndef XARCH_XARCH_VERSION_STORE_H_
#define XARCH_XARCH_VERSION_STORE_H_

#include <memory>
#include <string>

#include "core/archive.h"
#include "diff/repository.h"
#include "keys/key_spec.h"
#include "util/status.h"

namespace xarch {

/// \brief A uniform interface over every versioned-storage strategy the
/// paper compares, so examples and benches can swap them freely:
/// the key-based archive (ours), incremental diffs, cumulative diffs, and
/// full copies.
class VersionStore {
 public:
  virtual ~VersionStore() = default;

  /// Archives the next version given as serialized XML.
  virtual Status AddVersion(const std::string& xml_text) = 0;
  /// Reconstructs version v as serialized XML.
  virtual StatusOr<std::string> Retrieve(Version v) = 0;
  /// Current storage footprint in bytes.
  virtual size_t ByteSize() const = 0;
  /// Raw stored bytes (what a byte compressor would be run over).
  virtual std::string StoredBytes() const = 0;
  virtual std::string name() const = 0;
};

/// The paper's archiver behind the VersionStore interface.
std::unique_ptr<VersionStore> MakeArchiveStore(keys::KeySpecSet spec,
                                               core::ArchiveOptions options = {});
/// "V1 + incremental diffs".
std::unique_ptr<VersionStore> MakeIncrementalDiffStore();
/// "V1 + cumulative diffs".
std::unique_ptr<VersionStore> MakeCumulativeDiffStore();
/// Every version kept verbatim.
std::unique_ptr<VersionStore> MakeFullCopyStore();

}  // namespace xarch

#endif  // XARCH_XARCH_VERSION_STORE_H_
