#ifndef XARCH_XARCH_VERSION_STORE_H_
#define XARCH_XARCH_VERSION_STORE_H_

#include <memory>
#include <string>

#include "core/archive.h"
#include "keys/key_spec.h"
#include "util/status.h"

namespace xarch {

/// \brief Deprecated: the v1 storage façade, kept as a thin adapter over
/// Store v2 (xarch/store.h). New code should create backends through
/// StoreRegistry::Create, which adds batching, streaming retrieval,
/// temporal queries, and Stats() introspection.
class VersionStore {
 public:
  virtual ~VersionStore() = default;

  /// Archives the next version given as serialized XML.
  virtual Status AddVersion(const std::string& xml_text) = 0;
  /// Reconstructs version v as serialized XML.
  virtual StatusOr<std::string> Retrieve(Version v) = 0;
  /// Current storage footprint in bytes.
  virtual size_t ByteSize() const = 0;
  /// Raw stored bytes (what a byte compressor would be run over).
  virtual std::string StoredBytes() const = 0;
  virtual std::string name() const = 0;
};

/// Deprecated shim for StoreRegistry::Create("archive", ...).
std::unique_ptr<VersionStore> MakeArchiveStore(keys::KeySpecSet spec,
                                               core::ArchiveOptions options = {});
/// Deprecated shim for StoreRegistry::Create("incr-diff", ...).
std::unique_ptr<VersionStore> MakeIncrementalDiffStore();
/// Deprecated shim for StoreRegistry::Create("cum-diff", ...).
std::unique_ptr<VersionStore> MakeCumulativeDiffStore();
/// Deprecated shim for StoreRegistry::Create("full-copy", ...).
std::unique_ptr<VersionStore> MakeFullCopyStore();

}  // namespace xarch

#endif  // XARCH_XARCH_VERSION_STORE_H_
