#include <gtest/gtest.h>

#include "core/archive.h"
#include "keys/annotate.h"
#include "keys/key_spec.h"
#include "synth/omim.h"
#include "synth/swissprot.h"
#include "synth/xmark.h"
#include "xml/serializer.h"

namespace xarch::synth {
namespace {

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

TEST(OmimGeneratorTest, VersionsSatisfyKeys) {
  OmimGenerator::Options options;
  options.initial_records = 40;
  OmimGenerator gen(options);
  keys::KeySpecSet spec = MustSpec(OmimGenerator::KeySpecText());
  for (int v = 0; v < 5; ++v) {
    xml::NodePtr doc = gen.NextVersion();
    Status st = keys::CheckKeys(*doc, spec);
    EXPECT_TRUE(st.ok()) << "version " << v + 1 << ": " << st.ToString();
  }
}

TEST(OmimGeneratorTest, MostlyAccretive) {
  OmimGenerator::Options options;
  options.initial_records = 100;
  OmimGenerator gen(options);
  size_t first = xml::Serialize(*gen.NextVersion()).size();
  size_t last = first;
  for (int v = 0; v < 10; ++v) last = xml::Serialize(*gen.NextVersion()).size();
  EXPECT_GT(last, first);                       // grows
  EXPECT_LT(last, first * 12 / 10);             // but slowly (daily changes)
}

TEST(OmimGeneratorTest, DeterministicForSeed) {
  OmimGenerator::Options options;
  options.initial_records = 20;
  OmimGenerator a(options), b(options);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(xml::Serialize(*a.NextVersion()),
              xml::Serialize(*b.NextVersion()));
  }
}

TEST(OmimGeneratorTest, StatsMatchPaperShape) {
  OmimGenerator::Options options;
  options.initial_records = 50;
  OmimGenerator gen(options);
  xml::NodePtr doc = gen.NextVersion();
  EXPECT_EQ(doc->Height(), 5);  // Fig. 7: OMIM height 5
}

TEST(OmimGeneratorTest, ArchivesCleanly) {
  OmimGenerator::Options options;
  options.initial_records = 30;
  OmimGenerator gen(options);
  core::Archive archive(MustSpec(OmimGenerator::KeySpecText()));
  for (int v = 0; v < 6; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    ASSERT_TRUE(st.ok()) << "version " << v + 1 << ": " << st.ToString();
  }
  EXPECT_TRUE(archive.Check().ok());
}

TEST(SwissProtGeneratorTest, VersionsSatisfyKeys) {
  SwissProtGenerator::Options options;
  options.initial_records = 25;
  SwissProtGenerator gen(options);
  keys::KeySpecSet spec = MustSpec(SwissProtGenerator::KeySpecText());
  for (int v = 0; v < 5; ++v) {
    xml::NodePtr doc = gen.NextVersion();
    Status st = keys::CheckKeys(*doc, spec);
    EXPECT_TRUE(st.ok()) << "version " << v + 1 << ": " << st.ToString();
  }
}

TEST(SwissProtGeneratorTest, ReleasesGrow) {
  SwissProtGenerator::Options options;
  options.initial_records = 40;
  SwissProtGenerator gen(options);
  size_t first = xml::Serialize(*gen.NextVersion()).size();
  size_t last = first;
  for (int v = 0; v < 6; ++v) {
    last = xml::Serialize(*gen.NextVersion()).size();
  }
  // 26% insert vs 14% delete per release: roughly +12%/release compounds.
  EXPECT_GT(last, first * 3 / 2);
}

TEST(SwissProtGeneratorTest, StatsMatchPaperShape) {
  SwissProtGenerator::Options options;
  options.initial_records = 25;
  SwissProtGenerator gen(options);
  xml::NodePtr doc = gen.NextVersion();
  EXPECT_EQ(doc->Height(), 6);  // Fig. 7: Swiss-Prot height 6
}

TEST(SwissProtGeneratorTest, ArchivesCleanly) {
  SwissProtGenerator::Options options;
  options.initial_records = 20;
  SwissProtGenerator gen(options);
  core::Archive archive(MustSpec(SwissProtGenerator::KeySpecText()));
  for (int v = 0; v < 5; ++v) {
    Status st = archive.AddVersion(*gen.NextVersion());
    ASSERT_TRUE(st.ok()) << "version " << v + 1 << ": " << st.ToString();
  }
  EXPECT_TRUE(archive.Check().ok());
}

TEST(XMarkGeneratorTest, InitialVersionSatisfiesKeys) {
  XMarkGenerator::Options options;
  options.items = 10;
  options.people = 15;
  options.open_auctions = 10;
  XMarkGenerator gen(options);
  keys::KeySpecSet spec = MustSpec(XMarkGenerator::KeySpecText());
  xml::NodePtr doc = gen.Current();
  Status st = keys::CheckKeys(*doc, spec);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(doc->Height(), 5);
}

TEST(XMarkGeneratorTest, RandomMutationsKeepKeysValid) {
  XMarkGenerator::Options options;
  options.items = 10;
  options.people = 15;
  options.open_auctions = 10;
  XMarkGenerator gen(options);
  keys::KeySpecSet spec = MustSpec(XMarkGenerator::KeySpecText());
  for (int v = 0; v < 8; ++v) {
    gen.MutateRandom(10.0);
    xml::NodePtr doc = gen.Current();
    Status st = keys::CheckKeys(*doc, spec);
    ASSERT_TRUE(st.ok()) << "version " << v + 1 << ": " << st.ToString();
  }
}

TEST(XMarkGeneratorTest, RandomMutationChangesDocumentButKeepsSize) {
  XMarkGenerator::Options options;
  options.items = 20;
  options.people = 30;
  options.open_auctions = 20;
  XMarkGenerator gen(options);
  std::string before = xml::Serialize(*gen.Current());
  gen.MutateRandom(5.0);
  std::string after = xml::Serialize(*gen.Current());
  EXPECT_NE(before, after);
  double ratio = static_cast<double>(after.size()) / before.size();
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
}

TEST(XMarkGeneratorTest, KeyMutationChangesOnlyIds) {
  XMarkGenerator::Options options;
  options.items = 20;
  options.people = 30;
  options.open_auctions = 20;
  XMarkGenerator gen(options);
  std::string before = xml::Serialize(*gen.Current());
  gen.MutateKeys(10.0);
  std::string after = xml::Serialize(*gen.Current());
  EXPECT_NE(before, after);
  // Line diff between the two versions is small (only id lines changed)...
  size_t same = 0, idx = 0;
  (void)same;
  (void)idx;
  keys::KeySpecSet spec = MustSpec(XMarkGenerator::KeySpecText());
  xml::NodePtr doc = gen.Current();
  EXPECT_TRUE(keys::CheckKeys(*doc, spec).ok());
}

TEST(XMarkGeneratorTest, KeyMutationIsWorstCaseForArchive) {
  // The archive must store a key-mutated record twice while the line diff
  // stores only the changed id line.
  XMarkGenerator::Options options;
  options.items = 15;
  options.people = 20;
  options.open_auctions = 15;
  XMarkGenerator gen(options);
  core::Archive archive(MustSpec(XMarkGenerator::KeySpecText()));
  ASSERT_TRUE(archive.AddVersion(*gen.Current()).ok());
  size_t nodes_before = archive.CountNodes();
  gen.MutateKeys(20.0);
  ASSERT_TRUE(archive.AddVersion(*gen.Current()).ok());
  size_t nodes_after = archive.CountNodes();
  // Roughly 20% of records duplicated across the three record kinds.
  EXPECT_GT(nodes_after, nodes_before * 110 / 100);
  EXPECT_TRUE(archive.Check().ok());
}

TEST(XMarkGeneratorTest, ArchiveRoundTripUnderMutation) {
  XMarkGenerator::Options options;
  options.items = 8;
  options.people = 12;
  options.open_auctions = 8;
  XMarkGenerator gen(options);
  core::Archive archive(MustSpec(XMarkGenerator::KeySpecText()));
  std::vector<xml::NodePtr> versions;
  for (int v = 0; v < 6; ++v) {
    if (v > 0) gen.MutateRandom(10.0);
    versions.push_back(gen.Current());
    Status st = archive.AddVersion(*versions.back());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(archive.Check().ok());
  // Every version retrievable; compare by single-version archive XML
  // (sibling order is canonicalized there).
  for (Version v = 1; v <= versions.size(); ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok());
    core::Archive a(MustSpec(XMarkGenerator::KeySpecText()));
    core::Archive b(MustSpec(XMarkGenerator::KeySpecText()));
    ASSERT_TRUE(a.AddVersion(**got).ok());
    ASSERT_TRUE(b.AddVersion(*versions[v - 1]).ok());
    EXPECT_EQ(a.ToXml(), b.ToXml()) << "version " << v;
  }
}

}  // namespace
}  // namespace xarch::synth
