#include <gtest/gtest.h>

#include "core/archive.h"
#include "keys/annotate.h"
#include "keys/infer.h"
#include "synth/omim.h"
#include "synth/xmark.h"
#include "xml/parser.h"

namespace xarch::keys {
namespace {

xml::NodePtr MustParseXml(std::string_view text) {
  auto result = xml::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::string KeysToString(const std::vector<Key>& keys) {
  std::string out;
  for (const auto& key : keys) out += key.ToString() + "\n";
  return out;
}

TEST(InferKeysTest, CompanyDatabase) {
  // With enough versions, inference discovers that fn alone does not key
  // employees (two John/Jane pairs would be needed to force fn+ln; here a
  // single field suffices unless versions contradict it).
  xml::NodePtr v4 = MustParseXml(
      "<db><dept><name>finance</name>"
      "<emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp>"
      "<emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal></emp></dept></db>");
  auto keys = InferKeys({v4.get()});
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  std::string text = KeysToString(*keys);
  // dept keyed (singleton here -> {}), emp keyed by fn (sal ties at 95K).
  EXPECT_NE(text.find("(/db, (dept, {}))"), std::string::npos) << text;
  EXPECT_NE(text.find("(/db/dept, (emp, {fn}))"), std::string::npos) << text;
}

TEST(InferKeysTest, MoreVersionsEliminateFalseKeys) {
  // In v1, sal accidentally distinguishes the employees; v2 disproves it.
  xml::NodePtr v1 = MustParseXml(
      "<db><emp><fn>Al</fn><sal>90K</sal></emp>"
      "<emp><fn>Bo</fn><sal>95K</sal></emp></db>");
  xml::NodePtr v2 = MustParseXml(
      "<db><emp><fn>Al</fn><sal>95K</sal></emp>"
      "<emp><fn>Bo</fn><sal>95K</sal></emp></db>");
  auto only_v1 = InferKeys({v1.get()});
  ASSERT_TRUE(only_v1.ok());
  // fn is chosen (alphabetically first among single candidates that work);
  // but force the point with a doc where only sal works in v1:
  xml::NodePtr v1b = MustParseXml(
      "<db><emp><fn>Al</fn><sal>90K</sal></emp>"
      "<emp><fn>Al</fn><sal>95K</sal></emp></db>");
  auto keys_v1b = InferKeys({v1b.get()});
  ASSERT_TRUE(keys_v1b.ok());
  EXPECT_NE(KeysToString(*keys_v1b).find("(/db, (emp, {sal}))"),
            std::string::npos);
  // Adding v2-style evidence forces a composite or kills sal.
  xml::NodePtr v2b = MustParseXml(
      "<db><emp><fn>Al</fn><sal>95K</sal></emp>"
      "<emp><fn>Bo</fn><sal>95K</sal></emp></db>");
  auto combined = InferKeys({v1b.get(), v2b.get()});
  ASSERT_TRUE(combined.ok());
  EXPECT_NE(KeysToString(*combined).find("(/db, (emp, {fn, sal}))"),
            std::string::npos)
      << KeysToString(*combined);
}

TEST(InferKeysTest, AttributesPreferred) {
  xml::NodePtr doc = MustParseXml(
      "<site><item id='i1'><name>a</name></item>"
      "<item id='i2'><name>a</name></item></site>");
  auto keys = InferKeys({doc.get()});
  ASSERT_TRUE(keys.ok());
  EXPECT_NE(KeysToString(*keys).find("(/site, (item, {id}))"),
            std::string::npos)
      << KeysToString(*keys);
}

TEST(InferKeysTest, ContentKeyFallback) {
  // tel has no distinguishing children: keyed by its own content ({\e}).
  xml::NodePtr doc = MustParseXml(
      "<db><emp><fn>A</fn><tel>111</tel><tel>222</tel></emp></db>");
  auto keys = InferKeys({doc.get()});
  ASSERT_TRUE(keys.ok());
  EXPECT_NE(KeysToString(*keys).find("(/db/emp, (tel, {\\e}))"),
            std::string::npos)
      << KeysToString(*keys);
}

TEST(InferKeysTest, UnkeyablePathMakesParentFrontier) {
  // Two identical <line> elements cannot be keyed: body becomes a frontier
  // and no key below it survives.
  xml::NodePtr doc = MustParseXml(
      "<doc><section><title>t1</title><body><line>x</line><line>x</line>"
      "</body></section></doc>");
  auto keys = InferKeys({doc.get()});
  ASSERT_TRUE(keys.ok());
  std::string text = KeysToString(*keys);
  EXPECT_EQ(text.find("line"), std::string::npos) << text;
  EXPECT_NE(text.find("(/doc/section, (body, {}))"), std::string::npos)
      << text;
}

TEST(InferKeysTest, InferredKeysDriveTheArchiver) {
  // End to end: infer keys from OMIM-like versions, build a KeySpecSet,
  // and archive the very versions the keys were inferred from.
  synth::OmimGenerator::Options options;
  options.initial_records = 20;
  options.insert_ratio = 0.1;
  options.modify_ratio = 0.1;
  synth::OmimGenerator gen(options);
  std::vector<xml::NodePtr> docs;
  std::vector<const xml::Node*> ptrs;
  for (int v = 0; v < 4; ++v) {
    docs.push_back(gen.NextVersion());
    ptrs.push_back(docs.back().get());
  }
  auto keys = InferKeys(ptrs);
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  auto spec = KeySpecSet::Build(std::move(*keys));
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  core::Archive archive(std::move(*spec));
  for (const auto& doc : docs) {
    Status st = archive.AddVersion(*doc);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_TRUE(archive.Check().ok());
  for (Version v = 1; v <= docs.size(); ++v) {
    EXPECT_TRUE(archive.RetrieveVersion(v).ok());
  }
}

TEST(InferKeysTest, XMarkInference) {
  synth::XMarkGenerator::Options options;
  options.items = 8;
  options.people = 12;
  options.open_auctions = 8;
  synth::XMarkGenerator gen(options);
  xml::NodePtr v1 = gen.Current();
  gen.MutateRandom(10.0);
  xml::NodePtr v2 = gen.Current();
  auto keys = InferKeys({v1.get(), v2.get()});
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  std::string text = KeysToString(*keys);
  // The id attributes are discovered as keys.
  EXPECT_NE(text.find("(item, {id})"), std::string::npos) << text;
  EXPECT_NE(text.find("(person, {id})"), std::string::npos) << text;
  // And the inferred spec archives the versions.
  auto spec = KeySpecSet::Build(std::move(*keys));
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  core::Archive archive(std::move(*spec));
  EXPECT_TRUE(archive.AddVersion(*v1).ok());
  EXPECT_TRUE(archive.AddVersion(*v2).ok());
  EXPECT_TRUE(archive.Check().ok());
}

TEST(InferKeysTest, ErrorsOnEmptyOrMismatched) {
  EXPECT_FALSE(InferKeys({}).ok());
  xml::NodePtr a = MustParseXml("<a/>");
  xml::NodePtr b = MustParseXml("<b/>");
  EXPECT_FALSE(InferKeys({a.get(), b.get()}).ok());
}

}  // namespace
}  // namespace xarch::keys
