#include <gtest/gtest.h>

#include "diff/edit_script.h"
#include "diff/myers.h"
#include "diff/repository.h"
#include "diff/sccs.h"
#include "util/random.h"
#include "util/strings.h"

namespace xarch::diff {
namespace {

using Lines = std::vector<std::string>;

size_t EditDistance(const Lines& a, const Lines& b) {
  size_t d = 0;
  for (const auto& h : MyersDiff(a, b)) {
    if (!h.equal) d += h.a_len + h.b_len;
  }
  return d;
}

// ----------------------------------------------------------------- Myers

TEST(MyersTest, IdenticalSequences) {
  Lines a = {"x", "y", "z"};
  auto hunks = MyersDiff(a, a);
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_TRUE(hunks[0].equal);
  EXPECT_EQ(hunks[0].a_len, 3u);
}

TEST(MyersTest, EmptySequences) {
  Lines empty, a = {"x"};
  EXPECT_TRUE(MyersDiff(empty, empty).empty());
  auto hunks = MyersDiff(empty, a);
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_FALSE(hunks[0].equal);
  EXPECT_EQ(hunks[0].b_len, 1u);
}

TEST(MyersTest, ClassicExample) {
  // ABCABBA -> CBABAC, minimal distance 5 (Myers' paper example).
  Lines a = {"A", "B", "C", "A", "B", "B", "A"};
  Lines b = {"C", "B", "A", "B", "A", "C"};
  EXPECT_EQ(EditDistance(a, b), 5u);
}

TEST(MyersTest, HunksCoverBothSequencesInOrder) {
  Lines a = {"1", "2", "3", "4", "5"};
  Lines b = {"1", "x", "3", "5", "6"};
  size_t ai = 0, bi = 0;
  for (const auto& h : MyersDiff(a, b)) {
    EXPECT_EQ(h.a_pos, ai);
    EXPECT_EQ(h.b_pos, bi);
    if (h.equal) {
      EXPECT_EQ(h.a_len, h.b_len);
      for (size_t i = 0; i < h.a_len; ++i) {
        EXPECT_EQ(a[h.a_pos + i], b[h.b_pos + i]);
      }
    }
    ai += h.a_len;
    bi += h.b_len;
  }
  EXPECT_EQ(ai, a.size());
  EXPECT_EQ(bi, b.size());
}

TEST(MyersTest, MinimalityOnSmallCases) {
  // Exhaustive check against a DP edit distance on small alphabets.
  auto dp_distance = [](const Lines& a, const Lines& b) {
    std::vector<std::vector<size_t>> d(a.size() + 1,
                                       std::vector<size_t>(b.size() + 1));
    for (size_t i = 0; i <= a.size(); ++i) d[i][0] = i;
    for (size_t j = 0; j <= b.size(); ++j) d[0][j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      for (size_t j = 1; j <= b.size(); ++j) {
        d[i][j] = std::min(d[i - 1][j] + 1, d[i][j - 1] + 1);
        if (a[i - 1] == b[j - 1]) d[i][j] = std::min(d[i][j], d[i - 1][j - 1]);
      }
    }
    return d[a.size()][b.size()];
  };
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Lines a, b;
    size_t an = rng.Uniform(0, 8), bn = rng.Uniform(0, 8);
    for (size_t i = 0; i < an; ++i)
      a.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(0, 2))));
    for (size_t i = 0; i < bn; ++i)
      b.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(0, 2))));
    EXPECT_EQ(EditDistance(a, b), dp_distance(a, b))
        << "a=" << Join(a, "") << " b=" << Join(b, "");
  }
}

TEST(MyersTest, LargeRandomSequences) {
  Rng rng(7);
  Lines a, b;
  for (int i = 0; i < 5000; ++i) a.push_back(std::to_string(rng.Uniform(0, 50)));
  b = a;
  // Mutate 5%.
  for (int i = 0; i < 250; ++i) {
    size_t pos = rng.Uniform(0, b.size() - 1);
    b[pos] = "mut" + std::to_string(i);
  }
  auto hunks = MyersDiff(a, b);
  size_t ai = 0, bi = 0;
  for (const auto& h : hunks) {
    if (h.equal) {
      for (size_t i = 0; i < h.a_len; ++i)
        ASSERT_EQ(a[h.a_pos + i], b[h.b_pos + i]);
    }
    ai += h.a_len;
    bi += h.b_len;
  }
  EXPECT_EQ(ai, a.size());
  EXPECT_EQ(bi, b.size());
}

// ----------------------------------------------------------- EditScript

TEST(EditScriptTest, FormatMatchesUnixDiffShape) {
  Lines a = {"<gene>", "<id>6230</id>", "<name>GRTM</name>", "</gene>"};
  Lines b = {"<gene>", "<id>2953</id>", "<name>ACV2</name>", "</gene>"};
  EditScript script = LineDiff(a, b);
  std::string text = script.Format();
  EXPECT_NE(text.find("2,3c2,3"), std::string::npos);
  EXPECT_NE(text.find("< <id>6230</id>"), std::string::npos);
  EXPECT_NE(text.find("> <id>2953</id>"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(EditScriptTest, ApplyRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Lines a, b;
    size_t n = rng.Uniform(0, 40);
    for (size_t i = 0; i < n; ++i) a.push_back(rng.Word(1, 6));
    b = a;
    size_t edits = rng.Uniform(0, 10);
    for (size_t e = 0; e < edits; ++e) {
      double r = rng.NextDouble();
      if (b.empty() || r < 0.34) {
        b.insert(b.begin() + rng.Uniform(0, b.size()), rng.Word(1, 6));
      } else if (r < 0.67) {
        b.erase(b.begin() + rng.Uniform(0, b.size() - 1));
      } else {
        b[rng.Uniform(0, b.size() - 1)] = rng.Word(1, 6);
      }
    }
    EditScript script = LineDiff(a, b);
    auto applied = script.Apply(a);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(*applied, b);
    // Inverse direction too.
    auto inverted = script.ApplyInverse(b);
    ASSERT_TRUE(inverted.ok()) << inverted.status().ToString();
    EXPECT_EQ(*inverted, a);
  }
}

TEST(EditScriptTest, ParseFormatRoundTrip) {
  Lines a = {"a", "b", "c", "d", "e"};
  Lines b = {"a", "x", "c", "e", "f", "g"};
  EditScript script = LineDiff(a, b);
  auto parsed = EditScript::Parse(script.Format());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Format(), script.Format());
  auto applied = parsed->Apply(a);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, b);
}

TEST(EditScriptTest, EdFormIsTheFig1Shape) {
  // Fig. 1 of the paper: only the command and the *new* lines are stored.
  Lines a = {"<gene>", "<id>6230</id>", "<name>GRTM</name>", "</gene>"};
  Lines b = {"<gene>", "<id>2953</id>", "<name>ACV2</name>", "</gene>"};
  std::string ed = LineDiff(a, b).FormatEd();
  EXPECT_NE(ed.find("2,3c"), std::string::npos);
  EXPECT_NE(ed.find("<id>2953</id>"), std::string::npos);
  EXPECT_EQ(ed.find("6230"), std::string::npos);  // old lines not stored
}

TEST(EditScriptTest, EdDeletionsCostOnlyLineNumbers) {
  Lines a = {"k1", "big payload line one", "big payload line two", "k2"};
  Lines b = {"k1", "k2"};
  std::string ed = LineDiff(a, b).FormatEd();
  EXPECT_EQ(ed, "2,3d\n");
}

TEST(EditScriptTest, EdRoundTripAndApply) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    Lines a, b;
    size_t n = rng.Uniform(0, 30);
    for (size_t i = 0; i < n; ++i) a.push_back(rng.Word(1, 6));
    b = a;
    size_t edits = rng.Uniform(0, 8);
    for (size_t e = 0; e < edits; ++e) {
      double r = rng.NextDouble();
      if (b.empty() || r < 0.34) {
        b.insert(b.begin() + rng.Uniform(0, b.size()), rng.Word(1, 6));
      } else if (r < 0.67) {
        b.erase(b.begin() + rng.Uniform(0, b.size() - 1));
      } else {
        b[rng.Uniform(0, b.size() - 1)] = rng.Word(1, 6);
      }
    }
    std::string ed = LineDiff(a, b).FormatEd();
    auto parsed = EditScript::ParseEd(ed);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto applied = parsed->Apply(a);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(*applied, b);
    // Ed form is never larger than the classic two-sided form.
    EXPECT_LE(ed.size(), LineDiff(a, b).Format().size());
  }
}

TEST(EditScriptTest, ParseEdRejectsGarbage) {
  EXPECT_FALSE(EditScript::ParseEd("zap\n").ok());
  EXPECT_FALSE(EditScript::ParseEd("2a\nunterminated").ok());
  EXPECT_FALSE(EditScript::ParseEd("2x\n").ok());
}

TEST(EditScriptTest, ApplyDetectsContextMismatch) {
  Lines a = {"a", "b"}, b = {"a", "c"};
  EditScript script = LineDiff(a, b);
  Lines wrong = {"a", "z"};
  EXPECT_FALSE(script.Apply(wrong).ok());
}

TEST(EditScriptTest, EmptyDiffIsEmpty) {
  Lines a = {"same"};
  EditScript script = LineDiff(a, a);
  EXPECT_TRUE(script.empty());
  EXPECT_EQ(script.ByteSize(), 0u);
}

TEST(EditScriptTest, ParseRejectsGarbage) {
  EXPECT_FALSE(EditScript::Parse("not a script").ok());
  EXPECT_FALSE(EditScript::Parse("1x2\n").ok());
}

TEST(EditScriptTest, AppendAndDeleteForms) {
  Lines a = {"1", "2"};
  Lines b = {"1", "2", "3"};
  EXPECT_NE(LineDiff(a, b).Format().find("2a3"), std::string::npos);
  EXPECT_NE(LineDiff(b, a).Format().find("3d2"), std::string::npos);
}

// ----------------------------------------------------------- Repositories

TEST(IncrementalDiffRepoTest, RetrievesAllVersions) {
  IncrementalDiffRepo repo;
  std::vector<std::string> versions = {"a\nb\nc\n", "a\nx\nc\n", "a\nx\nc\nd\n",
                                       "x\nc\nd\n"};
  for (const auto& v : versions) repo.AddVersion(v);
  EXPECT_EQ(repo.version_count(), 4u);
  for (size_t i = 0; i < versions.size(); ++i) {
    auto got = repo.Retrieve(i + 1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, versions[i]) << "version " << i + 1;
  }
  EXPECT_FALSE(repo.Retrieve(0).ok());
  EXPECT_FALSE(repo.Retrieve(5).ok());
  EXPECT_EQ(repo.ApplicationsFor(4), 3u);
}

TEST(IncrementalDiffRepoTest, ByteSizeIsFirstPlusDeltas) {
  IncrementalDiffRepo repo;
  repo.AddVersion("a\nb\n");
  size_t first = repo.ByteSize();
  EXPECT_EQ(first, 4u);
  repo.AddVersion("a\nb\n");  // no change: empty delta
  EXPECT_EQ(repo.ByteSize(), first);
}

TEST(CumulativeDiffRepoTest, RetrievesWithOneApplication) {
  CumulativeDiffRepo repo;
  std::vector<std::string> versions = {"a\nb\nc\n", "a\nx\nc\n",
                                       "q\nx\nc\nd\n"};
  for (const auto& v : versions) repo.AddVersion(v);
  for (size_t i = 0; i < versions.size(); ++i) {
    auto got = repo.Retrieve(i + 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, versions[i]);
  }
}

TEST(CumulativeDiffRepoTest, GrowsFasterThanIncremental) {
  // Accretive workload: cumulative deltas repeat all additions since V1.
  IncrementalDiffRepo inc;
  CumulativeDiffRepo cumu;
  std::string text;
  for (int v = 0; v < 20; ++v) {
    for (int l = 0; l < 10; ++l) {
      text += "line-" + std::to_string(v) + "-" + std::to_string(l) + "\n";
    }
    inc.AddVersion(text);
    cumu.AddVersion(text);
  }
  EXPECT_GT(cumu.ByteSize(), 2 * inc.ByteSize());
}

TEST(FullCopyRepoTest, Basics) {
  FullCopyRepo repo;
  repo.AddVersion("v1");
  repo.AddVersion("v2!");
  EXPECT_EQ(repo.ByteSize(), 5u);
  EXPECT_EQ(*repo.Retrieve(2), "v2!");
  EXPECT_EQ(repo.ConcatenatedBytes(), "v1v2!");
  EXPECT_FALSE(repo.Retrieve(3).ok());
}

// ----------------------------------------------------------------- SCCS

TEST(SccsWeaveTest, RetrievesEveryVersion) {
  SccsWeave weave;
  std::vector<Lines> versions = {
      {"a", "b", "c"},
      {"a", "x", "c"},
      {"a", "x", "c", "d"},
      {"x", "c", "d"},
      {"a", "x", "c", "d"},  // "a" comes back
  };
  for (const auto& v : versions) weave.AddVersion(v);
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(weave.Retrieve(i + 1), versions[i]) << "version " << i + 1;
  }
}

TEST(SccsWeaveTest, FlipFlopStoredOnce) {
  // The same line deleted and re-inserted repeatedly should be stored once
  // (the key-based advantage of Sec. 5.3).
  SccsWeave weave;
  Lines with = {"head", "flip", "tail"};
  Lines without = {"head", "tail"};
  for (int i = 0; i < 10; ++i) {
    weave.AddVersion(i % 2 == 0 ? with : without);
  }
  size_t flip_count = 0;
  for (const auto& item : weave.items()) {
    if (item.text == "flip") ++flip_count;
  }
  EXPECT_EQ(flip_count, 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(weave.Retrieve(i + 1), i % 2 == 0 ? with : without);
  }
}

TEST(SccsWeaveTest, RandomizedAgainstReference) {
  Rng rng(23);
  SccsWeave weave;
  std::vector<Lines> history;
  Lines current;
  for (int v = 0; v < 30; ++v) {
    size_t edits = rng.Uniform(0, 5);
    for (size_t e = 0; e < edits; ++e) {
      double r = rng.NextDouble();
      if (current.empty() || r < 0.4) {
        current.insert(current.begin() + rng.Uniform(0, current.size()),
                       rng.Word(1, 4));
      } else if (r < 0.7) {
        current.erase(current.begin() + rng.Uniform(0, current.size() - 1));
      } else {
        current[rng.Uniform(0, current.size() - 1)] = rng.Word(1, 4);
      }
    }
    history.push_back(current);
    weave.AddVersion(current);
  }
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(weave.Retrieve(i + 1), history[i]) << "version " << i + 1;
  }
}

TEST(SccsWeaveTest, ByteSizeSmallerThanAllVersions) {
  SccsWeave weave;
  size_t total = 0;
  Lines lines;
  for (int v = 0; v < 10; ++v) {
    lines.push_back("stable-line-number-" + std::to_string(v));
    weave.AddVersion(lines);
    for (const auto& l : lines) total += l.size() + 1;
  }
  EXPECT_LT(weave.ByteSize(), total / 2);
}

}  // namespace
}  // namespace xarch::diff
