// Regenerates the committed XAR1 compatibility fixtures consumed by
// tests/xar2_test.cc (Xar1FixtureTest). The version texts MUST stay in
// lockstep with FixtureVersions() there. Only rerun this if those texts
// have to change — the whole point of the fixtures is that old bytes
// keep opening, so prefer never regenerating.
//
//   g++ -O2 -Isrc tests/data/make_xar1_fixtures.cc build/libxarch.a \
//       -lpthread -o make_xar1_fixtures
//   ./make_xar1_fixtures tests/data
#include <cstdio>
#include <string>
#include <vector>

#include "core/archive.h"
#include "keys/key_spec.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace xarch;

namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  if (!spec.ok()) std::abort();
  return std::move(spec).value();
}

std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  if (!doc.ok()) std::abort();
  if (!archive.AddVersion(**doc).ok()) std::abort();
  auto back = archive.RetrieveVersion(1);
  if (!back.ok()) std::abort();
  return xml::Serialize(**back);
}

std::string Entry(int id, const std::string& note) {
  return "<entry><id>" + std::to_string(id) + "</id><note>" + note +
         "</note></entry>";
}

std::vector<std::string> FixtureVersions() {
  return {
      Canonical("<db>" + Entry(1, "alpha") + Entry(2, "beta") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(3, "gamma") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(2, "beta") +
                Entry(3, "gamma") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(2, "beta") +
                Entry(3, "gamma2") + "</db>"),
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "tests/data";
  for (const char* backend :
       {"archive", "archive-weave", "incr-diff", "full-copy"}) {
    StoreOptions options;
    options.spec = MustSpec();
    options.snapshot_format = 1;  // the legacy container, by construction
    auto store = StoreRegistry::Create(backend, std::move(options));
    if (!store.ok()) {
      std::fprintf(stderr, "%s: %s\n", backend,
                   store.status().ToString().c_str());
      return 1;
    }
    for (const std::string& text : FixtureVersions()) {
      if (!(*store)->Append(text).ok()) return 1;
    }
    const std::string path =
        out_dir + "/xar1_" + std::string(backend) + ".xar";
    Status saved = (*store)->SaveToFile(path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
