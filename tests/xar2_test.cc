// XAR2, the mmap-navigable snapshot container (format 2): heap-vs-mapped
// answer parity across the archive-family backends (Retrieve, Query,
// History, Diff, EXPLAIN probe counts), ingest promotion of a mapped
// store, format selection through StoreOptions::snapshot_format, the
// committed XAR1 compatibility fixtures under tests/data/, and the
// flip-every-byte / truncate-everywhere corruption sweeps over an XAR2
// file (kDataLoss, never an out-of-bounds read).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "core/archive.h"
#include "persist/container.h"
#include "vfs/vfs.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec(bool use_index = false, int snapshot_format = 2) {
  StoreOptions options;
  options.spec = MustSpec();
  options.use_index = use_index;
  options.snapshot_format = snapshot_format;
  return options;
}

/// The store-canonical form of a version (keyed siblings in fingerprint
/// order, default pretty serialization).
std::string Canonical(const std::string& text) {
  core::Archive archive(MustSpec());
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(archive.AddVersion(**doc).ok());
  auto back = archive.RetrieveVersion(1);
  EXPECT_TRUE(back.ok());
  return xml::Serialize(**back);
}

std::string Entry(int id, const std::string& note) {
  return "<entry><id>" + std::to_string(id) + "</id><note>" + note +
         "</note></entry>";
}

/// Four deterministic versions: entry 2 disappears in v2 and returns in
/// v3, entry 1's note changes in v2, entry 3 appears in v2 and is edited
/// in v4. The SAME texts built the committed XAR1 fixtures — keep the two
/// in sync if this ever changes (tests/data/README.md).
std::vector<std::string> FixtureVersions() {
  return {
      Canonical("<db>" + Entry(1, "alpha") + Entry(2, "beta") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(3, "gamma") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(2, "beta") +
                Entry(3, "gamma") + "</db>"),
      Canonical("<db>" + Entry(1, "changed") + Entry(2, "beta") +
                Entry(3, "gamma2") + "</db>"),
  };
}

std::unique_ptr<Store> MakeLiveStore(const std::string& backend,
                                     bool use_index = false,
                                     int snapshot_format = 2) {
  auto store =
      StoreRegistry::Create(backend, OptionsWithSpec(use_index,
                                                     snapshot_format));
  EXPECT_TRUE(store.ok()) << backend << ": " << store.status().ToString();
  std::unique_ptr<Store> out = std::move(store).value();
  for (const std::string& text : FixtureVersions()) {
    EXPECT_TRUE(out->Append(text).ok()) << backend;
  }
  return out;
}

StatusOr<std::string> RunQuery(Store& store, const std::string& q) {
  StringSink sink;
  XARCH_RETURN_NOT_OK(store.Query(q, sink));
  return std::move(sink).Take();
}

/// Fresh private scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("xarch_xar2_test_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  auto bytes = vfs::Vfs::Posix()->ReadFile(path);
  EXPECT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  auto file =
      vfs::Vfs::Posix()->OpenWritable(path, vfs::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok()) << path << ": " << file.status().ToString();
  ASSERT_TRUE((*file)->Append(bytes).ok()) << path;
  ASSERT_TRUE((*file)->Close().ok()) << path;
}

// ----------------------------------------------- heap vs. mapped parity

// (backend, use_index, open kind): every combination must answer every
// read byte-identically to the live heap store it was saved from. "posix"
// and "mmap" open a real file (the registry adopts the mapping either
// way); "bytes" goes through OpenFromBytes, which copies.
class Xar2ParityTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, bool, std::string>> {};

TEST_P(Xar2ParityTest, MappedAnswersMatchHeapByteForByte) {
  const std::string& backend = std::get<0>(GetParam());
  const bool use_index = std::get<1>(GetParam());
  const std::string& open_kind = std::get<2>(GetParam());
  std::unique_ptr<Store> live = MakeLiveStore(backend, use_index);

  ScratchDir dir("parity");
  const std::string path = dir.File("store.xar");
  StatusOr<std::unique_ptr<Store>> reopened_or =
      Status::Unimplemented("open kind");
  if (open_kind == "bytes") {
    auto bytes = live->SaveToBytes();
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    ASSERT_EQ(bytes->substr(0, 4), "XAR2");
    reopened_or = StoreRegistry::Global().OpenFromBytes(*bytes);
  } else {
    ASSERT_TRUE(live->SaveToFile(path).ok());
    vfs::Vfs* vfs =
        open_kind == "mmap" ? vfs::Vfs::Mmap() : vfs::Vfs::Posix();
    reopened_or = StoreRegistry::Open(path, {}, vfs);
  }
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  Store& reopened = **reopened_or;

  EXPECT_EQ(reopened.name(), live->name());
  EXPECT_EQ(reopened.capabilities(), live->capabilities());
  ASSERT_EQ(reopened.version_count(), live->version_count());

  for (Version v = 1; v <= live->version_count(); ++v) {
    auto a = live->Retrieve(v);
    auto b = reopened.Retrieve(v);
    ASSERT_TRUE(a.ok() && b.ok()) << "v" << v << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << "v" << v;
  }
  {
    StringSink a, b;
    ASSERT_TRUE(live->RetrieveTo(2, a).ok());
    ASSERT_TRUE(reopened.RetrieveTo(2, b).ok());
    EXPECT_EQ(a.data(), b.data());
  }

  for (const char* q : {
           "/db/entry[id=\"2\"] @ version 1",
           "/db/entry[*] @ versions 1..4",
           "/db/entry[id=\"2\"] history",
           "/db diff 1 3",
       }) {
    auto a = RunQuery(*live, q);
    auto b = RunQuery(reopened, q);
    ASSERT_TRUE(a.ok() && b.ok()) << q << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << q;
  }
  {
    // Error parity too: a history miss fails with the same status text on
    // both sides.
    auto a = RunQuery(*live, "/db/entry[id=\"9\"] history");
    auto b = RunQuery(reopened, "/db/entry[id=\"9\"] history");
    ASSERT_FALSE(a.ok() || b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }

  {
    auto a = live->History({{"db", {}}, {"entry", {{"id", "3"}}}});
    auto b = reopened.History({{"db", {}}, {"entry", {{"id", "3"}}}});
    ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
    EXPECT_EQ(a->ToString(), b->ToString());
  }
  {
    auto a = live->DiffVersions(1, 4);
    auto b = reopened.DiffVersions(1, 4);
    ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
    ASSERT_EQ(a->size(), b->size());
  }

  // EXPLAIN: the mapped evaluation reports mapped=true on its access line
  // and — probe for probe — the same counts as the heap run; stripping
  // the marker must reproduce the heap report exactly.
  {
    auto a = RunQuery(*live, "explain /db/entry[id=\"2\"] @ version 1");
    auto b = RunQuery(reopened, "explain /db/entry[id=\"2\"] @ version 1");
    ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
    const std::string marker = " (mapped=true)";
    EXPECT_EQ(a->find(marker), std::string::npos) << *a;
    const size_t at = b->find(marker);
    ASSERT_NE(at, std::string::npos) << *b;
    std::string stripped = *b;
    stripped.erase(at, marker.size());
    EXPECT_EQ(stripped, *a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchiveFamily, Xar2ParityTest,
    ::testing::Combine(::testing::Values("archive", "archive-weave"),
                       ::testing::Bool(),
                       ::testing::Values("posix", "mmap", "bytes")),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         (std::get<1>(info.param) ? "indexed" : "noindex") +
                         "_" + std::get<2>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------- ingest promotion

TEST(Xar2PromotionTest, IngestIntoMappedStoreMaterializesOnce) {
  std::unique_ptr<Store> live = MakeLiveStore("archive", /*use_index=*/true);
  auto bytes = live->SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  auto reopened_or = StoreRegistry::Global().OpenFromBytes(*bytes);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  Store& reopened = **reopened_or;

  // Before any write the snapshot round-trips bit-for-bit: the mapped
  // store's SaveToBytes is the container it was opened from.
  auto resaved = reopened.SaveToBytes();
  ASSERT_TRUE(resaved.ok());
  EXPECT_EQ(*resaved, *bytes);

  const std::string v5 =
      Canonical("<db>" + Entry(1, "changed") + Entry(4, "delta") + "</db>");
  ASSERT_TRUE(reopened.Append(v5).ok());
  EXPECT_EQ(reopened.version_count(), live->version_count() + 1);
  auto got = reopened.Retrieve(5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, v5);
  // Old versions survive the promotion byte-for-byte.
  EXPECT_EQ(*reopened.Retrieve(2), *live->Retrieve(2));
  auto history = RunQuery(reopened, "/db/entry[id=\"1\"] history");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(*history, "/db/entry{id=1}: 1-5\n");

  // The next save re-encodes the promoted heap archive as XAR2, and that
  // snapshot reopens with everything intact.
  auto after = reopened.SaveToBytes();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->substr(0, 4), "XAR2");
  auto again = StoreRegistry::Global().OpenFromBytes(*after);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->version_count(), 5u);
  EXPECT_EQ(*(*again)->Retrieve(5), v5);
}

// ---------------------------------------------------- format selection

TEST(Xar2FormatTest, SnapshotFormatSelectsContainerMagicAndMigrates) {
  // snapshot_format=1 keeps emitting the legacy XAR1 container.
  std::unique_ptr<Store> v1_store =
      MakeLiveStore("archive", /*use_index=*/false, /*snapshot_format=*/1);
  auto v1_bytes = v1_store->SaveToBytes();
  ASSERT_TRUE(v1_bytes.ok());
  EXPECT_EQ(v1_bytes->substr(0, 4), "XAR1");

  // An XAR1 snapshot reopens (heap restorer) and, saved with the default
  // options, migrates to XAR2 — the v1 -> v2 upgrade is one save away.
  auto reopened = StoreRegistry::Global().OpenFromBytes(*v1_bytes);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto migrated = (*reopened)->SaveToBytes();
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated->substr(0, 4), "XAR2");
  auto mapped = StoreRegistry::Global().OpenFromBytes(*migrated);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  for (Version v = 1; v <= v1_store->version_count(); ++v) {
    EXPECT_EQ(*(*mapped)->Retrieve(v), *v1_store->Retrieve(v)) << "v" << v;
  }

  // And a mapped store asked to save as format 1 emits XAR1 again.
  StoreOptions tuning;
  tuning.snapshot_format = 1;
  auto mapped_v1 =
      StoreRegistry::Global().OpenFromBytes(*migrated, std::move(tuning));
  ASSERT_TRUE(mapped_v1.ok()) << mapped_v1.status().ToString();
  auto downgraded = (*mapped_v1)->SaveToBytes();
  ASSERT_TRUE(downgraded.ok());
  EXPECT_EQ(downgraded->substr(0, 4), "XAR1");
}

TEST(Xar2FormatTest, InvalidSnapshotFormatIsRejected) {
  auto bad = StoreRegistry::Create(
      "archive", OptionsWithSpec(/*use_index=*/false, /*snapshot_format=*/3));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  std::unique_ptr<Store> live = MakeLiveStore("archive");
  auto bytes = live->SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  StoreOptions tuning;
  tuning.snapshot_format = 0;
  auto opened =
      StoreRegistry::Global().OpenFromBytes(*bytes, std::move(tuning));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------- XAR1 fixtures (tests/data)

// Committed XAR1 snapshot files, written by an earlier build whose
// archive backends still defaulted to format 1. The registry must keep
// opening them, and every read must match a live heap store built from
// the same version texts — byte for byte. Regenerate (only if the wire
// texts in FixtureVersions() ever have to change) with
// tests/data/make_xar1_fixtures.cc.
class Xar1FixtureTest : public ::testing::TestWithParam<std::string> {};

TEST_P(Xar1FixtureTest, CommittedSnapshotStillOpensByteIdentically) {
  const std::string& backend = GetParam();
  const std::string path =
      std::string(XARCH_TEST_DATA_DIR) + "/xar1_" + backend + ".xar";
  const std::string bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), 4u) << path;
  ASSERT_EQ(bytes.substr(0, 4), "XAR1") << path;

  auto reopened_or = StoreRegistry::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << path << ": "
                                << reopened_or.status().ToString();
  Store& reopened = **reopened_or;
  std::unique_ptr<Store> live = MakeLiveStore(backend);

  EXPECT_EQ(reopened.name(), live->name());
  ASSERT_EQ(reopened.version_count(), live->version_count());
  for (Version v = 1; v <= live->version_count(); ++v) {
    auto a = live->Retrieve(v);
    auto b = reopened.Retrieve(v);
    ASSERT_TRUE(a.ok() && b.ok()) << "v" << v << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << backend << " v" << v;
  }
  auto a = RunQuery(*live, "/db/entry[*] @ versions 1..4");
  auto b = RunQuery(reopened, "/db/entry[*] @ versions 1..4");
  ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    CommittedFixtures, Xar1FixtureTest,
    ::testing::Values("archive", "archive-weave", "incr-diff", "full-copy"),
    [](const auto& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// -------------------------------------------------- corruption sweeps

std::string SavedXar2Snapshot(const std::string& path) {
  std::unique_ptr<Store> live = MakeLiveStore("archive", /*use_index=*/true);
  EXPECT_TRUE(live->SaveToFile(path).ok());
  std::string good = ReadAll(path);
  EXPECT_EQ(good.substr(0, 4), "XAR2");
  EXPECT_TRUE(StoreRegistry::Open(path).ok());
  return good;
}

TEST(Xar2CorruptionTest, EveryFlippedByteFailsWithDataLoss) {
  ScratchDir dir("flip");
  const std::string path = dir.File("s.xar");
  const std::string good = SavedXar2Snapshot(path);
  // Stride-1 sweep: every single-byte flip must be caught — header and
  // section-table bytes by the header/table CRCs, payload bytes by their
  // section CRCs — before any flat-section decoding runs. Both open paths
  // (buffered and mmap-adopted) are exercised.
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    WriteAll(path, bad);
    auto buffered = StoreRegistry::Open(path);
    EXPECT_FALSE(buffered.ok()) << "flip at byte " << i;
    EXPECT_EQ(buffered.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i << ": " << buffered.status().ToString();
    auto mapped = StoreRegistry::Open(path, {}, vfs::Vfs::Mmap());
    EXPECT_EQ(mapped.status().code(), StatusCode::kDataLoss)
        << "mmap flip at byte " << i;
  }
}

TEST(Xar2CorruptionTest, EveryTruncationFailsCleanly) {
  ScratchDir dir("cut");
  const std::string path = dir.File("s.xar");
  const std::string good = SavedXar2Snapshot(path);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteAll(path, good.substr(0, cut));
    auto reopened = StoreRegistry::Open(path);
    EXPECT_FALSE(reopened.ok()) << "cut at " << cut;
    if (cut >= 4) {
      // With the magic intact the failure is always a checksum/bounds
      // verdict; shorter prefixes may not even read as a container.
      EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
          << "cut at " << cut << ": " << reopened.status().ToString();
    }
  }
}

}  // namespace
}  // namespace xarch
