#include <gtest/gtest.h>

#include "synth/xmark.h"
#include "xarch/checkpoint.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kCompanyKeys = R"(
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
)";

keys::KeySpecSet MustSpec(const char* text) {
  auto spec = keys::ParseKeySpecSet(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

std::string MakeVersionText(int v) {
  return "<db><dept><name>finance</name><emp><fn>E" + std::to_string(v) +
         "</fn><ln>L</ln><sal>" + std::to_string(50 + v) +
         "K</sal></emp></dept></db>\n";
}

TEST(CheckpointedDiffRepoTest, RetrievesAllVersionsWithBoundedApplications) {
  CheckpointedDiffRepo repo(/*checkpoint_every=*/4);
  for (int v = 1; v <= 10; ++v) repo.AddVersion(MakeVersionText(v));
  EXPECT_EQ(repo.version_count(), 10u);
  for (Version v = 1; v <= 10; ++v) {
    auto got = repo.Retrieve(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, MakeVersionText(v));
    EXPECT_LT(repo.ApplicationsFor(v), 4u);
  }
  EXPECT_FALSE(repo.Retrieve(0).ok());
  EXPECT_FALSE(repo.Retrieve(11).ok());
  // v5 is a checkpoint: zero applications.
  EXPECT_EQ(repo.ApplicationsFor(5), 0u);
  EXPECT_EQ(repo.ApplicationsFor(8), 3u);
}

TEST(CheckpointedDiffRepoTest, MoreCheckpointsMoreBytes) {
  // With a large stable body, each checkpoint re-stores the whole version
  // while a delta stores only the changed line.
  auto big_version = [](int v) {
    std::string text = "<db>\n";
    for (int l = 0; l < 50; ++l) {
      text += "<stable>payload line " + std::to_string(l) + "</stable>\n";
    }
    text += "<counter>" + std::to_string(v) + "</counter>\n</db>\n";
    return text;
  };
  CheckpointedDiffRepo every2(2), every8(8);
  for (int v = 1; v <= 16; ++v) {
    every2.AddVersion(big_version(v));
    every8.AddVersion(big_version(v));
  }
  EXPECT_GT(every2.ByteSize(), every8.ByteSize());
}

TEST(CheckpointedArchiveTest, SegmentsAndRetrieval) {
  CheckpointedArchive archive(MustSpec(kCompanyKeys), /*checkpoint_every=*/3);
  for (int v = 1; v <= 8; ++v) {
    auto doc = xml::Parse(MakeVersionText(v));
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(archive.AddVersion(**doc).ok());
  }
  EXPECT_EQ(archive.version_count(), 8u);
  EXPECT_EQ(archive.segment_count(), 3u);  // 3+3+2
  for (Version v = 1; v <= 8; ++v) {
    auto got = archive.RetrieveVersion(v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_NE(got->get(), nullptr);
    std::string fn = (*got)
                         ->FindChild("dept")
                         ->FindChild("emp")
                         ->FindChild("fn")
                         ->TextContent();
    EXPECT_EQ(fn, "E" + std::to_string(v));
  }
  EXPECT_FALSE(archive.RetrieveVersion(9).ok());
}

TEST(CheckpointedArchiveTest, HistorySpansSegments) {
  CheckpointedArchive archive(MustSpec(kCompanyKeys), /*checkpoint_every=*/2);
  // The same employee exists in versions 1-5 (crossing 3 segments).
  for (int v = 1; v <= 5; ++v) {
    auto doc = xml::Parse(
        "<db><dept><name>finance</name><emp><fn>Ada</fn><ln>L</ln>"
        "<sal>" + std::to_string(90 + v) + "K</sal></emp></dept></db>");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(archive.AddVersion(**doc).ok());
  }
  auto history = archive.History({{"db", {}},
                                  {"dept", {{"name", "finance"}}},
                                  {"emp", {{"fn", "Ada"}, {"ln", "L"}}}});
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history->ToString(), "1-5");
  auto missing = archive.History({{"db", {}}, {"dept", {{"name", "hr"}}}});
  EXPECT_FALSE(missing.ok());
}

TEST(CheckpointedArchiveTest, BoundsWorstCaseGrowth) {
  // Under key mutation (Fig. 14) a single archive grows without bound;
  // checkpointing caps each segment's divergence.
  synth::XMarkGenerator::Options gen_options;
  gen_options.items = 8;
  gen_options.people = 10;
  gen_options.open_auctions = 8;
  auto run = [&](size_t k) {
    synth::XMarkGenerator gen(gen_options);
    CheckpointedArchive archive(
        MustSpec(synth::XMarkGenerator::KeySpecText()), k);
    for (int v = 0; v < 12; ++v) {
      if (v > 0) gen.MutateKeys(15.0);
      EXPECT_TRUE(archive.AddVersion(*gen.Current()).ok());
    }
    return archive;
  };
  CheckpointedArchive one_segment = run(100);   // effectively no checkpoints
  CheckpointedArchive many = run(3);
  // Checkpointing costs extra space here (each segment re-stores shared
  // data) but every segment archive stays small and every version remains
  // retrievable.
  EXPECT_EQ(many.segment_count(), 4u);
  for (Version v = 1; v <= 12; ++v) {
    EXPECT_TRUE(many.RetrieveVersion(v).ok());
    EXPECT_TRUE(one_segment.RetrieveVersion(v).ok());
  }
}

}  // namespace
}  // namespace xarch
