// Durable on-disk archives: the snapshot container (magic + version +
// per-section CRC32C + optional LZSS), Store::SaveToFile /
// StoreRegistry::OpenFromFile round-trips over all nine backends, the
// append-only ingest log with torn-tail recovery, and the corrupt-input
// behavior of every decode path.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "persist/container.h"
#include "persist/crc32c.h"
#include "persist/log.h"
#include "persist/wire.h"
#include "synth/words.h"
#include "util/random.h"
#include "xarch/durable.h"
#include "xarch/store.h"
#include "xarch/store_registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xarch {
namespace {

constexpr const char* kKeys = R"(
(/, (db, {}))
(/db, (entry, {id}))
(/db/entry, (note, {}))
)";

keys::KeySpecSet MustSpec() {
  auto spec = keys::ParseKeySpecSet(kKeys);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

StoreOptions OptionsWithSpec() {
  StoreOptions options;
  options.spec = MustSpec();
  options.checkpoint_every = 3;
  return options;
}

/// Versions of a small keyed database (same generator family as
/// store_test): inserts, edits, and deletions so diffs and history are
/// non-trivial.
class WordsVersions {
 public:
  explicit WordsVersions(uint64_t seed) : rng_(seed) {
    for (int i = 0; i < 8; ++i) Insert();
  }

  std::string Next() {
    for (int m = 0; m < 2 && !entries_.empty(); ++m) {
      entries_[rng_.Uniform(0, entries_.size() - 1)].second =
          synth::Sentence(rng_, 3, 8);
    }
    Insert();
    if (entries_.size() > 5 && rng_.Uniform(0, 2) == 0) {
      entries_.erase(entries_.begin() + rng_.Uniform(0, entries_.size() - 1));
    }
    std::string xml = "<db>";
    for (const auto& [id, note] : entries_) {
      xml += "<entry><id>" + std::to_string(id) + "</id><note>" + note +
             "</note></entry>";
    }
    xml += "</db>";
    return xml;
  }

 private:
  void Insert() {
    entries_.emplace_back(next_id_++, synth::Sentence(rng_, 3, 8));
  }

  Rng rng_;
  int next_id_ = 1;
  std::vector<std::pair<int, std::string>> entries_;
};

std::vector<std::string> Versions(uint64_t seed, int n) {
  WordsVersions gen(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int v = 0; v < n; ++v) out.push_back(gen.Next());
  return out;
}

/// Fresh private scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("xarch_persist_test_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownVectors) {
  // The iSCSI check value for "123456789".
  EXPECT_EQ(persist::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(persist::Crc32c(""), 0u);
  // 32 zero bytes (another published CRC-32C vector).
  EXPECT_EQ(persist::Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t crc = persist::Crc32cExtend(
        persist::Crc32c(data.substr(0, split)), data.substr(split));
    EXPECT_EQ(crc, persist::Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(persist::UnmaskCrc(persist::MaskCrc(v)), v);
  }
}

// ------------------------------------------------------------------- wire

TEST(WireTest, CursorRejectsTruncation) {
  std::string bytes;
  persist::PutU64(7, &bytes);
  persist::PutBytes("hello", &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    persist::Cursor cursor(std::string_view(bytes).substr(0, cut));
    uint64_t v = 0;
    std::string_view s;
    Status st = cursor.ReadU64(&v);
    if (st.ok()) st = cursor.ReadBytes(&s);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "cut at " << cut;
  }
  persist::Cursor cursor(bytes);
  uint64_t v = 0;
  std::string_view s;
  ASSERT_TRUE(cursor.ReadU64(&v).ok());
  ASSERT_TRUE(cursor.ReadBytes(&s).ok());
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(cursor.ExpectDone().ok());
}

TEST(WireTest, DeclaredLengthBeyondInputIsDataLoss) {
  std::string bytes;
  persist::PutU64(1000, &bytes);  // length prefix promising 1000 bytes
  bytes += "abc";
  persist::Cursor cursor(bytes);
  std::string_view s;
  Status st = cursor.ReadBytes(&s);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// -------------------------------------------------------------- container

TEST(ContainerTest, RoundTripsSections) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  writer.Add("empty", "");
  std::string big(4096, 'x');
  for (size_t i = 0; i < big.size(); i += 17) big[i] = 'y';
  writer.Add("big", big);
  std::string bytes = writer.Serialize();

  auto reader = persist::SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->names(),
            (std::vector<std::string>{"backend", "empty", "big"}));
  EXPECT_EQ(*reader->Section("backend"), "archive");
  EXPECT_EQ(*reader->Section("empty"), "");
  EXPECT_EQ(*reader->Section("big"), big);
  EXPECT_EQ(reader->FindSection("absent"), nullptr);
  EXPECT_EQ(reader->Section("absent").status().code(), StatusCode::kDataLoss);
  // The repetitive section got LZSS-compressed inside the container.
  EXPECT_LT(bytes.size(), big.size());
}

TEST(ContainerTest, EveryFlippedByteIsDetected) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  writer.Add("payload", "some payload bytes that matter");
  const std::string good = writer.Serialize();
  ASSERT_TRUE(persist::SnapshotReader::Parse(good).ok());

  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    auto reader = persist::SnapshotReader::Parse(bad);
    // Every single-byte flip must be caught: header bytes by the header
    // CRC or magic check, section bytes by their section CRC.
    EXPECT_FALSE(reader.ok()) << "flip at byte " << i;
    EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i << ": " << reader.status().ToString();
  }
}

TEST(ContainerTest, EveryTruncationIsDetected) {
  persist::SnapshotWriter writer;
  writer.Add("a", "first section");
  writer.Add("b", "second section");
  const std::string good = writer.Serialize();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    auto reader = persist::SnapshotReader::Parse(good.substr(0, cut));
    EXPECT_FALSE(reader.ok()) << "cut at " << cut;
  }
}

TEST(ContainerTest, UnsupportedVersionIsRejected) {
  persist::SnapshotWriter writer;
  writer.Add("backend", "archive");
  std::string bytes = writer.Serialize();
  bytes[4] = 99;  // format version field
  // Bumping the version also breaks the header CRC; rewrite it so the
  // version check itself is exercised.
  uint32_t crc = persist::MaskCrc(persist::Crc32c(bytes.substr(0, 12)));
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>(crc >> (8 * i));
  }
  auto reader = persist::SnapshotReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(ContainerTest, AtomicWriteReplacesAndNeverTears) {
  ScratchDir dir("atomic");
  std::string path = dir.File("file.bin");
  ASSERT_TRUE(persist::AtomicWriteFile(path, "first", true).ok());
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_TRUE(persist::AtomicWriteFile(path, "second", false).ok());
  EXPECT_EQ(ReadAll(path), "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ------------------------------------------------- store snapshot parity

const std::string kNineBackends[] = {
    "archive",    "archive-weave",      "incr-diff",
    "cum-diff",   "full-copy",          "extmem",
    "compressed", "checkpoint-archive", "checkpoint-diff",
};

class SnapshotRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundTripTest, SaveOpenParity) {
  const std::string& backend = GetParam();
  auto live_or = StoreRegistry::Create(backend, OptionsWithSpec());
  ASSERT_TRUE(live_or.ok()) << live_or.status().ToString();
  Store& live = **live_or;

  const auto texts = Versions(/*seed=*/42, 7);
  for (size_t i = 0; i < texts.size(); ++i) {
    ASSERT_TRUE(live.Append(texts[i]).ok()) << backend << " v" << (i + 1);
    if (i == 3 && live.Has(kCheckpoint)) {
      ASSERT_TRUE(live.Checkpoint().ok()) << backend;
    }
  }
  ASSERT_TRUE(live.Has(kPersistence)) << backend;

  ScratchDir dir("roundtrip");
  const std::string path = dir.File("store.xar");
  ASSERT_TRUE(live.SaveToFile(path).ok()) << backend;

  auto reopened_or = StoreRegistry::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << backend << ": "
                                << reopened_or.status().ToString();
  Store& reopened = **reopened_or;

  EXPECT_EQ(reopened.name(), live.name()) << backend;
  EXPECT_EQ(reopened.capabilities(), live.capabilities()) << backend;
  ASSERT_EQ(reopened.version_count(), live.version_count()) << backend;

  // Byte-identical retrieval of every version.
  for (Version v = 1; v <= live.version_count(); ++v) {
    auto a = live.Retrieve(v);
    auto b = reopened.Retrieve(v);
    ASSERT_TRUE(a.ok()) << backend << " live v" << v;
    ASSERT_TRUE(b.ok()) << backend << " reopened v" << v
                        << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << backend << " v" << v;
  }
  if (live.Has(kStreamingRetrieve)) {
    StringSink a, b;
    ASSERT_TRUE(live.RetrieveTo(2, a).ok()) << backend;
    ASSERT_TRUE(reopened.RetrieveTo(2, b).ok()) << backend;
    EXPECT_EQ(a.data(), b.data()) << backend;
  }

  // Query parity (every backend advertises kQuery).
  {
    StringSink a, b;
    const char* q = "/db/entry[*] @ versions 1..4";
    ASSERT_TRUE(live.Query(q, a).ok()) << backend;
    ASSERT_TRUE(reopened.Query(q, b).ok()) << backend;
    EXPECT_EQ(a.data(), b.data()) << backend;
  }
  if (live.Has(kTemporalQueries)) {
    auto a = live.History({{"db", {}}, {"entry", {{"id", "3"}}}});
    auto b = reopened.History({{"db", {}}, {"entry", {{"id", "3"}}}});
    ASSERT_TRUE(a.ok() && b.ok()) << backend;
    EXPECT_EQ(a->ToString(), b->ToString()) << backend;
    auto da = live.DiffVersions(2, 6);
    auto db = reopened.DiffVersions(2, 6);
    ASSERT_TRUE(da.ok() && db.ok()) << backend;
    ASSERT_EQ(da->size(), db->size()) << backend;
  }

  // Stats parity on the state-derived counters (I/O and merge-pass
  // counters are runtime history, not state, and start fresh on open).
  StoreStats a = live.Stats();
  StoreStats b = reopened.Stats();
  EXPECT_EQ(a.versions, b.versions) << backend;
  EXPECT_EQ(a.stored_bytes, b.stored_bytes) << backend;
  EXPECT_EQ(a.node_count, b.node_count) << backend;
  EXPECT_EQ(a.checkpoint_segments, b.checkpoint_segments) << backend;
  EXPECT_EQ(a.max_retrieval_applications, b.max_retrieval_applications)
      << backend;

  // The reopened store keeps ingesting correctly from where it left off.
  WordsVersions more(/*seed=*/43);
  std::string next = more.Next();
  ASSERT_TRUE(reopened.Append(next).ok()) << backend;
  EXPECT_EQ(reopened.version_count(), live.version_count() + 1) << backend;
  EXPECT_TRUE(reopened.Retrieve(reopened.version_count()).ok()) << backend;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SnapshotRoundTripTest,
                         ::testing::ValuesIn(kNineBackends),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(SnapshotTest, PendingForcedCheckpointSurvivesTheRoundTrip) {
  auto live_or = StoreRegistry::Create("checkpoint-diff", OptionsWithSpec());
  ASSERT_TRUE(live_or.ok());
  Store& live = **live_or;
  const auto texts = Versions(/*seed=*/5, 3);
  ASSERT_TRUE(live.Append(texts[0]).ok());
  ASSERT_TRUE(live.Append(texts[1]).ok());
  ASSERT_TRUE(live.Checkpoint().ok());  // pending at save time

  ScratchDir dir("pending");
  ASSERT_TRUE(live.SaveToFile(dir.File("s.xar")).ok());
  auto reopened = StoreRegistry::Open(dir.File("s.xar"));
  ASSERT_TRUE(reopened.ok());

  ASSERT_TRUE(live.Append(texts[2]).ok());
  ASSERT_TRUE((*reopened)->Append(texts[2]).ok());
  EXPECT_EQ((*reopened)->Stats().checkpoint_segments,
            live.Stats().checkpoint_segments);
  EXPECT_EQ((*reopened)->Stats().checkpoint_segments, 2u);
}

TEST(SnapshotTest, SnapshotOfEmptyStoreReopensEmpty) {
  for (const std::string& backend : kNineBackends) {
    auto live = StoreRegistry::Create(backend, OptionsWithSpec());
    ASSERT_TRUE(live.ok()) << backend;
    ScratchDir dir("empty");
    ASSERT_TRUE((*live)->SaveToFile(dir.File("s.xar")).ok()) << backend;
    auto reopened = StoreRegistry::Open(dir.File("s.xar"));
    ASSERT_TRUE(reopened.ok()) << backend << ": "
                               << reopened.status().ToString();
    EXPECT_EQ((*reopened)->version_count(), 0u) << backend;
    // And it ingests from empty.
    EXPECT_TRUE((*reopened)->Append(Versions(9, 1)[0]).ok()) << backend;
  }
}

TEST(SnapshotTest, CorruptSnapshotFilesNeverOpen) {
  auto live = StoreRegistry::Create("archive", OptionsWithSpec());
  ASSERT_TRUE(live.ok());
  for (const std::string& text : Versions(/*seed=*/77, 4)) {
    ASSERT_TRUE((*live)->Append(text).ok());
  }
  ScratchDir dir("corrupt");
  const std::string path = dir.File("s.xar");
  ASSERT_TRUE((*live)->SaveToFile(path).ok());
  const std::string good = ReadAll(path);
  ASSERT_TRUE(StoreRegistry::Open(path).ok());

  // Flip one byte at a time across the whole file (stride 1 keeps the
  // suite honest and is still fast at snapshot sizes).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    WriteAll(path, bad);
    auto reopened = StoreRegistry::Open(path);
    EXPECT_FALSE(reopened.ok()) << "flip at byte " << i;
    EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << i;
  }
  // Truncations at every boundary fail cleanly too.
  for (size_t cut = 0; cut < good.size(); cut += 13) {
    WriteAll(path, good.substr(0, cut));
    EXPECT_FALSE(StoreRegistry::Open(path).ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, MissingFileAndUnknownBackendFailCleanly) {
  EXPECT_EQ(StoreRegistry::Open("/nonexistent/path/s.xar").status().code(),
            StatusCode::kIoError);
  persist::SnapshotWriter writer;
  writer.Add("backend", "no-such-backend");
  auto opened = StoreRegistry::Global().OpenFromBytes(writer.Serialize());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ ingest log

TEST(IngestLogTest, AppendReadRoundTrip) {
  ScratchDir dir("log");
  const std::string path = dir.File("ingest.log");
  {
    auto writer =
        persist::IngestLogWriter::Open(path, persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    persist::LogRecord a{persist::LogRecord::kAppend, 1, {"<db/>"}};
    persist::LogRecord b{
        persist::LogRecord::kBatch, 2, {"<db>x</db>", "<db>y</db>"}};
    persist::LogRecord c{persist::LogRecord::kCheckpoint, 4, {}};
    ASSERT_TRUE(writer->Append(a).ok());
    ASSERT_TRUE(writer->Append(b).ok());
    ASSERT_TRUE(writer->Append(c).ok());
  }
  auto replay = persist::ReadIngestLog(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].texts[0], "<db/>");
  EXPECT_EQ(replay->records[1].texts.size(), 2u);
  EXPECT_EQ(replay->records[1].first_version, 2u);
  EXPECT_EQ(replay->records[2].type, persist::LogRecord::kCheckpoint);
  EXPECT_EQ(replay->valid_bytes, std::filesystem::file_size(path));
}

TEST(IngestLogTest, MissingLogIsEmptyAndForeignFileIsRejected) {
  ScratchDir dir("log2");
  auto replay = persist::ReadIngestLog(dir.File("absent.log"));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());

  WriteAll(dir.File("foreign.log"), "this is not a log file at all");
  auto foreign = persist::ReadIngestLog(dir.File("foreign.log"));
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kDataLoss);
}

TEST(IngestLogTest, TornTailAtEveryByteKeepsIntactRecords) {
  ScratchDir dir("log3");
  const std::string path = dir.File("ingest.log");
  size_t size_before_last = 0;
  {
    auto writer =
        persist::IngestLogWriter::Open(path, persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 3; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
      if (i == 2) size_before_last = 0;  // placeholder, measured below
    }
  }
  const std::string full = ReadAll(path);
  // Recompute the offset where the final record begins: re-write the first
  // two records into a scratch log and measure.
  {
    auto writer = persist::IngestLogWriter::Open(dir.File("probe.log"),
                                                 persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 2; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
    }
    size_before_last = std::filesystem::file_size(dir.File("probe.log"));
  }
  ASSERT_LT(size_before_last, full.size());

  // Every byte boundary inside the final record: the first two records
  // survive, the torn third is dropped and the truncation point is exact.
  // (A cut exactly at the record boundary is a clean two-record log, not
  // a torn one.)
  for (size_t cut = size_before_last; cut < full.size(); ++cut) {
    WriteAll(path, full.substr(0, cut));
    auto replay = persist::ReadIngestLog(path);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    EXPECT_EQ(replay->records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(replay->torn_tail, cut != size_before_last) << "cut at " << cut;
    EXPECT_EQ(replay->valid_bytes, size_before_last) << "cut at " << cut;
  }
  WriteAll(path, full);
  auto intact = persist::ReadIngestLog(path);
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ(intact->records.size(), 3u);
  EXPECT_FALSE(intact->torn_tail);
}

TEST(IngestLogTest, MidLogBitFlipIsRefusedNotTruncated) {
  ScratchDir dir("log4");
  const std::string path = dir.File("ingest.log");
  {
    auto writer =
        persist::IngestLogWriter::Open(path, persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 3; ++i) {
      persist::LogRecord rec{persist::LogRecord::kAppend,
                             static_cast<Version>(i),
                             {"<db>version " + std::to_string(i) + "</db>"}};
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  std::string bytes = ReadAll(path);
  // Flip a payload byte of the FIRST record (well before the tail).
  bytes[20] = static_cast<char>(bytes[20] ^ 0x01);
  WriteAll(path, bytes);
  auto replay = persist::ReadIngestLog(path);
  // The flip lands in record 1: it reads as a torn tail at record 1 — no
  // intact record is ever dropped silently, and nothing after the bad
  // record is replayed out of order.
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_TRUE(replay->records.empty());
}

// --------------------------------------------------------- durable stores

DurableOptions DurableOpts(const std::string& backend = "archive") {
  DurableOptions options;
  options.backend = backend;
  options.store = OptionsWithSpec();
  options.fsync = persist::FsyncPolicy::kNever;  // tests: speed over crash-
                                                 // durability of the OS cache
  return options;
}

TEST(DurableStoreTest, SurvivesReopenWithoutSnapshot) {
  ScratchDir dir("durable1");
  const auto texts = Versions(/*seed=*/3, 5);
  {
    auto store = OpenDurable(dir.path(), DurableOpts());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->name(), "durable(archive)");
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
    EXPECT_EQ((*store)->version_count(), texts.size());
  }  // process "exit": only the log file persists the data
  auto reopened = OpenDurable(dir.path(), DurableOpts());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->version_count(), texts.size());
  for (Version v = 1; v <= texts.size(); ++v) {
    EXPECT_TRUE((*reopened)->Retrieve(v).ok()) << "v" << v;
  }
}

TEST(DurableStoreTest, SnapshotPlusLogRecovery) {
  ScratchDir dir("durable2");
  const auto texts = Versions(/*seed=*/4, 6);
  std::vector<std::string> expected;
  {
    auto store_or = DurableStore::Open(dir.path(), DurableOpts());
    ASSERT_TRUE(store_or.ok());
    DurableStore& store = **store_or;
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(store.Append(texts[i]).ok());
    ASSERT_TRUE(store.CompactNow().ok());  // snapshot covers 1..4
    EXPECT_EQ(store.log_records(), 0u);
    for (int i = 4; i < 6; ++i) ASSERT_TRUE(store.Append(texts[i]).ok());
    EXPECT_EQ(store.log_records(), 2u);  // only 5..6 in the log
    for (Version v = 1; v <= 6; ++v) {
      expected.push_back(store.Retrieve(v).value());
    }
  }
  ASSERT_TRUE(
      std::filesystem::exists(dir.File("snapshot.xar")));
  auto reopened = OpenDurable(dir.path(), DurableOpts());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->version_count(), 6u);
  for (Version v = 1; v <= 6; ++v) {
    EXPECT_EQ((*reopened)->Retrieve(v).value(), expected[v - 1]) << "v" << v;
  }
}

TEST(DurableStoreTest, TornFinalRecordRecoversEveryLoggedVersion) {
  ScratchDir dir("durable3");
  const auto texts = Versions(/*seed=*/8, 4);
  {
    auto store = OpenDurable(dir.path(), DurableOpts());
    ASSERT_TRUE(store.ok());
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
  }
  const std::string log_path = dir.File("ingest.log");
  const std::string full = ReadAll(log_path);
  auto replay = persist::ReadIngestLog(log_path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 4u);
  // Offset where the final record starts = file minus its frame.
  std::string probe;
  {
    persist::LogRecord last = replay->records.back();
    std::string body;
    persist::PutU8(last.type, &body);
    persist::PutU32(last.first_version, &body);
    persist::PutU32(1, &body);
    persist::PutBytes(last.texts[0], &body);
    probe = body;
  }
  const size_t last_frame = probe.size() + 8;
  const size_t last_start = full.size() - last_frame;

  // Simulated torn write at EVERY byte boundary of the final record: the
  // durable store reopens with versions 1..3 intact, none rejected.
  for (size_t cut = last_start; cut < full.size(); ++cut) {
    ScratchDir copy("durable3_cut");
    std::filesystem::copy(dir.path(), copy.path(),
                          std::filesystem::copy_options::recursive |
                              std::filesystem::copy_options::overwrite_existing);
    WriteAll(copy.File("ingest.log"), full.substr(0, cut));
    auto reopened = OpenDurable(copy.path(), DurableOpts());
    ASSERT_TRUE(reopened.ok()) << "cut at " << cut << ": "
                               << reopened.status().ToString();
    ASSERT_EQ((*reopened)->version_count(), 3u) << "cut at " << cut;
    for (Version v = 1; v <= 3; ++v) {
      auto got = (*reopened)->Retrieve(v);
      ASSERT_TRUE(got.ok()) << "cut at " << cut << " v" << v;
      EXPECT_FALSE(got->empty());
    }
    // The torn tail was truncated away: a subsequent reopen is clean.
    auto again = OpenDurable(copy.path(), DurableOpts());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*again)->version_count(), 3u);
  }
}

TEST(DurableStoreTest, CrashBetweenSnapshotAndTruncateNeverDoubleApplies) {
  ScratchDir dir("durable4");
  const auto texts = Versions(/*seed=*/12, 3);
  std::string pre_compact_log;
  {
    auto store = OpenDurable(dir.path(), DurableOpts());
    ASSERT_TRUE(store.ok());
    for (const auto& text : texts) ASSERT_TRUE((*store)->Append(text).ok());
    pre_compact_log = ReadAll(dir.File("ingest.log"));
  }
  {
    auto store_or = DurableStore::Open(dir.path(), DurableOpts());
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->CompactNow().ok());
  }
  // Simulate the crash: snapshot written, log truncation lost.
  WriteAll(dir.File("ingest.log"), pre_compact_log);
  auto reopened = OpenDurable(dir.path(), DurableOpts());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), texts.size());  // not 2x
}

TEST(DurableStoreTest, LogGapIsRefusedNotRenumbered) {
  // A log whose records jump from version 1 to version 3 means an ingest
  // was applied but never logged; replaying would silently renumber the
  // later versions, so recovery must refuse with kDataLoss instead.
  ScratchDir dir("durable_gap");
  const auto texts = Versions(/*seed=*/61, 3);
  {
    auto writer = persist::IngestLogWriter::Open(
        (std::filesystem::path(dir.path()) / "ingest.log").string(),
        persist::FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    persist::LogRecord first{persist::LogRecord::kAppend, 1, {texts[0]}};
    persist::LogRecord third{persist::LogRecord::kAppend, 3, {texts[2]}};
    ASSERT_TRUE(writer->Append(first).ok());
    ASSERT_TRUE(writer->Append(third).ok());
  }
  auto reopened = OpenDurable(dir.path(), DurableOpts());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("gap"), std::string::npos);
}

TEST(DurableStoreTest, AutoSnapshotEveryNRecords) {
  ScratchDir dir("durable5");
  DurableOptions options = DurableOpts();
  options.snapshot_every_records = 2;
  auto store_or = DurableStore::Open(dir.path(), std::move(options));
  ASSERT_TRUE(store_or.ok());
  DurableStore& store = **store_or;
  const auto texts = Versions(/*seed=*/21, 5);
  for (const auto& text : texts) ASSERT_TRUE(store.Append(text).ok());
  // 5 appends with a snapshot every 2: the log holds at most 1 record.
  EXPECT_LE(store.log_records(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.File("snapshot.xar")));
}

TEST(DurableStoreTest, BatchIngestIsLoggedAtomically) {
  ScratchDir dir("durable6");
  const auto texts = Versions(/*seed=*/31, 4);
  {
    auto store = OpenDurable(dir.path(), DurableOpts());
    ASSERT_TRUE(store.ok());
    std::vector<std::string_view> views(texts.begin(), texts.end());
    ASSERT_TRUE((*store)->AppendBatch(views).ok());
  }
  auto reopened = OpenDurable(dir.path(), DurableOpts());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->version_count(), texts.size());
}

TEST(DurableStoreTest, BackendMismatchIsRejected) {
  ScratchDir dir("durable7");
  {
    auto store_or = DurableStore::Open(dir.path(), DurableOpts());
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)->Append(Versions(2, 1)[0]).ok());
    ASSERT_TRUE((*store_or)->CompactNow().ok());
  }
  auto wrong = OpenDurable(dir.path(), DurableOpts("full-copy"));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableStoreTest, WrapsNonArchiveBackends) {
  ScratchDir dir("durable8");
  const auto texts = Versions(/*seed=*/51, 4);
  {
    auto store = OpenDurable(dir.path(), DurableOpts("checkpoint-diff"));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(texts[0]).ok());
    ASSERT_TRUE((*store)->Append(texts[1]).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // compacts + inner boundary
    ASSERT_TRUE((*store)->Append(texts[2]).ok());
  }
  auto reopened = OpenDurable(dir.path(), DurableOpts("checkpoint-diff"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->version_count(), 3u);
  EXPECT_GE((*reopened)->Stats().checkpoint_segments, 2u);
}

// ------------------------------------------- capability honesty (persist)

TEST(PersistCapabilityTest, UnadvertisedSaveIsUnimplemented) {
  // A minimal out-of-tree backend that does not advertise kPersistence.
  class NoPersistStore final : public Store {
   public:
    std::string name() const override { return "no-persist"; }
    Capabilities capabilities() const override { return 0; }

   protected:
    Status AppendImpl(std::string_view) override { return Status::OK(); }
    StatusOr<std::string> RetrieveImpl(Version) override {
      return std::string();
    }
    Version VersionCountImpl() const override { return 0; }
    std::string StoredBytesImpl() const override { return ""; }
    StoreStats BackendStats() const override { return {}; }
  };
  NoPersistStore store;
  EXPECT_EQ(store.SaveToBytes().status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(store.SaveToFile("/tmp/never-written.xar").code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace xarch
